// Ablations of the design choices DESIGN.md calls out (not a paper figure —
// these benches justify our modelling decisions with measurements):
//
//   A. Reward-shaping weight W (Eq. 8): does the high penalty multiplier for
//      balance-reducing orders actually help the DQN find profit?
//   B. Joint objective for several IFUs: summed balance vs fair-collusion
//      minimum gain — the mechanism behind the Fig. 6 per-IFU decline.
//   C. The validity rule (Eqs. 1/3/5 as a hard constraint): how much of the
//      permutation space it removes, and how much *phantom* profit an
//      attacker would claim if invalid orders were allowed to ship.
//   D. Defense on/off at campaign scale (Sec. VIII end to end).
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "parole/common/env.hpp"
#include "parole/common/table.hpp"
#include "parole/core/campaign.hpp"
#include "parole/core/gentranseq.hpp"
#include "parole/data/case_study.hpp"

using namespace parole;
namespace cs = data::case_study;

namespace {

void ablation_reward_weight(std::uint64_t seed) {
  TablePrinter table(
      "Ablation A: Eq. 8 penalty weight W (DQN on the case study)");
  table.columns({"W", "best balance (ETH)", "episodes to first profit",
                 "profitable episodes"});
  for (double weight : {1.0, 5.0, 10.0, 20.0}) {
    auto problem = cs::make_problem();
    core::GenTranSeqConfig config;
    config.dqn.hidden = {32};
    config.dqn.episodes = static_cast<std::size_t>(scaled(60, 25));
    config.dqn.steps_per_episode = static_cast<std::size_t>(scaled(120, 50));
    config.dqn.minibatch = 16;
    config.reward.penalty_weight = weight;
    core::GenTranSeq gts(problem, config, seed);
    const core::TrainResult result = gts.train();
    const std::size_t first_episode =
        result.first_candidate_episode.empty()
            ? config.dqn.episodes
            : result.first_candidate_episode.front();
    table.row({TablePrinter::num(weight, 0),
               to_eth_string(result.best_balance),
               std::to_string(first_episode),
               std::to_string(result.swaps_to_first_candidate.size())});
  }
  table.print();
  std::printf("\n");
}

void ablation_objective(std::uint64_t seed) {
  TablePrinter table(
      "Ablation B: multi-IFU objective (campaign profit per IFU, uETH)");
  table.columns({"IFUs", "kSumBalance", "kMinGain (fair collusion)"});
  for (std::size_t ifus : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    std::vector<std::string> row = {std::to_string(ifus)};
    for (solvers::Objective objective :
         {solvers::Objective::kSumBalance, solvers::Objective::kMinGain}) {
      core::CampaignConfig config;
      config.num_aggregators = 5;
      config.adversarial_fraction = 0.2;
      config.mempool_size = 12;
      config.num_ifus = ifus;
      config.rounds = static_cast<std::size_t>(scaled(30, 10));
      config.workload.num_users = 16;
      config.workload.max_supply = 40;
      config.workload.premint = 12;
      config.seed = seed;
      config.parole.objective = objective;
      // run() overrides the objective to kMinGain by default; mirror the
      // requested one by running the Parole modules directly instead.
      core::ParoleConfig parole_config = config.parole;
      parole_config.kind = core::ReordererKind::kAnnealing;
      parole_config.objective = objective;
      parole_config.seed = seed;

      // Replay the same adversarial batches under both objectives.
      data::WorkloadGenerator workload(config.workload, config.seed);
      const vm::L2State genesis = workload.initial_state();
      auto txs = workload.generate(config.rounds * config.mempool_size);
      const auto ifu_set = workload.pick_ifus(ifus);

      core::Parole parole(parole_config);
      Amount profit = 0;
      vm::L2State state = genesis;
      const vm::ExecutionEngine engine(
          {vm::InvalidTxPolicy::kSkipInvalid, false, {}});
      for (std::size_t r = 0; r < config.rounds; ++r) {
        std::vector<vm::Tx> batch(
            txs.begin() + static_cast<std::ptrdiff_t>(r * config.mempool_size),
            txs.begin() +
                static_cast<std::ptrdiff_t>((r + 1) * config.mempool_size));
        if (r % config.num_aggregators == 0) {  // the adversary's turn
          core::AttackOutcome outcome = parole.run(state, batch, ifu_set);
          profit += outcome.profit();
          batch = std::move(outcome.final_sequence);
        }
        (void)engine.execute(state, batch);
      }
      row.push_back(TablePrinter::num(
          static_cast<double>(profit) / static_cast<double>(ifus) / 1'000.0,
          1));
    }
    table.row(std::move(row));
  }
  table.print();
  std::printf(
      "kSumBalance rewards pumping the largest holders (superadditive); "
      "kMinGain must serve every colluder, reproducing the Fig. 6 decline.\n\n");
}

void ablation_validity(std::uint64_t /*seed*/) {
  // Walk all 8! orders of the case study, with and without the validity
  // rule, by evaluating through the problem (valid) and through a raw
  // skip-invalid execution (invalid orders allowed to ship partially).
  auto problem = cs::make_problem();
  const auto txs = cs::original_txs();
  const vm::ExecutionEngine engine(
      {vm::InvalidTxPolicy::kSkipInvalid, false, {}});

  std::vector<std::size_t> order(8);
  std::iota(order.begin(), order.end(), 0);
  std::size_t valid = 0, total = 0;
  Amount best_valid = 0, best_phantom = 0;
  do {
    ++total;
    const auto value = problem.evaluate(order);
    if (value) {
      ++valid;
      best_valid = std::max(best_valid, *value);
    }
    // Phantom evaluation: ship anyway, let stale txs revert.
    vm::L2State state = cs::initial_state();
    std::vector<vm::Tx> seq;
    for (std::size_t idx : order) seq.push_back(txs[idx]);
    (void)engine.execute(state, seq);
    best_phantom = std::max(best_phantom, state.total_balance(cs::kIfu));
  } while (std::next_permutation(order.begin(), order.end()));

  TablePrinter table("Ablation C: the Eqs. 1/3/5 validity rule (case study)");
  table.columns({"metric", "value"});
  table.row({"permutations", std::to_string(total)});
  table.row({"valid under Eq. 1/3/5",
             std::to_string(valid) + " (" +
                 TablePrinter::num(100.0 * static_cast<double>(valid) /
                                       static_cast<double>(total),
                                   1) +
                 "%)"});
  table.row({"best valid IFU balance", to_eth_string(best_valid) + " ETH"});
  table.row({"best if invalid orders shipped (phantom)",
             to_eth_string(best_phantom) + " ETH"});
  table.print();
  std::printf(
      "orders that let protected txs fail can fake higher balances by "
      "suppressing other users' trades — exactly what the paper's 'crucial "
      "to verify the execution' rule forbids.\n\n");
}

void ablation_dqn_variants(std::uint64_t seed) {
  TablePrinter table(
      "Ablation E: DQN variants (GENTRANSEQ on the case study)");
  table.columns({"variant", "best balance (ETH)", "found profit",
                 "first-profit episode"});
  struct Variant {
    const char* name;
    bool double_dqn;
    bool prioritized;
  };
  for (const Variant& v :
       {Variant{"vanilla (paper)", false, false},
        Variant{"double DQN", true, false},
        Variant{"prioritized replay", false, true},
        Variant{"double + prioritized", true, true}}) {
    auto problem = cs::make_problem();
    core::GenTranSeqConfig config;
    config.dqn.hidden = {32};
    config.dqn.episodes = static_cast<std::size_t>(scaled(60, 25));
    config.dqn.steps_per_episode = static_cast<std::size_t>(scaled(120, 50));
    config.dqn.minibatch = 16;
    config.dqn.use_double_dqn = v.double_dqn;
    config.dqn.prioritized_replay = v.prioritized;
    core::GenTranSeq gts(problem, config, seed ^ 0xd9);
    const core::TrainResult result = gts.train();
    table.row({v.name, to_eth_string(result.best_balance),
               result.found_profit ? "yes" : "no",
               result.first_candidate_episode.empty()
                   ? "-"
                   : std::to_string(result.first_candidate_episode.front())});
  }
  table.print();
  std::printf("\n");
}

void ablation_defense(std::uint64_t seed) {
  TablePrinter table("Ablation D: Sec. VIII defense, campaign scale");
  table.columns({"configuration", "total profit (uETH)", "reordered batches",
                 "screened txs"});
  for (bool defended : {false, true}) {
    core::CampaignConfig config;
    config.num_aggregators = 5;
    config.adversarial_fraction = 0.2;
    config.mempool_size = 10;
    config.num_ifus = 1;
    config.rounds = static_cast<std::size_t>(scaled(30, 10));
    config.workload.num_users = 16;
    config.workload.max_supply = 40;
    config.workload.premint = 12;
    config.seed = seed;
    config.defended = defended;
    config.defense.search = core::ReordererKind::kHillClimb;
    config.defense.threshold_floor = eth(0, 20);  // 0.02 ETH
    config.defense.threshold_fee_multiplier = 0.0;

    const core::CampaignResult result = core::AttackCampaign(config).run();
    table.row({defended ? "defended" : "undefended",
               TablePrinter::num(
                   static_cast<double>(result.total_profit) / 1'000.0, 1),
               std::to_string(result.reordered_batches),
               std::to_string(result.screened_txs)});
  }
  table.print();
}

void ablation_detection(std::uint64_t seed) {
  TablePrinter table(
      "Ablation F: post-hoc forensics (detection of shipped PAROLE batches)");
  table.columns({"adversarial %", "reordered batches", "flagged by audit",
                 "mean suspicion"});
  for (double fraction : {0.2, 0.4}) {
    core::CampaignConfig config;
    config.num_aggregators = 5;
    config.adversarial_fraction = fraction;
    config.mempool_size = 10;
    config.num_ifus = 1;
    config.rounds = static_cast<std::size_t>(scaled(30, 10));
    config.workload.num_users = 16;
    config.workload.max_supply = 40;
    config.workload.premint = 12;
    config.seed = seed ^ 0xf0;
    config.audit = true;
    const core::CampaignResult result = core::AttackCampaign(config).run();
    double mean_suspicion = 0.0;
    for (double s : result.suspicion_scores) mean_suspicion += s;
    if (!result.suspicion_scores.empty()) {
      mean_suspicion /= static_cast<double>(result.suspicion_scores.size());
    }
    table.row({TablePrinter::num(fraction * 100, 0),
               std::to_string(result.reordered_batches),
               std::to_string(result.flagged_batches),
               TablePrinter::num(mean_suspicion, 3)});
  }
  table.print();
  std::printf(
      "a PAROLE batch is honest to the fraud-proof machinery but visibly "
      "deviates from fee-priority order toward one beneficiary; the audit "
      "flags what the verifiers cannot.\n");
}

}  // namespace

int main() {
  const std::uint64_t seed = experiment_seed(0xab1a7eULL);
  std::printf("Design-choice ablations (%.0f%% bench scale)\n\n",
              bench_scale() * 100);
  ablation_reward_weight(seed);
  ablation_objective(seed);
  ablation_validity(seed);
  ablation_dqn_variants(seed);
  ablation_defense(seed);
  ablation_detection(seed);
  return 0;
}
