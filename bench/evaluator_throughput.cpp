// Evaluator throughput: full batch re-execution vs the incremental
// prefix-state checkpoint cache (DESIGN.md §7).
//
// For each batch size N and move kind, the same seed drives the same probe
// sequence through both paths — evaluate_full() (deep state copy +
// materialize + execute all N) and evaluate_swap() (checkpoint restore +
// suffix re-execution + reconvergence shortcut) — with the same deterministic
// accept rule, and every returned value is cross-checked for bit-identical
// results before the rates are reported.
//
//   swap-local    j = i + 1: the adjacent-transposition neighbourhood local
//                 search spends most of its probes in.
//   swap-uniform  i, j uniform: worst case for the cache (expected
//                 divergence point ~N/3).
//
// Prints the table + CSV like every other harness bench and writes
// BENCH_evaluator.json — RunReport JSONL (DESIGN.md §8), one "result" line
// per (n, move) cell with the historical key names. PAROLE_BENCH_SCALE scales
// the probe count; PAROLE_SEED overrides the seed.
//
// Each cell is timed PAROLE_BENCH_REPS times (default 5) and the median
// wall-clock per path is reported. Single-shot timings on shared runners
// swing ±40% and min-of-R over-rewards warm caches on the microsecond-scale
// cells; the median is the stable estimator the CI regression gate
// (bench_regress) can hold a checked-in baseline against.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "parole/common/env.hpp"
#include "parole/common/table.hpp"
#include "parole/data/workload.hpp"
#include "parole/obs/report.hpp"
#include "parole/obs/sampler.hpp"
#include "parole/solvers/instrument.hpp"
#include "parole/solvers/portfolio.hpp"
#include "parole/solvers/problem.hpp"

using namespace parole;

namespace {

solvers::ReorderingProblem make_instance(std::size_t n, std::uint64_t seed) {
  data::WorkloadConfig config;
  config.num_users = 24;
  config.max_supply = static_cast<std::uint32_t>(n + 40);
  config.premint = 24;
  data::WorkloadGenerator generator(config, seed);
  const vm::L2State genesis = generator.initial_state();
  auto txs = generator.generate(n);
  return solvers::ReorderingProblem(genesis, std::move(txs),
                                    generator.pick_ifus(1));
}

enum class MoveKind { kLocal, kUniform };

struct ProbeSeq {
  std::vector<std::pair<std::size_t, std::size_t>> swaps;
};

ProbeSeq make_probes(std::size_t n, std::size_t count, MoveKind kind,
                     std::uint64_t seed) {
  Rng rng(seed);
  ProbeSeq seq;
  seq.swaps.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    if (kind == MoveKind::kLocal) {
      const std::size_t i = rng.index(n - 1);
      seq.swaps.emplace_back(i, i + 1);
    } else {
      const std::size_t i = rng.index(n);
      std::size_t j = rng.index(n);
      if (i == j) j = (j + 1) % n;
      seq.swaps.emplace_back(std::min(i, j), std::max(i, j));
    }
  }
  return seq;
}

struct PathResult {
  std::vector<std::optional<Amount>> values;  // from the first pass
  double millis{0.0};                         // per pass
};

// Full-re-execution path: greedy walk applying each improving probe. The
// walk is repeated `passes` times inside one timer window (each pass resets
// to the identity order, so every pass does identical work) and the
// per-pass time is reported.
PathResult run_full(const solvers::ReorderingProblem& problem,
                    const ProbeSeq& seq, std::size_t passes) {
  const std::size_t n = problem.size();
  std::vector<std::size_t> order(n);
  std::vector<std::size_t> probed(n);

  PathResult out;
  out.values.reserve(seq.swaps.size());
  solvers::Timer timer;
  for (std::size_t pass = 0; pass < passes; ++pass) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    Amount current = problem.baseline();
    for (const auto& [i, j] : seq.swaps) {
      probed = order;
      std::swap(probed[i], probed[j]);
      const auto value = problem.evaluate_full(probed);
      if (pass == 0) out.values.push_back(value);
      if (value && *value > current) {
        order.swap(probed);
        current = *value;
      }
    }
  }
  out.millis = timer.elapsed_millis() / static_cast<double>(passes);
  return out;
}

// Incremental path: identical walk through the checkpoint cache.
PathResult run_incremental(const solvers::ReorderingProblem& problem,
                           const ProbeSeq& seq, std::size_t passes) {
  std::vector<std::size_t> identity(problem.size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;

  PathResult out;
  out.values.reserve(seq.swaps.size());
  solvers::Timer timer;
  for (std::size_t pass = 0; pass < passes; ++pass) {
    problem.commit_order(identity);
    Amount current = problem.baseline();
    for (const auto& [i, j] : seq.swaps) {
      const auto value = problem.evaluate_swap(i, j);
      if (pass == 0) out.values.push_back(value);
      if (value && *value > current) {
        problem.commit();
        current = *value;
      } else {
        problem.revert();
      }
    }
  }
  out.millis = timer.elapsed_millis() / static_cast<double>(passes);
  return out;
}

// A 3.5µs timing window cannot be measured against scheduler noise; repeat
// the walk until one window is ~2ms (capped so a pathological sample cannot
// stall the bench).
std::size_t calibrate_passes(double sample_millis) {
  constexpr double kTargetMillis = 2.0;
  constexpr std::size_t kMaxPasses = 4096;
  if (sample_millis >= kTargetMillis) return 1;
  const double needed = kTargetMillis / std::max(sample_millis, 1e-6);
  return std::min(kMaxPasses,
                  static_cast<std::size_t>(needed) + 1);
}

struct Row {
  std::size_t n{0};
  const char* move{""};
  std::size_t probes{0};
  double full_eps{0.0};
  double inc_eps{0.0};
  double speedup{0.0};
  bool identical{false};
  solvers::EvalStats stats;
};

double evals_per_sec(std::size_t probes, double millis) {
  return millis <= 0.0 ? 0.0
                       : static_cast<double>(probes) / (millis / 1000.0);
}

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  return samples.size() % 2 == 1
             ? samples[mid]
             : (samples[mid - 1] + samples[mid]) / 2.0;
}

}  // namespace

int main() {
  const std::uint64_t seed = experiment_seed(20240917);
  const auto probes = static_cast<std::size_t>(scaled(2000, 100));
  const auto reps =
      static_cast<std::size_t>(std::max<std::int64_t>(
          1, env_int("PAROLE_BENCH_REPS", 5)));

  std::vector<Row> rows;
  for (const std::size_t n : {std::size_t{16}, std::size_t{64},
                              std::size_t{256}, std::size_t{1024}}) {
    // The full path is O(probes * n); a quarter of the probe budget keeps
    // the n=1024 cells inside the bench time box without starving the
    // incremental path of samples.
    const std::size_t cell_probes =
        n >= 1024 ? std::max<std::size_t>(50, probes / 4) : probes;
    for (const MoveKind kind : {MoveKind::kLocal, MoveKind::kUniform}) {
      const solvers::ReorderingProblem problem = make_instance(n, seed + n);
      const ProbeSeq seq = make_probes(
          n, cell_probes, kind, seed ^ (n * 31 + (kind == MoveKind::kLocal)));

      // Calibration pass: sizes the timing windows and provides the
      // cross-check values + single-walk eval stats.
      const PathResult full_probe = run_full(problem, seq, 1);
      const solvers::EvalStats before = problem.eval_stats();
      const PathResult inc_probe = run_incremental(problem, seq, 1);
      const solvers::EvalStats stats = problem.eval_stats() - before;
      bool identical = full_probe.values == inc_probe.values;
      const std::size_t full_passes = calibrate_passes(full_probe.millis);
      const std::size_t inc_passes = calibrate_passes(inc_probe.millis);

      // Median-of-R wall clock per path, each sample a calibrated window.
      std::vector<double> full_samples;
      std::vector<double> inc_samples;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const PathResult full = run_full(problem, seq, full_passes);
        const PathResult inc = run_incremental(problem, seq, inc_passes);
        identical = identical && full.values == inc.values;
        full_samples.push_back(full.millis);
        inc_samples.push_back(inc.millis);
      }
      const double full_millis = median(std::move(full_samples));
      const double inc_millis = median(std::move(inc_samples));

      Row row;
      row.n = n;
      row.move = kind == MoveKind::kLocal ? "swap-local" : "swap-uniform";
      row.probes = cell_probes;
      row.full_eps = evals_per_sec(probes, full_millis);
      row.inc_eps = evals_per_sec(probes, inc_millis);
      row.speedup = full_millis <= 0.0 ? 0.0 : full_millis / inc_millis;
      row.identical = identical;
      row.stats = stats;
      rows.push_back(row);

      if (!row.identical) {
        std::fprintf(stderr,
                     "MISMATCH: incremental != full at n=%zu move=%s\n", n,
                     row.move);
        return 1;
      }
    }
  }

  // --- sampler-armed parity (DESIGN.md §13) --------------------------------
  // Arming the live MetricsSampler must not perturb the workload: the
  // sampler reads registry snapshots under its own lock and never touches
  // hot-path atomics. Re-time the n=256 swap-uniform incremental walk with a
  // fast-ticking sampler armed, interleaved rep by rep with the unarmed
  // walk so machine drift hits both sides equally. CI gates the ratio at
  // ±5% (--rule parity:0.95:1.05:sampler-armed) and the returned values
  // must stay bit-identical — a sampler that changes results is a bug
  // before it is a slowdown.
  constexpr std::size_t kParityN = 256;
  const solvers::ReorderingProblem parity_problem =
      make_instance(kParityN, seed + kParityN);
  const ProbeSeq parity_seq =
      make_probes(kParityN, probes, MoveKind::kUniform, seed ^ (kParityN * 31));
  const PathResult parity_probe = run_incremental(parity_problem, parity_seq, 1);
  const std::size_t parity_passes = calibrate_passes(parity_probe.millis);
  std::vector<double> unarmed_samples;
  std::vector<double> armed_samples;
  bool parity_identical = true;
  {
    obs::SamplerConfig sampler_config;
    sampler_config.interval_ms = 20;  // ~12x the default scrape cadence
    obs::MetricsSampler sampler(sampler_config);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const PathResult unarmed =
          run_incremental(parity_problem, parity_seq, parity_passes);
      sampler.start();
      const PathResult armed =
          run_incremental(parity_problem, parity_seq, parity_passes);
      sampler.stop();
      parity_identical = parity_identical &&
                         unarmed.values == parity_probe.values &&
                         armed.values == parity_probe.values;
      unarmed_samples.push_back(unarmed.millis);
      armed_samples.push_back(armed.millis);
    }
  }
  const double unarmed_millis = median(std::move(unarmed_samples));
  const double armed_millis = median(std::move(armed_samples));
  const double parity =
      armed_millis <= 0.0 ? 0.0 : unarmed_millis / armed_millis;
  if (!parity_identical) {
    std::fprintf(stderr, "MISMATCH: sampler-armed results differ at n=%zu\n",
                 kParityN);
    return 1;
  }

  // --- portfolio thread-scaling (DESIGN.md §12) -----------------------------------
  // 8 logical workers (two diversified replicas of each roster member) on
  // T OS threads at n=256. Deterministic mode makes the result invariant in
  // T, so every cell races identical work and `speedup` is the pure
  // wall-clock ratio wall(t1)/wall(tT): ~1.0 on a single core, rising toward
  // the worker-level parallelism on multicore runners. The invariance is
  // cross-checked like the evaluator's bit-identity.
  struct PortfolioRow {
    std::size_t threads{0};
    double wall_millis{0.0};
    double speedup{0.0};
    Amount best_value{0};
    std::uint64_t evaluations{0};
  };
  constexpr std::size_t kPortfolioN = 256;
  const solvers::ReorderingProblem portfolio_problem =
      make_instance(kPortfolioN, seed + kPortfolioN);
  solvers::PortfolioConfig portfolio_config;
  portfolio_config.workers = 8;
  portfolio_config.hill_climb = {/*max_iterations=*/4, /*restarts=*/0};
  portfolio_config.annealing.iteration_factor = 0.25;
  portfolio_config.tabu.max_iterations = 6;
  portfolio_config.random_search.samples = 48;

  std::vector<PortfolioRow> portfolio_rows;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    portfolio_config.threads = threads;
    solvers::PortfolioSolver solver(portfolio_config);
    std::vector<double> samples;
    solvers::SolveResult solved;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      solved = solver.run(portfolio_problem, seed);
      samples.push_back(solved.wall_millis);
    }
    PortfolioRow row;
    row.threads = threads;
    row.wall_millis = median(std::move(samples));
    row.best_value = solved.best_value;
    row.evaluations = solved.evaluations;
    portfolio_rows.push_back(row);

    if (row.best_value != portfolio_rows.front().best_value ||
        row.evaluations != portfolio_rows.front().evaluations) {
      std::fprintf(stderr,
                   "MISMATCH: portfolio result changed with threads=%zu\n",
                   threads);
      return 1;
    }
  }
  for (PortfolioRow& row : portfolio_rows) {
    row.speedup = row.wall_millis <= 0.0
                      ? 0.0
                      : portfolio_rows.front().wall_millis / row.wall_millis;
  }

  TablePrinter table("Evaluator throughput: full vs incremental");
  table.columns({"n", "move", "probes", "full evals/s", "incr evals/s",
                 "speedup", "cache hits", "reconv", "txs saved"});
  for (const Row& row : rows) {
    table.row({TablePrinter::integer(static_cast<long long>(row.n)),
               row.move,
               TablePrinter::integer(static_cast<long long>(row.probes)),
               TablePrinter::num(row.full_eps, 0),
               TablePrinter::num(row.inc_eps, 0),
               TablePrinter::num(row.speedup, 2),
               TablePrinter::integer(
                   static_cast<long long>(row.stats.cache_hits)),
               TablePrinter::integer(
                   static_cast<long long>(row.stats.reconvergences)),
               TablePrinter::integer(
                   static_cast<long long>(row.stats.txs_saved))});
  }
  table.print();

  TablePrinter parity_table("Sampler overhead parity at n=256 swap-uniform");
  parity_table.columns({"unarmed ms", "armed ms", "parity", "identical"});
  parity_table.row({TablePrinter::num(unarmed_millis, 3),
                    TablePrinter::num(armed_millis, 3),
                    TablePrinter::num(parity, 3),
                    parity_identical ? "yes" : "NO"});
  parity_table.print();

  TablePrinter scaling("Portfolio scaling: 8 workers at n=256");
  scaling.columns({"threads", "wall ms", "speedup", "evaluations"});
  for (const PortfolioRow& row : portfolio_rows) {
    scaling.row({TablePrinter::integer(static_cast<long long>(row.threads)),
                 TablePrinter::num(row.wall_millis, 2),
                 TablePrinter::num(row.speedup, 2),
                 TablePrinter::integer(
                     static_cast<long long>(row.evaluations))});
  }
  scaling.print();

  obs::RunReport report("evaluator_throughput");
  report.set_meta("bench", obs::JsonValue("evaluator_throughput"));
  report.set_meta("scale", obs::JsonValue(bench_scale()));
  report.set_meta("reps", obs::JsonValue(static_cast<std::uint64_t>(reps)));
  report.set_meta("seed", obs::JsonValue(seed));
  for (const Row& row : rows) {
    obs::JsonObject result;
    result["n"] = obs::JsonValue(static_cast<std::uint64_t>(row.n));
    result["move"] = obs::JsonValue(row.move);
    result["probes"] = obs::JsonValue(static_cast<std::uint64_t>(row.probes));
    result["full_evals_per_sec"] = obs::JsonValue(row.full_eps);
    result["incremental_evals_per_sec"] = obs::JsonValue(row.inc_eps);
    result["speedup"] = obs::JsonValue(row.speedup);
    result["identical"] = obs::JsonValue(row.identical);
    result["cache_hits"] = obs::JsonValue(row.stats.cache_hits);
    result["reconvergences"] = obs::JsonValue(row.stats.reconvergences);
    result["txs_executed"] = obs::JsonValue(row.stats.txs_executed);
    result["txs_saved"] = obs::JsonValue(row.stats.txs_saved);
    report.add_result(std::move(result));
  }
  {
    // The sampler-armed row carries `parity` for the ±5% two-sided band and
    // mirrors it into `speedup` so the default one-sided gate (min_ratio
    // 0.85) holds the same row without a special case.
    obs::JsonObject result;
    result["n"] = obs::JsonValue(static_cast<std::uint64_t>(kParityN));
    result["move"] = obs::JsonValue("sampler-armed");
    result["probes"] = obs::JsonValue(static_cast<std::uint64_t>(probes));
    result["unarmed_millis"] = obs::JsonValue(unarmed_millis);
    result["armed_millis"] = obs::JsonValue(armed_millis);
    result["parity"] = obs::JsonValue(parity);
    result["speedup"] = obs::JsonValue(parity);
    result["identical"] = obs::JsonValue(parity_identical);
    report.add_result(std::move(result));
  }
  for (const PortfolioRow& row : portfolio_rows) {
    obs::JsonObject result;
    result["n"] = obs::JsonValue(static_cast<std::uint64_t>(kPortfolioN));
    result["move"] =
        obs::JsonValue("portfolio-t" + std::to_string(row.threads));
    result["threads"] =
        obs::JsonValue(static_cast<std::uint64_t>(row.threads));
    result["workers"] = obs::JsonValue(
        static_cast<std::uint64_t>(portfolio_config.workers));
    result["wall_millis"] = obs::JsonValue(row.wall_millis);
    result["speedup"] = obs::JsonValue(row.speedup);
    result["best_value"] =
        obs::JsonValue(static_cast<double>(row.best_value));
    result["evaluations"] = obs::JsonValue(row.evaluations);
    result["identical"] = obs::JsonValue(true);
    report.add_result(std::move(result));
  }
  report.capture_metrics();
  const Status written = report.write("BENCH_evaluator.json");
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write BENCH_evaluator.json: %s\n",
                 written.error().detail.c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_evaluator.json (%zu JSONL lines)\n",
              report.line_count());
  return 0;
}
