// Evaluator throughput: full batch re-execution vs the incremental
// prefix-state checkpoint cache (DESIGN.md §7).
//
// For each batch size N and move kind, the same seed drives the same probe
// sequence through both paths — evaluate_full() (deep state copy +
// materialize + execute all N) and evaluate_swap() (checkpoint restore +
// suffix re-execution + reconvergence shortcut) — with the same deterministic
// accept rule, and every returned value is cross-checked for bit-identical
// results before the rates are reported.
//
//   swap-local    j = i + 1: the adjacent-transposition neighbourhood local
//                 search spends most of its probes in.
//   swap-uniform  i, j uniform: worst case for the cache (expected
//                 divergence point ~N/3).
//
// Prints the table + CSV like every other harness bench and writes
// BENCH_evaluator.json — RunReport JSONL (DESIGN.md §8), one "result" line
// per (n, move) cell with the historical key names. PAROLE_BENCH_SCALE scales
// the probe count; PAROLE_SEED overrides the seed.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "parole/common/env.hpp"
#include "parole/common/table.hpp"
#include "parole/data/workload.hpp"
#include "parole/obs/report.hpp"
#include "parole/solvers/instrument.hpp"
#include "parole/solvers/problem.hpp"

using namespace parole;

namespace {

solvers::ReorderingProblem make_instance(std::size_t n, std::uint64_t seed) {
  data::WorkloadConfig config;
  config.num_users = 24;
  config.max_supply = static_cast<std::uint32_t>(n + 40);
  config.premint = 24;
  data::WorkloadGenerator generator(config, seed);
  const vm::L2State genesis = generator.initial_state();
  auto txs = generator.generate(n);
  return solvers::ReorderingProblem(genesis, std::move(txs),
                                    generator.pick_ifus(1));
}

enum class MoveKind { kLocal, kUniform };

struct ProbeSeq {
  std::vector<std::pair<std::size_t, std::size_t>> swaps;
};

ProbeSeq make_probes(std::size_t n, std::size_t count, MoveKind kind,
                     std::uint64_t seed) {
  Rng rng(seed);
  ProbeSeq seq;
  seq.swaps.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    if (kind == MoveKind::kLocal) {
      const std::size_t i = rng.index(n - 1);
      seq.swaps.emplace_back(i, i + 1);
    } else {
      const std::size_t i = rng.index(n);
      std::size_t j = rng.index(n);
      if (i == j) j = (j + 1) % n;
      seq.swaps.emplace_back(std::min(i, j), std::max(i, j));
    }
  }
  return seq;
}

struct PathResult {
  std::vector<std::optional<Amount>> values;
  double millis{0.0};
};

// Full-re-execution path: greedy walk applying each improving probe.
PathResult run_full(const solvers::ReorderingProblem& problem,
                    const ProbeSeq& seq) {
  const std::size_t n = problem.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<std::size_t> probed(n);
  Amount current = problem.baseline();

  PathResult out;
  out.values.reserve(seq.swaps.size());
  solvers::Timer timer;
  for (const auto& [i, j] : seq.swaps) {
    probed = order;
    std::swap(probed[i], probed[j]);
    const auto value = problem.evaluate_full(probed);
    out.values.push_back(value);
    if (value && *value > current) {
      order.swap(probed);
      current = *value;
    }
  }
  out.millis = timer.elapsed_millis();
  return out;
}

// Incremental path: identical walk through the checkpoint cache.
PathResult run_incremental(const solvers::ReorderingProblem& problem,
                           const ProbeSeq& seq) {
  std::vector<std::size_t> identity(problem.size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  problem.commit_order(identity);
  Amount current = problem.baseline();

  PathResult out;
  out.values.reserve(seq.swaps.size());
  solvers::Timer timer;
  for (const auto& [i, j] : seq.swaps) {
    const auto value = problem.evaluate_swap(i, j);
    out.values.push_back(value);
    if (value && *value > current) {
      problem.commit();
      current = *value;
    } else {
      problem.revert();
    }
  }
  out.millis = timer.elapsed_millis();
  return out;
}

struct Row {
  std::size_t n{0};
  const char* move{""};
  std::size_t probes{0};
  double full_eps{0.0};
  double inc_eps{0.0};
  double speedup{0.0};
  bool identical{false};
  solvers::EvalStats stats;
};

double evals_per_sec(std::size_t probes, double millis) {
  return millis <= 0.0 ? 0.0
                       : static_cast<double>(probes) / (millis / 1000.0);
}

}  // namespace

int main() {
  const std::uint64_t seed = experiment_seed(20240917);
  const auto probes = static_cast<std::size_t>(scaled(2000, 100));

  std::vector<Row> rows;
  for (const std::size_t n : {std::size_t{16}, std::size_t{64},
                              std::size_t{256}}) {
    for (const MoveKind kind : {MoveKind::kLocal, MoveKind::kUniform}) {
      const solvers::ReorderingProblem problem = make_instance(n, seed + n);
      const ProbeSeq seq = make_probes(
          n, probes, kind, seed ^ (n * 31 + (kind == MoveKind::kLocal)));

      const PathResult full = run_full(problem, seq);
      const solvers::EvalStats before = problem.eval_stats();
      const PathResult inc = run_incremental(problem, seq);
      const solvers::EvalStats stats = problem.eval_stats() - before;

      Row row;
      row.n = n;
      row.move = kind == MoveKind::kLocal ? "swap-local" : "swap-uniform";
      row.probes = probes;
      row.full_eps = evals_per_sec(probes, full.millis);
      row.inc_eps = evals_per_sec(probes, inc.millis);
      row.speedup = full.millis <= 0.0 ? 0.0 : full.millis / inc.millis;
      row.identical = full.values == inc.values;
      row.stats = stats;
      rows.push_back(row);

      if (!row.identical) {
        std::fprintf(stderr,
                     "MISMATCH: incremental != full at n=%zu move=%s\n", n,
                     row.move);
        return 1;
      }
    }
  }

  TablePrinter table("Evaluator throughput: full vs incremental");
  table.columns({"n", "move", "probes", "full evals/s", "incr evals/s",
                 "speedup", "cache hits", "reconv", "txs saved"});
  for (const Row& row : rows) {
    table.row({TablePrinter::integer(static_cast<long long>(row.n)),
               row.move,
               TablePrinter::integer(static_cast<long long>(row.probes)),
               TablePrinter::num(row.full_eps, 0),
               TablePrinter::num(row.inc_eps, 0),
               TablePrinter::num(row.speedup, 2),
               TablePrinter::integer(
                   static_cast<long long>(row.stats.cache_hits)),
               TablePrinter::integer(
                   static_cast<long long>(row.stats.reconvergences)),
               TablePrinter::integer(
                   static_cast<long long>(row.stats.txs_saved))});
  }
  table.print();

  obs::RunReport report("evaluator_throughput");
  report.set_meta("bench", obs::JsonValue("evaluator_throughput"));
  report.set_meta("scale", obs::JsonValue(bench_scale()));
  report.set_meta("seed", obs::JsonValue(seed));
  for (const Row& row : rows) {
    obs::JsonObject result;
    result["n"] = obs::JsonValue(static_cast<std::uint64_t>(row.n));
    result["move"] = obs::JsonValue(row.move);
    result["probes"] = obs::JsonValue(static_cast<std::uint64_t>(row.probes));
    result["full_evals_per_sec"] = obs::JsonValue(row.full_eps);
    result["incremental_evals_per_sec"] = obs::JsonValue(row.inc_eps);
    result["speedup"] = obs::JsonValue(row.speedup);
    result["identical"] = obs::JsonValue(row.identical);
    result["cache_hits"] = obs::JsonValue(row.stats.cache_hits);
    result["reconvergences"] = obs::JsonValue(row.stats.reconvergences);
    result["txs_executed"] = obs::JsonValue(row.stats.txs_executed);
    result["txs_saved"] = obs::JsonValue(row.stats.txs_saved);
    report.add_result(std::move(result));
  }
  report.capture_metrics();
  const Status written = report.write("BENCH_evaluator.json");
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write BENCH_evaluator.json: %s\n",
                 written.error().detail.c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_evaluator.json (%zu JSONL lines)\n",
              report.line_count());
  return 0;
}
