// Fig. 10 — real-world monetary impact estimated from NFT snapshots.
//
// The paper buckets NFT collections deployed via Optimism/Arbitrum into
// transaction-frequency bands — LFT (<100 ownerships), MFT (101-3000),
// HFT (>3000) — and estimates the PAROLE profit opportunity per band via the
// capture relation derived from the simulation experiments. We regenerate
// the analysis over the synthetic snapshot corpus (see DESIGN.md
// substitutions); the shape to reproduce: Arbitrum > Optimism per band, and
// more active bands carry more aggregate opportunity.
#include <cstdio>

#include "parole/common/env.hpp"
#include "parole/common/table.hpp"
#include "parole/data/scanner.hpp"
#include "parole/data/snapshot.hpp"

using namespace parole;
using data::FtBand;
using data::RollupChain;

int main() {
  const std::uint64_t seed = experiment_seed(0xf1a0ULL);
  const auto per_cell = static_cast<std::size_t>(scaled(12, 4));

  data::SnapshotGenerator generator({}, seed);
  const auto corpus = generator.generate_corpus(per_cell);

  data::SnapshotScanner scanner;
  const auto cells = scanner.summarize(corpus);

  std::printf(
      "Fig. 10: arbitrage opportunity in rollup NFT snapshots (%zu "
      "collections per cell, %.0f%% bench scale)\n\n",
      per_cell, bench_scale() * 100);

  TablePrinter table("Fig. 10: profit opportunity by chain and FT band");
  table.columns({"chain", "FT band", "collections", "total profit (ETH)",
                 "mean/collection (ETH)", "opportunity rate"});
  for (const auto& cell : cells) {
    table.row({std::string(data::to_string(cell.chain)),
               std::string(data::to_string(cell.band)),
               std::to_string(cell.collections),
               TablePrinter::num(to_eth_double(cell.total_profit), 2),
               TablePrinter::num(cell.mean_profit_per_collection / 1e9, 3),
               TablePrinter::num(cell.opportunity_rate, 3)});
  }
  table.print();

  auto total_for = [&](RollupChain chain) {
    double total = 0;
    for (const auto& cell : cells) {
      if (cell.chain == chain) total += to_eth_double(cell.total_profit);
    }
    return total;
  };
  std::printf(
      "chain totals: Optimism %.2f ETH, Arbitrum %.2f ETH (paper: higher "
      "arbitrage opportunity on Arbitrum)\n",
      total_for(RollupChain::kOptimism), total_for(RollupChain::kArbitrum));
  return 0;
}
