// Fig. 11 — DQN inference vs non-linear solvers on the re-ordering problem:
// (a) execution time, (b) memory usage, as the mempool size N grows.
//
// Baselines are the from-scratch stand-ins documented in DESIGN.md:
//   BnB-APOPT        branch-and-bound (APOPT: branching/active-set)
//   Annealing-MINOS  simulated annealing with an in-core history (MINOS)
//   HillClimb-SQP    best-improvement swap descent (SNOPT: SQP steps)
// plus exhaustive search at N = 5 as ground truth. The DQN trains offline
// (the paper: "the IFU trains the model offline"), so Fig. 11 times the
// *inference* rollout; its memory is the network + activations, independent
// of the search history the NLP solvers accumulate.
//
// Shape to reproduce: the heuristic/NLP solvers' time grows super-linearly
// with N (SNOPT competitive at N=5, degrading after), the DQN near-linearly;
// DQN memory stays ~flat while solver memory grows.
#include <cstdio>

#include "parole/common/env.hpp"
#include "parole/common/table.hpp"
#include "parole/core/gentranseq.hpp"
#include "parole/data/workload.hpp"
#include "parole/solvers/annealing.hpp"
#include "parole/solvers/branch_bound.hpp"
#include "parole/solvers/exhaustive.hpp"
#include "parole/solvers/hill_climb.hpp"
#include "parole/solvers/instrument.hpp"

using namespace parole;

namespace {

solvers::ReorderingProblem make_instance(std::size_t n, std::uint64_t seed) {
  data::WorkloadConfig config;
  config.num_users = 24;
  config.max_supply = 80;
  config.premint = 24;
  data::WorkloadGenerator generator(config, seed);
  const vm::L2State genesis = generator.initial_state();
  auto txs = generator.generate(n);
  return solvers::ReorderingProblem(genesis, std::move(txs),
                                    generator.pick_ifus(1));
}

struct Measurement {
  double millis{0.0};
  double kilobytes{0.0};
  Amount profit{0};
  bool ran{false};
};

Measurement measure_solver(solvers::Solver& solver,
                           const solvers::ReorderingProblem& problem,
                           Rng& rng) {
  const solvers::SolveResult result = solver.solve(problem, rng);
  Measurement m;
  m.millis = result.wall_millis;
  m.kilobytes = static_cast<double>(result.peak_bytes) / 1024.0;
  m.profit = result.profit();
  m.ran = true;
  return m;
}

Measurement measure_dqn(const solvers::ReorderingProblem& problem,
                        std::uint64_t seed) {
  core::GenTranSeqConfig config;
  config.dqn.hidden = {96, 96};
  config.dqn.episodes = static_cast<std::size_t>(scaled(40, 8));
  config.dqn.steps_per_episode = static_cast<std::size_t>(scaled(100, 25));
  config.dqn.minibatch = 24;
  core::GenTranSeq gts(problem, config, seed);
  (void)gts.train();  // offline training, not timed

  solvers::Timer timer;
  const core::InferenceResult inferred = gts.infer();
  Measurement m;
  m.millis = timer.elapsed_millis();
  // Inference working set: Q-network parameters + one activation set +
  // the encoded state, all doubles.
  const std::size_t params = gts.agent().q_network().parameter_count();
  const std::size_t activations =
      gts.env().state_dim() + 2 * 96 + gts.env().action_count();
  m.kilobytes =
      static_cast<double>((params + activations) * sizeof(double)) / 1024.0;
  m.profit = inferred.balance - inferred.baseline;
  m.ran = true;
  return m;
}

}  // namespace

int main() {
  const std::uint64_t seed = experiment_seed(0xf1b0ULL);
  const std::size_t sizes[] = {5, 10, 25, 50, 75, 100};

  TablePrinter time_table("Fig. 11(a): execution time (ms) vs mempool size");
  time_table.columns({"N", "DQN-inference", "BnB-APOPT", "Annealing-MINOS",
                      "HillClimb-SQP", "Exhaustive"});
  TablePrinter mem_table("Fig. 11(b): memory usage (KiB) vs mempool size");
  mem_table.columns({"N", "DQN-inference", "BnB-APOPT", "Annealing-MINOS",
                     "HillClimb-SQP", "Exhaustive"});

  for (std::size_t n : sizes) {
    const auto problem = make_instance(n, seed + n);
    Rng rng(seed ^ n);

    solvers::BranchBoundConfig bnb_config;
    bnb_config.node_budget = static_cast<std::size_t>(scaled(400'000, 50'000));
    solvers::BranchBoundSolver bnb(bnb_config);

    solvers::AnnealingConfig anneal_config;
    anneal_config.iteration_factor = bench_scale() * 4.0;
    solvers::AnnealingSolver anneal(anneal_config);

    solvers::HillClimbConfig hill_config;
    hill_config.max_iterations = static_cast<std::size_t>(scaled(20, 3));
    hill_config.restarts = 0;
    solvers::HillClimbSolver hill(hill_config);

    const Measurement dqn = measure_dqn(problem, seed + 31 * n);
    const Measurement m_bnb = measure_solver(bnb, problem, rng);
    const Measurement m_anneal = measure_solver(anneal, problem, rng);
    const Measurement m_hill = measure_solver(hill, problem, rng);
    Measurement m_exhaustive;
    if (n <= 5) {
      solvers::ExhaustiveSolver exhaustive;
      m_exhaustive = measure_solver(exhaustive, problem, rng);
    }

    auto cell_ms = [](const Measurement& m) {
      return m.ran ? TablePrinter::num(m.millis, 2) : std::string("-");
    };
    auto cell_kb = [](const Measurement& m) {
      return m.ran ? TablePrinter::num(m.kilobytes, 1) : std::string("-");
    };
    time_table.row({std::to_string(n), cell_ms(dqn), cell_ms(m_bnb),
                    cell_ms(m_anneal), cell_ms(m_hill),
                    cell_ms(m_exhaustive)});
    mem_table.row({std::to_string(n), cell_kb(dqn), cell_kb(m_bnb),
                   cell_kb(m_anneal), cell_kb(m_hill),
                   cell_kb(m_exhaustive)});
  }

  std::printf("Fig. 11 (%.0f%% bench scale; DQN trains offline, inference "
              "timed)\n\n",
              bench_scale() * 100);
  time_table.print();
  std::printf("\n");
  mem_table.print();
  std::printf(
      "\nexpected shape: solver time grows super-linearly with N (SQP "
      "competitive only at N=5), DQN inference near-linear; DQN memory "
      "~flat, solver bookkeeping grows.\nprocess RSS cross-check: %.1f "
      "MiB\n",
      static_cast<double>(solvers::process_rss_bytes()) / (1024.0 * 1024.0));
  return 0;
}
