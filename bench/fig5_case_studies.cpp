// Fig. 5 — the three Sec. VI case studies, regenerated row by row.
//
// Prints the per-transaction price and IFU-balance tables for (a) the
// original order, (b) the candidate improved order, (c) the optimized order,
// plus two reproduction findings: the literal printed orders of 5(b)/(c)
// violate Eq. 3, and the instance's true optimum beats the paper's Case 3.
#include <cstdio>

#include "parole/common/table.hpp"
#include "parole/data/case_study.hpp"
#include "parole/solvers/exhaustive.hpp"

using namespace parole;
namespace cs = data::case_study;

namespace {

void print_case(const char* title, const std::vector<std::size_t>& order) {
  vm::L2State state = cs::initial_state();
  const auto txs = cs::original_txs();
  const vm::ExecutionEngine engine(
      {vm::InvalidTxPolicy::kStrict, false, {}});

  TablePrinter table(title);
  table.columns({"TX", "Description", "PT Price (1 unit)",
                 "IFU L2 balance", "PTs owned", "IFU Total Balance"});
  for (std::size_t idx : order) {
    const vm::Receipt receipt = engine.execute_tx(state, txs[idx]);
    if (receipt.status != vm::TxStatus::kExecuted) {
      std::fprintf(stderr, "tx %zu failed: %s\n", idx + 1,
                   receipt.failure_reason.c_str());
      return;
    }
    table.row({"TX" + std::to_string(idx + 1), txs[idx].describe(),
               to_eth_string(state.nft().current_price()) + " ETH",
               to_eth_string(state.ledger().balance(cs::kIfu)) + " ETH",
               std::to_string(state.nft().balance_of(cs::kIfu)),
               to_eth_string(state.total_balance(cs::kIfu)) + " ETH"});
  }
  table.print(false);
  std::printf("final IFU total balance: %s ETH\n\n",
              to_eth_string(state.total_balance(cs::kIfu)).c_str());
}

}  // namespace

int main() {
  std::printf(
      "System status (Sec. VI-A): S0=10, P0=0.2 ETH, 5 PTs minted, price "
      "0.4 ETH; IFU holds 1.5 ETH + 2 PTs (total 2.3 ETH).\n\n");

  print_case("Fig. 5(a) Case 1: original TX sequence", cs::case1_order());
  print_case(
      "Fig. 5(b) Case 2: candidate altered sequence (feasible repair; "
      "paper value 2.57)",
      cs::case2_order());
  print_case(
      "Fig. 5(c) Case 3: optimized altered sequence (feasible repair; "
      "paper value 2.74)",
      cs::case3_order());
  print_case("True optimum of the instance (exhaustive search)",
             cs::optimal_order());

  // Findings.
  auto problem = cs::make_problem();
  std::printf("reproduction findings:\n");
  std::printf(
      " * literal Fig. 5(b) order valid: %s (TX4 sells U19's token before "
      "TX2 mints it — violates Eq. 3)\n",
      problem.evaluate(cs::paper_case2_order()) ? "yes" : "no");
  std::printf(" * literal Fig. 5(c) order valid: %s (same TX4/TX2 issue)\n",
              problem.evaluate(cs::paper_case3_order()) ? "yes" : "no");

  solvers::ExhaustiveSolver exhaustive;
  Rng rng(1);
  const auto best = exhaustive.solve(problem, rng);
  std::printf(
      " * exhaustive optimum: %s ETH vs paper case 3: %s ETH (the paper's "
      "'optimal' order is near-optimal, not optimal)\n",
      to_eth_string(best.best_value).c_str(),
      to_eth_string(cs::kCase3Final).c_str());
  std::printf(
      " * L2 (non-volatile) balance gain vs case 1: case2 +%.0f%%, case3 "
      "+%.0f%% (paper: +7%%, +24%%)\n",
      100.0 * to_eth_double(cs::kCase2Final - cs::kCase1Final) /
          to_eth_double(cs::kCase1Final - 3 * eth(0, 500)),
      100.0 * to_eth_double(cs::kCase3Final - cs::kCase1Final) /
          to_eth_double(cs::kCase1Final - 3 * eth(0, 500)));
  return 0;
}
