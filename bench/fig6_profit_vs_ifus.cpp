// Fig. 6 — average attack profit per IFU vs number of IFUs served.
//
// Two panels: (a) 10% of aggregators adversarial, (b) 50%. Each series
// varies the aggregator "Mempool size" N in {10, 25, 50, 100}; the x-axis is
// the number of IFUs (1..4). The paper's observations this must reproduce:
// per-IFU profit falls with more IFUs, rises with N, and the N=50 -> N=100
// gain is smaller than N=25 -> N=50 (convergence).
//
// Campaigns use the annealing reorderer (fidelity-validated DQN proxy; see
// core/campaign.hpp). PAROLE_BENCH_SCALE scales the number of aggregation
// rounds; PAROLE_SEED reseeds.
#include <cstdio>

#include "parole/common/env.hpp"
#include "parole/common/table.hpp"
#include "parole/core/campaign.hpp"

using namespace parole;

namespace {

double run_cell(double adversarial_fraction, std::size_t mempool,
                std::size_t ifus, std::uint64_t seed) {
  core::CampaignConfig config;
  config.num_aggregators = 10;
  config.adversarial_fraction = adversarial_fraction;
  config.mempool_size = mempool;
  config.num_ifus = ifus;
  config.rounds = static_cast<std::size_t>(scaled(60, 20));
  config.num_verifiers = 1;
  config.workload.num_users = 24;
  config.workload.max_supply = 60;
  config.workload.premint = 20;
  config.parole.kind = core::ReordererKind::kAnnealing;
  config.seed = seed;

  // Average per IFU *per adversarial batch*, over a few seeds, so cells are
  // comparable across mempool sizes (bigger N != more batches).
  const int repeats = static_cast<int>(scaled(4, 3));
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    config.seed = seed + static_cast<std::uint64_t>(r) * 7919;
    const core::CampaignResult result = core::AttackCampaign(config).run();
    if (result.adversarial_batches > 0) {
      total += result.avg_profit_per_ifu /
               static_cast<double>(result.adversarial_batches);
    }
  }
  return total / repeats;
}

void panel(const char* title, double adversarial_fraction,
           std::uint64_t seed) {
  TablePrinter table(title);
  table.columns({"IFUs served", "N=10 (uETH)", "N=25 (uETH)", "N=50 (uETH)",
                 "N=100 (uETH)"});
  for (std::size_t ifus = 1; ifus <= 4; ++ifus) {
    std::vector<std::string> row = {std::to_string(ifus)};
    for (std::size_t mempool : {10u, 25u, 50u, 100u}) {
      const double gwei_profit =
          run_cell(adversarial_fraction, mempool, ifus, seed);
      row.push_back(TablePrinter::num(gwei_profit / 1'000.0, 1));  // uETH
    }
    table.row(std::move(row));
  }
  table.print();
}

}  // namespace

int main() {
  const std::uint64_t seed = experiment_seed(0xf160ULL);
  std::printf(
      "Fig. 6: average attack profit per IFU (micro-ETH), %0.f%% bench "
      "scale\n\n",
      bench_scale() * 100);
  panel("Fig. 6(a): 10% of aggregators adversarial", 0.10, seed);
  panel("Fig. 6(b): 50% of aggregators adversarial", 0.50, seed ^ 0xb);
  std::printf(
      "expected shape: profit/IFU decreases with more IFUs, increases with "
      "mempool size, and converges between N=50 and N=100.\n");
  return 0;
}
