// Fig. 7 — total profit (summed over all IFUs) vs the fraction of
// adversarial aggregators, for mempool sizes N = 50 and N = 100.
// (a) serving 1 IFU, (b) serving 2 IFUs.
//
// Paper shape: total profit grows with the adversarial share; with N = 50
// the growth flattens from ~20% adversarial onward (few alternate orders to
// monetize), while N = 100 keeps growing ~linearly.
#include <cstdio>

#include "parole/common/env.hpp"
#include "parole/common/stats.hpp"
#include "parole/common/table.hpp"
#include "parole/core/campaign.hpp"

using namespace parole;

namespace {

// Point estimate plus a bootstrap CI over the per-seed totals (the profit
// distribution is heavy-tailed; common/stats.hpp).
std::string run_cell(double adversarial_fraction, std::size_t mempool,
                     std::size_t ifus, std::uint64_t seed) {
  core::CampaignConfig config;
  config.num_aggregators = 10;
  config.adversarial_fraction = adversarial_fraction;
  config.mempool_size = mempool;
  config.num_ifus = ifus;
  config.rounds = static_cast<std::size_t>(scaled(40, 10));
  config.num_verifiers = 1;
  config.workload.num_users = 24;
  config.workload.max_supply = 60;
  config.workload.premint = 20;
  config.parole.kind = core::ReordererKind::kAnnealing;

  const int repeats = static_cast<int>(scaled(4, 3));
  std::vector<double> totals;
  for (int r = 0; r < repeats; ++r) {
    config.seed = seed + static_cast<std::uint64_t>(r) * 104'729;
    totals.push_back(static_cast<double>(
        core::AttackCampaign(config).run().total_profit));
  }
  Rng rng(seed ^ 0xb007);
  const BootstrapCi ci = bootstrap_mean_ci(totals, rng, 0.05, 500);
  return TablePrinter::num(ci.mean / 1'000.0, 1) + " [" +
         TablePrinter::num(ci.lower / 1'000.0, 0) + ", " +
         TablePrinter::num(ci.upper / 1'000.0, 0) + "]";
}

void panel(const char* title, std::size_t ifus, std::uint64_t seed) {
  TablePrinter table(title);
  table.columns({"adversarial %", "N=50 total uETH [95% CI]",
                 "N=100 total uETH [95% CI]"});
  for (int percent : {10, 20, 30, 40, 50}) {
    const double fraction = percent / 100.0;
    table.row({std::to_string(percent),
               run_cell(fraction, 50, ifus, seed + percent),
               run_cell(fraction, 100, ifus, seed + percent + 1'000)});
  }
  table.print();
}

}  // namespace

int main() {
  const std::uint64_t seed = experiment_seed(0xf170ULL);
  std::printf(
      "Fig. 7: total IFU profit vs adversarial aggregator share "
      "(micro-ETH), %.0f%% bench scale\n\n",
      bench_scale() * 100);
  panel("Fig. 7(a): serving 1 IFU", 1, seed);
  panel("Fig. 7(b): serving 2 IFUs", 2, seed ^ 0x77);
  std::printf(
      "expected shape: totals grow with the adversarial share; N=50 "
      "flattens after ~20%% while N=100 keeps growing.\n");
  return 0;
}
