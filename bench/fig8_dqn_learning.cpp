// Fig. 8 — moving average (window 9) of the DQN agent's episode rewards for
// initial exploration values eps0 in {0, 0.5, 1}: (a) serving 1 IFU,
// (b) serving 2 IFUs.
//
// Paper shape: eps0 = 0 stays low (pure exploitation gets trapped in a local
// optimum), eps0 = 1 climbs highest and fastest, eps0 = 0.5 learns but more
// slowly; the 2-IFU panel accumulates lower rewards than the 1-IFU panel
// (more penalizable exploration). Table II's remaining hyper-parameters are
// printed for reference. PAROLE_BENCH_SCALE scales episodes/steps/N.
#include <cstdio>

#include "parole/common/env.hpp"
#include "parole/common/stats.hpp"
#include "parole/common/table.hpp"
#include "parole/core/gentranseq.hpp"
#include "parole/data/workload.hpp"

using namespace parole;

namespace {

solvers::ReorderingProblem make_problem(std::size_t n, std::size_t ifus,
                                        std::uint64_t seed) {
  data::WorkloadConfig config;
  config.num_users = 24;
  config.max_supply = 60;
  config.premint = 20;
  data::WorkloadGenerator generator(config, seed);
  const vm::L2State genesis = generator.initial_state();
  auto txs = generator.generate(n);
  return solvers::ReorderingProblem(genesis, std::move(txs),
                                    generator.pick_ifus(ifus));
}

core::GenTranSeqConfig scaled_config(double eps0) {
  core::GenTranSeqConfig config;  // Table II defaults
  config.dqn.episodes = static_cast<std::size_t>(scaled(100, 20));
  config.dqn.steps_per_episode = static_cast<std::size_t>(scaled(200, 40));
  // Scale the decay so the epsilon schedule completes the same fraction of
  // its Table II course in the scaled episode budget.
  config.dqn.epsilon_decay =
      0.05 * 100.0 / static_cast<double>(config.dqn.episodes);
  config.dqn.hidden = {96, 96};
  config.dqn.minibatch = 24;
  config.epsilon_override = eps0;
  return config;
}

void panel(const char* title, std::size_t ifus, std::size_t n,
           std::uint64_t seed) {
  const double epsilons[] = {0.0, 0.5, 1.0};
  const std::size_t repeats = static_cast<std::size_t>(scaled(3, 2));
  std::vector<std::vector<double>> series;
  for (double eps0 : epsilons) {
    std::vector<double> mean_rewards;
    for (std::size_t r = 0; r < repeats; ++r) {
      auto problem = make_problem(n, ifus, seed + r * 509);
      core::GenTranSeq gts(problem, scaled_config(eps0),
                           seed ^ (0x5eed + r * 7));
      const core::TrainResult result = gts.train();
      if (mean_rewards.empty()) {
        mean_rewards.assign(result.episode_rewards.size(), 0.0);
      }
      for (std::size_t i = 0; i < result.episode_rewards.size(); ++i) {
        mean_rewards[i] += result.episode_rewards[i] /
                           static_cast<double>(repeats);
      }
    }
    series.push_back(moving_average(mean_rewards, 9));
  }

  TablePrinter table(title);
  table.columns({"episode", "eps0=0 (MA9 reward)", "eps0=0.5 (MA9 reward)",
                 "eps0=1 (MA9 reward)"});
  for (std::size_t ep = 0; ep < series[0].size(); ++ep) {
    table.row({std::to_string(ep), TablePrinter::num(series[0][ep], 1),
               TablePrinter::num(series[1][ep], 1),
               TablePrinter::num(series[2][ep], 1)});
  }
  table.print();

  auto final_of = [&](std::size_t i) { return series[i].back(); };
  std::printf(
      "final MA9 rewards: eps0=0: %.1f, eps0=0.5: %.1f, eps0=1: %.1f\n\n",
      final_of(0), final_of(1), final_of(2));
}

}  // namespace

int main() {
  const std::uint64_t seed = experiment_seed(0xf180ULL);
  const auto n = static_cast<std::size_t>(scaled(50, 16));

  TablePrinter params("Table II: GENTRANSEQ modelling parameters");
  params.columns({"parameter", "value"});
  const ml::DqnConfig defaults;
  params.row({"exploration parameter (eps)",
              TablePrinter::num(defaults.epsilon_max, 2)});
  params.row({"epsilon decay (d)", TablePrinter::num(defaults.epsilon_decay, 2)});
  params.row({"discount factor (gamma)", TablePrinter::num(defaults.gamma, 3)});
  params.row({"episodes", std::to_string(defaults.episodes)});
  params.row({"steps (each episode)",
              std::to_string(defaults.steps_per_episode)});
  params.row({"learning rate (alpha)",
              TablePrinter::num(defaults.learning_rate, 1)});
  params.row({"replay memory buffer size",
              std::to_string(defaults.replay_capacity)});
  params.row({"Q-network update",
              "every " + std::to_string(defaults.qnet_update_every) + " steps"});
  params.row({"target network update",
              "every " + std::to_string(defaults.target_update_every) +
                  " steps"});
  params.print(false);

  std::printf(
      "\nFig. 8: DQN episode rewards (milli-ETH units, window-9 moving "
      "average), N=%zu, %.0f%% bench scale\n\n",
      n, bench_scale() * 100);
  panel("Fig. 8(a): serving 1 IFU", 1, n, seed);
  panel("Fig. 8(b): serving 2 IFUs", 2, n, seed ^ 0x2);
  std::printf(
      "expected shape: eps0=1 climbs highest, eps0=0.5 learns more slowly, "
      "eps0=0 stays trapped; the 2-IFU panel sits lower overall.\n");
  return 0;
}
