// Fig. 9 — kernel-density estimates of the solution size: the number of
// swaps a trained DQN agent performs before reaching the first candidate
// solution (an order strictly better than the original), for 1-4 IFUs.
// (a) mempool N = 50, (b) N = 100.
//
// Paper shape: with 1 IFU the mass concentrates at ~5 swaps; serving more
// IFUs spreads the distribution right, and at N = 100 the 3-4 IFU curves go
// multi-modal. Samples come from training episodes' first-candidate swap
// counts plus greedy-inference rollouts over fresh batches.
#include <cstdio>

#include "parole/common/env.hpp"
#include "parole/common/table.hpp"
#include "parole/core/gentranseq.hpp"
#include "parole/data/kde.hpp"
#include "parole/data/workload.hpp"

using namespace parole;

namespace {

std::vector<double> solution_sizes(std::size_t n, std::size_t ifus,
                                   std::uint64_t seed) {
  std::vector<double> samples;
  const auto batches = static_cast<std::size_t>(scaled(6, 2));
  for (std::size_t b = 0; b < batches; ++b) {
    data::WorkloadConfig config;
    config.num_users = 24;
    config.max_supply = 60;
    config.premint = 20;
    data::WorkloadGenerator generator(config, seed + b * 37);
    const vm::L2State genesis = generator.initial_state();
    auto txs = generator.generate(n);
    // Fair collusion for multiple IFUs: an order must serve every colluder,
    // which is what stretches the multi-IFU solution sizes rightward.
    solvers::ReorderingProblem problem(
        genesis, std::move(txs), generator.pick_ifus(ifus),
        ifus > 1 ? solvers::Objective::kMinGain
                 : solvers::Objective::kSumBalance);

    core::GenTranSeqConfig gts_config;
    gts_config.dqn.episodes = static_cast<std::size_t>(scaled(60, 12));
    gts_config.dqn.steps_per_episode =
        static_cast<std::size_t>(scaled(120, 30));
    gts_config.dqn.hidden = {64, 64};
    gts_config.dqn.minibatch = 24;
    core::GenTranSeq gts(problem, gts_config, seed ^ (b * 101));
    const core::TrainResult trained = gts.train();
    // Trained-agent behaviour only: drop the first half of training.
    for (std::size_t i = 0; i < trained.swaps_to_first_candidate.size();
         ++i) {
      if (trained.first_candidate_episode[i] >= gts_config.dqn.episodes / 2) {
        samples.push_back(
            static_cast<double>(trained.swaps_to_first_candidate[i]));
      }
    }
    const core::InferenceResult inferred = gts.infer();
    if (inferred.improved) {
      samples.push_back(
          static_cast<double>(inferred.swaps_to_first_candidate));
    }
  }
  if (samples.empty()) samples.push_back(0.0);
  return samples;
}

void panel(const char* title, std::size_t n, std::uint64_t seed) {
  std::vector<data::Kde> kdes;
  std::vector<double> modes;
  for (std::size_t ifus = 1; ifus <= 4; ++ifus) {
    kdes.emplace_back(solution_sizes(n, ifus, seed + ifus * 1'000));
    modes.push_back(kdes.back().mode(0.0, 40.0));
  }

  TablePrinter table(title);
  table.columns({"swaps", "density 1 IFU", "density 2 IFUs",
                 "density 3 IFUs", "density 4 IFUs"});
  for (double x = 0.0; x <= 30.0; x += 1.0) {
    table.row({TablePrinter::num(x, 0), TablePrinter::num(kdes[0].density(x), 4),
               TablePrinter::num(kdes[1].density(x), 4),
               TablePrinter::num(kdes[2].density(x), 4),
               TablePrinter::num(kdes[3].density(x), 4)});
  }
  table.print();
  std::printf("modes: 1 IFU %.1f, 2 IFUs %.1f, 3 IFUs %.1f, 4 IFUs %.1f\n\n",
              modes[0], modes[1], modes[2], modes[3]);
}

}  // namespace

int main() {
  const std::uint64_t seed = experiment_seed(0xf190ULL);
  const auto n_small = static_cast<std::size_t>(scaled(50, 14));
  const auto n_large = static_cast<std::size_t>(scaled(100, 24));
  std::printf(
      "Fig. 9: KDE of solution sizes (swaps to first candidate solution), "
      "%.0f%% bench scale\n\n",
      bench_scale() * 100);
  panel("Fig. 9(a): mempool size 50 (scaled)", n_small, seed);
  panel("Fig. 9(b): mempool size 100 (scaled)", n_large, seed ^ 0x9);
  std::printf(
      "expected shape: 1-IFU mass near ~5 swaps; more IFUs spread right; "
      "the larger mempool shows broader, multi-peaked 3-4 IFU curves.\n");
  return 0;
}
