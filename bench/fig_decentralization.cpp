// Profit vs decentralization (DESIGN.md §15): how much of the PAROLE
// adversary's reorder profit survives when the single sequencer becomes N
// bonded seats under each election model.
//
// Sweep: election model {rr, stake, auction} x seat count {1, 2, 4, 8}, one
// adversarial seat throughout, identical workload/rounds/seed per cell. The
// 1-seat cell IS the paper's centralized baseline (the adversary owns every
// slot); each wider roster dilutes its leadership share — rotation and stake
// draws hand it ~1/N of the slots, and an auction makes it buy every slot it
// wants at its own bid. Reported profit is NET of the seat's operating costs
// (gross reorder profit - auction spend - equivocation slash loss), which is
// the number the paper's economics actually care about. Every cell also
// carries the decomposition itself, with the accounting identity
// gross - auction - slash == net folded into the gated verdict.
//
// Writes BENCH_decentralization.json — RunReport JSONL, one "result" row per
// (model, seats) cell plus a `decentralization-verdict` row. Raw profit is
// workload-bound, so the CI gate (bench_regress, perf-regress job) holds the
// deterministic correctness verdict in `speedup`: 1.0 when every cell ran
// clean AND net profit is monotonically non-increasing from the 1-seat
// baseline within each model, 0.0 otherwise. PAROLE_BENCH_SCALE scales the
// round count; PAROLE_SEED overrides the seed.
#include <cstdio>
#include <string>
#include <vector>

#include "parole/common/env.hpp"
#include "parole/common/table.hpp"
#include "parole/core/campaign.hpp"
#include "parole/obs/report.hpp"

using namespace parole;

namespace {

struct Cell {
  rollup::ElectionModel model{rollup::ElectionModel::kRoundRobin};
  std::size_t seats{1};
  Amount gross_profit{0};
  Amount auction_spend{0};
  Amount slash_loss{0};
  Amount net_profit{0};
  std::size_t adversarial_batches{0};
  std::size_t view_changes{0};
  bool clean{true};
};

}  // namespace

int main() {
  const std::uint64_t seed = experiment_seed(0xdece47a112eULL);
  const auto rounds = static_cast<std::size_t>(scaled(48, 16));
  const std::vector<std::size_t> seat_counts = {1, 2, 4, 8};
  const std::vector<rollup::ElectionModel> models = {
      rollup::ElectionModel::kRoundRobin, rollup::ElectionModel::kStakeWeighted,
      rollup::ElectionModel::kAuction};

  std::vector<Cell> cells;
  for (const rollup::ElectionModel model : models) {
    for (const std::size_t seats : seat_counts) {
      core::CampaignConfig config;
      config.num_aggregators = seats;
      // Exactly one adversarial seat at every roster size: the sweep varies
      // decentralization, not adversary count.
      config.adversarial_fraction = 1.0 / static_cast<double>(seats);
      config.mempool_size = 12;
      config.rounds = rounds;
      config.num_ifus = 1;
      config.seed = seed;
      rollup::ConsensusConfig consensus;
      consensus.model = model;
      consensus.seed ^= seed;
      config.consensus = consensus;

      core::AttackCampaign campaign(config);
      const core::CampaignResult result = campaign.run();

      Cell cell;
      cell.model = model;
      cell.seats = seats;
      cell.gross_profit = result.total_profit;
      cell.auction_spend = result.auction_spend;
      cell.slash_loss = result.slash_loss;
      cell.net_profit =
          result.total_profit - result.auction_spend - result.slash_loss;
      cell.adversarial_batches = result.adversarial_batches;
      cell.view_changes = result.view_changes;
      // Clean requires the accounting identity to hold exactly: the three
      // components must reassemble the net figure the curve is gated on.
      cell.clean = result.completed && result.rounds_run == rounds &&
                   cell.gross_profit - cell.auction_spend - cell.slash_loss ==
                       cell.net_profit;
      cells.push_back(cell);
    }
  }

  // Verdict: every cell clean, and within each model net profit never rises
  // as the roster widens from the 1-seat baseline.
  bool all_clean = true;
  bool monotone = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    all_clean = all_clean && cells[i].clean;
    if (i % seat_counts.size() != 0) {
      monotone = monotone && cells[i].net_profit <= cells[i - 1].net_profit;
    }
  }
  const bool verdict = all_clean && monotone;

  TablePrinter table("Adversary profit vs sequencer decentralization");
  table.columns({"election", "seats", "adv batches", "view chg", "gross ETH",
                 "auction ETH", "slash ETH", "net ETH"});
  for (const Cell& cell : cells) {
    table.row({std::string(rollup::to_string(cell.model)),
               TablePrinter::integer(static_cast<long long>(cell.seats)),
               TablePrinter::integer(
                   static_cast<long long>(cell.adversarial_batches)),
               TablePrinter::integer(
                   static_cast<long long>(cell.view_changes)),
               to_eth_string(cell.gross_profit),
               to_eth_string(cell.auction_spend),
               to_eth_string(cell.slash_loss),
               to_eth_string(cell.net_profit)});
  }
  table.print();
  std::printf("\nverdict: %s (clean %s, monotone from 1-seat baseline %s)\n",
              verdict ? "PASS" : "FAIL", all_clean ? "yes" : "NO",
              monotone ? "yes" : "NO");

  obs::RunReport report("fig_decentralization");
  report.set_meta("bench", obs::JsonValue("fig_decentralization"));
  report.set_meta("scale", obs::JsonValue(bench_scale()));
  report.set_meta("seed", obs::JsonValue(seed));
  report.set_meta("rounds", obs::JsonValue(static_cast<std::uint64_t>(rounds)));
  for (const Cell& cell : cells) {
    obs::JsonObject result;
    result["n"] = obs::JsonValue(static_cast<std::uint64_t>(cell.seats));
    result["move"] = obs::JsonValue(std::string(rollup::to_string(cell.model)) +
                                    "-" + std::to_string(cell.seats) +
                                    "-seats");
    result["seats"] = obs::JsonValue(static_cast<std::uint64_t>(cell.seats));
    result["election"] =
        obs::JsonValue(std::string(rollup::to_string(cell.model)));
    result["profit_gwei"] =
        obs::JsonValue(static_cast<std::int64_t>(cell.gross_profit));
    result["gross_profit_gwei"] =
        obs::JsonValue(static_cast<std::int64_t>(cell.gross_profit));
    result["auction_spend_gwei"] =
        obs::JsonValue(static_cast<std::int64_t>(cell.auction_spend));
    result["slash_loss_gwei"] =
        obs::JsonValue(static_cast<std::int64_t>(cell.slash_loss));
    result["net_profit_gwei"] =
        obs::JsonValue(static_cast<std::int64_t>(cell.net_profit));
    result["adversarial_batches"] = obs::JsonValue(
        static_cast<std::uint64_t>(cell.adversarial_batches));
    result["view_changes"] =
        obs::JsonValue(static_cast<std::uint64_t>(cell.view_changes));
    result["identical"] = obs::JsonValue(cell.clean);
    // The gated column: per-cell clean-run verdict (the cross-cell curve
    // shape is gated once, on the verdict row below).
    result["speedup"] = obs::JsonValue(cell.clean ? 1.0 : 0.0);
    report.add_result(std::move(result));
  }
  {
    obs::JsonObject result;
    result["n"] = obs::JsonValue(static_cast<std::uint64_t>(rounds));
    result["move"] = obs::JsonValue("decentralization-verdict");
    result["all_clean"] = obs::JsonValue(all_clean);
    result["monotone"] = obs::JsonValue(monotone);
    result["identical"] = obs::JsonValue(verdict);
    result["speedup"] = obs::JsonValue(verdict ? 1.0 : 0.0);
    report.add_result(std::move(result));
  }
  report.capture_metrics();
  const Status written = report.write("BENCH_decentralization.json");
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write BENCH_decentralization.json: %s\n",
                 written.error().detail.c_str());
    return 1;
  }
  std::printf("wrote BENCH_decentralization.json (%zu JSONL lines)\n",
              report.line_count());
  return verdict ? 0 : 1;
}
