// google-benchmark microbenches for the hot paths: hashing, Merkle roots,
// VM execution, state roots, mempool operations, the DQN forward pass, and
// one MDP environment step. These bound the cost model behind the Fig. 11
// discussion (per-candidate evaluation dominates every solver).
#include <benchmark/benchmark.h>

#include "parole/core/reorder_env.hpp"
#include "parole/crypto/keccak256.hpp"
#include "parole/rollup/codec.hpp"
#include "parole/crypto/merkle.hpp"
#include "parole/crypto/sha256.hpp"
#include "parole/data/workload.hpp"
#include "parole/ml/dqn.hpp"
#include "parole/rollup/mempool.hpp"

namespace {

using namespace parole;

void BM_Sha256(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Keccak256(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Keccak256::hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Keccak256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<crypto::Hash256> leaves;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(crypto::Sha256::hash("leaf" + std::to_string(i)));
  }
  for (auto _ : state) {
    crypto::MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(128)->Arg(1024);

data::WorkloadGenerator make_generator(std::uint64_t seed) {
  data::WorkloadConfig config;
  config.num_users = 24;
  config.max_supply = 80;
  config.premint = 24;
  return data::WorkloadGenerator(config, seed);
}

void BM_VmExecuteSequence(benchmark::State& state) {
  auto generator = make_generator(1);
  const vm::L2State genesis = generator.initial_state();
  const auto txs = generator.generate(static_cast<std::size_t>(state.range(0)));
  const vm::ExecutionEngine engine(
      {vm::InvalidTxPolicy::kSkipInvalid, false, {}});
  for (auto _ : state) {
    vm::L2State working = genesis;
    benchmark::DoNotOptimize(engine.execute(working, txs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_VmExecuteSequence)->Arg(10)->Arg(50)->Arg(100);

void BM_StateRoot(benchmark::State& state) {
  auto generator = make_generator(2);
  vm::L2State working = generator.initial_state();
  const auto txs = generator.generate(static_cast<std::size_t>(state.range(0)));
  const vm::ExecutionEngine engine(
      {vm::InvalidTxPolicy::kSkipInvalid, false, {}});
  (void)engine.execute(working, txs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(working.state_root());
  }
}
BENCHMARK(BM_StateRoot)->Arg(50)->Arg(200);

void BM_MempoolSubmitCollect(benchmark::State& state) {
  auto generator = make_generator(3);
  const auto txs = generator.generate(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    rollup::BedrockMempool pool;
    for (const auto& tx : txs) pool.submit(tx);
    benchmark::DoNotOptimize(pool.collect(txs.size()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MempoolSubmitCollect)->Arg(100)->Arg(1000);

void BM_CodecEncodeDecode(benchmark::State& state) {
  auto generator = make_generator(9);
  auto txs = generator.generate(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < txs.size(); ++i) txs[i].arrival = i;
  for (auto _ : state) {
    const auto bytes = rollup::encode_batch(txs);
    benchmark::DoNotOptimize(rollup::decode_batch(bytes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CodecEncodeDecode)->Arg(50)->Arg(500);

void BM_DqnForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ml::DqnConfig config;
  config.hidden = {96, 96};
  ml::DqnAgent agent(8 * n, n * (n - 1) / 2, config, 7);
  const std::vector<double> input(8 * n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.greedy_action(input));
  }
}
BENCHMARK(BM_DqnForward)->Arg(10)->Arg(50)->Arg(100);

void BM_DqnTrainStep(benchmark::State& state) {
  ml::DqnConfig config;
  config.hidden = {96, 96};
  config.minibatch = 24;
  ml::DqnAgent agent(80, 45, config, 11);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> s(80), next(80);
    for (auto& v : s) v = rng.uniform();
    for (auto& v : next) v = rng.uniform();
    agent.remember({std::move(s), rng.index(45),
                    rng.uniform(-1.0, 1.0), std::move(next), false});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.train_step());
  }
}
BENCHMARK(BM_DqnTrainStep);

void BM_ReorderEnvStep(benchmark::State& state) {
  auto generator = make_generator(4);
  const vm::L2State genesis = generator.initial_state();
  auto txs = generator.generate(static_cast<std::size_t>(state.range(0)));
  solvers::ReorderingProblem problem(genesis, std::move(txs),
                                     generator.pick_ifus(1));
  core::ReorderEnv env(problem, {});
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.step(rng.index(env.action_count())));
  }
}
BENCHMARK(BM_ReorderEnvStep)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
