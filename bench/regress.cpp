// Benchmark regression gate CLI (DESIGN.md §11).
//
//   bench_regress <baseline.json> <current.json> [current2.json ...] [options]
//     --metric NAME       gated metric (repeatable; default: speedup)
//     --min-ratio F       fail when current/baseline < F (default: 0.85,
//                         i.e. a >15% regression fails)
//     --max-ratio F       fail when current/baseline > F (default: off)
//     --key NAME          row identity key (repeatable; default: n, move)
//     --rule M:MIN:MAX[:SUBSTR]
//                         fully-specified rule (repeatable): gate metric M
//                         between MIN and MAX (0 = side off), optionally only
//                         on rows whose identity contains SUBSTR — e.g.
//                         parity:0.95:1.05:sampler-armed is the ±5% sampler
//                         overhead band. When --rule is given and --metric is
//                         not, the default speedup rule is dropped.
//     --inject-slowdown F scale the current report's gated metrics by 1-F —
//                         CI's self-test that the gate actually fires
//
// Exit code 0 = within tolerance, 1 = regression (or missing rows/metrics),
// 2 = usage/IO error. Gates on dimensionless metrics (the evaluator's
// speedup) so a baseline recorded on one machine holds on another.
//
// With more than one current report the gate takes the best ratio per
// (row, metric) across runs: timing noise on shared runners is per-run
// independent, while a real regression depresses every run.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "parole/obs/regress.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  parole::obs::RegressOptions options;
  std::vector<std::string> metrics;
  std::vector<std::string> keys;
  std::vector<parole::obs::RegressRule> explicit_rules;
  double min_ratio = 0.85;
  double max_ratio = 0.0;

  // "metric:min:max[:row-substring]" -> RegressRule.
  const auto parse_rule =
      [](const std::string& spec) -> parole::obs::RegressRule {
    parole::obs::RegressRule rule;
    std::size_t start = 0;
    std::vector<std::string> parts;
    while (parts.size() < 3) {
      const std::size_t colon = spec.find(':', start);
      if (colon == std::string::npos) break;
      parts.push_back(spec.substr(start, colon - start));
      start = colon + 1;
    }
    parts.push_back(spec.substr(start));
    if (parts.size() < 3 || parts[0].empty()) {
      std::fprintf(stderr, "bad --rule '%s' (want METRIC:MIN:MAX[:SUBSTR])\n",
                   spec.c_str());
      std::exit(2);
    }
    rule.metric = parts[0];
    rule.min_ratio = std::atof(parts[1].c_str());
    rule.max_ratio = std::atof(parts[2].c_str());
    if (parts.size() > 3) rule.row_contains = parts[3];
    return rule;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--metric") {
      metrics.emplace_back(value());
    } else if (arg == "--min-ratio") {
      min_ratio = std::atof(value());
    } else if (arg == "--max-ratio") {
      max_ratio = std::atof(value());
    } else if (arg == "--key") {
      keys.emplace_back(value());
    } else if (arg == "--rule") {
      explicit_rules.push_back(parse_rule(value()));
    } else if (arg == "--inject-slowdown") {
      options.scale = 1.0 - std::atof(value());
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() < 2) {
    std::fprintf(stderr,
                 "usage: bench_regress <baseline.json> <current.json> "
                 "[current2.json ...] [--metric NAME] [--min-ratio F] "
                 "[--max-ratio F] [--key NAME] "
                 "[--rule M:MIN:MAX[:SUBSTR]] [--inject-slowdown F]\n");
    return 2;
  }
  if (!keys.empty()) options.keys = keys;
  if (metrics.empty() && explicit_rules.empty()) {
    metrics.emplace_back("speedup");
  }
  options.rules.clear();
  for (const std::string& metric : metrics) {
    options.rules.push_back({metric, min_ratio, max_ratio, ""});
  }
  for (parole::obs::RegressRule& rule : explicit_rules) {
    options.rules.push_back(std::move(rule));
  }

  std::vector<parole::obs::RegressReport> runs;
  for (std::size_t i = 1; i < paths.size(); ++i) {
    auto compared = parole::obs::compare_reports(paths[0], paths[i], options);
    if (!compared.ok()) {
      std::fprintf(stderr, "bench_regress: %s\n",
                   compared.error().detail.c_str());
      return 2;
    }
    runs.push_back(std::move(compared).value());
  }
  const parole::obs::RegressReport report =
      runs.size() == 1 ? runs.front() : parole::obs::merge_best(runs);
  std::fputs(report.to_string().c_str(), stdout);
  if (runs.size() > 1) {
    std::printf("(best of %zu runs)\n", runs.size());
  }
  if (options.scale != 1.0) {
    std::printf("(current metrics scaled by %.3f via --inject-slowdown)\n",
                options.scale);
  }
  return report.ok ? 0 : 1;
}
