// Serve pipeline throughput: sustained tx/s and admission->finalization
// latency tails for the supervised streaming daemon (DESIGN.md §14).
//
// The same seeded, chaos-armed serve schedule runs through both execution
// modes — run() (concurrent stages over bounded queues) and run_inline()
// (the batch-stepped determinism oracle) — with the journal armed so every
// run reports finalized-tx throughput and p99/p99.9 latency straight from
// its TxJournal. Fingerprints are cross-checked across every rep of both
// modes before anything is reported: a serve bench that measured two
// different computations would be meaningless.
//
// Prints the table + CSV-style rows like every other harness bench and
// writes BENCH_serve.json — RunReport JSONL (DESIGN.md §8), one "result"
// line per mode plus a `throughput-parity` row. Raw tx/s is machine-bound,
// so the CI gate (bench_regress, see .github/workflows/ci.yml perf-regress)
// holds the dimensionless columns instead: `speedup` carries the
// deterministic correctness verdict (accounting closed, fingerprints
// bit-identical — exactly 1.0 on a healthy build, 0.0 on a broken one) and
// `parity` carries threaded/inline sustained tx/s, banded wide because
// queue-hop overhead is machine-dependent. PAROLE_BENCH_SCALE scales the
// step count; PAROLE_SEED overrides the seed; PAROLE_BENCH_REPS (default 5)
// sets the rep count, with the median rep reported.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "parole/common/env.hpp"
#include "parole/common/table.hpp"
#include "parole/obs/journal.hpp"
#include "parole/obs/report.hpp"
#include "parole/serve/pipeline.hpp"

using namespace parole;

namespace {

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  return samples.size() % 2 == 1
             ? samples[mid]
             : (samples[mid - 1] + samples[mid]) / 2.0;
}

struct ModeResult {
  const char* mode{""};
  serve::ServeStats stats;   // from the first rep (counters are rep-invariant)
  double tps{0.0};           // median sustained tx/s across reps
  double p99_ms{0.0};        // median across reps
  double p999_ms{0.0};
  bool clean{true};          // accounting + invariants + audit, every rep
};

}  // namespace

int main() {
  const std::uint64_t seed = experiment_seed(0x5e12e5e12eULL);
  const auto steps = static_cast<std::uint64_t>(scaled(240, 40));
  const auto reps = static_cast<std::size_t>(
      std::max<std::int64_t>(1, env_int("PAROLE_BENCH_REPS", 5)));

  // The journal is the latency instrument: p99/p99.9 and finalized tx/s in
  // ServeStats are derived from its admission->finalization chains.
  obs::TxJournal::set_enabled(true);

  serve::ServeConfig config;
  config.seed = seed;
  config.steps = steps;
  config.chaos = true;  // the bench measures the soak, not a quiet run

  std::vector<ModeResult> modes;
  std::string reference_fingerprint;
  for (const bool threaded : {false, true}) {
    ModeResult result;
    result.mode = threaded ? "serve-threaded" : "serve-inline";
    std::vector<double> tps_samples;
    std::vector<double> p99_samples;
    std::vector<double> p999_samples;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      serve::ServePipeline pipeline(config);  // one run per pipeline object
      auto run = threaded ? pipeline.run() : pipeline.run_inline();
      if (!run.ok()) {
        std::fprintf(stderr, "%s rep %zu failed: %s\n", result.mode, rep,
                     run.error().detail.c_str());
        return 1;
      }
      const serve::ServeStats& stats = run.value();
      if (rep == 0 && !threaded) reference_fingerprint = stats.fingerprint;
      if (stats.fingerprint != reference_fingerprint) {
        std::fprintf(stderr, "MISMATCH: %s rep %zu fingerprint %s != %s\n",
                     result.mode, rep, stats.fingerprint.c_str(),
                     reference_fingerprint.c_str());
        return 1;
      }
      result.clean = result.clean && stats.invariants_clean &&
                     stats.journal_audit_ok &&
                     stats.txs_generated ==
                         stats.txs_admitted + stats.txs_shed;
      if (rep == 0) result.stats = stats;
      tps_samples.push_back(stats.sustained_tps);
      p99_samples.push_back(stats.p99_latency_ms);
      p999_samples.push_back(stats.p999_latency_ms);
    }
    result.tps = median(std::move(tps_samples));
    result.p99_ms = median(std::move(p99_samples));
    result.p999_ms = median(std::move(p999_samples));
    modes.push_back(std::move(result));

    if (!modes.back().clean) {
      std::fprintf(stderr, "DIRTY RUN: %s broke accounting or invariants\n",
                   modes.back().mode);
      return 1;
    }
  }

  const ModeResult& inline_mode = modes[0];
  const ModeResult& threaded_mode = modes[1];
  const double parity =
      inline_mode.tps <= 0.0 ? 0.0 : threaded_mode.tps / inline_mode.tps;
  const bool all_clean = inline_mode.clean && threaded_mode.clean;

  TablePrinter table("Serve pipeline: sustained throughput + latency tails");
  table.columns({"mode", "steps", "generated", "admitted", "shed", "final",
                 "tx/s", "p99 ms", "p99.9 ms"});
  for (const ModeResult& mode : modes) {
    table.row(
        {mode.mode,
         TablePrinter::integer(static_cast<long long>(steps)),
         TablePrinter::integer(
             static_cast<long long>(mode.stats.txs_generated)),
         TablePrinter::integer(
             static_cast<long long>(mode.stats.txs_admitted)),
         TablePrinter::integer(static_cast<long long>(mode.stats.txs_shed)),
         TablePrinter::integer(
             static_cast<long long>(mode.stats.finalized_txs)),
         TablePrinter::num(mode.tps, 1), TablePrinter::num(mode.p99_ms, 3),
         TablePrinter::num(mode.p999_ms, 3)});
  }
  table.print();

  TablePrinter parity_table("Threaded vs inline parity");
  parity_table.columns(
      {"inline tx/s", "threaded tx/s", "parity", "identical"});
  parity_table.row({TablePrinter::num(inline_mode.tps, 1),
                    TablePrinter::num(threaded_mode.tps, 1),
                    TablePrinter::num(parity, 3), all_clean ? "yes" : "NO"});
  parity_table.print();

  obs::RunReport report("serve_throughput");
  report.set_meta("bench", obs::JsonValue("serve_throughput"));
  report.set_meta("scale", obs::JsonValue(bench_scale()));
  report.set_meta("reps", obs::JsonValue(static_cast<std::uint64_t>(reps)));
  report.set_meta("seed", obs::JsonValue(seed));
  report.set_meta("steps", obs::JsonValue(steps));
  for (const ModeResult& mode : modes) {
    obs::JsonObject result;
    result["n"] = obs::JsonValue(steps);
    result["move"] = obs::JsonValue(mode.mode);
    result["sustained_tps"] = obs::JsonValue(mode.tps);
    result["p99_ms"] = obs::JsonValue(mode.p99_ms);
    result["p999_ms"] = obs::JsonValue(mode.p999_ms);
    result["txs_generated"] = obs::JsonValue(mode.stats.txs_generated);
    result["txs_admitted"] = obs::JsonValue(mode.stats.txs_admitted);
    result["txs_shed"] = obs::JsonValue(mode.stats.txs_shed);
    result["finalized"] = obs::JsonValue(mode.stats.finalized_txs);
    result["degraded_batches"] =
        obs::JsonValue(mode.stats.degraded_batches);
    result["queue_full_waits"] =
        obs::JsonValue(mode.stats.queue_full_waits);
    result["identical"] = obs::JsonValue(mode.clean);
    // The gated column: deterministic 1.0/0.0 correctness verdict, so the
    // default bench_regress speedup rule holds machine-independently.
    result["speedup"] = obs::JsonValue(mode.clean ? 1.0 : 0.0);
    report.add_result(std::move(result));
  }
  {
    obs::JsonObject result;
    result["n"] = obs::JsonValue(steps);
    result["move"] = obs::JsonValue("throughput-parity");
    result["inline_tps"] = obs::JsonValue(inline_mode.tps);
    result["threaded_tps"] = obs::JsonValue(threaded_mode.tps);
    result["parity"] = obs::JsonValue(parity);
    result["identical"] = obs::JsonValue(all_clean);
    result["speedup"] = obs::JsonValue(all_clean ? 1.0 : 0.0);
    report.add_result(std::move(result));
  }
  report.capture_metrics();
  const Status written = report.write("BENCH_serve.json");
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write BENCH_serve.json: %s\n",
                 written.error().detail.c_str());
    return 1;
  }
  std::printf("\nwrote BENCH_serve.json (%zu JSONL lines)\n",
              report.line_count());
  return 0;
}
