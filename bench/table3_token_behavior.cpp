// Table III — behaviour of the ParoleToken in marketplace transactions.
//
// The paper deployed the PT on OpenSea (Optimism Goerli) and reports, for
// one mint / transfer / burn: tx hash, block number, L1 state index, gas
// usage (% of the tx gas limit) and tx fee. We push the same three
// transactions through the full simulated rollup pipeline (deposit ->
// mempool -> aggregator -> batch on L1) with fee metering on, and print the
// same columns. Gas percentages are calibrated to the paper (90.91 / 69.84 /
// 69.82); fees use per-tx gas prices because the testnet's price moved
// between the authors' transactions (see EXPERIMENTS.md).
#include <cstdio>
#include <string>

#include "parole/common/table.hpp"
#include "parole/rollup/node.hpp"

using namespace parole;

int main() {
  rollup::NodeConfig config;
  config.max_supply = 10;
  config.initial_price = eth(0, 200);
  config.exec.charge_fees = true;
  rollup::RollupNode node(config);
  node.add_aggregator({AggregatorId{0}, 1, std::nullopt, std::nullopt});
  node.add_verifier(VerifierId{0});

  node.fund_l1(UserId{1}, eth(5));
  node.fund_l1(UserId{2}, eth(5));
  if (!node.deposit(UserId{1}, eth(4)).ok() ||
      !node.deposit(UserId{2}, eth(4)).ok()) {
    std::fprintf(stderr, "deposit failed\n");
    return 1;
  }

  const vm::GasSchedule gas;
  // Per-tx gas prices chosen so the *fee* column reproduces the paper's
  // shape: the authors' mint landed when gas was ~3 orders of magnitude
  // cheaper than their transfer/burn.
  struct Step {
    vm::Tx tx;
    std::uint64_t gas_price_wei;
    const char* paper_fee;
    const char* paper_gas;
  };
  const Step steps[] = {
      {vm::Tx::make_mint(TxId{0}, UserId{1},
                         gas.fee_for(vm::TxKind::kMint, 1'855'315), 0),
       1'855'315, "253 Gwei", "90.91%"},
      {vm::Tx::make_transfer(TxId{1}, UserId{1}, UserId{2}, TokenId{0},
                             gas.fee_for(vm::TxKind::kTransfer, 1'355'479'191),
                             0),
       1'355'479'191, "142k Gwei", "69.84%"},
      {vm::Tx::make_burn(TxId{2}, UserId{2}, TokenId{0},
                         gas.fee_for(vm::TxKind::kBurn, 1'346'319'106), 0),
       1'346'319'106, "141k Gwei", "69.82%"},
  };

  TablePrinter table(
      "Table III: behaviour of ParoleToken transactions on the rollup");
  table.columns({"TX Type", "TX Hash", "Block Number", "L1 state index",
                 "Gas usage", "TX fees (gwei)", "paper gas", "paper fee"});

  // The paper's testnet indices start high; offset ours for familiarity.
  const std::uint64_t block_base = 17'934'498;
  const std::uint64_t state_base = 115'921;

  for (const Step& step : steps) {
    node.submit_tx(step.tx);
    const auto outcome = node.step();
    if (!outcome.produced_batch || outcome.challenged) {
      std::fprintf(stderr, "pipeline failure on %s\n",
                   std::string(vm::to_string(step.tx.kind)).c_str());
      return 1;
    }
    const rollup::Batch& batch = node.batches().back();
    const vm::Tx& executed = batch.txs.front();
    char gas_pct[16];
    std::snprintf(gas_pct, sizeof(gas_pct), "%.2f%%",
                  gas.usage_percent(executed.kind));
    table.row({std::string(vm::to_string(executed.kind)),
               executed.hash().short_hex(),
               std::to_string(block_base + node.l1().height()),
               std::to_string(state_base + batch.header.batch_id + 1),
               gas_pct,
               to_gwei_string(gas.fee_for(executed.kind,
                                          step.gas_price_wei)),
               step.paper_gas, step.paper_fee});
  }

  table.print();
  std::printf(
      "note: gas usage reproduces Table III exactly by calibration; fees "
      "reproduce its shape given the recorded per-tx gas prices.\n");
  return 0;
}
