file(REMOVE_RECURSE
  "CMakeFiles/fig10_nft_snapshots.dir/fig10_nft_snapshots.cpp.o"
  "CMakeFiles/fig10_nft_snapshots.dir/fig10_nft_snapshots.cpp.o.d"
  "fig10_nft_snapshots"
  "fig10_nft_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_nft_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
