# Empty compiler generated dependencies file for fig10_nft_snapshots.
# This may be replaced when dependencies are built.
