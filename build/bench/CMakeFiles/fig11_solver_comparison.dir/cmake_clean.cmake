file(REMOVE_RECURSE
  "CMakeFiles/fig11_solver_comparison.dir/fig11_solver_comparison.cpp.o"
  "CMakeFiles/fig11_solver_comparison.dir/fig11_solver_comparison.cpp.o.d"
  "fig11_solver_comparison"
  "fig11_solver_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_solver_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
