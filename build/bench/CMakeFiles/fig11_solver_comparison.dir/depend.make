# Empty dependencies file for fig11_solver_comparison.
# This may be replaced when dependencies are built.
