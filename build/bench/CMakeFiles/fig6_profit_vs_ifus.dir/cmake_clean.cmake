file(REMOVE_RECURSE
  "CMakeFiles/fig6_profit_vs_ifus.dir/fig6_profit_vs_ifus.cpp.o"
  "CMakeFiles/fig6_profit_vs_ifus.dir/fig6_profit_vs_ifus.cpp.o.d"
  "fig6_profit_vs_ifus"
  "fig6_profit_vs_ifus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_profit_vs_ifus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
