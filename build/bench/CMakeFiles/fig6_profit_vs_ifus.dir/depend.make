# Empty dependencies file for fig6_profit_vs_ifus.
# This may be replaced when dependencies are built.
