file(REMOVE_RECURSE
  "CMakeFiles/fig7_profit_vs_adversarial.dir/fig7_profit_vs_adversarial.cpp.o"
  "CMakeFiles/fig7_profit_vs_adversarial.dir/fig7_profit_vs_adversarial.cpp.o.d"
  "fig7_profit_vs_adversarial"
  "fig7_profit_vs_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_profit_vs_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
