# Empty compiler generated dependencies file for fig7_profit_vs_adversarial.
# This may be replaced when dependencies are built.
