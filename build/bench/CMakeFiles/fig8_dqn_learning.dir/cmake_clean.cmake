file(REMOVE_RECURSE
  "CMakeFiles/fig8_dqn_learning.dir/fig8_dqn_learning.cpp.o"
  "CMakeFiles/fig8_dqn_learning.dir/fig8_dqn_learning.cpp.o.d"
  "fig8_dqn_learning"
  "fig8_dqn_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dqn_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
