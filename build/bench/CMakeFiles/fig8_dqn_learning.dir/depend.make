# Empty dependencies file for fig8_dqn_learning.
# This may be replaced when dependencies are built.
