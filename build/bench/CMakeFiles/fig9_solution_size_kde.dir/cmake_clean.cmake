file(REMOVE_RECURSE
  "CMakeFiles/fig9_solution_size_kde.dir/fig9_solution_size_kde.cpp.o"
  "CMakeFiles/fig9_solution_size_kde.dir/fig9_solution_size_kde.cpp.o.d"
  "fig9_solution_size_kde"
  "fig9_solution_size_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_solution_size_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
