# Empty dependencies file for fig9_solution_size_kde.
# This may be replaced when dependencies are built.
