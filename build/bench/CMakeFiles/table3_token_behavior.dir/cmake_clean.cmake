file(REMOVE_RECURSE
  "CMakeFiles/table3_token_behavior.dir/table3_token_behavior.cpp.o"
  "CMakeFiles/table3_token_behavior.dir/table3_token_behavior.cpp.o.d"
  "table3_token_behavior"
  "table3_token_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_token_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
