# Empty dependencies file for table3_token_behavior.
# This may be replaced when dependencies are built.
