file(REMOVE_RECURSE
  "CMakeFiles/marketplace_attack.dir/marketplace_attack.cpp.o"
  "CMakeFiles/marketplace_attack.dir/marketplace_attack.cpp.o.d"
  "marketplace_attack"
  "marketplace_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
