# Empty dependencies file for marketplace_attack.
# This may be replaced when dependencies are built.
