file(REMOVE_RECURSE
  "CMakeFiles/parole_cli.dir/parole_cli.cpp.o"
  "CMakeFiles/parole_cli.dir/parole_cli.cpp.o.d"
  "parole_cli"
  "parole_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parole_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
