# Empty dependencies file for parole_cli.
# This may be replaced when dependencies are built.
