file(REMOVE_RECURSE
  "CMakeFiles/sequencer_attack.dir/sequencer_attack.cpp.o"
  "CMakeFiles/sequencer_attack.dir/sequencer_attack.cpp.o.d"
  "sequencer_attack"
  "sequencer_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequencer_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
