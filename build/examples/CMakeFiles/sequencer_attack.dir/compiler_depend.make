# Empty compiler generated dependencies file for sequencer_attack.
# This may be replaced when dependencies are built.
