file(REMOVE_RECURSE
  "CMakeFiles/snapshot_analysis.dir/snapshot_analysis.cpp.o"
  "CMakeFiles/snapshot_analysis.dir/snapshot_analysis.cpp.o.d"
  "snapshot_analysis"
  "snapshot_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
