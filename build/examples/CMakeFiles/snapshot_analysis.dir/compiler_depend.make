# Empty compiler generated dependencies file for snapshot_analysis.
# This may be replaced when dependencies are built.
