
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parole/chain/block.cpp" "src/CMakeFiles/parole.dir/parole/chain/block.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/chain/block.cpp.o.d"
  "/root/repo/src/parole/chain/bridge.cpp" "src/CMakeFiles/parole.dir/parole/chain/bridge.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/chain/bridge.cpp.o.d"
  "/root/repo/src/parole/chain/l1_chain.cpp" "src/CMakeFiles/parole.dir/parole/chain/l1_chain.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/chain/l1_chain.cpp.o.d"
  "/root/repo/src/parole/chain/orsc.cpp" "src/CMakeFiles/parole.dir/parole/chain/orsc.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/chain/orsc.cpp.o.d"
  "/root/repo/src/parole/common/amount.cpp" "src/CMakeFiles/parole.dir/parole/common/amount.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/common/amount.cpp.o.d"
  "/root/repo/src/parole/common/env.cpp" "src/CMakeFiles/parole.dir/parole/common/env.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/common/env.cpp.o.d"
  "/root/repo/src/parole/common/rng.cpp" "src/CMakeFiles/parole.dir/parole/common/rng.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/common/rng.cpp.o.d"
  "/root/repo/src/parole/common/stats.cpp" "src/CMakeFiles/parole.dir/parole/common/stats.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/common/stats.cpp.o.d"
  "/root/repo/src/parole/common/table.cpp" "src/CMakeFiles/parole.dir/parole/common/table.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/common/table.cpp.o.d"
  "/root/repo/src/parole/core/arbitrage.cpp" "src/CMakeFiles/parole.dir/parole/core/arbitrage.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/core/arbitrage.cpp.o.d"
  "/root/repo/src/parole/core/campaign.cpp" "src/CMakeFiles/parole.dir/parole/core/campaign.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/core/campaign.cpp.o.d"
  "/root/repo/src/parole/core/defense.cpp" "src/CMakeFiles/parole.dir/parole/core/defense.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/core/defense.cpp.o.d"
  "/root/repo/src/parole/core/encoding.cpp" "src/CMakeFiles/parole.dir/parole/core/encoding.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/core/encoding.cpp.o.d"
  "/root/repo/src/parole/core/forensics.cpp" "src/CMakeFiles/parole.dir/parole/core/forensics.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/core/forensics.cpp.o.d"
  "/root/repo/src/parole/core/gentranseq.cpp" "src/CMakeFiles/parole.dir/parole/core/gentranseq.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/core/gentranseq.cpp.o.d"
  "/root/repo/src/parole/core/parole_attack.cpp" "src/CMakeFiles/parole.dir/parole/core/parole_attack.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/core/parole_attack.cpp.o.d"
  "/root/repo/src/parole/core/reorder_env.cpp" "src/CMakeFiles/parole.dir/parole/core/reorder_env.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/core/reorder_env.cpp.o.d"
  "/root/repo/src/parole/crypto/hash.cpp" "src/CMakeFiles/parole.dir/parole/crypto/hash.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/crypto/hash.cpp.o.d"
  "/root/repo/src/parole/crypto/keccak256.cpp" "src/CMakeFiles/parole.dir/parole/crypto/keccak256.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/crypto/keccak256.cpp.o.d"
  "/root/repo/src/parole/crypto/merkle.cpp" "src/CMakeFiles/parole.dir/parole/crypto/merkle.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/crypto/merkle.cpp.o.d"
  "/root/repo/src/parole/crypto/sha256.cpp" "src/CMakeFiles/parole.dir/parole/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/crypto/sha256.cpp.o.d"
  "/root/repo/src/parole/crypto/smt.cpp" "src/CMakeFiles/parole.dir/parole/crypto/smt.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/crypto/smt.cpp.o.d"
  "/root/repo/src/parole/data/case_study.cpp" "src/CMakeFiles/parole.dir/parole/data/case_study.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/data/case_study.cpp.o.d"
  "/root/repo/src/parole/data/csv.cpp" "src/CMakeFiles/parole.dir/parole/data/csv.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/data/csv.cpp.o.d"
  "/root/repo/src/parole/data/kde.cpp" "src/CMakeFiles/parole.dir/parole/data/kde.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/data/kde.cpp.o.d"
  "/root/repo/src/parole/data/scanner.cpp" "src/CMakeFiles/parole.dir/parole/data/scanner.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/data/scanner.cpp.o.d"
  "/root/repo/src/parole/data/snapshot.cpp" "src/CMakeFiles/parole.dir/parole/data/snapshot.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/data/snapshot.cpp.o.d"
  "/root/repo/src/parole/data/workload.cpp" "src/CMakeFiles/parole.dir/parole/data/workload.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/data/workload.cpp.o.d"
  "/root/repo/src/parole/ml/dqn.cpp" "src/CMakeFiles/parole.dir/parole/ml/dqn.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/ml/dqn.cpp.o.d"
  "/root/repo/src/parole/ml/epsilon.cpp" "src/CMakeFiles/parole.dir/parole/ml/epsilon.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/ml/epsilon.cpp.o.d"
  "/root/repo/src/parole/ml/layers.cpp" "src/CMakeFiles/parole.dir/parole/ml/layers.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/ml/layers.cpp.o.d"
  "/root/repo/src/parole/ml/loss.cpp" "src/CMakeFiles/parole.dir/parole/ml/loss.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/ml/loss.cpp.o.d"
  "/root/repo/src/parole/ml/network.cpp" "src/CMakeFiles/parole.dir/parole/ml/network.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/ml/network.cpp.o.d"
  "/root/repo/src/parole/ml/optimizer.cpp" "src/CMakeFiles/parole.dir/parole/ml/optimizer.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/ml/optimizer.cpp.o.d"
  "/root/repo/src/parole/ml/replay_buffer.cpp" "src/CMakeFiles/parole.dir/parole/ml/replay_buffer.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/ml/replay_buffer.cpp.o.d"
  "/root/repo/src/parole/ml/serialize.cpp" "src/CMakeFiles/parole.dir/parole/ml/serialize.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/ml/serialize.cpp.o.d"
  "/root/repo/src/parole/ml/tensor.cpp" "src/CMakeFiles/parole.dir/parole/ml/tensor.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/ml/tensor.cpp.o.d"
  "/root/repo/src/parole/rollup/aggregator.cpp" "src/CMakeFiles/parole.dir/parole/rollup/aggregator.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/rollup/aggregator.cpp.o.d"
  "/root/repo/src/parole/rollup/codec.cpp" "src/CMakeFiles/parole.dir/parole/rollup/codec.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/rollup/codec.cpp.o.d"
  "/root/repo/src/parole/rollup/dispute.cpp" "src/CMakeFiles/parole.dir/parole/rollup/dispute.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/rollup/dispute.cpp.o.d"
  "/root/repo/src/parole/rollup/economics.cpp" "src/CMakeFiles/parole.dir/parole/rollup/economics.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/rollup/economics.cpp.o.d"
  "/root/repo/src/parole/rollup/fraud_proof.cpp" "src/CMakeFiles/parole.dir/parole/rollup/fraud_proof.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/rollup/fraud_proof.cpp.o.d"
  "/root/repo/src/parole/rollup/mempool.cpp" "src/CMakeFiles/parole.dir/parole/rollup/mempool.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/rollup/mempool.cpp.o.d"
  "/root/repo/src/parole/rollup/node.cpp" "src/CMakeFiles/parole.dir/parole/rollup/node.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/rollup/node.cpp.o.d"
  "/root/repo/src/parole/rollup/sequencer.cpp" "src/CMakeFiles/parole.dir/parole/rollup/sequencer.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/rollup/sequencer.cpp.o.d"
  "/root/repo/src/parole/rollup/verifier.cpp" "src/CMakeFiles/parole.dir/parole/rollup/verifier.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/rollup/verifier.cpp.o.d"
  "/root/repo/src/parole/rollup/witnessed_dispute.cpp" "src/CMakeFiles/parole.dir/parole/rollup/witnessed_dispute.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/rollup/witnessed_dispute.cpp.o.d"
  "/root/repo/src/parole/solvers/annealing.cpp" "src/CMakeFiles/parole.dir/parole/solvers/annealing.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/solvers/annealing.cpp.o.d"
  "/root/repo/src/parole/solvers/branch_bound.cpp" "src/CMakeFiles/parole.dir/parole/solvers/branch_bound.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/solvers/branch_bound.cpp.o.d"
  "/root/repo/src/parole/solvers/exhaustive.cpp" "src/CMakeFiles/parole.dir/parole/solvers/exhaustive.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/solvers/exhaustive.cpp.o.d"
  "/root/repo/src/parole/solvers/greedy.cpp" "src/CMakeFiles/parole.dir/parole/solvers/greedy.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/solvers/greedy.cpp.o.d"
  "/root/repo/src/parole/solvers/hill_climb.cpp" "src/CMakeFiles/parole.dir/parole/solvers/hill_climb.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/solvers/hill_climb.cpp.o.d"
  "/root/repo/src/parole/solvers/instrument.cpp" "src/CMakeFiles/parole.dir/parole/solvers/instrument.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/solvers/instrument.cpp.o.d"
  "/root/repo/src/parole/solvers/problem.cpp" "src/CMakeFiles/parole.dir/parole/solvers/problem.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/solvers/problem.cpp.o.d"
  "/root/repo/src/parole/solvers/random_search.cpp" "src/CMakeFiles/parole.dir/parole/solvers/random_search.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/solvers/random_search.cpp.o.d"
  "/root/repo/src/parole/solvers/tabu.cpp" "src/CMakeFiles/parole.dir/parole/solvers/tabu.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/solvers/tabu.cpp.o.d"
  "/root/repo/src/parole/token/ledger.cpp" "src/CMakeFiles/parole.dir/parole/token/ledger.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/token/ledger.cpp.o.d"
  "/root/repo/src/parole/token/nft.cpp" "src/CMakeFiles/parole.dir/parole/token/nft.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/token/nft.cpp.o.d"
  "/root/repo/src/parole/token/price_curve.cpp" "src/CMakeFiles/parole.dir/parole/token/price_curve.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/token/price_curve.cpp.o.d"
  "/root/repo/src/parole/vm/engine.cpp" "src/CMakeFiles/parole.dir/parole/vm/engine.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/vm/engine.cpp.o.d"
  "/root/repo/src/parole/vm/gas.cpp" "src/CMakeFiles/parole.dir/parole/vm/gas.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/vm/gas.cpp.o.d"
  "/root/repo/src/parole/vm/state.cpp" "src/CMakeFiles/parole.dir/parole/vm/state.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/vm/state.cpp.o.d"
  "/root/repo/src/parole/vm/tx.cpp" "src/CMakeFiles/parole.dir/parole/vm/tx.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/vm/tx.cpp.o.d"
  "/root/repo/src/parole/vm/witness.cpp" "src/CMakeFiles/parole.dir/parole/vm/witness.cpp.o" "gcc" "src/CMakeFiles/parole.dir/parole/vm/witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
