file(REMOVE_RECURSE
  "libparole.a"
)
