# Empty dependencies file for parole.
# This may be replaced when dependencies are built.
