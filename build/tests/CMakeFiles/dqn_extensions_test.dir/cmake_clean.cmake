file(REMOVE_RECURSE
  "CMakeFiles/dqn_extensions_test.dir/dqn_extensions_test.cpp.o"
  "CMakeFiles/dqn_extensions_test.dir/dqn_extensions_test.cpp.o.d"
  "dqn_extensions_test"
  "dqn_extensions_test.pdb"
  "dqn_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqn_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
