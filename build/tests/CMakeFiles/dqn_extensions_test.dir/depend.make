# Empty dependencies file for dqn_extensions_test.
# This may be replaced when dependencies are built.
