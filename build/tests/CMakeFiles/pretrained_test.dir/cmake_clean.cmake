file(REMOVE_RECURSE
  "CMakeFiles/pretrained_test.dir/pretrained_test.cpp.o"
  "CMakeFiles/pretrained_test.dir/pretrained_test.cpp.o.d"
  "pretrained_test"
  "pretrained_test.pdb"
  "pretrained_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretrained_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
