# Empty compiler generated dependencies file for pretrained_test.
# This may be replaced when dependencies are built.
