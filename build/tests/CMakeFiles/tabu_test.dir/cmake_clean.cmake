file(REMOVE_RECURSE
  "CMakeFiles/tabu_test.dir/tabu_test.cpp.o"
  "CMakeFiles/tabu_test.dir/tabu_test.cpp.o.d"
  "tabu_test"
  "tabu_test.pdb"
  "tabu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
