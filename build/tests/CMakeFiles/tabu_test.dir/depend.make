# Empty dependencies file for tabu_test.
# This may be replaced when dependencies are built.
