file(REMOVE_RECURSE
  "CMakeFiles/witnessed_dispute_test.dir/witnessed_dispute_test.cpp.o"
  "CMakeFiles/witnessed_dispute_test.dir/witnessed_dispute_test.cpp.o.d"
  "witnessed_dispute_test"
  "witnessed_dispute_test.pdb"
  "witnessed_dispute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witnessed_dispute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
