# Empty dependencies file for witnessed_dispute_test.
# This may be replaced when dependencies are built.
