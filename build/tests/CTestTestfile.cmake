# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/token_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/rollup_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/solvers_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/defense_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/case_study_test[1]_include.cmake")
include("/root/repo/build/tests/campaign_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sequencer_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/tabu_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/smt_test[1]_include.cmake")
include("/root/repo/build/tests/dqn_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/witnessed_dispute_test[1]_include.cmake")
include("/root/repo/build/tests/pretrained_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/reproduction_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/forensics_test[1]_include.cmake")
