// chaos_demo — the two headline degradations the chaos harness exists to
// expose, scripted deterministically with forced faults (DESIGN.md §9):
//
//   1. Reorderer failure: the adversarial reorderer times out mid-slot and
//      the batch ships in honest collection order — graceful degradation,
//      not a stall.
//   2. Verifier downtime vs the challenge window: a forged state commitment
//      finalizes if and only if EVERY verifier sleeps through the WHOLE
//      challenge window; one verifier waking a single step earlier catches
//      the fraud and cascades the revert.
//
// Both runs finish with the invariant checker's verdict: even finalized
// fraud leaves value conservation, supply caps, and L1 link integrity
// intact — it is a liveness failure of verification, not an accounting hole.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "parole/rollup/chaos.hpp"
#include "parole/rollup/node.hpp"

using namespace parole;
using namespace parole::rollup;

namespace {

NodeConfig demo_config() {
  NodeConfig config;
  config.orsc.challenge_period = 20;  // window = batch step + one more step
  config.max_supply = 200;
  return config;
}

void submit_mints(RollupNode& node, std::uint64_t count) {
  // Descending fees, so honest (fee-priority) order is detectable.
  for (std::uint64_t i = 0; i < count; ++i) {
    node.submit_tx(vm::Tx::make_mint(TxId{i}, UserId{1},
                                     gwei(10 + 10 * (count - i)), gwei(0)));
  }
}

void print_verdict(const RollupNode& node) {
  const auto& checker = node.chaos()->checker;
  std::printf("  fault log: %zu events\n%s", node.chaos()->log.size(),
              node.chaos()->log.to_string().c_str());
  if (checker.clean()) {
    std::printf("  invariants: all clean\n");
  } else {
    for (const auto& v : checker.violations()) {
      std::printf("  INVARIANT VIOLATION step %llu %s: %s\n",
                  static_cast<unsigned long long>(v.step),
                  std::string(to_string(v.kind)).c_str(), v.detail.c_str());
    }
  }
}

void scenario_reorderer_failure() {
  std::printf("=== 1. reorderer failure: graceful degradation ===\n");
  RollupNode node(demo_config());
  auto reverse = [](const vm::L2State&, std::vector<vm::Tx> txs) {
    std::reverse(txs.begin(), txs.end());
    return txs;
  };
  node.add_aggregator({AggregatorId{0}, 4, reverse, std::nullopt});
  node.fund_l1(UserId{1}, eth(90));
  (void)node.deposit(UserId{1}, eth(90));

  ChaosConfig chaos;
  chaos.forced.push_back({0, FaultKind::kReordererFailure, 0, 0});
  node.arm_chaos(chaos);
  submit_mints(node, 8);

  for (int step = 0; step < 2; ++step) {
    const StepOutcome outcome = node.step();
    const auto& txs = node.batches().back().txs;
    std::printf("  step %d: %s, fees [", step,
                outcome.reorderer_degraded ? "reorderer TIMED OUT, honest order"
                                           : "reorderer live, attack order");
    for (std::size_t i = 0; i < txs.size(); ++i) {
      std::printf("%s%llu", i ? " " : "",
                  static_cast<unsigned long long>(txs[i].total_fee()));
    }
    std::printf("]\n");
  }
  const DrainResult rest = node.run_until_drained();
  std::printf("  drained=%s, %llu NFTs live\n",
              rest.drained ? "yes" : "no",
              static_cast<unsigned long long>(node.state().nft().live_count()));
  print_verdict(node);
}

// One corrupt-aggregator run with both verifiers down for `down0`/`down1`
// steps from step 0; reports whether the forged batch finalized.
void run_downtime(std::uint64_t down0, std::uint64_t down1) {
  RollupNode node(demo_config());
  node.add_aggregator({AggregatorId{0}, 2, std::nullopt, /*corrupt=*/0});
  node.add_verifier(VerifierId{0});
  node.add_verifier(VerifierId{1});
  node.fund_l1(UserId{1}, eth(90));
  (void)node.deposit(UserId{1}, eth(90));

  ChaosConfig chaos;
  chaos.forced.push_back({0, FaultKind::kVerifierDown, 0, down0});
  chaos.forced.push_back({0, FaultKind::kVerifierDown, 1, down1});
  node.arm_chaos(chaos);
  submit_mints(node, 2);

  (void)node.step();
  (void)node.step();

  const auto* record = node.orsc().batch(0);
  std::printf(
      "  verifier 0 down %llu steps, verifier 1 down %llu steps -> batch 0 "
      "%s, aggregator bond %s\n",
      static_cast<unsigned long long>(down0),
      static_cast<unsigned long long>(down1),
      record->status == chain::BatchStatus::kFinalized ? "FINALIZED (forged "
                                                         "root stood)"
      : record->status == chain::BatchStatus::kReverted
          ? "REVERTED (fraud proven)"
          : "pending",
      node.orsc().aggregator_bond(AggregatorId{0}) > 0 ? "intact" : "slashed");
  print_verdict(node);
}

void scenario_verifier_downtime() {
  std::printf(
      "\n=== 2. forged commitment vs verifier downtime ===\n"
      "challenge window covers the batch's step plus one more\n");
  run_downtime(2, 2);  // everyone sleeps the whole window: fraud finalizes
  run_downtime(2, 1);  // one verifier wakes inside the window: fraud caught
}

}  // namespace

int main() {
  scenario_reorderer_failure();
  scenario_verifier_downtime();
  return 0;
}
