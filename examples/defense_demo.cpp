// Defense demo (Sec. VIII): GENTRANSEQ as a mempool-side detector.
//
// Screens the case-study batch: computes the worst-case extractable profit
// over every involved user, compares it against a priority-fee-derived
// threshold, defers the minimal set of transactions, and then demonstrates
// that the attack on the admitted batch is neutralized.
//
// Build & run:  ./build/examples/defense_demo
#include <cstdio>

#include "parole/core/defense.hpp"
#include "parole/core/forensics.hpp"
#include "parole/data/case_study.hpp"

using namespace parole;
namespace cs = data::case_study;

int main() {
  const vm::L2State state = cs::initial_state();
  auto batch = cs::original_txs();
  // Give the batch realistic priority fees so the threshold is meaningful.
  for (auto& tx : batch) tx.priority_fee = gwei(2'000);

  core::DefenseConfig config;
  config.search = core::ReordererKind::kHillClimb;
  config.threshold_fee_multiplier = 2.0;
  config.threshold_floor = gwei(10'000);
  core::MempoolDefense defense(config);

  std::printf("screening a batch of %zu transactions...\n\n", batch.size());
  const core::DefenseReport report = defense.screen(state, batch);

  std::printf("threshold (2x priority fees): %s\n",
              to_gwei_string(report.threshold).c_str());
  std::printf("worst-case extractable profit before: %s (%s ETH)\n",
              to_gwei_string(report.worst_case_before).c_str(),
              to_eth_string(report.worst_case_before).c_str());
  std::printf("defense triggered: %s\n\n",
              report.triggered ? "YES" : "no");

  if (!report.deferred.empty()) {
    std::printf("deferred to the block behind (%zu txs):\n",
                report.deferred.size());
    for (const auto& tx : report.deferred) {
      std::printf("  %s\n", tx.describe().c_str());
    }
  }
  std::printf("\nadmitted this block (%zu txs):\n", report.admitted.size());
  for (const auto& tx : report.admitted) {
    std::printf("  %s\n", tx.describe().c_str());
  }
  std::printf("\nworst-case extractable profit after: %s (%s ETH)\n",
              to_gwei_string(report.worst_case_after).c_str(),
              to_eth_string(report.worst_case_after).c_str());

  // Prove it: attack the admitted batch.
  core::Parole attacker({core::ReordererKind::kAnnealing, {}, solvers::Objective::kSumBalance, 99, {}});
  const core::AttackOutcome outcome =
      attacker.run(state, report.admitted, {cs::kIfu});
  std::printf(
      "\nPAROLE on the screened batch: profit %s (vs %s unscreened)\n",
      to_eth_string(outcome.profit()).c_str(),
      to_eth_string(report.worst_case_before).c_str());

  // Post-hoc audit: what the unscreened attack would have looked like to a
  // forensics pass over public batch data.
  core::Parole unscreened({core::ReordererKind::kAnnealing, {},
                           solvers::Objective::kSumBalance, 99, {}});
  auto stamped = cs::original_txs();
  Amount fee = gwei(800'000);
  for (auto& tx : stamped) {
    tx.base_fee = fee;
    fee -= gwei(50'000);
  }
  const auto attack = unscreened.run(state, stamped, {cs::kIfu});
  const core::BatchForensics forensics;
  const auto audit = forensics.analyze(state, attack.final_sequence);
  std::printf(
      "\nforensics on the unscreened PAROLE batch: fee-order deviation "
      "%.2f, top beneficiary U%u (+%s ETH), suspicion %.2f -> %s\n",
      audit.ordering_deviation,
      audit.beneficiaries.empty() ? 0u
                                  : audit.beneficiaries.front().user.value(),
      audit.beneficiaries.empty()
          ? "0"
          : to_eth_string(audit.beneficiaries.front().gain).c_str(),
      audit.suspicion, audit.flagged ? "FLAGGED" : "clean");
  return 0;
}
