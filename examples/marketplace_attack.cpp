// Marketplace attack: a full rollup with ten aggregators (one adversarial),
// verifiers, and a synthetic NFT-marketplace workload — the Sec. VII
// simulation at example scale.
//
// Shows the complete Fig. 3 flow: users deposit through the ORSC, submit
// trades to Bedrock's mempool, aggregators collect by fee priority, the
// adversarial aggregator routes its batches through PAROLE for a colluding
// IFU, verifiers re-execute everything — and find nothing to challenge —
// while the IFU's balance quietly outperforms the honest counterfactual.
//
// Build & run:  ./build/examples/marketplace_attack
#include <cstdio>

#include "parole/core/campaign.hpp"
#include "parole/data/workload.hpp"
#include "parole/rollup/economics.hpp"

using namespace parole;

int main() {
  core::CampaignConfig config;
  config.num_aggregators = 10;
  config.adversarial_fraction = 0.10;  // one adversarial aggregator
  config.mempool_size = 25;
  config.num_ifus = 1;
  config.rounds = 20;
  config.num_verifiers = 3;
  config.workload.num_users = 20;
  config.workload.max_supply = 50;
  config.workload.premint = 15;
  // Fees sized so batches actually pay for their L1 calldata (see the
  // economics summary at the end).
  config.workload.base_fee_min = gwei(40'000);
  config.workload.base_fee_max = gwei(90'000);
  config.workload.priority_fee_min = gwei(0);
  config.workload.priority_fee_max = gwei(60'000);
  config.parole.kind = core::ReordererKind::kAnnealing;
  config.seed = 2024;

  std::printf("marketplace: %zu users trading a %u-token limited edition\n",
              config.workload.num_users, config.workload.max_supply);
  std::printf(
      "rollup: %zu aggregators (%.0f%% adversarial, N=%zu per batch), %zu "
      "verifiers\n\n",
      config.num_aggregators, config.adversarial_fraction * 100,
      config.mempool_size, config.num_verifiers);

  core::AttackCampaign campaign(config);
  const core::CampaignResult result = campaign.run();

  std::printf("IFU (colluding user): U%u\n", result.ifus[0].value());
  std::printf("aggregation rounds: %zu, adversarial batches: %zu, of which "
              "%zu shipped a reordered sequence\n",
              config.rounds, result.adversarial_batches,
              result.reordered_batches);

  std::printf("\nper-adversarial-batch profit:\n");
  for (std::size_t i = 0; i < result.per_batch_profit.size(); ++i) {
    std::printf("  batch %zu: %s\n", i,
                to_gwei_string(result.per_batch_profit[i]).c_str());
  }
  std::printf("\ntotal IFU profit: %s (%s ETH) — with zero challenges "
              "raised: every reordered batch was honestly executed and "
              "committed, so the fraud-proof machinery has nothing to "
              "dispute.\n",
              to_gwei_string(result.total_profit).c_str(),
              to_eth_string(result.total_profit).c_str());

  // What posting one of these batches costs on L1, for context: the
  // aggregator business the adversary is hiding inside.
  data::WorkloadGenerator preview(config.workload, config.seed);
  auto sample_batch = preview.generate(config.mempool_size);
  const rollup::EconomicsModel economics;
  const rollup::BatchEconomics econ = economics.analyze(sample_batch);
  std::printf(
      "\nbatch economics (N=%zu): %zu calldata bytes (%.1fx compression), "
      "L1 cost %s, fee revenue %s, aggregator net %s\n",
      econ.tx_count, econ.encoded_bytes, econ.compression_ratio,
      to_gwei_string(econ.l1_cost).c_str(),
      to_gwei_string(econ.fee_revenue).c_str(),
      to_gwei_string(econ.aggregator_net).c_str());
  return 0;
}
