// parole_cli — a small command-line driver over the library, the entry point
// a downstream user would script against.
//
//   parole_cli attack                     attack the built-in case study
//   parole_cli attack <snapshots.csv>    attack every window of a CSV corpus
//   parole_cli scan <snapshots.csv>      Fig. 10-style scan of a CSV corpus
//   parole_cli gen <snapshots.csv> [n]   generate a synthetic corpus to CSV
//   parole_cli defend                    screen the case study (Sec. VIII)
//   parole_cli quickstart                solver + DQN + rollup smoke scenario
//   parole_cli chaos [seed] [steps]      seeded chaos run with all fault
//                                        families armed + invariant checker
//   parole_cli serve                     long-lived streaming daemon: heavy-
//                                        tailed tx ingest through supervised
//                                        pipeline stages with backpressure
//                                        and shedding; SIGTERM/SIGINT drain
//                                        gracefully (--inline 1 replays the
//                                        same schedule with no threads)
//   parole_cli campaign                  Fig. 6/7-style attack campaign
//   parole_cli train                     DQN training on the case study
//   parole_cli resume <dir>              resume a checkpointed run
//   parole_cli validate <report.jsonl>   schema-check a telemetry report
//   parole_cli profile <report.jsonl>    fold a trace report's spans into a
//                                        call-tree profile (hot-path table;
//                                        --collapsed <path> writes
//                                        flamegraph.pl/speedscope input)
//   parole_cli journal <report.jsonl> <txid>
//                                        print one transaction's lifecycle
//                                        timeline from a journaled report
//   parole_cli pnl <report.jsonl>        per-actor P&L table + collapsed
//                                        reason waterfall from a report's
//                                        value-flow lines (DESIGN.md §16)
//   parole_cli top <host:port>           refreshing terminal view of a live
//                                        run's /metrics + /healthz endpoint
//
// Global flags (any command):
//   --metrics <path>   write a RunReport JSONL metrics snapshot on exit
//   --trace <path>     arm the span recorder; write the trace JSONL on exit
//   --journal <path>   arm the tx lifecycle journal; node-running commands
//                      (quickstart, chaos) export it as JSONL txevent lines
//
// Live telemetry (DESIGN.md §13), any command:
//   --listen <port>         start the telemetry endpoint (0 = ephemeral; the
//                           bound port is printed as "telemetry: listening
//                           on 127.0.0.1:<port>")
//   --linger <ms>           keep serving for <ms> after the command finishes
//                           (the watchdog is disarmed first — a finished run
//                           is not a stalled one)
//   --watchdog-ms <ms>      arm the stall watchdog: no heartbeat from any
//                           stage for <ms> dumps the flight recorder and
//                           exits 3
//   --flight-recorder <p>   flight-bundle destination; also installs fatal-
//                           signal handlers that dump the bundle before dying
//   --pace-ms <ms>          chaos: sleep <ms> per step so a scrape sees a
//                           genuinely live workload
//   --inject-stall <ms>     chaos: sleep <ms> once, heartbeat-free, after the
//                           first step (watchdog self-test)
//   --inject-abort <step>   chaos: raise SIGABRT after <step> steps (flight-
//                           recorder crash drill)
//
// Checkpointing (DESIGN.md §10): `campaign`, `train` and `chaos` accept
// `--checkpoint <dir>` (cut rolling generations there), `--every <n>`
// (cadence in rounds/episodes/steps) and a `--kill-after-*` crash drill that
// SIGKILLs the process mid-run. `resume <dir>` reads the manifest, rebuilds
// the run from the checkpoint META, and continues to completion — the
// resumed output is identical to an uninterrupted run's.
//
// Exit code 0 on success, 1 on usage/errors.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "parole/common/table.hpp"
#include "parole/core/campaign.hpp"
#include "parole/core/defense.hpp"
#include "parole/core/gentranseq.hpp"
#include "parole/core/parole_attack.hpp"
#include "parole/crypto/sha256.hpp"
#include "parole/data/case_study.hpp"
#include "parole/data/csv.hpp"
#include "parole/data/scanner.hpp"
#include "parole/data/snapshot.hpp"
#include "parole/io/manifest.hpp"
#include "parole/ml/serialize.hpp"
#include "parole/obs/expose.hpp"
#include "parole/obs/flow.hpp"
#include "parole/obs/journal.hpp"
#include "parole/obs/profile.hpp"
#include "parole/obs/report.hpp"
#include "parole/obs/sampler.hpp"
#include "parole/obs/usage.hpp"
#include "parole/obs/watchdog.hpp"
#include "parole/rollup/chaos.hpp"
#include "parole/rollup/node.hpp"
#include "parole/serve/pipeline.hpp"

using namespace parole;
namespace cs = data::case_study;

namespace {

int usage() {
  // The telemetry block is the shared obs::kTelemetryFlagsUsage constant —
  // the usage-audit test keeps it in lockstep with parse_telemetry_flag.
  std::fprintf(
      stderr,
      "usage: parole_cli [telemetry flags] <command> [command flags]\n"
      "\n"
      "%s"
      "\n"
      "commands:\n"
      "  attack [snapshots.csv]\n"
      "  scan <snapshots.csv>\n"
      "  gen <snapshots.csv> [collections-per-cell]\n"
      "  defend\n"
      "  quickstart\n"
      "  chaos [seed] [steps] [--seats <n>] [--election rr|stake|auction]\n"
      "        [--checkpoint <dir>] [--every <steps>] [--kill-after-step <n>]\n"
      "        [--pace-ms <ms>] [--inject-stall <ms>] [--inject-abort <step>]\n"
      "  serve [--seed <n>] [--steps <n>] [--users <n>] [--batch <n>]\n"
      "        [--depth <n>] [--rate <f>] [--shape <f>] [--queue <n>]\n"
      "        [--chaos 0|1] [--p-stage-fault <f>] [--inline 1]\n"
      "        [--seats <n>] [--election rr|stake|auction]\n"
      "        [--checkpoint <dir>] [--every <steps>] [--kill-after-step <n>]\n"
      "        [--pace-ms <ms>]\n"
      "  campaign [--aggregators <n>] [--fraction <f>] [--mempool <n>]\n"
      "        [--rounds <n>] [--ifus <n>] [--seed <n>] [--threads <n>]\n"
      "        [--seats <n>] [--election rr|stake|auction]\n"
      "        [--checkpoint <dir>] [--every <rounds>] "
      "[--kill-after-round <n>]\n"
      "  train [--episodes <n>] [--seed <n>] [--checkpoint <dir>]\n"
      "        [--every <episodes>] [--kill-after-episode <n>]\n"
      "  resume <dir>\n"
      "  validate <report.jsonl>\n"
      "  profile <report.jsonl> [--collapsed <path>]\n"
      "  journal <report.jsonl> <txid>\n"
      "  pnl <report.jsonl>\n"
      "  top <host:port> [--interval-ms <n>] [--iterations <n>]\n"
      "\n"
      "--seats N arms decentralized sequencing with N bonded seats; "
      "--election\n"
      "picks the leader-election model (default rr).\n",
      obs::kTelemetryFlagsUsage);
  return 1;
}

// "--name value" pairs plus positional leftovers; a trailing --flag with no
// value is a usage error surfaced by the caller via the `bad` flag.
struct Flags {
  std::map<std::string, std::string> named;
  std::vector<std::string> positional;
  bool bad{false};
};

Flags parse_flags(const std::vector<std::string>& args, std::size_t begin) {
  Flags flags;
  for (std::size_t i = begin; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) == 0) {
      if (i + 1 >= args.size()) {
        flags.bad = true;
        return flags;
      }
      const std::string name = args[i].substr(2);
      flags.named[name] = args[++i];
    } else {
      flags.positional.push_back(args[i]);
    }
  }
  return flags;
}

std::uint64_t flag_u64(const Flags& flags, const std::string& name,
                       std::uint64_t fallback) {
  const auto it = flags.named.find(name);
  if (it == flags.named.end()) return fallback;
  return std::strtoull(it->second.c_str(), nullptr, 0);
}

double flag_f64(const Flags& flags, const std::string& name, double fallback) {
  const auto it = flags.named.find(name);
  if (it == flags.named.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string flag_str(const Flags& flags, const std::string& name,
                     std::string fallback) {
  const auto it = flags.named.find(name);
  return it == flags.named.end() ? fallback : it->second;
}

int fail(const Error& error) {
  std::fprintf(stderr, "error: %s: %s\n", error.code.c_str(),
               error.detail.c_str());
  return 1;
}

// --seats / --election for the consensus-armed commands (chaos, serve,
// campaign). `armed` is true when either flag appeared; an unknown model
// name is a usage error (printed here, caller returns 1).
bool parse_consensus_flags(const Flags& flags, std::size_t& seats,
                           rollup::ElectionModel& model, bool& armed) {
  seats = static_cast<std::size_t>(flag_u64(flags, "seats", 0));
  const std::string election = flag_str(flags, "election", "");
  armed = seats > 0 || !election.empty();
  model = rollup::ElectionModel::kRoundRobin;
  if (!election.empty()) {
    const auto parsed = rollup::parse_election_model(election);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "error: usage: unknown election model '%s' "
                   "(want rr, stake, or auction)\n",
                   election.c_str());
      return false;
    }
    model = *parsed;
  }
  return true;
}

// Telemetry wiring shared by every subcommand — the exit-report sinks
// (--metrics/--trace/--journal) and the live layer (--listen/--watchdog-ms/
// --flight-recorder/--linger), parsed once by parse_telemetry_flag() in
// main()'s pre-pass so every command accepts them uniformly.
struct TelemetryOptions {
  std::string metrics_path;   // RunReport metrics snapshot on exit
  std::string trace_path;     // span trace JSONL on exit
  std::string journal_path;   // tx lifecycle journal JSONL on exit
  bool listen{false};         // --listen given (port 0 = ephemeral)
  std::uint16_t listen_port{0};
  std::uint64_t linger_ms{0};    // keep serving after the command finishes
  std::uint64_t watchdog_ms{0};  // stall deadline; 0 = watchdog off
  std::string flight_path;       // flight bundle destination
  std::uint64_t pace_ms{0};      // chaos: per-step sleep for live scrapes
  std::uint64_t inject_stall_ms{0};  // chaos: heartbeat-free sleep (self-test)
  std::uint64_t inject_abort_step{0};  // chaos: SIGABRT after N steps (drill)
};

TelemetryOptions g_telemetry;
bool g_journal_written = false;

// Live endpoint state: the sampler feeds the server; both outlive every
// command and are torn down (after an optional linger) by
// finish_live_telemetry().
std::unique_ptr<obs::MetricsSampler> g_sampler;
std::unique_ptr<obs::TelemetryServer> g_server;

// Consume one "--flag value" telemetry pair at argv[i]; returns false when
// argv[i] is not a telemetry flag, sets `bad` when the value is missing.
bool parse_telemetry_flag(int argc, char** argv, int& i,
                          TelemetryOptions& options, bool& bad) {
  const std::string arg = argv[i];
  std::string* string_slot = nullptr;
  std::uint64_t* u64_slot = nullptr;
  if (arg == "--metrics") {
    string_slot = &options.metrics_path;
  } else if (arg == "--trace") {
    string_slot = &options.trace_path;
  } else if (arg == "--journal") {
    string_slot = &options.journal_path;
  } else if (arg == "--flight-recorder") {
    string_slot = &options.flight_path;
  } else if (arg == "--linger") {
    u64_slot = &options.linger_ms;
  } else if (arg == "--watchdog-ms") {
    u64_slot = &options.watchdog_ms;
  } else if (arg == "--pace-ms") {
    u64_slot = &options.pace_ms;
  } else if (arg == "--inject-stall") {
    u64_slot = &options.inject_stall_ms;
  } else if (arg == "--inject-abort") {
    u64_slot = &options.inject_abort_step;
  } else if (arg == "--listen") {
    if (i + 1 >= argc) {
      bad = true;
      return true;
    }
    options.listen = true;
    options.listen_port =
        static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 0));
    return true;
  } else {
    return false;
  }
  if (i + 1 >= argc) {
    bad = true;
    return true;
  }
  if (string_slot != nullptr) *string_slot = argv[++i];
  if (u64_slot != nullptr) *u64_slot = std::strtoull(argv[++i], nullptr, 0);
  return true;
}

// Arm the live layer per g_telemetry: sampler + endpoint (--listen), stall
// watchdog (--watchdog-ms) and fatal-signal flight dumps (--flight-recorder).
// The "telemetry: listening on" line is a contract — CI starts runs with
// --listen 0 and greps the bound port out of the log.
int start_live_telemetry() {
  if (g_telemetry.listen) {
    g_sampler = std::make_unique<obs::MetricsSampler>();
    g_sampler->start();
    g_server = std::make_unique<obs::TelemetryServer>(*g_sampler);
    obs::ServerConfig server_config;
    server_config.port = g_telemetry.listen_port;
    if (const Status started = g_server->start(server_config); !started.ok()) {
      return fail(started.error());
    }
    std::printf("telemetry: listening on 127.0.0.1:%u\n", g_server->port());
    std::fflush(stdout);
  }
  if (g_telemetry.watchdog_ms != 0) {
    obs::WatchdogConfig config;
    config.deadline_ms = g_telemetry.watchdog_ms;
    config.flight_path = g_telemetry.flight_path;
    obs::StallWatchdog::instance().arm(config);
  }
  if (!g_telemetry.flight_path.empty()) {
    obs::StallWatchdog::instance().install_signal_handlers(
        g_telemetry.flight_path);
  }
  return 0;
}

// Optional linger (so a scraper can read the final state of a short run),
// then teardown. The watchdog is disarmed *before* the linger: a finished
// run going all-quiet is not a stall.
void finish_live_telemetry() {
  obs::StallWatchdog::instance().disarm();
  if (g_server && g_telemetry.linger_ms != 0) {
    std::printf("telemetry: lingering %llu ms\n",
                static_cast<unsigned long long>(g_telemetry.linger_ms));
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(g_telemetry.linger_ms));
  }
  if (g_server) g_server->stop();
  g_server.reset();
  g_sampler.reset();
}

// Points /journal/tail and the flight bundle at the active node's journal
// for the node's lifetime; both references are cleared before the node dies.
struct NodeTelemetryScope {
  explicit NodeTelemetryScope(const rollup::RollupNode& node) {
    if (g_server) g_server->set_journal(&node.journal());
    obs::StallWatchdog::instance().set_journal(&node.journal());
  }
  ~NodeTelemetryScope() {
    if (g_server) g_server->set_journal(nullptr);
    obs::StallWatchdog::instance().set_journal(nullptr);
  }
};

int write_journal_report(const std::string& command,
                         const rollup::RollupNode& node) {
  // Node-running commands export the journal themselves (the node — and with
  // it the journal — is gone by the time the shared write_reports() runs).
  const std::string& journal_path = g_telemetry.journal_path;
  if (journal_path.empty()) return 0;
  obs::RunReport report("parole_cli." + command + ".journal");
  report.set_meta("command", obs::JsonValue(command));
  report.capture_journal(node.journal());
  const Status written = report.write(journal_path);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.error().detail.c_str());
    return 1;
  }
  g_journal_written = true;
  std::printf("journal written to %s (%zu lines)\n", journal_path.c_str(),
              report.line_count());
  return 0;
}

// Causal-chain audit summary plus the first open-chain issues, if any. A
// non-clean audit at quiescence means a lifecycle emission site is missing —
// the chaos soak test asserts the same property mechanically.
void print_journal_audit(const rollup::RollupNode& node) {
  const obs::TxJournal::Audit audit = node.journal().audit();
  std::printf(
      "  journal: %zu events (%llu evicted), %zu txs collected, %zu complete "
      "chains -> %s%s\n",
      node.journal().size(),
      static_cast<unsigned long long>(node.journal().evicted()),
      audit.txs_collected, audit.txs_complete, audit.ok ? "clean" : "BROKEN",
      audit.truncated ? " (truncated)" : "");
  for (std::size_t i = 0; i < audit.issues.size() && i < 4; ++i) {
    std::printf("    issue: %s\n", audit.issues[i].c_str());
  }
}

void print_tx_timeline(const rollup::RollupNode& node, std::uint64_t tx) {
  std::printf("  timeline of tx %llu:\n",
              static_cast<unsigned long long>(tx));
  for (const obs::TxEvent& event : node.journal().events_for_tx(tx)) {
    std::printf("    step %3llu  %-14s",
                static_cast<unsigned long long>(event.step),
                std::string(obs::to_string(event.kind)).c_str());
    if (event.batch != obs::kNoBatch) {
      std::printf("  batch %llu",
                  static_cast<unsigned long long>(event.batch));
    }
    if (event.kind == obs::TxEventKind::kReordered) {
      std::printf("  %llu -> %llu", static_cast<unsigned long long>(event.a),
                  static_cast<unsigned long long>(event.b));
    }
    std::printf("\n");
  }
}

int cmd_attack_case_study() {
  core::ParoleConfig config;
  config.kind = core::ReordererKind::kAnnealing;
  core::Parole parole(config);
  const core::AttackOutcome outcome =
      parole.run(cs::initial_state(), cs::original_txs(), {cs::kIfu});
  std::printf("case study: baseline %s ETH -> achieved %s ETH (profit %s)\n",
              to_eth_string(outcome.baseline).c_str(),
              to_eth_string(outcome.achieved).c_str(),
              to_eth_string(outcome.profit()).c_str());
  return 0;
}

// Replay a snapshot's events as mintable transactions is out of scope for a
// CLI demo; instead report, per collection, the best re-ordering window the
// scanner finds — the actionable output an attacker (or auditor) wants.
int cmd_attack_csv(const std::string& path) {
  const auto corpus = data::load_csv(path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.error().detail.c_str());
    return 1;
  }
  const data::SnapshotScanner scanner;
  for (const auto& snap : corpus.value()) {
    const auto report = scanner.scan(snap);
    if (report.opportunities.empty()) continue;
    const auto best = *std::max_element(
        report.opportunities.begin(), report.opportunities.end(),
        [](const auto& a, const auto& b) { return a.profit < b.profit; });
    std::printf(
        "%s (%s/%s): best window at event %zu, spread %s ETH over %zu "
        "tokens, est. profit %s ETH\n",
        snap.contract.short_hex().c_str(),
        std::string(data::to_string(snap.chain)).c_str(),
        std::string(data::to_string(snap.band)).c_str(), best.start_event,
        to_eth_string(best.max_price - best.min_price).c_str(),
        best.tradable_tokens, to_eth_string(best.profit).c_str());
  }
  return 0;
}

int cmd_scan(const std::string& path) {
  const auto corpus = data::load_csv(path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.error().detail.c_str());
    return 1;
  }
  const data::SnapshotScanner scanner;
  for (const auto& cell : scanner.summarize(corpus.value())) {
    std::printf("%-8s %-4s: %zu collections, total %.3f ETH, rate %.2f\n",
                std::string(data::to_string(cell.chain)).c_str(),
                std::string(data::to_string(cell.band)).c_str(),
                cell.collections, to_eth_double(cell.total_profit),
                cell.opportunity_rate);
  }
  return 0;
}

int cmd_gen(const std::string& path, std::size_t per_cell) {
  data::SnapshotGenerator generator({}, 0xc11);
  const auto corpus = generator.generate_corpus(per_cell);
  const Status saved = data::save_csv(corpus, path);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.error().detail.c_str());
    return 1;
  }
  std::size_t events = 0;
  for (const auto& snap : corpus) events += snap.events.size();
  std::printf("wrote %zu collections (%zu events) to %s\n", corpus.size(),
              events, path.c_str());
  return 0;
}

int cmd_defend() {
  core::DefenseConfig config;
  config.search = core::ReordererKind::kHillClimb;
  config.threshold_floor = eth(0, 50);
  config.threshold_fee_multiplier = 0.0;
  core::MempoolDefense defense(config);
  const core::DefenseReport report =
      defense.screen(cs::initial_state(), cs::original_txs());
  std::printf(
      "worst case %s ETH vs threshold %s ETH -> %s; deferred %zu of 8 txs, "
      "residual %s ETH\n",
      to_eth_string(report.worst_case_before).c_str(),
      to_eth_string(report.threshold).c_str(),
      report.triggered ? "TRIGGERED" : "pass",
      report.deferred.size(),
      to_eth_string(report.worst_case_after).c_str());
  return 0;
}

// Value-flow lines of the last node-running command (DESIGN.md §16),
// snapshotted before the node dies so write_reports can emit them into the
// --metrics report as schema "flow" lines (rendered by `parole_cli pnl`).
std::vector<obs::JsonObject> g_flow_lines;

// One small pass through each instrumented pipeline — solver search, DQN
// training, rollup campaign — so a single run populates counters from every
// module. Sized to finish in seconds; pair with --metrics/--trace to get the
// telemetry files the docs and CI consume.
int cmd_quickstart() {
  core::ParoleConfig attack_config;
  attack_config.kind = core::ReordererKind::kAnnealing;
  core::Parole parole(attack_config);
  const core::AttackOutcome outcome =
      parole.run(cs::initial_state(), cs::original_txs(), {cs::kIfu});
  std::printf("[solvers] case-study profit %s ETH (annealing)\n",
              to_eth_string(outcome.profit()).c_str());

  const solvers::ReorderingProblem problem = cs::make_problem();
  core::GenTranSeqConfig gen_config;
  gen_config.dqn.episodes = 4;
  gen_config.dqn.steps_per_episode = 25;
  gen_config.dqn.hidden = {16, 16};
  gen_config.dqn.minibatch = 8;
  gen_config.dqn.replay_capacity = 256;
  core::GenTranSeq gentranseq(problem, gen_config, 0x9a601eULL);
  const core::TrainResult train = gentranseq.train();
  std::printf("[ml] DQN trained %zu episodes, best balance %s ETH%s\n",
              train.episode_rewards.size(),
              to_eth_string(train.best_balance).c_str(),
              train.found_profit ? " (profit found)" : "");

  core::CampaignConfig campaign_config;
  campaign_config.num_aggregators = 3;
  campaign_config.adversarial_fraction = 0.34;
  campaign_config.mempool_size = 12;
  campaign_config.rounds = 6;
  campaign_config.audit = true;
  core::AttackCampaign campaign(campaign_config);
  const core::CampaignResult campaign_result = campaign.run();
  std::printf(
      "[rollup] campaign: %zu adversarial batches, %zu reordered, total "
      "profit %s ETH\n",
      campaign_result.adversarial_batches, campaign_result.reordered_batches,
      to_eth_string(campaign_result.total_profit).c_str());

  // A small honest/adversarial node run to quiescence — with --journal armed
  // this is the walkthrough the README traces: every submitted transaction's
  // chain closes with exactly one terminal event.
  rollup::NodeConfig node_config;
  node_config.orsc.challenge_period = 8;
  node_config.max_supply = 64;
  rollup::RollupNode node(node_config);
  NodeTelemetryScope telemetry_scope(node);
  auto reverse = [](const vm::L2State&, std::vector<vm::Tx> txs) {
    std::reverse(txs.begin(), txs.end());
    return txs;
  };
  node.add_aggregator({AggregatorId{0}, 4, reverse, std::nullopt});
  node.add_aggregator({AggregatorId{1}, 4, std::nullopt, std::nullopt});
  node.add_verifier(VerifierId{0});
  node.fund_l1(UserId{1}, eth(100));
  node.fund_l1(UserId{2}, eth(100));
  if (!node.deposit(UserId{1}, eth(100)).ok() ||
      !node.deposit(UserId{2}, eth(100)).ok()) {
    std::fprintf(stderr, "error: seeding deposits failed\n");
    return 1;
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    node.submit_tx(
        vm::Tx::make_mint(TxId{0}, UserId{1 + i % 2}, gwei(25), gwei(i)));
  }
  const rollup::DrainResult drained = node.run_to_quiescence();
  g_flow_lines = node.flow().report_lines();
  std::printf("[lifecycle] 10 txs -> %zu batches over %zu steps%s\n",
              node.batches().size(), drained.steps(),
              drained.drained ? "" : " (truncated)");
  if (obs::TxJournal::enabled()) {
    print_journal_audit(node);
    print_tx_timeline(node, 1);  // first assigned tx id (0 is the sentinel)
  }
  if (const int rc = write_journal_report("quickstart", node); rc != 0) {
    return rc;
  }

  if (!obs::MetricsRegistry::instance().snapshot().empty()) {
    std::printf("\n%s", obs::metrics_table().c_str());
  }
  return 0;
}

// Fault log of the last `chaos` run; write_reports serializes it into the
// --metrics report so the JSONL artifact carries the reproducibility record.
FaultLog g_chaos_log;

// Checkpoint knobs shared by the long-running commands.
struct CheckpointCliOptions {
  std::string dir;            // empty = checkpointing off
  std::uint64_t every{10};    // cadence (rounds / episodes / steps)
  std::uint64_t kill_after{0};  // crash drill: SIGKILL after N units (0 = off)
};

constexpr std::uint32_t kChaosExtraTag = io::section_tag("CHEX");

// A fully armed chaos run: mixed honest/corrupt aggregator fleet, two
// verifiers, every fault family at a nonzero rate, invariant checker on.
// The same seed always yields the same batches, faults, and verdict — and a
// run killed between checkpoints resumes to the same verdict.
int cmd_chaos(std::uint64_t seed, std::uint64_t steps, std::size_t seats,
              rollup::ElectionModel election, const CheckpointCliOptions& ckpt) {
  rollup::NodeConfig node_config;
  node_config.orsc.challenge_period = 20;
  node_config.max_supply = 4096;
  rollup::RollupNode node(node_config);
  NodeTelemetryScope telemetry_scope(node);
  // Aggregator 0 runs an (artless) adversarial reorderer so the
  // reorderer-failure fault family has something to degrade.
  auto reverse = [](const vm::L2State&, std::vector<vm::Tx> txs) {
    std::reverse(txs.begin(), txs.end());
    return txs;
  };
  node.add_aggregator({AggregatorId{0}, 4, reverse, std::nullopt});
  node.add_aggregator({AggregatorId{1}, 4, std::nullopt, std::nullopt});
  node.add_aggregator({AggregatorId{2}, 4, std::nullopt, /*corrupt=*/1});
  node.add_verifier(VerifierId{0});
  node.add_verifier(VerifierId{1});
  if (seats > 0) {
    for (std::size_t s = node.aggregator_count(); s < seats; ++s) {
      node.add_aggregator({AggregatorId{static_cast<std::uint32_t>(s)}, 4,
                           std::nullopt, std::nullopt});
    }
    rollup::ConsensusConfig consensus;
    consensus.model = election;
    consensus.seed ^= seed;
    node.arm_consensus(std::move(consensus));
  }
  node.fund_l1(UserId{1}, eth(500));
  node.fund_l1(UserId{2}, eth(500));
  if (!node.deposit(UserId{1}, eth(500)).ok() ||
      !node.deposit(UserId{2}, eth(500)).ok()) {
    std::fprintf(stderr, "error: seeding deposits failed\n");
    return 1;
  }

  rollup::ChaosConfig chaos;
  chaos.seed = seed;
  chaos.p_aggregator_crash = 0.08;
  chaos.p_reorderer_failure = 0.1;
  chaos.p_verifier_down = 0.2;
  chaos.p_tx_drop = 0.05;
  chaos.p_tx_duplicate = 0.05;
  chaos.p_tx_delay = 0.08;
  chaos.p_l1_reorg = 0.04;
  if (seats > 0) {
    // Leader-fault families only make sense with consensus armed: crash the
    // slot leader mid-batch, drop/delay its election message, and replay a
    // stale-view double-propose so equivocation slashing gets exercised.
    chaos.p_leader_crash = 0.06;
    chaos.p_election_msg_drop = 0.05;
    chaos.p_election_msg_delay = 0.05;
    chaos.p_stale_view_double_propose = 0.04;
  }
  node.arm_chaos(chaos);

  std::uint64_t tx_id = 0;
  std::uint64_t start_step = 0;
  std::size_t challenges = 0, frauds = 0;

  std::optional<io::CheckpointManager> manager;
  if (!ckpt.dir.empty()) {
    manager.emplace(ckpt.dir, "chaos", 3);
    if (manager->has_checkpoint()) {
      auto loaded = manager->load_latest();
      if (!loaded.ok()) return fail(loaded.error());
      const io::Checkpoint& cp = loaded.value().checkpoint;
      auto meta = cp.meta();
      if (!meta.ok()) return fail(meta.error());
      const auto kind = meta.value().find("kind");
      if (kind == meta.value().end() || !kind->second.is_string() ||
          kind->second.as_string() != "chaos-soak") {
        return fail(Error{"config_mismatch",
                          "checkpoint is not a chaos-soak checkpoint"});
      }
      auto extra = cp.reader(kChaosExtraTag);
      if (!extra.ok()) return fail(extra.error());
      io::ByteReader& r = extra.value();
      std::uint64_t saved_seed = 0, saved_steps = 0;
      std::uint64_t saved_challenges = 0, saved_frauds = 0;
      if (!r.u64(saved_seed) || !r.u64(saved_steps) || !r.u64(start_step) ||
          !r.u64(tx_id) || !r.u64(saved_challenges) || !r.u64(saved_frauds) ||
          !r.finish("CHEX section").ok()) {
        return fail(Error{"corrupt_checkpoint", "bad CHEX section"});
      }
      if (saved_seed != seed || saved_steps != steps) {
        return fail(Error{"config_mismatch",
                          "checkpoint was cut under a different seed/steps"});
      }
      if (Status s = node.restore_snapshot(cp); !s.ok()) {
        return fail(s.error());
      }
      challenges = static_cast<std::size_t>(saved_challenges);
      frauds = static_cast<std::size_t>(saved_frauds);
    }
  }

  for (std::uint64_t step = start_step; step < steps; ++step) {
    node.submit_tx(vm::Tx::make_mint(
        TxId{tx_id++}, UserId{1 + static_cast<std::uint32_t>(step % 2)},
        gwei(25), gwei(step % 11)));
    const rollup::StepOutcome outcome = node.step();
    challenges += outcome.challenged;
    frauds += outcome.fraud_proven;

    // Live-telemetry knobs: --pace-ms keeps the workload alive long enough
    // for a scraper to watch it; the two --inject-* drills are CI's watchdog
    // self-test (all-quiet sleep -> stall -> exit 3) and flight-recorder
    // crash drill (SIGABRT -> signal handler dumps the bundle -> exit 134).
    if (g_telemetry.pace_ms != 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(g_telemetry.pace_ms));
    }
    if (g_telemetry.inject_stall_ms != 0 && step == start_step) {
      std::printf("chaos: injecting %llu ms heartbeat-free stall\n",
                  static_cast<unsigned long long>(g_telemetry.inject_stall_ms));
      std::fflush(stdout);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(g_telemetry.inject_stall_ms));
    }
    if (g_telemetry.inject_abort_step != 0 &&
        step + 1 - start_step >= g_telemetry.inject_abort_step) {
      std::printf("chaos: injecting SIGABRT after step %llu\n",
                  static_cast<unsigned long long>(step + 1));
      std::fflush(stdout);
      std::abort();
    }

    if (manager.has_value() &&
        ((ckpt.every != 0 && (step + 1) % ckpt.every == 0) ||
         step + 1 == steps)) {
      io::CheckpointBuilder builder;
      obs::JsonObject meta;
      meta["kind"] = "chaos-soak";
      meta["seed"] = seed;
      meta["steps"] = steps;
      meta["next_step"] = step + 1;
      meta["seats"] = static_cast<std::uint64_t>(seats);
      meta["election"] = std::string(rollup::to_string(election));
      builder.set_meta(meta);
      node.save_snapshot(builder);
      io::ByteWriter& w = builder.section(kChaosExtraTag);
      w.u64(seed);
      w.u64(steps);
      w.u64(step + 1);
      w.u64(tx_id);
      w.u64(challenges);
      w.u64(frauds);
      auto generation = manager->save(builder);
      if (!generation.ok()) return fail(generation.error());
    }
    if (ckpt.kill_after != 0 && step + 1 - start_step >= ckpt.kill_after &&
        step + 1 < steps) {
      // Crash drill: die hard, exactly as the CI kill-and-resume job does.
      std::fflush(stdout);
      raise(SIGKILL);
    }
  }
  // Quiescence (not just a mempool drain): committed batches must finalize
  // or revert before the run ends, so every journaled chain can close.
  const rollup::DrainResult drained = node.run_to_quiescence(4 * steps);

  const auto& runtime = *node.chaos();
  g_chaos_log = runtime.log;
  g_flow_lines = node.flow().report_lines();
  std::printf("chaos seed 0x%llx: %llu steps + %zu drain steps%s\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(steps), drained.steps(),
              drained.drained ? "" : " (drain truncated)");
  std::printf(
      "  batches %zu, challenges %zu (%zu fraud), crashes %zu, reorderer "
      "failures %zu, verifier-down steps %zu\n",
      node.batches().size(), challenges, frauds,
      runtime.log.count(FaultKind::kAggregatorCrash),
      runtime.log.count(FaultKind::kReordererFailure),
      runtime.log.count(FaultKind::kVerifierDown));
  std::printf(
      "  tx faults: %zu dropped, %zu duplicated, %zu delayed; L1 reorgs %zu\n",
      runtime.log.count(FaultKind::kTxDrop),
      runtime.log.count(FaultKind::kTxDuplicate),
      runtime.log.count(FaultKind::kTxDelay),
      runtime.log.count(FaultKind::kL1Reorg));
  if (const rollup::ConsensusEngine* consensus = node.consensus()) {
    std::printf(
        "  consensus: %zu seats (%s), %zu view changes, %zu equivocations; "
        "leader crashes %zu, msg drops %zu, msg delays %zu, stale proposes "
        "%zu\n",
        consensus->seat_count(),
        std::string(rollup::to_string(consensus->config().model)).c_str(),
        consensus->view_changes().size(), consensus->equivocations().size(),
        runtime.log.count(FaultKind::kLeaderCrashMidBatch),
        runtime.log.count(FaultKind::kElectionMsgDrop),
        runtime.log.count(FaultKind::kElectionMsgDelay),
        runtime.log.count(FaultKind::kStaleViewDoublePropose));
  }
  if (obs::TxJournal::enabled()) print_journal_audit(node);
  if (const int journal_rc = write_journal_report("chaos", node);
      journal_rc != 0) {
    return journal_rc;
  }
  if (runtime.checker.clean()) {
    std::printf("  invariants: all clean over %llu checked steps\n",
                static_cast<unsigned long long>(steps) +
                    static_cast<unsigned long long>(drained.steps()));
    return 0;
  }
  for (const auto& v : runtime.checker.violations()) {
    std::printf("  INVARIANT VIOLATION step %llu %s: %s\n",
                static_cast<unsigned long long>(v.step),
                std::string(rollup::to_string(v.kind)).c_str(),
                v.detail.c_str());
  }
  return 1;
}

// The serve daemon (DESIGN.md §14): the rollup node behind a supervised
// streaming pipeline — continuous heavy-tailed ingest through bounded queues
// with blocking backpressure, admission-control shedding at the mempool edge,
// per-stage retry/degrade supervision, rolling checkpoints, and a graceful
// drain on SIGTERM/SIGINT (flush in-flight work, run to quiescence, roll the
// final checkpoint, exit 0). `--inline 1` runs the identical schedule batch-
// stepped with no threads: the determinism oracle whose "state fingerprint"
// line must match the threaded daemon's bit for bit — CI diffs the two, and
// diffs a SIGKILLed+resumed run against an uninterrupted one the same way.
std::atomic<bool> g_serve_stop{false};

void serve_stop_handler(int) { g_serve_stop.store(true); }

int cmd_serve(const Flags& flags, const CheckpointCliOptions& ckpt) {
  serve::ServeConfig config;
  config.seed = flag_u64(flags, "seed", config.seed);
  config.steps = flag_u64(flags, "steps", config.steps);
  config.workload.num_users = static_cast<std::size_t>(
      flag_u64(flags, "users", config.workload.num_users));
  config.batch_size =
      static_cast<std::size_t>(flag_u64(flags, "batch", config.batch_size));
  config.max_mempool_depth = static_cast<std::size_t>(
      flag_u64(flags, "depth", config.max_mempool_depth));
  config.arrival_rate = flag_f64(flags, "rate", config.arrival_rate);
  config.arrival_shape = flag_f64(flags, "shape", config.arrival_shape);
  config.queue_capacity =
      static_cast<std::size_t>(flag_u64(flags, "queue", config.queue_capacity));
  config.chaos = flag_u64(flags, "chaos", 1) != 0;
  config.supervisor.p_stage_fault = flag_f64(flags, "p-stage-fault", 0.02);
  {
    std::size_t seats = 0;
    rollup::ElectionModel model = rollup::ElectionModel::kRoundRobin;
    bool armed = false;
    if (!parse_consensus_flags(flags, seats, model, armed)) return 1;
    // --election alone (no --seats) arms a minimal 4-seat roster.
    config.seats = armed && seats == 0 ? 4 : seats;
    config.consensus.model = model;
  }
  config.checkpoint_dir = ckpt.dir;
  config.checkpoint_every = ckpt.every;
  config.kill_after = ckpt.kill_after;
  config.pace_ms = g_telemetry.pace_ms;
  const bool inline_mode = flag_u64(flags, "inline", 0) != 0;

  // The node is built inside run(); attach the live layer the moment it
  // exists so a mid-run scrape sees /journal/tail and flight dumps carry the
  // journal. Cleared below before the pipeline (and node) dies.
  config.node_observer = [](rollup::RollupNode& node) {
    if (g_server) g_server->set_journal(&node.journal());
    obs::StallWatchdog::instance().set_journal(&node.journal());
  };

  serve::ServePipeline pipeline(std::move(config));

  g_serve_stop.store(false);
  auto* prev_term = std::signal(SIGTERM, serve_stop_handler);
  auto* prev_int = std::signal(SIGINT, serve_stop_handler);
  auto result = inline_mode ? pipeline.run_inline(&g_serve_stop)
                            : pipeline.run(&g_serve_stop);
  std::signal(SIGTERM, prev_term);
  std::signal(SIGINT, prev_int);

  struct DetachJournal {
    ~DetachJournal() {
      if (g_server) g_server->set_journal(nullptr);
      obs::StallWatchdog::instance().set_journal(nullptr);
    }
  } detach_journal;

  if (!result.ok()) return fail(result.error());
  const serve::ServeStats& stats = result.value();
  const auto u64 = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };

  std::printf("serve seed 0x%llx (%s): %llu steps served%s%s%s\n",
              u64(pipeline.config().seed),
              inline_mode ? "inline" : "threaded", u64(stats.steps_run),
              stats.start_step > 0 ? " (resumed)" : "",
              stats.stopped ? ", stop requested -> drain" : "",
              stats.drained ? "" : " (drain truncated)");
  std::printf("  txs: %llu generated, %llu admitted, %llu shed\n",
              u64(stats.txs_generated), u64(stats.txs_admitted),
              u64(stats.txs_shed));
  std::printf("  batches %llu (%llu degraded), challenges %llu (%llu fraud)\n",
              u64(stats.batches), u64(stats.degraded_batches),
              u64(stats.challenges), u64(stats.frauds));
  if (pipeline.config().seats > 0) {
    std::printf(
        "  consensus: %zu seats (%s), %llu leader handoffs, "
        "%llu equivocations\n",
        pipeline.config().seats,
        std::string(rollup::to_string(pipeline.config().consensus.model))
            .c_str(),
        u64(stats.leader_handoffs), u64(stats.equivocations));
  }
  std::printf("  backpressure: %llu queue-full waits\n",
              u64(stats.queue_full_waits));
  for (const serve::StageReport* report :
       {&stats.ingest, &stats.reorder, &stats.checkpoint}) {
    std::printf("  stage %-16s faults %llu, retries %llu", report->name.c_str(),
                u64(report->faults), u64(report->retries));
    if (report->degraded) {
      std::printf(", DEGRADED at step %llu", u64(report->degraded_at_step));
    }
    std::printf("\n");
  }
  // CI contract lines: the soak job greps the sustained rate and asserts the
  // fingerprint of a resumed / inline run matches the reference run's.
  std::printf(
      "serve: sustained %.1f tx/s over %.1f s, p99 %.3f ms, p99.9 %.3f ms "
      "(%llu finalized)\n",
      stats.sustained_tps, stats.wall_seconds, stats.p99_latency_ms,
      stats.p999_latency_ms, u64(stats.finalized_txs));
  std::printf("serve: state fingerprint %s\n", stats.fingerprint.c_str());

  if (const rollup::ChaosRuntime* runtime = pipeline.node().chaos()) {
    g_chaos_log = runtime->log;
  }
  g_flow_lines = pipeline.node().flow().report_lines();
  if (obs::TxJournal::enabled()) print_journal_audit(pipeline.node());
  if (const int journal_rc = write_journal_report("serve", pipeline.node());
      journal_rc != 0) {
    return journal_rc;
  }

  bool ok = stats.invariants_clean;
  if (obs::TxJournal::enabled() && !stats.journal_audit_ok) ok = false;
  if (stats.invariants_clean) {
    std::printf("  invariants: all clean\n");
  } else if (const rollup::ChaosRuntime* runtime = pipeline.node().chaos()) {
    for (const auto& v : runtime->checker.violations()) {
      std::printf("  INVARIANT VIOLATION step %llu %s: %s\n", u64(v.step),
                  std::string(rollup::to_string(v.kind)).c_str(),
                  v.detail.c_str());
    }
  }
  return ok ? 0 : 1;
}

// Fig. 6/7-style campaign with optional crash-safe checkpointing. The
// summary line is deterministic in the config, so CI can diff a resumed
// run's output against an uninterrupted golden run's.
int cmd_campaign(const Flags& flags, const CheckpointCliOptions& ckpt) {
  core::CampaignConfig config;
  config.num_aggregators =
      static_cast<std::size_t>(flag_u64(flags, "aggregators", 6));
  config.adversarial_fraction = flag_f64(flags, "fraction", 0.34);
  config.mempool_size = static_cast<std::size_t>(flag_u64(flags, "mempool", 12));
  config.rounds = static_cast<std::size_t>(flag_u64(flags, "rounds", 12));
  config.num_ifus = static_cast<std::size_t>(flag_u64(flags, "ifus", 1));
  config.seed = flag_u64(flags, "seed", 0xca59a16eULL);
  // --threads N (N > 0) swaps the annealing reorderer for the parallel
  // portfolio racing its roster on N threads. Deterministic mode is on, so
  // the campaign result is a pure function of the seed at any N.
  const std::uint64_t threads = flag_u64(flags, "threads", 0);
  if (threads > 0) {
    config.parole.kind = core::ReordererKind::kPortfolio;
    config.parole.portfolio.threads = static_cast<std::size_t>(threads);
  }
  config.checkpoint_dir = ckpt.dir;
  config.checkpoint_every_rounds = static_cast<std::size_t>(ckpt.every);
  config.halt_after_rounds = static_cast<std::size_t>(ckpt.kill_after);
  {
    std::size_t seats = 0;
    rollup::ElectionModel model = rollup::ElectionModel::kRoundRobin;
    bool armed = false;
    if (!parse_consensus_flags(flags, seats, model, armed)) return 1;
    if (armed) {
      // Under consensus the aggregators ARE the seats: --seats overrides the
      // roster size, and the consensus seed is mixed from the campaign seed
      // so resume re-derives the same leadership schedule.
      if (seats > 0) config.num_aggregators = seats;
      rollup::ConsensusConfig consensus;
      consensus.model = model;
      consensus.seed ^= config.seed;
      config.consensus = consensus;
    }
  }

  core::AttackCampaign campaign(config);
  auto result = campaign.run_resumable();
  if (!result.ok()) return fail(result.error());
  if (!result.value().completed) {
    // Crash drill: the run halted after the configured round; die the way a
    // real crash would so the next invocation exercises resume.
    std::fflush(stdout);
    raise(SIGKILL);
  }
  const core::CampaignResult& r = result.value();
  std::printf(
      "campaign: %zu rounds, %zu adversarial batches, %zu reordered, total "
      "profit %s ETH\n",
      r.rounds_run, r.adversarial_batches, r.reordered_batches,
      to_eth_string(r.total_profit).c_str());
  if (config.consensus.has_value()) {
    std::printf(
        "  consensus: %zu seats (%s), %zu view changes, %zu equivocations\n",
        config.num_aggregators,
        std::string(rollup::to_string(config.consensus->model)).c_str(),
        r.view_changes, r.equivocations);
    // The net-profit decomposition (DESIGN.md §16): gross reorder profit
    // minus what the adversarial seats paid for slots and lost to slashes.
    std::printf(
        "  P&L: gross %s ETH - auction %s ETH - slash %s ETH -> net %s ETH\n",
        to_eth_string(r.total_profit).c_str(),
        to_eth_string(r.auction_spend).c_str(),
        to_eth_string(r.slash_loss).c_str(),
        to_eth_string(r.total_profit - r.auction_spend - r.slash_loss)
            .c_str());
  }
  return 0;
}

// DQN training over the case-study batch with optional checkpointing. The
// weight digest makes bit-identical resume externally checkable: a resumed
// run must print the same digest as an uninterrupted one.
int cmd_train(const Flags& flags, const CheckpointCliOptions& ckpt) {
  const solvers::ReorderingProblem problem = cs::make_problem();
  core::GenTranSeqConfig config;
  config.dqn.episodes =
      static_cast<std::size_t>(flag_u64(flags, "episodes", 12));
  config.dqn.steps_per_episode = 25;
  config.dqn.hidden = {16, 16};
  config.dqn.minibatch = 8;
  config.dqn.replay_capacity = 256;
  const std::uint64_t seed = flag_u64(flags, "seed", 0x9a601eULL);
  core::GenTranSeq gentranseq(problem, config, seed);

  std::optional<io::CheckpointManager> manager;
  core::TrainCheckpointing train_ckpt;
  if (!ckpt.dir.empty()) {
    manager.emplace(ckpt.dir, "train", 3);
    train_ckpt.manager = &*manager;
    train_ckpt.every_episodes = static_cast<std::size_t>(ckpt.every);
    train_ckpt.halt_after_episodes = static_cast<std::size_t>(ckpt.kill_after);
  }
  auto result = gentranseq.train_resumable(train_ckpt);
  if (!result.ok()) return fail(result.error());
  if (!result.value().completed) {
    std::fflush(stdout);
    raise(SIGKILL);
  }
  const core::TrainResult& r = result.value();
  const std::vector<std::uint8_t> weights =
      ml::serialize_network(gentranseq.agent().q_network());
  const crypto::Hash256 digest = crypto::Sha256::hash(weights);
  std::printf(
      "train: %zu episodes, best balance %s ETH%s, weights %s\n",
      r.episodes_run, to_eth_string(r.best_balance).c_str(),
      r.found_profit ? " (profit found)" : "", digest.hex().c_str());
  return 0;
}

// Resume a checkpointed run from its directory: the manifest names the
// basename, the newest good generation's META names the kind and the launch
// parameters, and the matching command re-enters its resume path.
int cmd_resume(const std::string& dir) {
  auto manifest_bytes = io::read_file(dir + "/MANIFEST.json");
  if (!manifest_bytes.ok()) return fail(manifest_bytes.error());
  auto manifest = obs::json_parse(std::string(manifest_bytes.value().begin(),
                                              manifest_bytes.value().end()));
  if (!manifest.ok()) return fail(manifest.error());
  if (!manifest.value().is_object()) {
    return fail(Error{"corrupt_manifest", "manifest is not a JSON object"});
  }
  const obs::JsonObject& root = manifest.value().as_object();
  const auto basename = root.find("basename");
  if (basename == root.end() || !basename->second.is_string()) {
    return fail(Error{"corrupt_manifest", "manifest names no basename"});
  }

  io::CheckpointManager manager(dir, basename->second.as_string());
  auto loaded = manager.load_latest();
  if (!loaded.ok()) return fail(loaded.error());
  auto meta = loaded.value().checkpoint.meta();
  if (!meta.ok()) return fail(meta.error());
  const obs::JsonObject& m = meta.value();
  const auto kind_it = m.find("kind");
  if (kind_it == m.end() || !kind_it->second.is_string()) {
    return fail(Error{"corrupt_checkpoint", "checkpoint META names no kind"});
  }
  const std::string& kind = kind_it->second.as_string();

  const auto meta_u64 = [&m](const char* key, std::uint64_t fallback) {
    const auto it = m.find(key);
    return it != m.end() && it->second.is_number() ? it->second.as_uint()
                                                   : fallback;
  };
  const auto meta_f64 = [&m](const char* key, double fallback) {
    const auto it = m.find(key);
    return it != m.end() && it->second.is_number() ? it->second.as_double()
                                                   : fallback;
  };
  const auto meta_str = [&m](const char* key) -> std::string {
    const auto it = m.find(key);
    return it != m.end() && it->second.is_string() ? it->second.as_string()
                                                   : std::string();
  };

  CheckpointCliOptions ckpt;
  ckpt.dir = dir;
  if (kind == "campaign") {
    Flags flags;
    flags.named["aggregators"] = std::to_string(meta_u64("aggregators", 6));
    flags.named["fraction"] =
        std::to_string(meta_f64("adversarial_fraction", 0.34));
    flags.named["mempool"] = std::to_string(meta_u64("mempool_size", 12));
    flags.named["rounds"] = std::to_string(meta_u64("rounds", 12));
    flags.named["ifus"] = std::to_string(meta_u64("ifus", 1));
    flags.named["seed"] = std::to_string(meta_u64("seed", 0xca59a16eULL));
    // Rebuild the portfolio reorderer exactly as launched: the checkpoint's
    // parallel-solver fingerprint rejects any drift, so resume must hand
    // cmd_campaign the same --threads the original run used.
    if (meta_u64("reorderer", 0) ==
        static_cast<std::uint64_t>(core::ReordererKind::kPortfolio)) {
      flags.named["threads"] = std::to_string(meta_u64("threads", 1));
    }
    // META carries seats/election only when the run was consensus-armed;
    // re-arming identically is what makes the CAMP fingerprint check pass.
    if (const std::string election = meta_str("election"); !election.empty()) {
      flags.named["election"] = election;
      flags.named["seats"] = std::to_string(meta_u64("seats", 6));
    }
    return cmd_campaign(flags, ckpt);
  }
  if (kind == "gentranseq-training") {
    Flags flags;
    flags.named["episodes"] = std::to_string(meta_u64("episodes", 12));
    flags.named["seed"] = std::to_string(meta_u64("seed", 0x9a601eULL));
    return cmd_train(flags, ckpt);
  }
  if (kind == "chaos-soak") {
    const rollup::ElectionModel election =
        rollup::parse_election_model(meta_str("election"))
            .value_or(rollup::ElectionModel::kRoundRobin);
    return cmd_chaos(meta_u64("seed", 0xc4a05c4a05ULL), meta_u64("steps", 96),
                     static_cast<std::size_t>(meta_u64("seats", 0)), election,
                     ckpt);
  }
  if (kind == "serve") {
    // Rebuild the launch config from META; the SRVE section hard-rejects a
    // seed/steps drift, the rest must reconstruct the same workload.
    Flags flags;
    flags.named["seed"] = std::to_string(meta_u64("seed", 0x5e12e5e12eULL));
    flags.named["steps"] = std::to_string(meta_u64("steps", 240));
    flags.named["users"] = std::to_string(meta_u64("users", 20));
    flags.named["batch"] = std::to_string(meta_u64("batch", 6));
    flags.named["depth"] = std::to_string(meta_u64("depth", 48));
    flags.named["rate"] = std::to_string(meta_f64("rate", 5.0));
    flags.named["shape"] = std::to_string(meta_f64("shape", 1.6));
    flags.named["queue"] = std::to_string(meta_u64("queue", 8));
    flags.named["chaos"] = std::to_string(meta_u64("chaos", 1));
    flags.named["p-stage-fault"] =
        std::to_string(meta_f64("p_stage_fault", 0.02));
    if (const std::uint64_t seats = meta_u64("seats", 0); seats > 0) {
      flags.named["seats"] = std::to_string(seats);
      flags.named["election"] = meta_str("election");
    }
    ckpt.every = 32;
    return cmd_serve(flags, ckpt);
  }
  return fail(Error{"config_mismatch", "unknown checkpoint kind '" + kind +
                                           "'"});
}

int cmd_profile(const std::string& path, const Flags& flags) {
  auto spans = obs::spans_from_report(path);
  if (!spans.ok()) return fail(spans.error());
  if (spans.value().empty()) {
    std::printf("%s: no span lines (run with --trace to record spans)\n",
                path.c_str());
    return 0;
  }
  const obs::Profile profile = obs::build_profile(spans.value());
  std::printf("%s", obs::profile_table(profile).c_str());
  if (profile.orphans > 0) {
    std::printf(
        "note: %llu spans lost their parent to the trace ring; their time is "
        "attributed to the root\n",
        static_cast<unsigned long long>(profile.orphans));
  }
  const std::string collapsed_path = flag_str(flags, "collapsed", "");
  if (!collapsed_path.empty()) {
    std::ofstream out(collapsed_path, std::ios::trunc);
    if (!out) {
      return fail(Error{"io_error", "cannot open " + collapsed_path});
    }
    out << profile.collapsed();
    std::printf("collapsed stacks written to %s (feed to flamegraph.pl or "
                "speedscope)\n",
                collapsed_path.c_str());
  }
  return 0;
}

// Render one transaction's lifecycle timeline out of a journaled report's
// txevent lines. Unparseable lines are skipped (a live report may have a torn
// tail); `validate` is the strict checker.
int cmd_journal_query(const std::string& path, std::uint64_t tx) {
  std::ifstream in(path);
  if (!in) return fail(Error{"io_error", "cannot open " + path});
  std::printf("tx %llu timeline from %s:\n",
              static_cast<unsigned long long>(tx), path.c_str());
  std::string line;
  std::size_t shown = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = obs::json_parse(line);
    if (!parsed.ok() || !parsed.value().is_object()) continue;
    const obs::JsonObject& object = parsed.value().as_object();
    const auto type = object.find("type");
    if (type == object.end() || !type->second.is_string() ||
        type->second.as_string() != "txevent") {
      continue;
    }
    const auto tx_it = object.find("tx");
    if (tx_it == object.end() || !tx_it->second.is_number() ||
        tx_it->second.as_uint() != tx) {
      continue;
    }
    const auto field_u64 = [&object](const char* key) -> std::uint64_t {
      const auto it = object.find(key);
      return it != object.end() && it->second.is_number() ? it->second.as_uint()
                                                          : 0;
    };
    const auto event = object.find("event");
    std::printf("  step %3llu  %-14s",
                static_cast<unsigned long long>(field_u64("step")),
                event != object.end() && event->second.is_string()
                    ? event->second.as_string().c_str()
                    : "?");
    // "batch" is simply absent for non-batch events (batch 0 is real).
    if (const auto batch = object.find("batch");
        batch != object.end() && batch->second.is_number()) {
      std::printf("  batch %llu",
                  static_cast<unsigned long long>(batch->second.as_uint()));
    }
    if (event != object.end() && event->second.is_string() &&
        event->second.as_string() == "reordered") {
      std::printf("  %llu -> %llu",
                  static_cast<unsigned long long>(field_u64("a")),
                  static_cast<unsigned long long>(field_u64("b")));
    }
    std::printf("\n");
    ++shown;
  }
  if (shown == 0) {
    std::printf("  (no events — is this a --journal report and the id "
                "right?)\n");
    return 1;
  }
  return 0;
}

int cmd_validate(const std::string& path) {
  const Status status = obs::RunReport::validate_file(path);
  if (!status.ok()) {
    std::fprintf(stderr, "invalid telemetry: %s\n",
                 status.error().detail.c_str());
    return 1;
  }
  std::printf("%s: valid schema-v%llu telemetry\n", path.c_str(),
              static_cast<unsigned long long>(obs::kReportSchemaVersion));
  return 0;
}

// Per-actor P&L table + collapsed reason waterfall out of a report's "flow"
// lines (DESIGN.md §16). Reads what write_reports emitted for a node-running
// command; amounts are gwei in the file and rendered as ETH. Unparseable
// lines are skipped (a live report may have a torn tail).
int cmd_pnl(const std::string& path) {
  std::ifstream in(path);
  if (!in) return fail(Error{"io_error", "cannot open " + path});

  std::vector<std::pair<std::string, std::int64_t>> actors;
  std::vector<std::pair<std::string, std::int64_t>> reasons;
  std::size_t epoch_lines = 0;
  std::uint64_t last_epoch = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = obs::json_parse(line);
    if (!parsed.ok() || !parsed.value().is_object()) continue;
    const obs::JsonObject& object = parsed.value().as_object();
    const auto type = object.find("type");
    if (type == object.end() || !type->second.is_string() ||
        type->second.as_string() != "flow") {
      continue;
    }
    const auto scope = object.find("scope");
    const auto amount = object.find("amount_gwei");
    if (scope == object.end() || !scope->second.is_string() ||
        amount == object.end() || !amount->second.is_number()) {
      continue;
    }
    const std::int64_t gwei_amount = amount->second.as_int();
    const auto str_field = [&object](const char* key) -> std::string {
      const auto it = object.find(key);
      return it != object.end() && it->second.is_string()
                 ? it->second.as_string()
                 : std::string("?");
    };
    if (scope->second.as_string() == "actor") {
      actors.emplace_back(str_field("actor"), gwei_amount);
    } else if (scope->second.as_string() == "reason") {
      reasons.emplace_back(str_field("reason"), gwei_amount);
    } else if (scope->second.as_string() == "epoch") {
      ++epoch_lines;
      if (const auto epoch = object.find("epoch");
          epoch != object.end() && epoch->second.is_number()) {
        last_epoch = std::max(last_epoch, epoch->second.as_uint());
      }
    }
  }
  if (actors.empty() && reasons.empty()) {
    std::printf("%s: no flow lines (run a node command with --metrics to "
                "record value flows)\n",
                path.c_str());
    return 1;
  }

  // Per-actor table: who ended up holding what, winners first.
  std::sort(actors.begin(), actors.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  TablePrinter table("Per-actor P&L (net position)");
  table.columns({"actor", "net ETH", "net gwei"});
  std::int64_t residual = 0;
  for (const auto& [label, amount_gwei] : actors) {
    residual += amount_gwei;
    table.row({label, to_eth_string(amount_gwei),
               TablePrinter::integer(static_cast<long long>(amount_gwei))});
  }
  table.print();
  // Double-entry check inline: every flow debits one actor and credits
  // another, so the column must sum to zero (the chaos soak gates the same
  // identity per batch).
  std::printf("position sum: %lld gwei (%s)\n",
              static_cast<long long>(residual),
              residual == 0 ? "balanced" : "IMBALANCED");

  // Collapsed waterfall: gross value moved per reason, largest first, with a
  // running cumulative so the shape reads top to bottom.
  std::sort(reasons.begin(), reasons.end(), [](const auto& a, const auto& b) {
    const std::int64_t lhs = a.second < 0 ? -a.second : a.second;
    const std::int64_t rhs = b.second < 0 ? -b.second : b.second;
    return lhs > rhs;
  });
  if (!reasons.empty()) {
    std::printf("\nvalue-flow waterfall (gross per reason):\n");
    std::int64_t cumulative = 0;
    for (const auto& [reason, amount_gwei] : reasons) {
      cumulative += amount_gwei;
      std::printf("  %-14s %14s ETH   running %14s ETH\n", reason.c_str(),
                  to_eth_string(amount_gwei).c_str(),
                  to_eth_string(cumulative).c_str());
    }
  }
  if (epoch_lines > 0) {
    std::printf("\n%zu per-epoch breakdown lines over %llu epochs (see the "
                "raw report for the time axis)\n",
                epoch_lines, static_cast<unsigned long long>(last_epoch + 1));
  }
  return 0;
}

// `top` for a live run: poll /metrics + /healthz on another parole_cli's
// --listen endpoint and render a compact refreshing view — rolling rates,
// window latency quantiles and per-stage heartbeat ages. It reads exactly
// what a Prometheus scrape would, so it doubles as an endpoint smoke check
// (--iterations 1 in CI).
int cmd_top(const std::string& endpoint, const Flags& flags) {
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return fail(Error{"usage", "expected host:port, got '" + endpoint + "'"});
  }
  const std::string host = endpoint.substr(0, colon);
  const auto port = static_cast<std::uint16_t>(
      std::strtoul(endpoint.c_str() + colon + 1, nullptr, 0));
  const std::uint64_t interval_ms = flag_u64(flags, "interval-ms", 1000);
  const std::uint64_t iterations = flag_u64(flags, "iterations", 0);
  const bool tty = isatty(fileno(stdout)) != 0;

  for (std::uint64_t frame = 0; iterations == 0 || frame < iterations;
       ++frame) {
    if (frame != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    auto metrics = obs::http_get(host, port, "/metrics");
    if (!metrics.ok()) return fail(metrics.error());
    auto health = obs::http_get(host, port, "/healthz");
    if (!health.ok()) return fail(health.error());

    // Plain "name value" sample lines; bucket series and comments skipped.
    std::map<std::string, double> values;
    std::istringstream in(metrics.value());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const auto space = line.find(' ');
      if (space == std::string::npos || line.find('{') != std::string::npos) {
        continue;
      }
      values[line.substr(0, space)] =
          std::strtod(line.c_str() + space + 1, nullptr);
    }

    if (tty && frame != 0) std::printf("\x1b[2J\x1b[H");
    std::printf("parole top — %s:%u\n", host.c_str(), port);

    auto health_doc = obs::json_parse(health.value());
    if (health_doc.ok() && health_doc.value().is_object()) {
      const obs::JsonObject& doc = health_doc.value().as_object();
      const auto str = [&doc](const char* key) -> std::string {
        const auto it = doc.find(key);
        return it != doc.end() && it->second.is_string()
                   ? it->second.as_string()
                   : "?";
      };
      const auto num = [&doc](const char* key) -> double {
        const auto it = doc.find(key);
        return it != doc.end() && it->second.is_number()
                   ? it->second.as_double()
                   : 0.0;
      };
      std::printf("health: %s, %.0f samples, %.2fs window\n",
                  str("status").c_str(), num("samples"),
                  num("window_seconds"));
      if (const auto stages = doc.find("stages");
          stages != doc.end() && stages->second.is_array()) {
        for (const obs::JsonValue& stage : stages->second.as_array()) {
          if (!stage.is_object()) continue;
          const obs::JsonObject& s = stage.as_object();
          const auto field = [&s](const char* key) -> double {
            const auto it = s.find(key);
            return it != s.end() && it->second.is_number()
                       ? it->second.as_double()
                       : 0.0;
          };
          const auto name = s.find("name");
          std::printf("  stage %-20s %8.0f beats  quiet %6.0f ms\n",
                      name != s.end() && name->second.is_string()
                          ? name->second.as_string().c_str()
                          : "?",
                      field("beats"), field("age_ms"));
        }
      }
    }

    std::printf("rates (per second over the window):\n");
    for (const auto& [name, value] : values) {
      const std::string suffix = "_per_second";
      if (name.size() <= suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
              0) {
        continue;
      }
      std::printf("  %-44s %14.2f\n",
                  name.substr(0, name.size() - suffix.size()).c_str(), value);
    }
    // Per-actor P&L gauges (parole.flow.position.*): live profit attribution
    // published by the node every step, rendered in gwei -> ETH.
    bool pnl_header = false;
    for (const auto& [name, value] : values) {
      const std::string prefix = "parole_flow_position_";
      if (name.rfind(prefix, 0) != 0) continue;
      if (!pnl_header) {
        std::printf("profit attribution (net position, ETH):\n");
        pnl_header = true;
      }
      std::printf("  %-44s %14s\n", name.substr(prefix.size()).c_str(),
                  to_eth_string(static_cast<Amount>(value)).c_str());
    }
    std::printf("window quantiles:\n");
    for (const auto& [name, value] : values) {
      const std::string suffix = "_p50";
      if (name.size() <= suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
              0) {
        continue;
      }
      const std::string base = name.substr(0, name.size() - suffix.size());
      const auto p95 = values.find(base + "_p95");
      const auto p99 = values.find(base + "_p99");
      std::printf("  %-32s p50 %11.0f  p95 %11.0f  p99 %11.0f\n",
                  base.c_str(), value,
                  p95 != values.end() ? p95->second : 0.0,
                  p99 != values.end() ? p99->second : 0.0);
    }
    std::fflush(stdout);
  }
  return 0;
}

// Writes the metrics and/or trace RunReports requested via --metrics/--trace.
int write_reports(const std::string& command, const std::string& metrics_path,
                  const std::string& trace_path) {
  if (!metrics_path.empty()) {
    obs::RunReport report("parole_cli." + command);
    report.set_meta("command", obs::JsonValue(command));
    report.capture_metrics();
    for (const FaultEvent& event : g_chaos_log.events()) {
      report.add_fault(event.step, std::string(to_string(event.kind)),
                       event.subject, event.detail);
    }
    for (const obs::JsonObject& line : g_flow_lines) {
      report.add_flow(line);
    }
    const Status written = report.write(metrics_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.error().detail.c_str());
      return 1;
    }
    std::printf("metrics written to %s (%zu lines)\n", metrics_path.c_str(),
                report.line_count());
  }
  if (!trace_path.empty()) {
    obs::RunReport report("parole_cli." + command + ".trace");
    report.set_meta("command", obs::JsonValue(command));
    report.capture_trace();
    const Status written = report.write(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.error().detail.c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu lines)\n", trace_path.c_str(),
                report.line_count());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    bool bad = false;
    if (parse_telemetry_flag(argc, argv, i, g_telemetry, bad)) {
      if (bad) return usage();
      continue;
    }
    args.push_back(argv[i]);
  }
  if (args.empty()) return usage();
  if (!g_telemetry.trace_path.empty()) {
    obs::TraceRecorder::instance().set_enabled(true);
  }
  if (!g_telemetry.journal_path.empty()) obs::TxJournal::set_enabled(true);
  if (const int live_rc = start_live_telemetry(); live_rc != 0) {
    return live_rc;
  }

  const std::string& command = args[0];
  int rc = 1;
  if (command == "attack" && args.size() == 1) {
    rc = cmd_attack_case_study();
  } else if (command == "attack" && args.size() == 2) {
    rc = cmd_attack_csv(args[1]);
  } else if (command == "scan" && args.size() == 2) {
    rc = cmd_scan(args[1]);
  } else if (command == "gen" && (args.size() == 2 || args.size() == 3)) {
    const std::size_t per_cell =
        args.size() == 3 ? static_cast<std::size_t>(std::atoi(args[2].c_str()))
                         : 3;
    rc = cmd_gen(args[1], per_cell == 0 ? 3 : per_cell);
  } else if (command == "defend" && args.size() == 1) {
    rc = cmd_defend();
  } else if (command == "quickstart" && args.size() == 1) {
    rc = cmd_quickstart();
  } else if (command == "chaos") {
    const Flags flags = parse_flags(args, 1);
    if (flags.bad || flags.positional.size() > 2) return usage();
    const std::uint64_t seed =
        !flags.positional.empty()
            ? std::strtoull(flags.positional[0].c_str(), nullptr, 0)
            : 0xc4a05c4a05ULL;
    std::uint64_t steps =
        flags.positional.size() == 2
            ? std::strtoull(flags.positional[1].c_str(), nullptr, 0)
            : 96;
    CheckpointCliOptions ckpt;
    ckpt.dir = flag_str(flags, "checkpoint", "");
    ckpt.every = flag_u64(flags, "every", 10);
    ckpt.kill_after = flag_u64(flags, "kill-after-step", 0);
    std::size_t seats = 0;
    rollup::ElectionModel model = rollup::ElectionModel::kRoundRobin;
    bool armed = false;
    if (!parse_consensus_flags(flags, seats, model, armed)) return 1;
    if (armed && seats == 0) seats = 4;
    rc = cmd_chaos(seed, steps == 0 ? 96 : steps, seats, model, ckpt);
  } else if (command == "serve") {
    const Flags flags = parse_flags(args, 1);
    if (flags.bad || !flags.positional.empty()) return usage();
    CheckpointCliOptions ckpt;
    ckpt.dir = flag_str(flags, "checkpoint", "");
    ckpt.every = flag_u64(flags, "every", 32);
    ckpt.kill_after = flag_u64(flags, "kill-after-step", 0);
    rc = cmd_serve(flags, ckpt);
  } else if (command == "campaign") {
    const Flags flags = parse_flags(args, 1);
    if (flags.bad || !flags.positional.empty()) return usage();
    CheckpointCliOptions ckpt;
    ckpt.dir = flag_str(flags, "checkpoint", "");
    ckpt.every = flag_u64(flags, "every", 10);
    ckpt.kill_after = flag_u64(flags, "kill-after-round", 0);
    rc = cmd_campaign(flags, ckpt);
  } else if (command == "train") {
    const Flags flags = parse_flags(args, 1);
    if (flags.bad || !flags.positional.empty()) return usage();
    CheckpointCliOptions ckpt;
    ckpt.dir = flag_str(flags, "checkpoint", "");
    ckpt.every = flag_u64(flags, "every", 4);
    ckpt.kill_after = flag_u64(flags, "kill-after-episode", 0);
    rc = cmd_train(flags, ckpt);
  } else if (command == "resume" && args.size() == 2) {
    rc = cmd_resume(args[1]);
  } else if (command == "validate" && args.size() == 2) {
    rc = cmd_validate(args[1]);
  } else if (command == "profile" && args.size() >= 2) {
    const Flags flags = parse_flags(args, 2);
    if (flags.bad || !flags.positional.empty()) return usage();
    rc = cmd_profile(args[1], flags);
  } else if (command == "journal" && args.size() == 3) {
    rc = cmd_journal_query(args[1],
                           std::strtoull(args[2].c_str(), nullptr, 0));
  } else if (command == "pnl" && args.size() == 2) {
    rc = cmd_pnl(args[1]);
  } else if (command == "top" && args.size() >= 2) {
    const Flags flags = parse_flags(args, 2);
    if (flags.bad || !flags.positional.empty()) return usage();
    rc = cmd_top(args[1], flags);
  } else {
    return usage();
  }

  finish_live_telemetry();
  if (!g_telemetry.journal_path.empty() && !g_journal_written && rc == 0) {
    std::fprintf(stderr,
                 "note: --journal had no effect; '%s' runs no rollup node\n",
                 command.c_str());
  }
  const int report_rc = write_reports(command, g_telemetry.metrics_path,
                                      g_telemetry.trace_path);
  return rc != 0 ? rc : report_rc;
}
