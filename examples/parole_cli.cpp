// parole_cli — a small command-line driver over the library, the entry point
// a downstream user would script against.
//
//   parole_cli attack                     attack the built-in case study
//   parole_cli attack <snapshots.csv>    attack every window of a CSV corpus
//   parole_cli scan <snapshots.csv>      Fig. 10-style scan of a CSV corpus
//   parole_cli gen <snapshots.csv> [n]   generate a synthetic corpus to CSV
//   parole_cli defend                    screen the case study (Sec. VIII)
//
// Exit code 0 on success, 1 on usage/errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "parole/core/defense.hpp"
#include "parole/core/parole_attack.hpp"
#include "parole/data/case_study.hpp"
#include "parole/data/csv.hpp"
#include "parole/data/scanner.hpp"
#include "parole/data/snapshot.hpp"

using namespace parole;
namespace cs = data::case_study;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: parole_cli attack [snapshots.csv]\n"
               "       parole_cli scan <snapshots.csv>\n"
               "       parole_cli gen <snapshots.csv> [collections-per-cell]\n"
               "       parole_cli defend\n");
  return 1;
}

int cmd_attack_case_study() {
  core::ParoleConfig config;
  config.kind = core::ReordererKind::kAnnealing;
  core::Parole parole(config);
  const core::AttackOutcome outcome =
      parole.run(cs::initial_state(), cs::original_txs(), {cs::kIfu});
  std::printf("case study: baseline %s ETH -> achieved %s ETH (profit %s)\n",
              to_eth_string(outcome.baseline).c_str(),
              to_eth_string(outcome.achieved).c_str(),
              to_eth_string(outcome.profit()).c_str());
  return 0;
}

// Replay a snapshot's events as mintable transactions is out of scope for a
// CLI demo; instead report, per collection, the best re-ordering window the
// scanner finds — the actionable output an attacker (or auditor) wants.
int cmd_attack_csv(const std::string& path) {
  const auto corpus = data::load_csv(path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.error().detail.c_str());
    return 1;
  }
  const data::SnapshotScanner scanner;
  for (const auto& snap : corpus.value()) {
    const auto report = scanner.scan(snap);
    if (report.opportunities.empty()) continue;
    const auto best = *std::max_element(
        report.opportunities.begin(), report.opportunities.end(),
        [](const auto& a, const auto& b) { return a.profit < b.profit; });
    std::printf(
        "%s (%s/%s): best window at event %zu, spread %s ETH over %zu "
        "tokens, est. profit %s ETH\n",
        snap.contract.short_hex().c_str(),
        std::string(data::to_string(snap.chain)).c_str(),
        std::string(data::to_string(snap.band)).c_str(), best.start_event,
        to_eth_string(best.max_price - best.min_price).c_str(),
        best.tradable_tokens, to_eth_string(best.profit).c_str());
  }
  return 0;
}

int cmd_scan(const std::string& path) {
  const auto corpus = data::load_csv(path);
  if (!corpus.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus.error().detail.c_str());
    return 1;
  }
  const data::SnapshotScanner scanner;
  for (const auto& cell : scanner.summarize(corpus.value())) {
    std::printf("%-8s %-4s: %zu collections, total %.3f ETH, rate %.2f\n",
                std::string(data::to_string(cell.chain)).c_str(),
                std::string(data::to_string(cell.band)).c_str(),
                cell.collections, to_eth_double(cell.total_profit),
                cell.opportunity_rate);
  }
  return 0;
}

int cmd_gen(const std::string& path, std::size_t per_cell) {
  data::SnapshotGenerator generator({}, 0xc11);
  const auto corpus = generator.generate_corpus(per_cell);
  const Status saved = data::save_csv(corpus, path);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.error().detail.c_str());
    return 1;
  }
  std::size_t events = 0;
  for (const auto& snap : corpus) events += snap.events.size();
  std::printf("wrote %zu collections (%zu events) to %s\n", corpus.size(),
              events, path.c_str());
  return 0;
}

int cmd_defend() {
  core::DefenseConfig config;
  config.search = core::ReordererKind::kHillClimb;
  config.threshold_floor = eth(0, 50);
  config.threshold_fee_multiplier = 0.0;
  core::MempoolDefense defense(config);
  const core::DefenseReport report =
      defense.screen(cs::initial_state(), cs::original_txs());
  std::printf(
      "worst case %s ETH vs threshold %s ETH -> %s; deferred %zu of 8 txs, "
      "residual %s ETH\n",
      to_eth_string(report.worst_case_before).c_str(),
      to_eth_string(report.threshold).c_str(),
      report.triggered ? "TRIGGERED" : "pass",
      report.deferred.size(),
      to_eth_string(report.worst_case_after).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  if (command == "attack" && argc == 2) return cmd_attack_case_study();
  if (command == "attack" && argc == 3) return cmd_attack_csv(argv[2]);
  if (command == "scan" && argc == 3) return cmd_scan(argv[2]);
  if (command == "gen" && (argc == 3 || argc == 4)) {
    const std::size_t per_cell =
        argc == 4 ? static_cast<std::size_t>(std::atoi(argv[3])) : 3;
    return cmd_gen(argv[2], per_cell == 0 ? 3 : per_cell);
  }
  if (command == "defend" && argc == 2) return cmd_defend();
  return usage();
}
