// Quickstart: the PAROLE attack on the paper's own case study, in ~60 lines
// of library calls.
//
//   1. Build the Sec. VI L2 state (limited-edition collection, funded users).
//   2. Take the 8 pending transactions in their original order.
//   3. Run the PAROLE module (Algorithm 1) for the colluding IFU.
//   4. Print the profitable order it found and the profit.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "parole/core/parole_attack.hpp"
#include "parole/data/case_study.hpp"

using namespace parole;
namespace cs = data::case_study;

int main() {
  // The L2 chain state an adversarial aggregator would observe: a 10-token
  // limited edition priced by scarcity (Eq. 10), 5 tokens minted, the IFU
  // holding 1.5 ETH and 2 tokens.
  vm::L2State chain = cs::initial_state();
  std::printf("collection: %u max supply, price %s ETH (%u remaining)\n",
              chain.nft().curve().max_supply(),
              to_eth_string(chain.nft().current_price()).c_str(),
              chain.nft().remaining_supply());
  std::printf("IFU before the batch: %s ETH total\n\n",
              to_eth_string(chain.total_balance(cs::kIfu)).c_str());

  // The transactions the aggregator collected from Bedrock's mempool.
  std::vector<vm::Tx> batch = cs::original_txs();
  std::printf("collected batch (original order):\n");
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::printf("  TX%zu  %s\n", i + 1, batch[i].describe().c_str());
  }

  // Run PAROLE (Algorithm 1). kAnnealing is the fast heuristic reorderer;
  // switch to ReordererKind::kDqn for the paper's GENTRANSEQ DQN.
  core::ParoleConfig config;
  config.kind = core::ReordererKind::kAnnealing;
  core::Parole parole(config);
  const core::AttackOutcome outcome =
      parole.run(chain, batch, {cs::kIfu});

  std::printf("\narbitrage assessment: opportunity=%s score=%d\n",
              outcome.assessment.opportunity ? "yes" : "no",
              outcome.assessment.score);
  std::printf("profitable order found:\n");
  for (std::size_t i = 0; i < outcome.final_sequence.size(); ++i) {
    std::printf("  %zu. %s\n", i + 1,
                outcome.final_sequence[i].describe().c_str());
  }
  std::printf("\nIFU balance: original order %s ETH -> altered order %s ETH"
              "  (profit %s ETH)\n",
              to_eth_string(outcome.baseline).c_str(),
              to_eth_string(outcome.achieved).c_str(),
              to_eth_string(outcome.profit()).c_str());
  return outcome.profit() > 0 ? 0 : 1;
}
