// Sequencer-power demo (Sec. I): what a *centralized* sequencer can do that
// even an adversarial aggregator cannot — total ordering power, silent
// censorship, and a liveness kill switch.
//
// Runs the case-study batch through three sequencer configurations and
// contrasts them with the honest aggregator outcome.
//
// Build & run:  ./build/examples/sequencer_attack
#include <cstdio>

#include "parole/core/parole_attack.hpp"
#include "parole/data/case_study.hpp"
#include "parole/rollup/sequencer.hpp"

using namespace parole;
namespace cs = data::case_study;

namespace {

void run_config(const char* label, rollup::SequencerConfig config,
                bool halt_first = false) {
  rollup::CentralSequencer sequencer(std::move(config));
  if (halt_first) sequencer.halt();

  for (const auto& tx : cs::original_txs()) sequencer.submit(tx);

  vm::L2State state = cs::initial_state();
  const vm::ExecutionEngine engine(
      {vm::InvalidTxPolicy::kSkipInvalid, false, {}});
  const auto batch = sequencer.produce_block(state, engine);

  std::printf("%-22s | blocks: %llu | backlog: %zu | censored: %llu | "
              "IFU balance: %s ETH\n",
              label,
              static_cast<unsigned long long>(
                  sequencer.stats().blocks_produced),
              sequencer.backlog(),
              static_cast<unsigned long long>(sequencer.stats().txs_censored),
              batch ? to_eth_string(state.total_balance(cs::kIfu)).c_str()
                    : "(no block)");
}

}  // namespace

int main() {
  std::printf(
      "case-study batch (8 txs), IFU starts at %s ETH; honest FIFO order "
      "yields %s ETH.\n\n",
      to_eth_string(cs::kInitialIfuBalance).c_str(),
      to_eth_string(cs::kCase1Final).c_str());

  // 1. Honest sequencer: FIFO, everything included.
  run_config("honest FIFO", {8, std::nullopt, nullptr});

  // 2. MEV-extracting sequencer: PAROLE with total ordering power.
  core::ParoleConfig parole_config;
  parole_config.kind = core::ReordererKind::kAnnealing;
  core::Parole parole(parole_config);
  run_config("MEV (PAROLE) sequencer",
             {8, parole.as_reorderer({cs::kIfu}), nullptr});

  // 3. Censoring sequencer: burns never make it on chain, so the price can
  //    only ratchet upward — good for every holder, invisible to users.
  run_config("censoring (no burns)",
             {8, std::nullopt,
              [](const vm::Tx& tx) { return tx.kind == vm::TxKind::kBurn; }});

  // 4. Failed sequencer: the paper's systemic risk — the whole L2 halts.
  run_config("halted", {8, std::nullopt, nullptr}, /*halt_first=*/true);

  std::printf(
      "\nthe MEV row reaches the instance optimum (%s ETH) because a "
      "sequencer, unlike an aggregator, need not even pretend to honour "
      "fee-priority collection.\n",
      to_eth_string(cs::kOptimalFinal).c_str());
  return 0;
}
