// Snapshot analysis (Sec. VII-E): scan NFT collection histories for
// re-ordering arbitrage windows, the way the paper analyzed holders.at
// snapshots from Optimism and Arbitrum.
//
// Generates a synthetic corpus (see DESIGN.md substitutions), scans every
// collection with a batch-sized sliding window, and reports the most
// attackable collections plus the per-chain / per-band aggregates of
// Fig. 10.
//
// Build & run:  ./build/examples/snapshot_analysis
#include <algorithm>
#include <cstdio>
#include <vector>

#include "parole/data/scanner.hpp"
#include "parole/data/snapshot.hpp"

using namespace parole;
using data::CollectionReport;

int main() {
  data::SnapshotGenerator generator({}, 777);
  const auto corpus = generator.generate_corpus(/*per_cell=*/5);
  std::printf("generated %zu collection snapshots (2 chains x 3 FT bands)\n\n",
              corpus.size());

  data::SnapshotScanner scanner({/*window=*/10, /*capture_rate=*/0.35});

  std::vector<std::pair<CollectionReport, const data::CollectionSnapshot*>>
      reports;
  for (const auto& snap : corpus) {
    reports.emplace_back(scanner.scan(snap), &snap);
  }
  std::sort(reports.begin(), reports.end(),
            [](const auto& a, const auto& b) {
              return a.first.total_profit > b.first.total_profit;
            });

  std::printf("top 5 most attackable collections:\n");
  for (std::size_t i = 0; i < 5 && i < reports.size(); ++i) {
    const auto& [report, snap] = reports[i];
    std::printf(
        "  %zu. %s (%s, %s band): %zu ownerships, %zu/%zu windows "
        "exploitable, est. profit %s ETH\n",
        i + 1, snap->contract.short_hex().c_str(),
        std::string(data::to_string(snap->chain)).c_str(),
        std::string(data::to_string(snap->band)).c_str(),
        snap->ownership_count(), report.windows_with_opportunity,
        report.windows_scanned,
        to_eth_string(report.total_profit).c_str());
  }

  std::printf("\nper-cell aggregates (the Fig. 10 bars):\n");
  for (const auto& cell : scanner.summarize(corpus)) {
    std::printf("  %-8s %-4s: %zu collections, total %8.2f ETH, "
                "opportunity rate %.2f\n",
                std::string(data::to_string(cell.chain)).c_str(),
                std::string(data::to_string(cell.band)).c_str(),
                cell.collections, to_eth_double(cell.total_profit),
                cell.opportunity_rate);
  }
  return 0;
}
