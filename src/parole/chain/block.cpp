#include "parole/chain/block.hpp"

#include "parole/crypto/sha256.hpp"
#include "parole/io/codec.hpp"

namespace parole::chain {
namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_hash(std::vector<std::uint8_t>& out, const crypto::Hash256& h) {
  out.insert(out.end(), h.bytes().begin(), h.bytes().end());
}

}  // namespace

std::vector<std::uint8_t> BatchHeader::encode() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(3 * 32 + 4 * 8);
  put_u64(bytes, batch_id);
  put_u64(bytes, aggregator.value());
  put_hash(bytes, tx_root);
  put_hash(bytes, pre_state_root);
  put_hash(bytes, post_state_root);
  put_u64(bytes, tx_count);
  put_u64(bytes, submitted_at);
  return bytes;
}

crypto::Hash256 BatchHeader::hash() const {
  return crypto::Sha256::hash(encode());
}

crypto::Hash256 L1Block::hash() const {
  std::vector<std::uint8_t> bytes;
  put_u64(bytes, number);
  put_u64(bytes, timestamp);
  put_hash(bytes, parent_hash);
  for (const auto& d : deposits) {
    put_u64(bytes, d.user.value());
    put_u64(bytes, static_cast<std::uint64_t>(d.amount));
  }
  for (const auto& b : batches) put_hash(bytes, b.hash());
  return crypto::Sha256::hash(bytes);
}

void BatchHeader::save(io::ByteWriter& w) const {
  w.u64(batch_id);
  w.u32(aggregator.value());
  io::save_hash(w, tx_root);
  io::save_hash(w, pre_state_root);
  io::save_hash(w, post_state_root);
  w.u64(tx_count);
  w.u64(submitted_at);
}

Status BatchHeader::load(io::ByteReader& r) {
  BatchHeader loaded;
  std::uint32_t aggregator_rep = 0;
  PAROLE_IO_READ(r.u64(loaded.batch_id), "batch id");
  PAROLE_IO_READ(r.u32(aggregator_rep), "batch aggregator");
  PAROLE_IO_READ(io::load_hash(r, loaded.tx_root), "batch tx root");
  PAROLE_IO_READ(io::load_hash(r, loaded.pre_state_root), "batch pre root");
  PAROLE_IO_READ(io::load_hash(r, loaded.post_state_root), "batch post root");
  PAROLE_IO_READ(r.u64(loaded.tx_count), "batch tx count");
  PAROLE_IO_READ(r.u64(loaded.submitted_at), "batch submit time");
  loaded.aggregator = AggregatorId{aggregator_rep};
  *this = loaded;
  return ok_status();
}

void Deposit::save(io::ByteWriter& w) const {
  w.u32(user.value());
  w.i64(amount);
}

Status Deposit::load(io::ByteReader& r) {
  Deposit loaded;
  std::uint32_t user_rep = 0;
  PAROLE_IO_READ(r.u32(user_rep), "deposit user");
  PAROLE_IO_READ(r.i64(loaded.amount), "deposit amount");
  if (loaded.amount < 0) {
    return Error{"corrupt_checkpoint", "negative deposit amount"};
  }
  loaded.user = UserId{user_rep};
  *this = loaded;
  return ok_status();
}

void L1Block::save(io::ByteWriter& w) const {
  w.u64(number);
  w.u64(timestamp);
  io::save_hash(w, parent_hash);
  w.u64(deposits.size());
  for (const Deposit& d : deposits) d.save(w);
  w.u64(batches.size());
  for (const BatchHeader& b : batches) b.save(w);
}

Status L1Block::load(io::ByteReader& r) {
  L1Block loaded;
  PAROLE_IO_READ(r.u64(loaded.number), "block number");
  PAROLE_IO_READ(r.u64(loaded.timestamp), "block timestamp");
  PAROLE_IO_READ(io::load_hash(r, loaded.parent_hash), "block parent hash");
  std::uint64_t deposit_count = 0;
  PAROLE_IO_READ(r.length(deposit_count, 12), "block deposit count");
  loaded.deposits.resize(static_cast<std::size_t>(deposit_count));
  for (Deposit& d : loaded.deposits) {
    if (Status s = d.load(r); !s.ok()) return s;
  }
  std::uint64_t batch_count = 0;
  // BatchHeader serializes to 124 bytes; any fixed lower bound works for the
  // pre-allocation sanity check.
  PAROLE_IO_READ(r.length(batch_count, 124), "block batch count");
  loaded.batches.resize(static_cast<std::size_t>(batch_count));
  for (BatchHeader& b : loaded.batches) {
    if (Status s = b.load(r); !s.ok()) return s;
  }
  *this = std::move(loaded);
  return ok_status();
}

}  // namespace parole::chain
