#include "parole/chain/block.hpp"

#include "parole/crypto/sha256.hpp"

namespace parole::chain {
namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_hash(std::vector<std::uint8_t>& out, const crypto::Hash256& h) {
  out.insert(out.end(), h.bytes().begin(), h.bytes().end());
}

}  // namespace

std::vector<std::uint8_t> BatchHeader::encode() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(3 * 32 + 4 * 8);
  put_u64(bytes, batch_id);
  put_u64(bytes, aggregator.value());
  put_hash(bytes, tx_root);
  put_hash(bytes, pre_state_root);
  put_hash(bytes, post_state_root);
  put_u64(bytes, tx_count);
  put_u64(bytes, submitted_at);
  return bytes;
}

crypto::Hash256 BatchHeader::hash() const {
  return crypto::Sha256::hash(encode());
}

crypto::Hash256 L1Block::hash() const {
  std::vector<std::uint8_t> bytes;
  put_u64(bytes, number);
  put_u64(bytes, timestamp);
  put_hash(bytes, parent_hash);
  for (const auto& d : deposits) {
    put_u64(bytes, d.user.value());
    put_u64(bytes, static_cast<std::uint64_t>(d.amount));
  }
  for (const auto& b : batches) put_hash(bytes, b.hash());
  return crypto::Sha256::hash(bytes);
}

}  // namespace parole::chain
