// L1 block structure for the simulated main chain.
//
// The L1 simulator only needs enough structure for the rollup workflow of
// Fig. 1: blocks carry deposits into the ORSC and batch commitments from
// aggregators, are hash-chained, and advance a timestamp that drives the
// challenge period clock.
#pragma once

#include <cstdint>
#include <vector>

#include "parole/common/amount.hpp"
#include "parole/common/ids.hpp"
#include "parole/common/result.hpp"
#include "parole/crypto/hash.hpp"
#include "parole/io/bytes.hpp"

namespace parole::chain {

// A batch commitment recorded on L1 (the header the ORSC stores; full batch
// bodies live off-chain with the aggregators).
struct BatchHeader {
  std::uint64_t batch_id{0};
  AggregatorId aggregator{};
  crypto::Hash256 tx_root;         // Merkle root over the batch's tx hashes
  crypto::Hash256 pre_state_root;  // L2 state root before the batch
  crypto::Hash256 post_state_root; // claimed L2 state root after the batch
  std::uint64_t tx_count{0};
  std::uint64_t submitted_at{0};   // L1 timestamp

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] crypto::Hash256 hash() const;

  // Checkpointing (DESIGN.md §10).
  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);
};

struct Deposit {
  UserId user{};
  Amount amount{0};

  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);
};

struct L1Block {
  std::uint64_t number{0};
  std::uint64_t timestamp{0};
  crypto::Hash256 parent_hash;
  std::vector<Deposit> deposits;
  std::vector<BatchHeader> batches;

  [[nodiscard]] crypto::Hash256 hash() const;

  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);
};

}  // namespace parole::chain
