#include "parole/chain/bridge.hpp"

namespace parole::chain {

std::vector<Deposit> Bridge::process_deposits() {
  std::vector<Deposit> deposits = orsc_->drain_pending_deposits();
  for (const Deposit& d : deposits) {
    l2_->credit(d.user, d.amount);
    locked_ += d.amount;
  }
  return deposits;
}

Status Bridge::request_withdrawal(UserId user, Amount amount,
                                  std::uint64_t now) {
  if (amount <= 0) {
    return Error{"bad_amount", "withdrawal must be positive"};
  }
  const Status debited = l2_->debit(user, amount);
  if (!debited.ok()) return debited;
  withdrawals_.push_back(
      {user, amount, now + orsc_->config().challenge_period, false});
  return ok_status();
}

std::size_t Bridge::process_withdrawals(std::uint64_t now) {
  std::size_t released = 0;
  for (auto& w : withdrawals_) {
    if (!w.released && now > w.unlock_time) {
      orsc_->release_withdrawal(w.user, w.amount);
      locked_ -= w.amount;
      w.released = true;
      ++released;
    }
  }
  return released;
}

void Bridge::save(io::ByteWriter& w) const {
  w.u64(withdrawals_.size());
  for (const PendingWithdrawal& pw : withdrawals_) {
    w.u32(pw.user.value());
    w.i64(pw.amount);
    w.u64(pw.unlock_time);
    w.boolean(pw.released);
  }
  w.i64(locked_);
}

Status Bridge::load(io::ByteReader& r) {
  std::uint64_t count = 0;
  PAROLE_IO_READ(r.length(count, 21), "bridge withdrawal count");
  std::vector<PendingWithdrawal> withdrawals(static_cast<std::size_t>(count));
  for (PendingWithdrawal& pw : withdrawals) {
    std::uint32_t user = 0;
    PAROLE_IO_READ(r.u32(user), "withdrawal user");
    PAROLE_IO_READ(r.i64(pw.amount), "withdrawal amount");
    PAROLE_IO_READ(r.u64(pw.unlock_time), "withdrawal unlock time");
    PAROLE_IO_READ(r.boolean(pw.released), "withdrawal released flag");
    if (pw.amount <= 0) {
      return Error{"corrupt_checkpoint", "non-positive withdrawal amount"};
    }
    pw.user = UserId{user};
  }
  Amount locked = 0;
  PAROLE_IO_READ(r.i64(locked), "bridge locked total");
  if (locked < 0) {
    return Error{"corrupt_checkpoint", "negative locked total"};
  }
  withdrawals_ = std::move(withdrawals);
  locked_ = locked;
  return ok_status();
}

}  // namespace parole::chain
