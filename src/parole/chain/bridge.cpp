#include "parole/chain/bridge.hpp"

namespace parole::chain {

std::vector<Deposit> Bridge::process_deposits() {
  std::vector<Deposit> deposits = orsc_->drain_pending_deposits();
  for (const Deposit& d : deposits) {
    l2_->credit(d.user, d.amount);
    locked_ += d.amount;
  }
  return deposits;
}

Status Bridge::request_withdrawal(UserId user, Amount amount,
                                  std::uint64_t now) {
  if (amount <= 0) {
    return Error{"bad_amount", "withdrawal must be positive"};
  }
  const Status debited = l2_->debit(user, amount);
  if (!debited.ok()) return debited;
  withdrawals_.push_back(
      {user, amount, now + orsc_->config().challenge_period, false});
  return ok_status();
}

std::size_t Bridge::process_withdrawals(std::uint64_t now) {
  std::size_t released = 0;
  for (auto& w : withdrawals_) {
    if (!w.released && now > w.unlock_time) {
      orsc_->release_withdrawal(w.user, w.amount);
      locked_ -= w.amount;
      w.released = true;
      ++released;
    }
  }
  return released;
}

}  // namespace parole::chain
