// L1 <-> L2 bridge (Fig. 1, User 2's path).
//
// Users exchange L1 ETH for L2 tokens via the ORSC: deposits lock L1 funds
// and mint an equal L2 ledger credit when the rollup node processes them;
// withdrawals burn L2 balance and queue an L1 release that unlocks only after
// the enclosing batch's challenge period ends. The Bridge wraps that plumbing
// so examples and tests read like user actions.
#pragma once

#include <cstdint>
#include <vector>

#include "parole/chain/orsc.hpp"
#include "parole/common/result.hpp"
#include "parole/io/bytes.hpp"
#include "parole/token/ledger.hpp"

namespace parole::chain {

struct PendingWithdrawal {
  UserId user{};
  Amount amount{0};
  std::uint64_t unlock_time{0};
  bool released{false};
};

class Bridge {
 public:
  Bridge(OrscContract& orsc, token::BalanceLedger& l2_ledger)
      : orsc_(&orsc), l2_(&l2_ledger) {}

  // User locks L1 funds into the ORSC (picked up by process_deposits()).
  Status deposit_to_l2(UserId user, Amount amount) {
    return orsc_->deposit(user, amount);
  }

  // Drain the ORSC deposit queue into the L2 ledger. Returns the credited
  // deposits (the rollup node logs them so a fraud rollback to an older state
  // snapshot can replay bridged value instead of losing it).
  std::vector<Deposit> process_deposits();

  // Burn L2 balance now; L1 funds release after the challenge period.
  Status request_withdrawal(UserId user, Amount amount, std::uint64_t now);

  // Release every withdrawal whose unlock time has passed. Returns count.
  std::size_t process_withdrawals(std::uint64_t now);

  [[nodiscard]] const std::vector<PendingWithdrawal>& pending_withdrawals()
      const {
    return withdrawals_;
  }

  // Funds locked in the bridge: total deposited minus total released back.
  // L2 ledger supply should always equal this (conservation invariant).
  [[nodiscard]] Amount locked() const { return locked_; }

  // Checkpointing (DESIGN.md §10): the withdrawal queue and the locked
  // counter. The orsc_/l2_ wiring is topology, re-established by whoever
  // constructs the restored node, so it is deliberately not serialized.
  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);

 private:
  OrscContract* orsc_;
  token::BalanceLedger* l2_;
  std::vector<PendingWithdrawal> withdrawals_;
  Amount locked_{0};
};

}  // namespace parole::chain
