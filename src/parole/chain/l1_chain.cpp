#include "parole/chain/l1_chain.hpp"

#include <algorithm>
#include <cassert>

namespace parole::chain {

L1Chain::L1Chain(std::uint64_t block_time_seconds)
    : block_time_(block_time_seconds) {
  assert(block_time_ > 0);
}

void L1Chain::stage_deposit(Deposit deposit) {
  pending_deposits_.push_back(deposit);
}

void L1Chain::stage_batch(BatchHeader header) {
  pending_batches_.push_back(std::move(header));
}

const L1Block& L1Chain::seal_block() {
  L1Block block;
  block.number = blocks_.size();
  timestamp_ += block_time_;
  block.timestamp = timestamp_;
  block.parent_hash = head_hash();
  block.deposits = std::move(pending_deposits_);
  block.batches = std::move(pending_batches_);
  pending_deposits_.clear();
  pending_batches_.clear();
  blocks_.push_back(std::move(block));
  return blocks_.back();
}

std::vector<L1Block> L1Chain::rollback(std::uint64_t depth) {
  const std::uint64_t drop = std::min<std::uint64_t>(depth, blocks_.size());
  std::vector<L1Block> dropped(blocks_.end() - static_cast<std::ptrdiff_t>(drop),
                               blocks_.end());
  blocks_.resize(blocks_.size() - drop);
  timestamp_ -= drop * block_time_;
  return dropped;
}

const L1Block& L1Chain::block(std::uint64_t number) const {
  assert(number < blocks_.size());
  return blocks_[number];
}

crypto::Hash256 L1Chain::head_hash() const {
  return blocks_.empty() ? crypto::Hash256{} : blocks_.back().hash();
}

bool L1Chain::verify_links() const {
  crypto::Hash256 parent{};
  for (const auto& block : blocks_) {
    if (block.parent_hash != parent) return false;
    parent = block.hash();
  }
  return true;
}

}  // namespace parole::chain
