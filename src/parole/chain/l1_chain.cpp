#include "parole/chain/l1_chain.hpp"

#include <algorithm>
#include <cassert>

namespace parole::chain {

L1Chain::L1Chain(std::uint64_t block_time_seconds)
    : block_time_(block_time_seconds) {
  assert(block_time_ > 0);
}

void L1Chain::stage_deposit(Deposit deposit) {
  pending_deposits_.push_back(deposit);
}

void L1Chain::stage_batch(BatchHeader header) {
  pending_batches_.push_back(std::move(header));
}

const L1Block& L1Chain::seal_block() {
  L1Block block;
  block.number = blocks_.size();
  timestamp_ += block_time_;
  block.timestamp = timestamp_;
  block.parent_hash = head_hash();
  block.deposits = std::move(pending_deposits_);
  block.batches = std::move(pending_batches_);
  pending_deposits_.clear();
  pending_batches_.clear();
  blocks_.push_back(std::move(block));
  return blocks_.back();
}

std::vector<L1Block> L1Chain::rollback(std::uint64_t depth) {
  const std::uint64_t drop = std::min<std::uint64_t>(depth, blocks_.size());
  std::vector<L1Block> dropped(blocks_.end() - static_cast<std::ptrdiff_t>(drop),
                               blocks_.end());
  blocks_.resize(blocks_.size() - drop);
  timestamp_ -= drop * block_time_;
  return dropped;
}

const L1Block& L1Chain::block(std::uint64_t number) const {
  assert(number < blocks_.size());
  return blocks_[number];
}

crypto::Hash256 L1Chain::head_hash() const {
  return blocks_.empty() ? crypto::Hash256{} : blocks_.back().hash();
}

bool L1Chain::verify_links() const {
  crypto::Hash256 parent{};
  for (const auto& block : blocks_) {
    if (block.parent_hash != parent) return false;
    parent = block.hash();
  }
  return true;
}

void L1Chain::save(io::ByteWriter& w) const {
  w.u64(block_time_);
  w.u64(timestamp_);
  w.u64(blocks_.size());
  for (const L1Block& b : blocks_) b.save(w);
  w.u64(pending_deposits_.size());
  for (const Deposit& d : pending_deposits_) d.save(w);
  w.u64(pending_batches_.size());
  for (const BatchHeader& b : pending_batches_) b.save(w);
}

Status L1Chain::load(io::ByteReader& r) {
  L1Chain loaded(1);
  PAROLE_IO_READ(r.u64(loaded.block_time_), "chain block time");
  PAROLE_IO_READ(r.u64(loaded.timestamp_), "chain timestamp");
  if (loaded.block_time_ == 0) {
    return Error{"corrupt_checkpoint", "zero block time"};
  }
  std::uint64_t block_count = 0;
  PAROLE_IO_READ(r.length(block_count, 56), "chain block count");
  loaded.blocks_.resize(static_cast<std::size_t>(block_count));
  for (L1Block& b : loaded.blocks_) {
    if (Status s = b.load(r); !s.ok()) return s;
  }
  std::uint64_t deposit_count = 0;
  PAROLE_IO_READ(r.length(deposit_count, 12), "chain staged deposit count");
  loaded.pending_deposits_.resize(static_cast<std::size_t>(deposit_count));
  for (Deposit& d : loaded.pending_deposits_) {
    if (Status s = d.load(r); !s.ok()) return s;
  }
  std::uint64_t batch_count = 0;
  PAROLE_IO_READ(r.length(batch_count, 124), "chain staged batch count");
  loaded.pending_batches_.resize(static_cast<std::size_t>(batch_count));
  for (BatchHeader& b : loaded.pending_batches_) {
    if (Status s = b.load(r); !s.ok()) return s;
  }
  // A restored chain must still be a chain: re-derive the hash links rather
  // than trusting 32-byte fields that a bit flip could have rewritten without
  // tripping a length check.
  if (!loaded.verify_links()) {
    return Error{"corrupt_checkpoint", "restored chain fails link check"};
  }
  *this = std::move(loaded);
  return ok_status();
}

}  // namespace parole::chain
