// The simulated L1 main chain: a hash-linked sequence of blocks with a
// monotone timestamp. Time on L1 is what drives the rollup's challenge
// period; seal_block() advances it by the configured block time.
#pragma once

#include <cstdint>
#include <vector>

#include "parole/chain/block.hpp"

namespace parole::chain {

class L1Chain {
 public:
  explicit L1Chain(std::uint64_t block_time_seconds = 12);

  // Stage content for the next block.
  void stage_deposit(Deposit deposit);
  void stage_batch(BatchHeader header);

  // Seal the staged content into a new block; advances the timestamp.
  const L1Block& seal_block();

  // Shallow reorg: drop up to `depth` blocks from the head and rewind the
  // timestamp accordingly (staged-but-unsealed content is untouched). Returns
  // the dropped blocks, oldest first, so the caller can recommit their batch
  // contents; a production client would receive the same set from its
  // reorg-aware head tracker.
  std::vector<L1Block> rollback(std::uint64_t depth);

  [[nodiscard]] std::uint64_t height() const { return blocks_.size(); }
  [[nodiscard]] std::uint64_t now() const { return timestamp_; }
  [[nodiscard]] const L1Block& block(std::uint64_t number) const;
  [[nodiscard]] const std::vector<L1Block>& blocks() const { return blocks_; }
  [[nodiscard]] crypto::Hash256 head_hash() const;

  // Verify the parent-hash links of the whole chain (test invariant).
  [[nodiscard]] bool verify_links() const;

  // Checkpointing (DESIGN.md §10): full chain including staged-but-unsealed
  // content. load() re-verifies the hash links before mutating.
  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);

 private:
  std::uint64_t block_time_;
  std::uint64_t timestamp_{0};
  std::vector<L1Block> blocks_;
  std::vector<Deposit> pending_deposits_;
  std::vector<BatchHeader> pending_batches_;
};

}  // namespace parole::chain
