#include "parole/chain/orsc.hpp"

#include <algorithm>
#include <cassert>

#include "parole/obs/flow.hpp"

namespace parole::chain {

OrscContract::OrscContract(OrscConfig config) : config_(config) {
  assert(config_.slash_reward_percent >= 0 &&
         config_.slash_reward_percent <= 100);
}

void OrscContract::fund_l1(UserId user, Amount amount) {
  assert(amount >= 0);
  l1_balances_[user] += amount;
}

Amount OrscContract::l1_balance(UserId user) const {
  const auto it = l1_balances_.find(user);
  return it == l1_balances_.end() ? 0 : it->second;
}

Status OrscContract::deposit(UserId user, Amount amount) {
  if (amount <= 0) {
    return Error{"bad_amount", "deposit must be positive"};
  }
  auto& balance = l1_balances_[user];
  if (balance < amount) {
    return Error{"insufficient_l1_balance",
                 "user " + std::to_string(user.value()) +
                     " cannot deposit " + to_eth_string(amount) + " ETH"};
  }
  balance -= amount;
  pending_deposits_.push_back({user, amount});
  return ok_status();
}

std::vector<Deposit> OrscContract::drain_pending_deposits() {
  std::vector<Deposit> out = std::move(pending_deposits_);
  pending_deposits_.clear();
  return out;
}

void OrscContract::release_withdrawal(UserId user, Amount amount) {
  assert(amount >= 0);
  l1_balances_[user] += amount;
  if (flow_ != nullptr) flow_->record_withdraw(user, amount);
}

Status OrscContract::register_aggregator(AggregatorId id) {
  if (aggregator_bonds_.contains(id)) {
    return Error{"already_registered", "aggregator already bonded"};
  }
  aggregator_bonds_[id] = config_.aggregator_bond;
  if (flow_ != nullptr) {
    flow_->record_bond_post(obs::FlowActor::seat(id.value()),
                            config_.aggregator_bond);
  }
  return ok_status();
}

Status OrscContract::register_verifier(VerifierId id) {
  if (verifier_bonds_.contains(id)) {
    return Error{"already_registered", "verifier already bonded"};
  }
  verifier_bonds_[id] = config_.verifier_bond;
  if (flow_ != nullptr) {
    flow_->record_bond_post(obs::FlowActor::verifier(id.value()),
                            config_.verifier_bond);
  }
  return ok_status();
}

Amount OrscContract::aggregator_bond(AggregatorId id) const {
  const auto it = aggregator_bonds_.find(id);
  return it == aggregator_bonds_.end() ? 0 : it->second;
}

Amount OrscContract::verifier_bond(VerifierId id) const {
  const auto it = verifier_bonds_.find(id);
  return it == verifier_bonds_.end() ? 0 : it->second;
}

bool OrscContract::aggregator_registered(AggregatorId id) const {
  return aggregator_bonds_.contains(id);
}

Result<std::uint64_t> OrscContract::submit_batch(BatchHeader header,
                                                 std::uint64_t now) {
  if (!aggregator_bonds_.contains(header.aggregator)) {
    return Error{"unknown_aggregator", "aggregator is not bonded"};
  }
  if (aggregator_bonds_[header.aggregator] <= 0) {
    return Error{"slashed_aggregator", "aggregator bond already slashed"};
  }
  BatchRecord record;
  header.batch_id = batches_.size();
  header.submitted_at = now;
  record.header = std::move(header);
  record.challenge_deadline = now + config_.challenge_period;
  batches_.push_back(std::move(record));
  return batches_.back().header.batch_id;
}

Status OrscContract::open_challenge(std::uint64_t batch_id,
                                    VerifierId verifier, std::uint64_t now) {
  if (batch_id >= batches_.size()) {
    return Error{"unknown_batch", "no such batch"};
  }
  BatchRecord& record = batches_[batch_id];
  if (record.status != BatchStatus::kPending) {
    return Error{"not_challengeable", "batch is not pending"};
  }
  if (now > record.challenge_deadline) {
    return Error{"period_elapsed", "challenge period already over"};
  }
  const auto it = verifier_bonds_.find(verifier);
  if (it == verifier_bonds_.end() || it->second <= 0) {
    return Error{"unbonded_verifier", "verifier has no live bond"};
  }
  record.status = BatchStatus::kDisputed;
  record.challenger = verifier;
  return ok_status();
}

Status OrscContract::resolve_challenge(std::uint64_t batch_id,
                                       bool fraud_proven) {
  if (batch_id >= batches_.size()) {
    return Error{"unknown_batch", "no such batch"};
  }
  BatchRecord& record = batches_[batch_id];
  if (record.status != BatchStatus::kDisputed || !record.challenger) {
    return Error{"no_open_challenge", "batch has no open dispute"};
  }

  const VerifierId challenger = *record.challenger;
  if (fraud_proven) {
    // A_k.Bond -= SlashBond(): the whole aggregator bond is forfeited; a
    // share rewards the challenger, the rest burns.
    Amount& bond = aggregator_bonds_[record.header.aggregator];
    const Amount reward = bond * config_.slash_reward_percent / 100;
    verifier_bonds_[challenger] += reward;
    burnt_ += bond - reward;
    if (flow_ != nullptr) {
      flow_->record_slash(
          obs::FlowActor::seat(record.header.aggregator.value()),
          obs::FlowActor::verifier(challenger.value()), bond, reward);
    }
    bond = 0;
    record.status = BatchStatus::kReverted;
  } else {
    Amount& bond = verifier_bonds_[challenger];
    const Amount reward = bond * config_.slash_reward_percent / 100;
    aggregator_bonds_[record.header.aggregator] += reward;
    burnt_ += bond - reward;
    if (flow_ != nullptr) {
      flow_->record_slash(
          obs::FlowActor::verifier(challenger.value()),
          obs::FlowActor::seat(record.header.aggregator.value()), bond,
          reward);
    }
    bond = 0;
    record.status = BatchStatus::kFinalized;
  }
  return ok_status();
}

std::vector<std::uint64_t> OrscContract::finalize_due(std::uint64_t now) {
  std::vector<std::uint64_t> finalized;
  for (auto& record : batches_) {
    if (record.status == BatchStatus::kPending &&
        now > record.challenge_deadline) {
      record.status = BatchStatus::kFinalized;
      finalized.push_back(record.header.batch_id);
    }
  }
  return finalized;
}

std::vector<BatchHeader> OrscContract::pop_pending_tail(std::size_t max_count) {
  std::size_t pop = 0;
  while (pop < max_count && pop < batches_.size() &&
         batches_[batches_.size() - 1 - pop].status == BatchStatus::kPending) {
    ++pop;
  }
  std::vector<BatchHeader> headers;
  headers.reserve(pop);
  for (std::size_t i = batches_.size() - pop; i < batches_.size(); ++i) {
    headers.push_back(batches_[i].header);
  }
  batches_.resize(batches_.size() - pop);
  return headers;
}

Status OrscContract::revert_pending(std::uint64_t batch_id) {
  if (batch_id >= batches_.size()) {
    return Error{"unknown_batch", "no such batch"};
  }
  BatchRecord& record = batches_[batch_id];
  if (record.status != BatchStatus::kPending) {
    return Error{"not_pending", "only pending batches can be reverted"};
  }
  record.status = BatchStatus::kReverted;
  return ok_status();
}

const BatchRecord* OrscContract::batch(std::uint64_t batch_id) const {
  if (batch_id >= batches_.size()) return nullptr;
  return &batches_[batch_id];
}

namespace {

template <typename Id>
void save_bond_map(io::ByteWriter& w,
                   const std::unordered_map<Id, Amount>& bonds) {
  std::vector<std::pair<Id, Amount>> sorted(bonds.begin(), bonds.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(sorted.size());
  for (const auto& [id, amount] : sorted) {
    w.u32(id.value());
    w.i64(amount);
  }
}

template <typename Id>
Status load_bond_map(io::ByteReader& r, const char* what,
                     std::unordered_map<Id, Amount>& out) {
  std::uint64_t count = 0;
  PAROLE_IO_READ(r.length(count, 12), what);
  std::unordered_map<Id, Amount> loaded;
  loaded.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t id = 0;
    Amount amount = 0;
    PAROLE_IO_READ(r.u32(id), what);
    PAROLE_IO_READ(r.i64(amount), what);
    if (amount < 0) {
      return Error{"corrupt_checkpoint", std::string(what) + ": negative"};
    }
    if (!loaded.emplace(Id{id}, amount).second) {
      return Error{"corrupt_checkpoint", std::string(what) + ": duplicate"};
    }
  }
  out = std::move(loaded);
  return ok_status();
}

}  // namespace

void OrscContract::save(io::ByteWriter& w) const {
  w.u64(config_.challenge_period);
  w.i64(config_.aggregator_bond);
  w.i64(config_.verifier_bond);
  w.u32(static_cast<std::uint32_t>(config_.slash_reward_percent));
  save_bond_map(w, l1_balances_);
  w.u64(pending_deposits_.size());
  for (const Deposit& d : pending_deposits_) d.save(w);
  save_bond_map(w, aggregator_bonds_);
  save_bond_map(w, verifier_bonds_);
  w.u64(batches_.size());
  for (const BatchRecord& record : batches_) {
    record.header.save(w);
    w.u8(static_cast<std::uint8_t>(record.status));
    w.u64(record.challenge_deadline);
    w.boolean(record.challenger.has_value());
    w.u32(record.challenger.has_value() ? record.challenger->value() : 0);
  }
  w.i64(burnt_);
}

Status OrscContract::load(io::ByteReader& r) {
  OrscConfig config;
  std::uint32_t slash_percent = 0;
  PAROLE_IO_READ(r.u64(config.challenge_period), "orsc challenge period");
  PAROLE_IO_READ(r.i64(config.aggregator_bond), "orsc aggregator bond");
  PAROLE_IO_READ(r.i64(config.verifier_bond), "orsc verifier bond");
  PAROLE_IO_READ(r.u32(slash_percent), "orsc slash percent");
  config.slash_reward_percent = static_cast<int>(slash_percent);
  if (config.challenge_period != config_.challenge_period ||
      config.aggregator_bond != config_.aggregator_bond ||
      config.verifier_bond != config_.verifier_bond ||
      config.slash_reward_percent != config_.slash_reward_percent) {
    return Error{"config_mismatch",
                 "checkpoint ORSC config differs from this contract's"};
  }

  OrscContract loaded(config_);
  if (Status s = load_bond_map(r, "orsc l1 balances", loaded.l1_balances_);
      !s.ok()) {
    return s;
  }
  std::uint64_t deposit_count = 0;
  PAROLE_IO_READ(r.length(deposit_count, 12), "orsc deposit count");
  loaded.pending_deposits_.resize(static_cast<std::size_t>(deposit_count));
  for (Deposit& d : loaded.pending_deposits_) {
    if (Status s = d.load(r); !s.ok()) return s;
  }
  if (Status s =
          load_bond_map(r, "orsc aggregator bonds", loaded.aggregator_bonds_);
      !s.ok()) {
    return s;
  }
  if (Status s = load_bond_map(r, "orsc verifier bonds", loaded.verifier_bonds_);
      !s.ok()) {
    return s;
  }
  std::uint64_t batch_count = 0;
  PAROLE_IO_READ(r.length(batch_count, 138), "orsc batch count");
  loaded.batches_.resize(static_cast<std::size_t>(batch_count));
  for (BatchRecord& record : loaded.batches_) {
    if (Status s = record.header.load(r); !s.ok()) return s;
    std::uint8_t status = 0;
    bool has_challenger = false;
    std::uint32_t challenger = 0;
    PAROLE_IO_READ(r.u8(status), "orsc batch status");
    if (status > static_cast<std::uint8_t>(BatchStatus::kReverted)) {
      return Error{"corrupt_checkpoint", "unknown batch status"};
    }
    record.status = static_cast<BatchStatus>(status);
    PAROLE_IO_READ(r.u64(record.challenge_deadline), "orsc batch deadline");
    PAROLE_IO_READ(r.boolean(has_challenger), "orsc challenger flag");
    PAROLE_IO_READ(r.u32(challenger), "orsc challenger id");
    if (has_challenger) record.challenger = VerifierId{challenger};
  }
  PAROLE_IO_READ(r.i64(loaded.burnt_), "orsc burnt total");
  if (loaded.burnt_ < 0) {
    return Error{"corrupt_checkpoint", "negative burnt total"};
  }
  // The flow sink is wiring, not contract state: it survives the image swap.
  loaded.flow_ = flow_;
  *this = std::move(loaded);
  return ok_status();
}

}  // namespace parole::chain
