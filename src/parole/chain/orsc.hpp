// ORSC — the Optimistic Rollup Smart Contract on L1 (Sec. V-A).
//
// Holds user L1 funds, escrows deposits into L2, registers aggregator and
// verifier bonds, records batch commitments, runs the challenge-period clock,
// and settles disputes by slashing whichever side was wrong:
//
//   V_k.Challenge(A.Proof) -> Success  =>  A_k loses its bond
//   V_k.Challenge(A.Proof) -> Fail     =>  V_k loses its bond
//
// The contract is deliberately mechanism-only: *whether* a challenge is
// justified is decided by the dispute game in rollup/dispute.*, which then
// calls resolve_challenge() with the verdict.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "parole/chain/block.hpp"
#include "parole/common/amount.hpp"
#include "parole/common/ids.hpp"
#include "parole/common/result.hpp"
#include "parole/io/bytes.hpp"

namespace parole::obs {
class ValueFlowTracker;
}  // namespace parole::obs

namespace parole::chain {

enum class BatchStatus : std::uint8_t {
  kPending,    // inside the challenge period
  kDisputed,   // a verifier has opened a challenge
  kFinalized,  // challenge period elapsed unchallenged (or challenge failed)
  kReverted,   // fraud proven; batch rolled back
};

struct BatchRecord {
  BatchHeader header;
  BatchStatus status{BatchStatus::kPending};
  std::uint64_t challenge_deadline{0};
  std::optional<VerifierId> challenger;
};

struct OrscConfig {
  // Challenge period in L1 seconds (real systems use ~7 days; the simulator
  // default keeps tests fast while still exercising the state machine).
  std::uint64_t challenge_period = 600;
  Amount aggregator_bond = eth(5);
  Amount verifier_bond = eth(2);
  // Slashed bonds are split: this fraction (percent) rewards the winning
  // party, the rest is burnt.
  int slash_reward_percent = 50;
};

class OrscContract {
 public:
  explicit OrscContract(OrscConfig config = {});

  // --- L1 funds & bridge ----------------------------------------------------

  // Fund a user's L1 wallet (genesis allocation / faucet).
  void fund_l1(UserId user, Amount amount);
  [[nodiscard]] Amount l1_balance(UserId user) const;

  // Lock L1 funds for bridging to L2; the rollup node later consumes the
  // pending deposits and credits the L2 ledger.
  Status deposit(UserId user, Amount amount);
  [[nodiscard]] std::vector<Deposit> drain_pending_deposits();

  // Credit an L2 withdrawal back to L1 (called by the node once the owning
  // batch finalizes).
  void release_withdrawal(UserId user, Amount amount);

  // --- participants ----------------------------------------------------------

  Status register_aggregator(AggregatorId id);
  Status register_verifier(VerifierId id);
  [[nodiscard]] Amount aggregator_bond(AggregatorId id) const;
  [[nodiscard]] Amount verifier_bond(VerifierId id) const;
  [[nodiscard]] bool aggregator_registered(AggregatorId id) const;

  // --- batches & challenges ---------------------------------------------------

  // Record a batch commitment; starts its challenge period at `now`.
  Result<std::uint64_t> submit_batch(BatchHeader header, std::uint64_t now);

  // A verifier opens a challenge; only pending batches inside the period.
  Status open_challenge(std::uint64_t batch_id, VerifierId verifier,
                        std::uint64_t now);

  // Settle a dispute: if `fraud_proven`, the aggregator's bond is slashed and
  // the batch reverted; otherwise the challenger's bond is slashed and the
  // batch finalizes immediately.
  Status resolve_challenge(std::uint64_t batch_id, bool fraud_proven);

  // Finalize every unchallenged batch whose deadline passed; returns their ids.
  std::vector<std::uint64_t> finalize_due(std::uint64_t now);

  // Shallow-L1-reorg support: pop up to `max_count` records off the batch
  // tail as long as they are still kPending (a finalized or disputed batch
  // anchors the tail — a shallow reorg must not cross it). Returns the popped
  // headers oldest-first so the caller can recommit them; because ids are
  // assigned positionally, recommitting the same headers in the same order
  // reassigns the same batch ids.
  std::vector<BatchHeader> pop_pending_tail(std::size_t max_count);

  // Mark a pending batch reverted without touching bonds: used when a proven
  // fraud invalidates descendant batches that were honestly built on the
  // fraudulent state. Only kPending batches can be reverted this way.
  Status revert_pending(std::uint64_t batch_id);

  [[nodiscard]] const BatchRecord* batch(std::uint64_t batch_id) const;
  [[nodiscard]] std::size_t batch_count() const { return batches_.size(); }
  [[nodiscard]] Amount burnt_total() const { return burnt_; }
  [[nodiscard]] const OrscConfig& config() const { return config_; }

  // Checkpointing (DESIGN.md §10): balances, bonds, deposit queue, batch
  // records and the burn counter. The config rides along and load() rejects a
  // checkpoint whose config differs from this contract's ("config_mismatch")
  // — resuming a soak under different economic rules is operator error, not
  // something to paper over silently.
  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);

  // Value-flow sink (DESIGN.md §16): bond posts, slash settlements and
  // withdrawal releases report here when set. Observability wiring, not
  // contract state — never checkpointed; load() wipes it (whole-object
  // move-assign), so the owning node re-wires it after a restore.
  void set_flow_sink(obs::ValueFlowTracker* sink) { flow_ = sink; }

 private:
  OrscConfig config_;
  std::unordered_map<UserId, Amount> l1_balances_;
  std::vector<Deposit> pending_deposits_;
  std::unordered_map<AggregatorId, Amount> aggregator_bonds_;
  std::unordered_map<VerifierId, Amount> verifier_bonds_;
  std::vector<BatchRecord> batches_;
  Amount burnt_{0};
  obs::ValueFlowTracker* flow_{nullptr};
};

}  // namespace parole::chain
