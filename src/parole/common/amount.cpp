#include "parole/common/amount.hpp"

#include <cstdlib>

namespace parole {

std::string to_eth_string(Amount a) {
  const bool negative = a < 0;
  // Use unsigned magnitude so INT64_MIN would not overflow on negation;
  // amounts never get near that, but defensiveness is free here.
  std::uint64_t mag = negative ? 0ULL - static_cast<std::uint64_t>(a)
                               : static_cast<std::uint64_t>(a);
  const std::uint64_t whole = mag / static_cast<std::uint64_t>(kGweiPerEth);
  std::uint64_t frac = mag % static_cast<std::uint64_t>(kGweiPerEth);

  std::string out = negative ? "-" : "";
  out += std::to_string(whole);
  if (frac != 0) {
    std::string digits = std::to_string(frac);
    digits.insert(digits.begin(), 9 - digits.size(), '0');
    while (!digits.empty() && digits.back() == '0') digits.pop_back();
    out += '.';
    out += digits;
  }
  return out;
}

std::string to_gwei_string(Amount a) {
  const bool negative = a < 0;
  std::uint64_t mag = negative ? 0ULL - static_cast<std::uint64_t>(a)
                               : static_cast<std::uint64_t>(a);
  std::string digits = std::to_string(mag);
  std::string grouped;
  grouped.reserve(digits.size() + digits.size() / 3 + 2);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) grouped.push_back(',');
    grouped.push_back(*it);
    ++count;
  }
  if (negative) grouped.push_back('-');
  std::string out(grouped.rbegin(), grouped.rend());
  out += " gwei";
  return out;
}

}  // namespace parole
