// Fixed-point money type.
//
// All balances, prices and fees are signed 64-bit *gwei* (1 ETH = 1e9 gwei).
// The case studies in Sec. VI use values like 0.33 ETH = 10/6 * 0.2 ETH; with
// integer gwei that is exactly 333'333'333, so tests can pin exact integers
// instead of comparing doubles. int64 gwei covers ±9.2e9 ETH, far beyond any
// balance the simulator produces, and intermediate products in the price
// curve are evaluated in __int128 (see token/price_curve.*).
#pragma once

#include <cstdint>
#include <string>

namespace parole {

// Signed amount in gwei.
using Amount = std::int64_t;

inline constexpr Amount kGweiPerEth = 1'000'000'000;

// Build an Amount from whole ETH.
constexpr Amount eth(std::int64_t whole) { return whole * kGweiPerEth; }

// Build an Amount from a decimal ETH literal split as whole + milli-ETH,
// e.g. eth(0, 400) == 0.4 ETH. Avoids floating point in constants.
constexpr Amount eth(std::int64_t whole, std::int64_t milli) {
  return whole * kGweiPerEth + milli * (kGweiPerEth / 1000);
}

// Exact gwei constructor, for symmetry with eth().
constexpr Amount gwei(std::int64_t g) { return g; }

// Render an amount as a decimal ETH string, trimming trailing zeros:
// 2'300'000'000 -> "2.3", 333'333'333 -> "0.333333333", -5e8 -> "-0.5".
std::string to_eth_string(Amount a);

// Render an amount as "<n> gwei" with thousands separators.
std::string to_gwei_string(Amount a);

// Convert to double ETH for plotting/series output only (never for state).
constexpr double to_eth_double(Amount a) {
  return static_cast<double>(a) / static_cast<double>(kGweiPerEth);
}

}  // namespace parole
