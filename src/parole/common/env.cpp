#include "parole/common/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace parole {

double env_double(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  return end == raw ? fallback : value;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  return end == raw ? fallback : static_cast<std::int64_t>(value);
}

double bench_scale() {
  const double s = env_double("PAROLE_BENCH_SCALE", kDefaultBenchScale);
  return std::clamp(s, 1e-3, 1.0);
}

std::int64_t scaled(std::int64_t full_value, std::int64_t min_value) {
  const auto v =
      static_cast<std::int64_t>(static_cast<double>(full_value) * bench_scale());
  return std::max(v, min_value);
}

std::uint64_t experiment_seed(std::uint64_t fallback) {
  return static_cast<std::uint64_t>(
      env_int("PAROLE_SEED", static_cast<std::int64_t>(fallback)));
}

}  // namespace parole
