// Environment-variable knobs for the benchmark harness.
//
// Full-fidelity runs of the DQN figures train 100 episodes x 200 steps per
// configuration; PAROLE_BENCH_SCALE (a float in (0, 1], default from
// kDefaultBenchScale) lets CI shrink the episode/step counts proportionally
// while keeping every series shape intact. PAROLE_SEED overrides the
// experiment seed.
#pragma once

#include <cstdint>
#include <string>

namespace parole {

inline constexpr double kDefaultBenchScale = 0.25;

// Read an environment variable, empty optional-style: returns fallback when
// unset or unparsable.
double env_double(const std::string& name, double fallback);
std::int64_t env_int(const std::string& name, std::int64_t fallback);

// The global bench scale in (0, 1]. Values outside are clamped.
double bench_scale();

// Scale a count by bench_scale(), with a floor of min_value.
std::int64_t scaled(std::int64_t full_value, std::int64_t min_value = 1);

// Experiment seed: PAROLE_SEED or the provided default.
std::uint64_t experiment_seed(std::uint64_t fallback);

}  // namespace parole
