#include "parole/common/fault.hpp"

namespace parole {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kAggregatorCrash:
      return "aggregator_crash";
    case FaultKind::kReordererFailure:
      return "reorderer_failure";
    case FaultKind::kVerifierDown:
      return "verifier_down";
    case FaultKind::kTxDrop:
      return "tx_drop";
    case FaultKind::kTxDuplicate:
      return "tx_duplicate";
    case FaultKind::kTxDelay:
      return "tx_delay";
    case FaultKind::kL1Reorg:
      return "l1_reorg";
    case FaultKind::kLeaderCrashMidBatch:
      return "leader_crash_mid_batch";
    case FaultKind::kElectionMsgDrop:
      return "election_msg_drop";
    case FaultKind::kElectionMsgDelay:
      return "election_msg_delay";
    case FaultKind::kStaleViewDoublePropose:
      return "stale_view_double_propose";
  }
  return "unknown";
}

void FaultLog::record(FaultEvent event) { events_.push_back(std::move(event)); }

std::size_t FaultLog::count(FaultKind kind) const {
  std::size_t n = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string FaultLog::to_string() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    out += "step " + std::to_string(e.step) + ": " +
           std::string(parole::to_string(e.kind));
    out += " [subject " + std::to_string(e.subject) + "]";
    if (!e.detail.empty()) {
      out += " — " + e.detail;
    }
    out.push_back('\n');
  }
  return out;
}

std::uint64_t fault_mix(std::uint64_t seed, std::uint64_t stream,
                        std::uint64_t subject, std::uint64_t step) {
  // Each input is spread by a distinct odd constant before the SplitMix64
  // finalizer so (stream=1, step=0) and (stream=0, step=1) land in unrelated
  // streams.
  const std::uint64_t mixed = seed ^ (stream * 0x9e3779b97f4a7c15ULL) ^
                              (subject * 0xbf58476d1ce4e5b9ULL) ^
                              (step * 0x94d049bb133111ebULL);
  return SplitMix64(mixed).next();
}

Rng fault_rng(std::uint64_t seed, std::uint64_t stream, std::uint64_t subject,
              std::uint64_t step) {
  return Rng(fault_mix(seed, stream, subject, step));
}

bool fault_roll(std::uint64_t seed, std::uint64_t stream, std::uint64_t subject,
                std::uint64_t step, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return fault_rng(seed, stream, subject, step).uniform() < p;
}

}  // namespace parole
