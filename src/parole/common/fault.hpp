// Deterministic fault-injection primitives (DESIGN.md §9).
//
// Chaos testing only pays off when a failing run can be replayed: every fault
// decision here is a pure function of (seed, fault family, subject, step), so
// a schedule never depends on how many random draws other components made and
// two runs with the same seed inject byte-identical fault sequences. The
// rollup-specific schedule (which faults exist and what they mean) lives in
// rollup/chaos.*; this header owns the vocabulary shared across layers: the
// fault taxonomy, the per-event record, the append-only log, and the
// order-independent derivation of per-decision random streams.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "parole/common/rng.hpp"

namespace parole {

// The fault taxonomy (DESIGN.md §9). Values are stable identifiers — they are
// serialized into RunReport fault lines — so only append, never renumber.
enum class FaultKind : std::uint8_t {
  kAggregatorCrash,   // scheduled aggregator misses its slot mid-round
  kReordererFailure,  // adversarial reorderer times out; identity order ships
  kVerifierDown,      // verifier asleep for a step (downtime window member)
  kTxDrop,            // collected transaction silently vanishes
  kTxDuplicate,       // collected transaction re-gossiped into the pool
  kTxDelay,           // collected transaction withheld for k rounds
  kL1Reorg,           // shallow L1 reorg; unfinalized commitments roll back
  kLeaderCrashMidBatch,    // slot leader dies after collecting, before sealing
  kElectionMsgDrop,        // leader's election/proposal message never arrives
  kElectionMsgDelay,       // election message late past the slot deadline
  kStaleViewDoublePropose, // recovered leader re-proposes under a stale view
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

// One injected fault. `subject` identifies the entity hit (aggregator index,
// verifier index, tx id, reorg depth — per-kind, documented in detail).
struct FaultEvent {
  std::uint64_t step{0};
  FaultKind kind{FaultKind::kAggregatorCrash};
  std::uint64_t subject{0};
  std::string detail;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

// Append-only record of every fault a run injected; the reproducibility
// artifact the acceptance tests diff and RunReport serializes.
class FaultLog {
 public:
  void record(FaultEvent event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t count(FaultKind kind) const;
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  // Human-readable one-line-per-event dump (demo/CLI output).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FaultLog&, const FaultLog&) = default;

 private:
  std::vector<FaultEvent> events_;
};

// Order-independent stream derivation: a 64-bit value that depends only on
// (seed, stream, subject, step). SplitMix64 finalization keeps avalanche
// quality even though the inputs are tiny counters.
[[nodiscard]] std::uint64_t fault_mix(std::uint64_t seed, std::uint64_t stream,
                                      std::uint64_t subject,
                                      std::uint64_t step);

// A full Rng over that derived stream, for decisions that need several draws
// (e.g. "which index" after "does it fire").
[[nodiscard]] Rng fault_rng(std::uint64_t seed, std::uint64_t stream,
                            std::uint64_t subject, std::uint64_t step);

// Bernoulli over the derived stream: fires with probability `p`.
[[nodiscard]] bool fault_roll(std::uint64_t seed, std::uint64_t stream,
                              std::uint64_t subject, std::uint64_t step,
                              double p);

}  // namespace parole
