// Strongly-typed identifiers used across the rollup simulator.
//
// The paper indexes users as U_k, aggregators as A_k, verifiers as V_k and
// tokens by an integer ID 'i' (Table I). We keep those as distinct integral
// wrapper types so a TokenId can never be passed where a UserId is expected.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace parole {

// CRTP-free tagged integer. Comparable, hashable, streamable.
template <typename Tag, typename Rep = std::uint32_t>
class TaggedId {
 public:
  using rep_type = Rep;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(TaggedId a, TaggedId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(TaggedId a, TaggedId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(TaggedId a, TaggedId b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(TaggedId a, TaggedId b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator<=(TaggedId a, TaggedId b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>=(TaggedId a, TaggedId b) {
    return a.value_ >= b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, TaggedId id) {
    return os << id.value_;
  }

 private:
  Rep value_{0};
};

struct UserIdTag {};
struct TokenIdTag {};
struct TxIdTag {};
struct AggregatorIdTag {};
struct VerifierIdTag {};
struct CollectionIdTag {};

// The 'k'-th rollup user U_k.
using UserId = TaggedId<UserIdTag>;
// The unique identifier 'i' of an ERC-721 token instance.
using TokenId = TaggedId<TokenIdTag>;
// A transaction identifier unique within a simulation.
using TxId = TaggedId<TxIdTag, std::uint64_t>;
// The 'k'-th rollup aggregator A_k.
using AggregatorId = TaggedId<AggregatorIdTag>;
// The 'k'-th rollup verifier V_k.
using VerifierId = TaggedId<VerifierIdTag>;
// An NFT collection in the snapshot data substrate.
using CollectionId = TaggedId<CollectionIdTag>;

}  // namespace parole

namespace std {
template <typename Tag, typename Rep>
struct hash<parole::TaggedId<Tag, Rep>> {
  size_t operator()(parole::TaggedId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
