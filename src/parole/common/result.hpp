// Minimal expected-like Result<T, E> for recoverable errors.
//
// The simulator never throws for domain outcomes (an NFT transfer whose
// constraints fail is data, not an exception); exceptions are reserved for
// programming errors. Result keeps that distinction explicit at interfaces.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace parole {

// Default error payload: a short machine-readable code plus human detail.
struct Error {
  std::string code;
  std::string detail;

  friend bool operator==(const Error&, const Error&) = default;
};

template <typename T, typename E = Error>
class [[nodiscard]] Result {
 public:
  // Implicit from value / error keeps call sites terse:
  //   return 42;            return Error{"nope", "..."};
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Result(E error) : data_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(data_));
  }

  [[nodiscard]] const E& error() const& {
    assert(!ok());
    return std::get<1>(data_);
  }

  // value_or for cheap defaults.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, E> data_;
};

// Void specialisation helper: Result<Unit>.
struct Unit {
  friend bool operator==(const Unit&, const Unit&) = default;
};

using Status = Result<Unit>;

inline Status ok_status() { return Unit{}; }

}  // namespace parole
