#include "parole/common/rng.hpp"

#include <cassert>
#include <cmath>

namespace parole {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL / span) * span;
  std::uint64_t raw;
  do {
    raw = next();
  } while (raw >= limit);
  return lo + static_cast<std::int64_t>(raw % span);
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::zipf(std::size_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) total += std::pow(static_cast<double>(k), -s);
  double target = uniform() * total;
  for (std::size_t k = 1; k <= n; ++k) {
    target -= std::pow(static_cast<double>(k), -s);
    if (target <= 0.0) return k - 1;
  }
  return n - 1;
}

Rng Rng::fork() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

}  // namespace parole
