// Deterministic random number generation.
//
// Every stochastic component (workload generation, epsilon-greedy exploration,
// annealing schedules, snapshot synthesis) draws from a parole::Rng seeded by
// the experiment harness, so each table/figure is bit-reproducible. xoshiro256**
// is used for generation and SplitMix64 for seeding, per Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace parole {

// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Complete serializable snapshot of an Rng: the xoshiro256** words plus the
// Box-Muller cache (without it a restored stream would skip or repeat one
// normal draw). common/ stays independent of the io module, so this is a
// plain struct; io-layer code owns the byte encoding.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  bool have_cached_normal{false};
  double cached_normal{0.0};

  friend bool operator==(const RngState&, const RngState&) = default;
};

// xoshiro256** with convenience distributions. Satisfies
// UniformRandomBitGenerator so it also plugs into <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Standard normal via Box-Muller (cached pair).
  double normal();
  double normal(double mean, double stddev);

  // Bernoulli with probability p of true.
  bool chance(double p);

  // Zipf-like rank sampler over {0..n-1} with exponent s (s=0 => uniform).
  // Uses inverse-CDF over precomputed weights; intended for modest n.
  std::size_t zipf(std::size_t n, double s);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  // Pick a uniformly random element index of a non-empty container.
  std::size_t index(std::size_t size) {
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  // Derive an independent child stream (for per-aggregator randomness).
  Rng fork();

  // Checkpointing: a restored stream continues bit-identically from where the
  // captured one stopped.
  [[nodiscard]] RngState checkpoint_state() const {
    return RngState{state_, have_cached_normal_, cached_normal_};
  }
  void restore_state(const RngState& s) {
    state_ = s.words;
    have_cached_normal_ = s.have_cached_normal;
    cached_normal_ = s.cached_normal;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_{false};
  double cached_normal_{0.0};
};

}  // namespace parole
