#include "parole/common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parole/common/rng.hpp"

namespace parole {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::vector<double> moving_average(const std::vector<double>& xs,
                                   std::size_t window) {
  assert(window > 0);
  std::vector<double> out;
  out.reserve(xs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];
    if (i >= window) acc -= xs[i - window];
    const std::size_t n = std::min(i + 1, window);
    out.push_back(acc / static_cast<double>(n));
  }
  return out;
}

double percentile(std::vector<double> xs, double p) {
  assert(!xs.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double mean_of(const std::vector<double>& xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.mean();
}

double stddev_of(const std::vector<double>& xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

BootstrapCi bootstrap_mean_ci(const std::vector<double>& xs, Rng& rng,
                              double alpha, std::size_t resamples) {
  assert(!xs.empty());
  assert(alpha > 0.0 && alpha < 1.0);
  assert(resamples > 1);

  BootstrapCi ci;
  ci.mean = mean_of(xs);

  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double total = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      total += xs[rng.index(xs.size())];
    }
    means.push_back(total / static_cast<double>(xs.size()));
  }
  ci.lower = percentile(means, 100.0 * alpha / 2.0);
  ci.upper = percentile(std::move(means), 100.0 * (1.0 - alpha / 2.0));
  return ci;
}

}  // namespace parole
