// Small statistics toolbox used by the evaluation harness:
// running mean/variance, moving averages (Fig. 8 plots a window-9 moving
// average of episode rewards), percentiles, and min/max summaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parole {

class Rng;

// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

// Trailing moving average with the given window (the series starts at the
// first sample: element i averages samples max(0, i-window+1)..i). This is
// what Fig. 8 plots with window = 9.
std::vector<double> moving_average(const std::vector<double>& xs,
                                   std::size_t window);

// Linear-interpolated percentile of an unsorted sample, p in [0, 100].
double percentile(std::vector<double> xs, double p);

double mean_of(const std::vector<double>& xs);
double stddev_of(const std::vector<double>& xs);

// Percentile-bootstrap confidence interval for the mean: resample with
// replacement `resamples` times and take the (alpha/2, 1-alpha/2) quantiles
// of the resampled means. Campaign experiments report these next to their
// point estimates (the underlying profit distributions are heavy-tailed, so
// a normal approximation would mislead).
struct BootstrapCi {
  double mean{0.0};
  double lower{0.0};
  double upper{0.0};
};

BootstrapCi bootstrap_mean_ci(const std::vector<double>& xs, Rng& rng,
                              double alpha = 0.05,
                              std::size_t resamples = 2'000);

}  // namespace parole
