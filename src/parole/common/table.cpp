#include "parole/common/table.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace parole {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != ',' && c != '%') {
      return false;
    }
  }
  return digit_seen;
}

std::string escape_csv(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TablePrinter& TablePrinter::columns(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  return *this;
}

TablePrinter& TablePrinter::row(std::vector<std::string> cells) {
  assert(headers_.empty() || cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TablePrinter::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::integer(long long value) {
  return std::to_string(value);
}

std::string TablePrinter::to_string() const {
  const std::size_t ncols = headers_.size();
  std::vector<std::size_t> width(ncols, 0);
  std::vector<bool> numeric(ncols, true);
  for (std::size_t c = 0; c < ncols; ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < ncols && c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
      if (!looks_numeric(r[c])) numeric[c] = false;
    }
  }

  auto pad = [](const std::string& s, std::size_t w, bool right) {
    std::string out;
    if (right) out.append(w - s.size(), ' ');
    out += s;
    if (!right) out.append(w - s.size(), ' ');
    return out;
  };

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  std::string sep = "+";
  for (std::size_t c = 0; c < ncols; ++c) {
    sep += std::string(width[c] + 2, '-');
    sep += '+';
  }
  os << sep << '\n' << '|';
  for (std::size_t c = 0; c < ncols; ++c) {
    os << ' ' << pad(headers_[c], width[c], false) << " |";
  }
  os << '\n' << sep << '\n';
  for (const auto& r : rows_) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << ' ' << pad(cell, width[c], numeric[c]) << " |";
    }
    os << '\n';
  }
  os << sep << '\n';
  return os.str();
}

std::string TablePrinter::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << escape_csv(headers_[c]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << escape_csv(r[c]);
    }
    os << '\n';
  }
  return os.str();
}

void TablePrinter::print(bool with_csv) const {
  std::cout << to_string();
  if (with_csv) {
    std::cout << "--- csv ---\n" << to_csv() << "--- end csv ---\n";
  }
  std::cout.flush();
}

}  // namespace parole
