// ASCII table / CSV renderer for the benchmark harness.
//
// Every bench/figN_* binary prints the same rows or series the paper plots;
// TablePrinter renders them both as an aligned console table (for humans) and
// as CSV (for re-plotting). Columns are right-aligned when every cell parses
// as a number, left-aligned otherwise.
#pragma once

#include <string>
#include <vector>

namespace parole {

class TablePrinter {
 public:
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  TablePrinter& columns(std::vector<std::string> headers);
  TablePrinter& row(std::vector<std::string> cells);

  // Convenience: format doubles with the given precision.
  static std::string num(double value, int precision = 3);
  static std::string integer(long long value);

  // Render the aligned ASCII table.
  [[nodiscard]] std::string to_string() const;
  // Render as CSV (header row first).
  [[nodiscard]] std::string to_csv() const;

  // Print table followed by a csv block to stdout.
  void print(bool with_csv = true) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace parole
