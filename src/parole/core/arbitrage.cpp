#include "parole/core/arbitrage.hpp"

#include <algorithm>

namespace parole::core {
namespace {

bool is_ifu(UserId user, std::span<const UserId> ifus) {
  return std::find(ifus.begin(), ifus.end(), user) != ifus.end();
}

}  // namespace

ArbitrageAssessment assess_arbitrage(std::span<const vm::Tx> txs,
                                     std::span<const UserId> ifus) {
  ArbitrageAssessment out;

  for (const vm::Tx& tx : txs) {
    const bool sender_ifu = is_ifu(tx.sender, ifus);
    const bool recipient_ifu =
        tx.kind == vm::TxKind::kTransfer && is_ifu(tx.recipient, ifus);
    const bool involved = sender_ifu || recipient_ifu;

    if (involved) {
      ++out.ifu_tx_count;
      if (tx.kind == vm::TxKind::kMint && sender_ifu) out.ifu_has_mint = true;
      if (tx.kind == vm::TxKind::kTransfer) out.ifu_has_transfer = true;
    }
    if (tx.kind != vm::TxKind::kTransfer) ++out.price_moving_txs;
  }

  // Re-ordering can only help when (a) an IFU appears in at least two
  // transactions (otherwise no position of its single tx changes its final
  // holdings more than the price-movers do on their own) and (b) something
  // in the batch moves the price at all.
  out.opportunity = out.ifu_tx_count >= 2 && out.price_moving_txs >= 1;

  // 0-100 leverage score: saturating mix of IFU involvement and price movers,
  // with the mint+transfer pairing the paper singles out as a bonus.
  const int involvement = static_cast<int>(std::min<std::size_t>(
      out.ifu_tx_count * 15, 45));
  const int movers = static_cast<int>(std::min<std::size_t>(
      out.price_moving_txs * 10, 35));
  const int pairing = (out.ifu_has_mint && out.ifu_has_transfer) ? 20 : 0;
  out.score = out.opportunity ? involvement + movers + pairing : 0;

  return out;
}

}  // namespace parole::core
