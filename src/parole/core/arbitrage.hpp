// Arbitrage-opportunity assessment (Sec. V-B, and the Arbitrage() predicate
// of Algorithm 1 line 2).
//
// The PAROLE module first checks whether the collected transaction set can be
// re-ordered profitably for the IFU at all, before spending any effort on
// GENTRANSEQ. Per the paper: "There is potential for profitable arbitrage for
// the IFU, if he is involved in multiple transactions within the set ...
// Ideally, he should at least be involved in a pair of minting and transfer
// transactions, while being involved in more transactions increases the
// chance". Price movement requires at least one mint or burn somewhere in the
// batch (transfers alone never move the Eq. 10 price).
#pragma once

#include <span>
#include <vector>

#include "parole/common/ids.hpp"
#include "parole/vm/tx.hpp"

namespace parole::core {

struct ArbitrageAssessment {
  // The gating verdict used by Algorithm 1.
  bool opportunity{false};

  // Diagnostics behind the verdict.
  std::size_t ifu_tx_count{0};        // txs involving any IFU
  bool ifu_has_mint{false};           // an IFU mints in the batch
  bool ifu_has_transfer{false};       // an IFU buys or sells in the batch
  std::size_t price_moving_txs{0};    // mints + burns in the whole batch
  // Heuristic 0-100 score: more IFU involvement and more price movers mean
  // more re-ordering leverage (Sec. V-B's "more transactions increases the
  // chance").
  int score{0};
};

// Assess a collected batch for a set of IFUs.
[[nodiscard]] ArbitrageAssessment assess_arbitrage(
    std::span<const vm::Tx> txs, std::span<const UserId> ifus);

}  // namespace parole::core
