#include "parole/core/campaign.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <optional>

#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"
#include "parole/obs/watchdog.hpp"

namespace parole::core {
namespace {

// Campaign accumulators section; the rollup node contributes its own
// snapshot sections (NODE/L2ST/MEMP/...) to the same container.
constexpr std::uint32_t kCampaignTag = io::section_tag("CAMP");

}  // namespace

AttackCampaign::AttackCampaign(CampaignConfig config)
    : config_(std::move(config)) {
  assert(config_.num_aggregators >= 1);
  assert(config_.adversarial_fraction >= 0.0 &&
         config_.adversarial_fraction <= 1.0);
}

CampaignResult AttackCampaign::run() {
  // Without a checkpoint directory the resumable path has no store I/O and
  // cannot fail.
  assert(config_.checkpoint_dir.empty());
  return run_resumable().value();
}

Result<CampaignResult> AttackCampaign::run_resumable() {
  // Timed even when the recorder is off: campaign wall time is the shared
  // clock every per-module span nests under.
  obs::Span campaign_span("core.campaign", obs::Span::Timing::kAlways);
  CampaignResult result;

  // --- workload -------------------------------------------------------------
  // Recomputed from the config every invocation (including resume): the
  // generator is deterministic in `seed`, so a resumed campaign sees the
  // same genesis and IFU set, and the checkpoint only has to carry dynamic
  // state. Resuming under a different workload config trips the snapshot's
  // config validation instead of silently diverging.
  data::WorkloadGenerator workload(config_.workload, config_.seed);
  const vm::L2State genesis = workload.initial_state();  // pre-generation copy
  const std::size_t total_txs = config_.rounds * config_.mempool_size;
  std::vector<vm::Tx> txs = workload.generate(total_txs);
  result.ifus = workload.pick_ifus(config_.num_ifus);

  // --- rollup topology --------------------------------------------------------
  rollup::NodeConfig node_config;
  node_config.max_supply = config_.workload.max_supply;
  node_config.initial_price = config_.workload.initial_price;
  rollup::RollupNode node(node_config);
  node.state() = genesis;
  // The IFU set is the attacker cohort for value-flow attribution: flows
  // touching these users land on the "attacker" position, everyone else is
  // "victims". Set before the first step so batch 0 is already attributed.
  node.flow().set_attackers(result.ifus);
  if (config_.chaos.has_value()) node.arm_chaos(*config_.chaos);

  std::size_t adversarial = config_.adversarial_fraction <= 0.0
                                ? 0
                                : std::max<std::size_t>(
                                      1, static_cast<std::size_t>(std::lround(
                                             config_.adversarial_fraction *
                                             static_cast<double>(
                                                 config_.num_aggregators))));
  adversarial = std::min(adversarial, config_.num_aggregators);
  result.adversarial_aggregators = adversarial;

  // One Parole instance shared by the colluding aggregators; profit and
  // per-batch bookkeeping flow through the sink.
  ParoleConfig parole_config = config_.parole;
  parole_config.seed ^= config_.seed;
  // Fair collusion: an order must improve *every* served IFU (identical to
  // the plain objective for one IFU). This is what produces the Fig. 6
  // decline in per-IFU profit as more IFUs are served.
  parole_config.objective = solvers::Objective::kMinGain;
  auto parole = std::make_unique<Parole>(parole_config);

  Amount profit_sink = 0;
  std::size_t reordered = 0;
  const BatchForensics auditor(config_.forensics);
  const bool audit = config_.audit;
  auto counting_reorderer =
      [&parole, &profit_sink, &reordered, &result, &auditor, audit,
       ifus = result.ifus](const vm::L2State& state,
                           std::vector<vm::Tx> batch) -> std::vector<vm::Tx> {
    PAROLE_OBS_SPAN("core.reorder");
    PAROLE_OBS_COUNT("parole.core.reorder_calls", 1);
    AttackOutcome outcome = parole->run(state, std::move(batch), ifus);
    profit_sink += outcome.profit();
    if (outcome.reordered) ++reordered;
    if (audit) {
      // The auditor sees exactly what lands on chain: pre-state + shipped
      // order, reconstructable from public data.
      const ForensicReport report =
          auditor.analyze(state, outcome.final_sequence);
      result.suspicion_scores.push_back(report.suspicion);
      if (outcome.reordered && report.flagged) ++result.flagged_batches;
    }
    return std::move(outcome.final_sequence);
  };

  for (std::size_t a = 0; a < config_.num_aggregators; ++a) {
    rollup::AggregatorConfig agg;
    agg.id = AggregatorId{static_cast<std::uint32_t>(a)};
    agg.mempool_size = config_.mempool_size;
    if (a < adversarial) agg.reorderer = counting_reorderer;
    node.add_aggregator(std::move(agg));
  }
  for (std::size_t v = 0; v < config_.num_verifiers; ++v) {
    node.add_verifier(VerifierId{static_cast<std::uint32_t>(v)});
  }
  // Armed after the aggregator loop so every seat picks up its adversarial
  // flag from the reorderer it carries.
  if (config_.consensus.has_value()) node.arm_consensus(*config_.consensus);

  std::unique_ptr<MempoolDefense> defense;
  if (config_.defended) {
    defense = std::make_unique<MempoolDefense>(config_.defense);
    node.set_batch_screen(defense->as_screen());
  }

  // --- resume ---------------------------------------------------------------
  std::optional<io::CheckpointManager> manager;
  std::size_t start_round = 0;
  Amount profit_before = 0;
  bool resumed = false;
  if (!config_.checkpoint_dir.empty()) {
    manager.emplace(config_.checkpoint_dir, "campaign", config_.checkpoint_keep);
    if (manager->has_checkpoint()) {
      auto loaded = manager->load_latest();
      if (!loaded.ok()) return loaded.error();
      const io::Checkpoint& cp = loaded.value().checkpoint;

      auto meta = cp.meta();
      if (!meta.ok()) return meta.error();
      const auto kind = meta.value().find("kind");
      if (kind == meta.value().end() || !kind->second.is_string() ||
          kind->second.as_string() != "campaign") {
        return Error{"config_mismatch",
                     "checkpoint is not a campaign checkpoint"};
      }

      auto camp_reader = cp.reader(kCampaignTag);
      if (!camp_reader.ok()) return camp_reader.error();
      io::ByteReader& r = camp_reader.value();

      std::uint64_t next_round = 0, reordered_saved = 0;
      std::uint64_t parole_invocations = 0, defense_invocations = 0;
      std::uint64_t adversarial_batches = 0, screened = 0, flagged = 0;
      std::int64_t sink = 0, before = 0;
      PAROLE_IO_READ(r.u64(next_round), "campaign round cursor");
      PAROLE_IO_READ(r.i64(sink), "campaign profit sink");
      PAROLE_IO_READ(r.i64(before), "campaign profit watermark");
      PAROLE_IO_READ(r.u64(reordered_saved), "campaign reordered count");
      PAROLE_IO_READ(r.u64(parole_invocations), "parole invocation counter");
      PAROLE_IO_READ(r.u64(defense_invocations), "defense invocation counter");
      PAROLE_IO_READ(r.u64(adversarial_batches), "adversarial batch count");
      PAROLE_IO_READ(r.u64(screened), "screened tx count");
      PAROLE_IO_READ(r.u64(flagged), "flagged batch count");
      std::uint64_t profit_count = 0;
      PAROLE_IO_READ(r.length(profit_count, 8), "per-batch profit count");
      std::vector<Amount> per_batch(static_cast<std::size_t>(profit_count));
      for (Amount& p : per_batch) {
        std::int64_t raw = 0;
        PAROLE_IO_READ(r.i64(raw), "per-batch profit");
        p = static_cast<Amount>(raw);
      }
      std::uint64_t suspicion_count = 0;
      PAROLE_IO_READ(r.length(suspicion_count, 8), "suspicion score count");
      std::vector<double> suspicion(static_cast<std::size_t>(suspicion_count));
      PAROLE_IO_READ(
          r.raw({reinterpret_cast<std::uint8_t*>(suspicion.data()),
                 suspicion.size() * sizeof(double)}),
          "suspicion scores");
      std::uint64_t ifu_count = 0;
      PAROLE_IO_READ(r.length(ifu_count, 4), "ifu count");
      std::vector<UserId> ifus(static_cast<std::size_t>(ifu_count));
      for (UserId& u : ifus) {
        std::uint32_t raw = 0;
        PAROLE_IO_READ(r.u32(raw), "ifu id");
        u = UserId{raw};
      }
      std::uint64_t reorderer_kind = 0, portfolio_workers = 0;
      std::uint64_t portfolio_threads = 0, portfolio_substream = 0;
      bool portfolio_deterministic = false;
      PAROLE_IO_READ(r.u64(reorderer_kind), "reorderer kind");
      PAROLE_IO_READ(r.u64(portfolio_workers), "portfolio worker count");
      PAROLE_IO_READ(r.u64(portfolio_threads), "portfolio thread count");
      PAROLE_IO_READ(r.u64(portfolio_substream), "portfolio substream base");
      PAROLE_IO_READ(r.boolean(portfolio_deterministic),
                     "portfolio determinism flag");
      bool consensus_armed = false;
      std::uint8_t consensus_model = 0;
      std::uint64_t consensus_seed = 0;
      std::uint64_t view_changes_saved = 0, equivocations_saved = 0;
      PAROLE_IO_READ(r.boolean(consensus_armed), "consensus armed flag");
      PAROLE_IO_READ(r.u8(consensus_model), "consensus model");
      PAROLE_IO_READ(r.u64(consensus_seed), "consensus seed");
      PAROLE_IO_READ(r.u64(view_changes_saved), "campaign view changes");
      PAROLE_IO_READ(r.u64(equivocations_saved), "campaign equivocations");
      if (Status s = r.finish("CAMP section"); !s.ok()) return s.error();

      // Parallel-solver fingerprint: the reorderer kind and the portfolio's
      // parallelism shape which searches each round replays, so a resumed
      // campaign under a different configuration would silently diverge
      // from the uninterrupted run. Reject it instead.
      if (reorderer_kind !=
              static_cast<std::uint64_t>(config_.parole.kind) ||
          portfolio_workers != config_.parole.portfolio.workers ||
          portfolio_threads != config_.parole.portfolio.threads ||
          portfolio_substream != config_.parole.portfolio.substream_base ||
          portfolio_deterministic != config_.parole.portfolio.deterministic) {
        return Error{"config_mismatch",
                     "checkpoint was taken under a different parallel-solver "
                     "configuration (reorderer/threads/substreams)"};
      }

      // Consensus fingerprint: leadership schedules are derived from the
      // election model and seed, so a checkpoint armed differently would
      // replay different leaders per slot.
      if (consensus_armed != config_.consensus.has_value() ||
          (consensus_armed &&
           (consensus_model !=
                static_cast<std::uint8_t>(config_.consensus->model) ||
            consensus_seed != config_.consensus->seed))) {
        return Error{"config_mismatch",
                     "checkpoint was taken under a different sequencing "
                     "consensus (model/seed)"};
      }

      if (next_round > config_.rounds) {
        return Error{"config_mismatch",
                     "checkpoint ran more rounds than this config allows"};
      }
      if (ifus != result.ifus) {
        return Error{"config_mismatch",
                     "checkpoint IFU set differs from this workload"};
      }
      if (adversarial_batches != per_batch.size()) {
        return Error{"corrupt_checkpoint",
                     "per-batch profit series inconsistent"};
      }
      if (defense == nullptr && defense_invocations != 0) {
        return Error{"config_mismatch",
                     "checkpoint was taken with the defense installed"};
      }

      // The node snapshot validates topology and economic config itself.
      if (Status s = node.restore_snapshot(cp); !s.ok()) return s.error();
      // Restore replaces the flow tracker wholesale; re-pin the attacker
      // cohort for checkpoints cut before the FLOW section existed (the IFU
      // set was validated identical above, so this is a no-op otherwise).
      node.flow().set_attackers(result.ifus);

      profit_sink = static_cast<Amount>(sink);
      profit_before = static_cast<Amount>(before);
      reordered = static_cast<std::size_t>(reordered_saved);
      parole->set_invocations(parole_invocations);
      if (defense != nullptr) defense->set_invocations(defense_invocations);
      result.adversarial_batches =
          static_cast<std::size_t>(adversarial_batches);
      result.screened_txs = static_cast<std::size_t>(screened);
      result.flagged_batches = static_cast<std::size_t>(flagged);
      result.per_batch_profit = std::move(per_batch);
      result.suspicion_scores = std::move(suspicion);
      result.view_changes = static_cast<std::size_t>(view_changes_saved);
      result.equivocations = static_cast<std::size_t>(equivocations_saved);
      start_round = static_cast<std::size_t>(next_round);
      resumed = true;
    }
  }

  auto cut_generation = [&](std::size_t next_round) -> Status {
    io::CheckpointBuilder builder;
    obs::JsonObject meta;
    meta["kind"] = "campaign";
    meta["next_round"] = next_round;
    meta["rounds"] = config_.rounds;
    // Enough of the launch config for `parole_cli resume` to rebuild the
    // campaign without the original command line. The snapshot's own config
    // validation remains the source of truth; this is convenience, not trust.
    meta["seed"] = config_.seed;
    meta["aggregators"] = config_.num_aggregators;
    meta["adversarial_fraction"] = config_.adversarial_fraction;
    meta["mempool_size"] = config_.mempool_size;
    meta["ifus"] = config_.num_ifus;
    meta["reorderer"] = static_cast<std::size_t>(config_.parole.kind);
    meta["threads"] = config_.parole.portfolio.threads;
    if (config_.consensus.has_value()) {
      meta["seats"] = config_.num_aggregators;
      meta["election"] = std::string(to_string(config_.consensus->model));
    }
    builder.set_meta(meta);
    node.save_snapshot(builder);
    io::ByteWriter& w = builder.section(kCampaignTag);
    w.u64(next_round);
    w.i64(profit_sink);
    w.i64(profit_before);
    w.u64(reordered);
    w.u64(parole->invocations());
    w.u64(defense != nullptr ? defense->invocations() : 0);
    w.u64(result.adversarial_batches);
    w.u64(result.screened_txs);
    w.u64(result.flagged_batches);
    w.u64(result.per_batch_profit.size());
    for (const Amount p : result.per_batch_profit) w.i64(p);
    w.u64(result.suspicion_scores.size());
    w.raw({reinterpret_cast<const std::uint8_t*>(
               result.suspicion_scores.data()),
           result.suspicion_scores.size() * sizeof(double)});
    w.u64(result.ifus.size());
    for (const UserId u : result.ifus) w.u32(u.value());
    // Parallel-solver fingerprint (validated on resume, see above).
    w.u64(static_cast<std::uint64_t>(config_.parole.kind));
    w.u64(config_.parole.portfolio.workers);
    w.u64(config_.parole.portfolio.threads);
    w.u64(config_.parole.portfolio.substream_base);
    w.boolean(config_.parole.portfolio.deterministic);
    // Consensus fingerprint + accumulators (validated on resume, see above).
    w.boolean(config_.consensus.has_value());
    w.u8(config_.consensus.has_value()
             ? static_cast<std::uint8_t>(config_.consensus->model)
             : 0);
    w.u64(config_.consensus.has_value() ? config_.consensus->seed : 0);
    w.u64(result.view_changes);
    w.u64(result.equivocations);
    auto generation = manager->save(builder);
    if (!generation.ok()) return generation.error();
    return ok_status();
  };

  // --- run --------------------------------------------------------------------
  if (!resumed) {
    // On resume the not-yet-aggregated transactions live inside the node
    // snapshot's mempool; submitting them again would double-spend them.
    for (vm::Tx& tx : txs) node.submit_tx(std::move(tx));
  }

  std::size_t ran_this_invocation = 0;
  for (std::size_t round = start_round; round < config_.rounds; ++round) {
    PAROLE_OBS_HEARTBEAT("core.campaign");
    const rollup::StepOutcome outcome = node.step();
    // PAROLE batches are honestly committed; none may be challenged.
    assert(!outcome.fraud_proven);
    result.screened_txs += outcome.screened_out;
    result.view_changes += outcome.view_changes;
    result.equivocations += outcome.equivocations;
    if (outcome.produced_batch &&
        outcome.aggregator.value() < adversarial) {
      ++result.adversarial_batches;
      result.per_batch_profit.push_back(profit_sink - profit_before);
      profit_before = profit_sink;
    }
    result.rounds_run = round + 1;
    ++ran_this_invocation;

    if (manager.has_value()) {
      const bool cadence = config_.checkpoint_every_rounds != 0 &&
                           (round + 1) % config_.checkpoint_every_rounds == 0;
      if (cadence || round + 1 == config_.rounds) {
        if (Status s = cut_generation(round + 1); !s.ok()) return s.error();
      }
    }
    if (config_.halt_after_rounds != 0 &&
        ran_this_invocation >= config_.halt_after_rounds &&
        round + 1 < config_.rounds) {
      // Simulated crash: whatever ran past the last generation is re-run
      // identically on resume.
      result.completed = false;
      result.total_profit = profit_sink;
      result.reordered_batches = reordered;
      return result;
    }
  }
  result.rounds_run = config_.rounds;

  result.total_profit = profit_sink;
  result.reordered_batches = reordered;
  if (const rollup::ConsensusEngine* consensus = node.consensus()) {
    result.auction_spend =
        consensus->total_auction_spend(/*adversarial_only=*/true);
    result.slash_loss = consensus->total_slashed(/*adversarial_only=*/true);
  }
  if (config_.num_ifus > 0) {
    result.avg_profit_per_ifu = static_cast<double>(result.total_profit) /
                                static_cast<double>(config_.num_ifus);
  }
  return result;
}

}  // namespace parole::core
