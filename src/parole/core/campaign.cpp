#include "parole/core/campaign.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"

namespace parole::core {

AttackCampaign::AttackCampaign(CampaignConfig config)
    : config_(std::move(config)) {
  assert(config_.num_aggregators >= 1);
  assert(config_.adversarial_fraction >= 0.0 &&
         config_.adversarial_fraction <= 1.0);
}

CampaignResult AttackCampaign::run() {
  // Timed even when the recorder is off: campaign wall time is the shared
  // clock every per-module span nests under.
  obs::Span campaign_span("core.campaign", obs::Span::Timing::kAlways);
  CampaignResult result;

  // --- workload -------------------------------------------------------------
  data::WorkloadGenerator workload(config_.workload, config_.seed);
  const vm::L2State genesis = workload.initial_state();  // pre-generation copy
  const std::size_t total_txs = config_.rounds * config_.mempool_size;
  std::vector<vm::Tx> txs = workload.generate(total_txs);
  result.ifus = workload.pick_ifus(config_.num_ifus);

  // --- rollup topology --------------------------------------------------------
  rollup::NodeConfig node_config;
  node_config.max_supply = config_.workload.max_supply;
  node_config.initial_price = config_.workload.initial_price;
  rollup::RollupNode node(node_config);
  node.state() = genesis;

  std::size_t adversarial = config_.adversarial_fraction <= 0.0
                                ? 0
                                : std::max<std::size_t>(
                                      1, static_cast<std::size_t>(std::lround(
                                             config_.adversarial_fraction *
                                             static_cast<double>(
                                                 config_.num_aggregators))));
  adversarial = std::min(adversarial, config_.num_aggregators);
  result.adversarial_aggregators = adversarial;

  // One Parole instance shared by the colluding aggregators; profit and
  // per-batch bookkeeping flow through the sink.
  ParoleConfig parole_config = config_.parole;
  parole_config.seed ^= config_.seed;
  // Fair collusion: an order must improve *every* served IFU (identical to
  // the plain objective for one IFU). This is what produces the Fig. 6
  // decline in per-IFU profit as more IFUs are served.
  parole_config.objective = solvers::Objective::kMinGain;
  auto parole = std::make_unique<Parole>(parole_config);

  Amount profit_sink = 0;
  std::size_t reordered = 0;
  const BatchForensics auditor(config_.forensics);
  const bool audit = config_.audit;
  auto counting_reorderer =
      [&parole, &profit_sink, &reordered, &result, &auditor, audit,
       ifus = result.ifus](const vm::L2State& state,
                           std::vector<vm::Tx> batch) -> std::vector<vm::Tx> {
    PAROLE_OBS_SPAN("core.reorder");
    PAROLE_OBS_COUNT("parole.core.reorder_calls", 1);
    AttackOutcome outcome = parole->run(state, std::move(batch), ifus);
    profit_sink += outcome.profit();
    if (outcome.reordered) ++reordered;
    if (audit) {
      // The auditor sees exactly what lands on chain: pre-state + shipped
      // order, reconstructable from public data.
      const ForensicReport report =
          auditor.analyze(state, outcome.final_sequence);
      result.suspicion_scores.push_back(report.suspicion);
      if (outcome.reordered && report.flagged) ++result.flagged_batches;
    }
    return std::move(outcome.final_sequence);
  };

  for (std::size_t a = 0; a < config_.num_aggregators; ++a) {
    rollup::AggregatorConfig agg;
    agg.id = AggregatorId{static_cast<std::uint32_t>(a)};
    agg.mempool_size = config_.mempool_size;
    if (a < adversarial) agg.reorderer = counting_reorderer;
    node.add_aggregator(std::move(agg));
  }
  for (std::size_t v = 0; v < config_.num_verifiers; ++v) {
    node.add_verifier(VerifierId{static_cast<std::uint32_t>(v)});
  }

  std::unique_ptr<MempoolDefense> defense;
  if (config_.defended) {
    defense = std::make_unique<MempoolDefense>(config_.defense);
    node.set_batch_screen(defense->as_screen());
  }

  // --- run --------------------------------------------------------------------
  for (vm::Tx& tx : txs) node.submit_tx(std::move(tx));

  Amount profit_before = 0;
  for (std::size_t round = 0; round < config_.rounds; ++round) {
    const rollup::StepOutcome outcome = node.step();
    // PAROLE batches are honestly committed; none may be challenged.
    assert(!outcome.fraud_proven);
    result.screened_txs += outcome.screened_out;
    if (outcome.produced_batch &&
        outcome.aggregator.value() < adversarial) {
      ++result.adversarial_batches;
      result.per_batch_profit.push_back(profit_sink - profit_before);
      profit_before = profit_sink;
    }
  }

  result.total_profit = profit_sink;
  result.reordered_batches = reordered;
  if (config_.num_ifus > 0) {
    result.avg_profit_per_ifu = static_cast<double>(result.total_profit) /
                                static_cast<double>(config_.num_ifus);
  }
  return result;
}

}  // namespace parole::core
