// Attack campaign driver — the simulation behind Figs. 6 and 7.
//
// Builds a full rollup (Bedrock mempool, A aggregators of which a fraction is
// adversarial, verifiers, ORSC), feeds it a synthetic NFT workload, and runs
// aggregation rounds. Every adversarial aggregator routes its collected batch
// through the PAROLE module serving the same set of IFUs; per-batch profit is
// the GENTRANSEQ-achieved IFU balance minus the original-order balance.
//
// Reorderer choice: campaigns default to the annealing reorderer — a
// fidelity-validated proxy for the DQN (tests/core assert both reach the
// same optimum on exhaustive-verifiable instances) that keeps the Figs. 6/7
// parameter sweeps tractable; set ParoleConfig::kind = kDqn for
// paper-faithful (slow) runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "parole/core/defense.hpp"
#include "parole/core/forensics.hpp"
#include "parole/core/parole_attack.hpp"
#include "parole/data/workload.hpp"
#include "parole/io/manifest.hpp"
#include "parole/rollup/node.hpp"

namespace parole::core {

struct CampaignConfig {
  std::size_t num_aggregators = 10;
  // Fraction of aggregators running PAROLE (Fig. 6: 0.10 / 0.50; Fig. 7
  // sweeps 0.10..0.50). At least one adversary when > 0.
  double adversarial_fraction = 0.10;
  // Transactions each aggregator collects per batch ("Mempool size" N).
  std::size_t mempool_size = 50;
  std::size_t num_ifus = 1;
  // Aggregation rounds to simulate.
  std::size_t rounds = 30;
  data::WorkloadConfig workload;
  ParoleConfig parole{ReordererKind::kAnnealing, {},
                      solvers::Objective::kSumBalance, 0x9a601eULL, {}};
  std::size_t num_verifiers = 2;
  // Install the Sec. VIII mempool defense in front of every aggregator
  // (defense-vs-attack ablation).
  bool defended = false;
  DefenseConfig defense;
  // Run batch forensics (core/forensics.*) over every adversarial batch and
  // report how many an auditor would flag.
  bool audit = false;
  ForensicsConfig forensics;
  std::uint64_t seed = 0xca59a16eULL;  // "campaign"
  // Arm the chaos harness on the simulated node (deterministic fault plan).
  // Campaigns under chaos stay bit-reproducible; with kind = kPortfolio the
  // portfolio's deterministic mode guarantees the reordering side of that
  // even when faults perturb which batches reach the reorderer.
  std::optional<rollup::ChaosConfig> chaos;
  // Arm decentralized sequencing (DESIGN.md §15): the aggregators become
  // bonded sequencer seats and slots go to elected leaders instead of
  // round-robin. Under kAuction the adversary must buy its slots, which is
  // what the profit-vs-decentralization bench measures.
  std::optional<rollup::ConsensusConfig> consensus;

  // Crash-safe execution (DESIGN.md §10). When `checkpoint_dir` is set, the
  // campaign cuts a rolling-generation checkpoint every
  // `checkpoint_every_rounds` completed rounds (full rollup-node snapshot +
  // campaign accumulators) and run_resumable() resumes from the newest good
  // generation instead of starting over. The workload, topology and IFUs are
  // recomputed from this config on resume — only dynamic state is persisted —
  // so resuming under a different config is rejected, not silently honored.
  std::string checkpoint_dir;
  std::size_t checkpoint_every_rounds = 10;
  std::size_t checkpoint_keep = 3;
  // Test/crash-drill hook: stop after this many rounds in this invocation
  // without a final save (in-process SIGKILL equivalent). 0 = run to the end.
  std::size_t halt_after_rounds = 0;
};

struct CampaignResult {
  Amount total_profit{0};             // summed over adversarial batches
  double avg_profit_per_ifu{0.0};     // total / (IFUs) — the Fig. 6 metric
  std::size_t adversarial_aggregators{0};
  std::size_t adversarial_batches{0};
  std::size_t reordered_batches{0};   // batches where an improvement shipped
  std::size_t screened_txs{0};        // txs the defense deferred (defended)
  // Forensics (when audit=true): suspicion score per adversarial batch and
  // how many of the *reordered* batches the auditor flags.
  std::vector<double> suspicion_scores;
  std::size_t flagged_batches{0};
  std::vector<Amount> per_batch_profit;
  std::vector<UserId> ifus;
  // Consensus accounting (zero unless CampaignConfig::consensus is set).
  // `auction_spend` is what adversarial seats paid for their slots,
  // `slash_loss` what equivocation slashes took from their bonds — net
  // attack profit is total_profit − auction_spend − slash_loss.
  Amount auction_spend{0};
  Amount slash_loss{0};
  std::size_t view_changes{0};
  std::size_t equivocations{0};
  // False when halted early (CampaignConfig::halt_after_rounds); call
  // run_resumable() again with the same config to continue.
  bool completed{true};
  std::size_t rounds_run{0};
};

class AttackCampaign {
 public:
  explicit AttackCampaign(CampaignConfig config);

  CampaignResult run();

  // As run(), but checkpoint-aware: resumes from `config.checkpoint_dir`
  // when it holds a generation, cuts generations on the configured cadence,
  // and surfaces store/config failures as typed errors. A resumed campaign
  // produces results identical to an uninterrupted one.
  [[nodiscard]] Result<CampaignResult> run_resumable();

  [[nodiscard]] const CampaignConfig& config() const { return config_; }

 private:
  CampaignConfig config_;
};

}  // namespace parole::core
