#include "parole/core/defense.hpp"

#include <algorithm>
#include <unordered_set>

namespace parole::core {
namespace {

std::vector<UserId> involved_users(const std::vector<vm::Tx>& batch) {
  std::unordered_set<UserId> seen;
  std::vector<UserId> out;
  for (const vm::Tx& tx : batch) {
    if (seen.insert(tx.sender).second) out.push_back(tx.sender);
    if (tx.kind == vm::TxKind::kTransfer && seen.insert(tx.recipient).second) {
      out.push_back(tx.recipient);
    }
  }
  return out;
}

}  // namespace

MempoolDefense::MempoolDefense(DefenseConfig config)
    : config_(std::move(config)) {}

Amount MempoolDefense::worst_case(const vm::L2State& state,
                                  const std::vector<vm::Tx>& batch) {
  if (batch.size() < 2) return 0;

  Amount worst = 0;
  for (UserId user : involved_users(batch)) {
    ParoleConfig search_config;
    search_config.kind = config_.search;
    search_config.seed = config_.seed + 0x9e3779b97f4a7c15ULL * ++invocation_;
    Parole search(search_config);
    const AttackOutcome outcome = search.run(state, batch, {user});
    worst = std::max(worst, outcome.profit());
  }
  return worst;
}

DefenseReport MempoolDefense::screen(const vm::L2State& state,
                                     std::vector<vm::Tx> batch) {
  DefenseReport report;

  Amount priority_fees = 0;
  for (const vm::Tx& tx : batch) priority_fees += tx.priority_fee;
  report.threshold = std::max<Amount>(
      static_cast<Amount>(config_.threshold_fee_multiplier *
                          static_cast<double>(priority_fees)),
      config_.threshold_floor);

  report.worst_case_before = worst_case(state, batch);
  report.worst_case_after = report.worst_case_before;

  if (report.worst_case_before <= report.threshold) {
    report.admitted = std::move(batch);
    return report;
  }

  report.triggered = true;

  // Greedy minimal deferral: repeatedly remove the transaction whose removal
  // reduces the worst case the most, until under threshold (or the cap).
  while (report.worst_case_after > report.threshold &&
         report.deferred.size() < config_.max_deferrals && batch.size() >= 2) {
    std::size_t best_index = batch.size();
    Amount best_residual = report.worst_case_after;

    for (std::size_t i = 0; i < batch.size(); ++i) {
      std::vector<vm::Tx> reduced;
      reduced.reserve(batch.size() - 1);
      for (std::size_t j = 0; j < batch.size(); ++j) {
        if (j != i) reduced.push_back(batch[j]);
      }
      const Amount residual = worst_case(state, reduced);
      if (residual < best_residual) {
        best_residual = residual;
        best_index = i;
      }
    }

    if (best_index == batch.size()) {
      // No single removal helps further; defer the highest-leverage guess
      // (the first price-moving tx) to make progress, or stop.
      const auto it = std::find_if(batch.begin(), batch.end(),
                                   [](const vm::Tx& tx) {
                                     return tx.kind != vm::TxKind::kTransfer;
                                   });
      if (it == batch.end()) break;
      best_index = static_cast<std::size_t>(it - batch.begin());
      best_residual = worst_case(state, [&] {
        std::vector<vm::Tx> reduced;
        for (std::size_t j = 0; j < batch.size(); ++j) {
          if (j != best_index) reduced.push_back(batch[j]);
        }
        return reduced;
      }());
    }

    report.deferred.push_back(batch[best_index]);
    batch.erase(batch.begin() + static_cast<std::ptrdiff_t>(best_index));
    report.worst_case_after = best_residual;
  }

  report.admitted = std::move(batch);
  return report;
}

rollup::BatchScreen MempoolDefense::as_screen(
    std::vector<DefenseReport>* reports) {
  return [this, reports](const vm::L2State& state,
                         std::vector<vm::Tx> batch) -> rollup::ScreenResult {
    DefenseReport report = screen(state, std::move(batch));
    if (reports != nullptr) reports->push_back(report);
    rollup::ScreenResult result;
    result.admitted = std::move(report.admitted);
    result.deferred = std::move(report.deferred);
    return result;
  };
}

}  // namespace parole::core
