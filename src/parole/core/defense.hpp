// Defense against PAROLE (Sec. VIII).
//
// The mempool's fee-only prioritization is what leaves room for arbitrage, so
// the proposed defense embeds GENTRANSEQ *in the mempool* as a detector:
//
//   1. Take the batch in fee-priority order.
//   2. Run the re-ordering search to find the worst case — the maximum
//      profit any user involved in the pending transactions could extract.
//   3. If the worst case is below a threshold (derived from the batch's
//      priority fees), ship the batch unchanged: the arbitrage is negligible
//      next to what users paid for priority.
//   4. Otherwise, defer the minimal number of involved transactions to the
//      next block until the residual worst case drops below the threshold.
//
// The detector reuses the heuristic reorderer by default (the mempool has to
// run this on every block; annealing is the validated fast proxy for the
// DQN), and the deferral step greedily removes the transaction whose removal
// shrinks the worst case most.
#pragma once

#include <cstdint>
#include <vector>

#include "parole/core/parole_attack.hpp"
#include "parole/rollup/mempool.hpp"
#include "parole/rollup/node.hpp"

namespace parole::core {

struct DefenseConfig {
  // Threshold = multiplier * (sum of priority fees in the batch): an
  // arbitrage smaller than what users collectively paid for priority is
  // considered negligible (Sec. VIII's "depending on the priority fee").
  double threshold_fee_multiplier = 2.0;
  // Floor for the threshold so zero-fee batches are not all deferred.
  Amount threshold_floor = gwei(10'000);
  // Search strategy for the worst case (kDqn for fidelity, heuristics for
  // per-block speed).
  ReordererKind search = ReordererKind::kAnnealing;
  // Cap on deferrals per batch (safety valve against pathological batches).
  std::size_t max_deferrals = 8;
  std::uint64_t seed = 0xdefe45eULL;
};

struct DefenseReport {
  Amount threshold{0};
  Amount worst_case_before{0};  // max extractable profit, incoming batch
  Amount worst_case_after{0};   // after deferrals
  bool triggered{false};
  std::vector<vm::Tx> deferred;  // txs pushed to the block behind
  std::vector<vm::Tx> admitted;  // txs kept in this block
};

class MempoolDefense {
 public:
  explicit MempoolDefense(DefenseConfig config = {});

  // Analyze a batch against the given pre-batch state. Returns the admitted
  // set and the deferred set; callers push the deferred txs back via
  // BedrockMempool::defer().
  DefenseReport screen(const vm::L2State& state, std::vector<vm::Tx> batch);

  // Worst case for a batch: the maximum re-ordering profit over every user
  // involved in it (each evaluated as the would-be IFU).
  Amount worst_case(const vm::L2State& state,
                    const std::vector<vm::Tx>& batch);

  // Adapt to the rollup layer: a BatchScreen for RollupNode::set_batch_screen
  // that runs screen() on every collected batch before aggregation.
  // `reports`, when non-null, receives one DefenseReport per screened batch.
  [[nodiscard]] rollup::BatchScreen as_screen(
      std::vector<DefenseReport>* reports = nullptr);

  // Checkpointing hook: the per-screen search seed is a function of this
  // counter (see Parole::invocations for the rationale).
  [[nodiscard]] std::uint64_t invocations() const { return invocation_; }
  void set_invocations(std::uint64_t n) { invocation_ = n; }

 private:
  DefenseConfig config_;
  std::uint64_t invocation_{0};
};

}  // namespace parole::core
