#include "parole/core/encoding.hpp"

#include <algorithm>

namespace parole::core {
namespace {

bool is_ifu(UserId user, const std::vector<UserId>& ifus) {
  return std::find(ifus.begin(), ifus.end(), user) != ifus.end();
}

}  // namespace

SequenceEncoder::SequenceEncoder(vm::L2State initial_state,
                                 std::vector<UserId> ifus)
    : initial_state_(std::move(initial_state)),
      ifus_(std::move(ifus)),
      engine_(vm::ExecConfig{vm::InvalidTxPolicy::kSkipInvalid,
                             /*charge_fees=*/false, vm::GasSchedule{}}) {}

std::vector<double> SequenceEncoder::encode(
    std::span<const vm::Tx> txs) const {
  const auto& curve = initial_state_.nft().curve();
  const double price_scale = static_cast<double>(curve.max_supply()) *
                             static_cast<double>(curve.initial_price());
  const double supply_scale = static_cast<double>(curve.max_supply());

  Amount max_fee = 0;
  for (const vm::Tx& tx : txs) max_fee = std::max(max_fee, tx.total_fee());
  const double fee_scale =
      max_fee > 0 ? static_cast<double>(max_fee) : 1.0;

  std::vector<double> out;
  out.reserve(kFeaturesPerTx * txs.size());

  vm::L2State state = initial_state_;
  for (const vm::Tx& tx : txs) {
    const bool sender_ifu = is_ifu(tx.sender, ifus_);
    const bool recipient_ifu =
        tx.kind == vm::TxKind::kTransfer && is_ifu(tx.recipient, ifus_);

    out.push_back(sender_ifu || recipient_ifu ? 1.0 : 0.0);
    out.push_back(tx.kind == vm::TxKind::kMint ? 1.0 : 0.0);
    out.push_back(tx.kind == vm::TxKind::kTransfer ? 1.0 : 0.0);
    out.push_back(tx.kind == vm::TxKind::kBurn ? 1.0 : 0.0);
    out.push_back(static_cast<double>(state.nft().current_price()) /
                  price_scale);
    out.push_back(static_cast<double>(state.nft().remaining_supply()) /
                  supply_scale);
    out.push_back(static_cast<double>(tx.total_fee()) / fee_scale);

    double direction = 0.0;
    switch (tx.kind) {
      case vm::TxKind::kMint:
        if (sender_ifu) direction = 1.0;
        break;
      case vm::TxKind::kTransfer:
        if (recipient_ifu && !sender_ifu) direction = 1.0;
        if (sender_ifu && !recipient_ifu) direction = -1.0;
        break;
      case vm::TxKind::kBurn:
        if (sender_ifu) direction = -1.0;
        break;
    }
    out.push_back(direction);

    (void)engine_.execute_tx(state, tx);
  }
  return out;
}

}  // namespace parole::core
