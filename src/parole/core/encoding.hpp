// Transaction-sequence encoder (the pre-processing stage of Fig. 4).
//
// "each transaction is converted into a 1-dimensional tensor by encoding each
// attribute of the transaction. Generally, it is an eight-element tensor,
// including flags like the involvement of IFU in the transaction, the type of
// the transaction, and values like current token price, available tokens to
// be minted, etc."
//
// Our eight features per transaction, in sequence order:
//   0  IFU involved in this tx (0/1)
//   1  is mint                  (0/1)
//   2  is transfer              (0/1)
//   3  is burn                  (0/1)
//   4  token price when this tx executes at its position, / (S0 * P0)
//   5  remaining mintable supply at its position, / S0
//   6  total fee, / max total fee in the batch
//   7  IFU direction: +1 the IFU gains a token here, -1 the IFU gives one
//      up, 0 otherwise
//
// Features 4-5 are position-dependent: they come from executing the sequence
// (skip-invalid policy, so the encoding is total) — this is how the DQN
// "takes into consideration the current state of the L2 chain" (Sec. IV-B).
// The flattened concatenation (8*N values) is the DQN input.
#pragma once

#include <span>
#include <vector>

#include "parole/common/ids.hpp"
#include "parole/vm/engine.hpp"

namespace parole::core {

inline constexpr std::size_t kFeaturesPerTx = 8;

class SequenceEncoder {
 public:
  // `initial_state` is the L2 state before the batch (copied).
  SequenceEncoder(vm::L2State initial_state, std::vector<UserId> ifus);

  // Encode a full sequence into a flat 8*N vector.
  [[nodiscard]] std::vector<double> encode(std::span<const vm::Tx> txs) const;

  [[nodiscard]] std::size_t state_dim(std::size_t tx_count) const {
    return kFeaturesPerTx * tx_count;
  }

 private:
  vm::L2State initial_state_;
  std::vector<UserId> ifus_;
  vm::ExecutionEngine engine_;  // skip-invalid: encoding must be total
};

}  // namespace parole::core
