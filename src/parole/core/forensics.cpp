#include "parole/core/forensics.hpp"

#include <algorithm>
#include <unordered_set>

#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"

namespace parole::core {
namespace {

// Stable fee-priority order of the executed transactions: total fee
// descending; arrival ascending breaks ties the way the mempool would.
std::vector<vm::Tx> fee_priority_order(std::span<const vm::Tx> txs) {
  std::vector<vm::Tx> sorted(txs.begin(), txs.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const vm::Tx& a, const vm::Tx& b) {
                     if (a.total_fee() != b.total_fee()) {
                       return a.total_fee() > b.total_fee();
                     }
                     return a.arrival < b.arrival;
                   });
  return sorted;
}

std::vector<UserId> users_of(std::span<const vm::Tx> txs) {
  std::unordered_set<UserId> seen;
  std::vector<UserId> out;
  for (const vm::Tx& tx : txs) {
    if (seen.insert(tx.sender).second) out.push_back(tx.sender);
    if (tx.kind == vm::TxKind::kTransfer && seen.insert(tx.recipient).second) {
      out.push_back(tx.recipient);
    }
  }
  return out;
}

}  // namespace

double fee_order_deviation(std::span<const vm::Tx> executed) {
  const std::size_t n = executed.size();
  if (n < 2) return 0.0;

  // A pair (i, j) with i before j in the executed order is discordant when
  // the fee ordering strictly prefers j first.
  std::size_t comparable = 0;
  std::size_t discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Amount fee_i = executed[i].total_fee();
      const Amount fee_j = executed[j].total_fee();
      if (fee_i == fee_j) continue;  // tie: ordering unobservable
      ++comparable;
      if (fee_j > fee_i) ++discordant;
    }
  }
  if (comparable == 0) return 0.0;
  return static_cast<double>(discordant) / static_cast<double>(comparable);
}

ForensicReport BatchForensics::analyze(const vm::L2State& pre_state,
                                       std::span<const vm::Tx> executed)
    const {
  PAROLE_OBS_SPAN("core.forensics");
  PAROLE_OBS_COUNT("parole.core.audits", 1);
  ForensicReport report;
  report.ordering_deviation = fee_order_deviation(executed);

  const vm::ExecutionEngine engine(
      {vm::InvalidTxPolicy::kSkipInvalid, /*charge_fees=*/false, {}});

  vm::L2State shipped_state = pre_state;
  (void)engine.execute(shipped_state, executed);

  const std::vector<vm::Tx> counterfactual = fee_priority_order(executed);
  vm::L2State fee_state = pre_state;
  (void)engine.execute(fee_state, counterfactual);

  for (UserId user : users_of(executed)) {
    const Amount gain =
        shipped_state.total_balance(user) - fee_state.total_balance(user);
    if (gain >= config_.min_gain) {
      report.beneficiaries.push_back({user, gain});
      report.total_positive_gain += gain;
    }
  }
  std::sort(report.beneficiaries.begin(), report.beneficiaries.end(),
            [](const Beneficiary& a, const Beneficiary& b) {
              return a.gain > b.gain;
            });

  if (report.total_positive_gain > 0 && !report.beneficiaries.empty()) {
    report.concentration =
        static_cast<double>(report.beneficiaries.front().gain) /
        static_cast<double>(report.total_positive_gain);
  }
  report.suspicion = report.ordering_deviation * report.concentration;
  report.flagged = report.suspicion > config_.suspicion_threshold;
  if (report.flagged) PAROLE_OBS_COUNT("parole.core.flagged_batches", 1);
  return report;
}

}  // namespace parole::core
