// Batch forensics: detecting PAROLE after the fact.
//
// A PAROLE batch is honestly executed, so fraud proofs never fire — but it
// is not *invisible*. Aggregators are expected to execute "in order of their
// base and priority fees" (Sec. IV-A); a reordered batch deviates from that
// order, and the deviation systematically benefits someone. This module is
// the auditor's counterpart to the attack (in the spirit of the wash-trading
// detectors of the related work):
//
//   * ordering deviation — normalized Kendall-tau distance between the
//     executed order and the fee-priority order of the same transactions;
//   * beneficiary concentration — re-execute the batch in fee-priority
//     order (public data suffices) and rank users by how much better the
//     shipped order left them; a PAROLE batch concentrates the gain on the
//     IFU(s);
//   * a combined suspicion score with a flag threshold.
//
// Deviation alone is weak evidence (ties, equal-fee shuffles); benefit
// concentration alone is weak too (volatile markets). The product of both
// is what separates PAROLE batches from honest ones in the tests.
#pragma once

#include <span>
#include <vector>

#include "parole/common/amount.hpp"
#include "parole/common/ids.hpp"
#include "parole/vm/engine.hpp"

namespace parole::core {

// Normalized Kendall-tau distance in [0, 1] between `order` and the
// fee-priority order of the same transactions (0 = identical, 1 = reversed).
// Equal-fee pairs are not counted as discordant (the mempool breaks such
// ties by arrival, which an external auditor cannot always observe).
[[nodiscard]] double fee_order_deviation(std::span<const vm::Tx> executed);

struct Beneficiary {
  UserId user{};
  // Final total balance under the shipped order minus under the fee order.
  Amount gain{0};
};

struct ForensicReport {
  double ordering_deviation{0.0};  // Kendall-tau vs fee order
  std::vector<Beneficiary> beneficiaries;  // sorted by gain, descending
  Amount total_positive_gain{0};
  // Share of the total positive gain captured by the top beneficiary.
  double concentration{0.0};
  // deviation * concentration, in [0, 1].
  double suspicion{0.0};
  bool flagged{false};
};

struct ForensicsConfig {
  // Flag when suspicion exceeds this (ablated in tests: honest batches stay
  // well below, PAROLE batches well above).
  double suspicion_threshold = 0.10;
  // Ignore gains below this (price jitter floor).
  Amount min_gain = gwei(1'000);
};

class BatchForensics {
 public:
  explicit BatchForensics(ForensicsConfig config = {}) : config_(config) {}

  // Analyze a shipped batch against its pre-state (both reconstructable
  // from public L1/L2 data).
  [[nodiscard]] ForensicReport analyze(const vm::L2State& pre_state,
                                       std::span<const vm::Tx> executed) const;

 private:
  ForensicsConfig config_;
};

}  // namespace parole::core
