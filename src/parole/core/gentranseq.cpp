#include "parole/core/gentranseq.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <optional>

#include "parole/io/codec.hpp"
#include "parole/ml/epsilon.hpp"
#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"
#include "parole/obs/watchdog.hpp"

namespace parole::core {
namespace {

// Checkpoint sections: the agent image and the training-loop cursor/results.
constexpr std::uint32_t kAgentTag = io::section_tag("AGNT");
constexpr std::uint32_t kTrainTag = io::section_tag("GTSQ");

void save_f64s(io::ByteWriter& w, const std::vector<double>& v) {
  w.u64(v.size());
  w.raw({reinterpret_cast<const std::uint8_t*>(v.data()),
         v.size() * sizeof(double)});
}

[[nodiscard]] bool load_f64s(io::ByteReader& r, std::vector<double>& v) {
  std::uint64_t count = 0;
  if (!r.length(count, sizeof(double))) return false;
  std::vector<double> out(static_cast<std::size_t>(count));
  if (!r.raw({reinterpret_cast<std::uint8_t*>(out.data()),
              out.size() * sizeof(double)})) {
    return false;
  }
  v = std::move(out);
  return true;
}

void save_u64s(io::ByteWriter& w, const std::vector<std::size_t>& v) {
  w.u64(v.size());
  for (const std::size_t x : v) w.u64(x);
}

[[nodiscard]] bool load_u64s(io::ByteReader& r, std::vector<std::size_t>& v) {
  std::uint64_t count = 0;
  if (!r.length(count, 8)) return false;
  std::vector<std::size_t> out(static_cast<std::size_t>(count));
  for (std::size_t& x : out) {
    std::uint64_t raw = 0;
    if (!r.u64(raw)) return false;
    x = static_cast<std::size_t>(raw);
  }
  v = std::move(out);
  return true;
}

}  // namespace

GenTranSeq::GenTranSeq(const solvers::ReorderingProblem& problem,
                       GenTranSeqConfig config, std::uint64_t seed)
    : problem_(&problem),
      config_(std::move(config)),
      env_(problem, config_.reward),
      agent_(env_.state_dim(), env_.action_count(), config_.dqn, seed),
      rng_(seed ^ 0xa77acc5eedULL),
      seed_(seed) {
  assert(problem.size() >= 2);
}

TrainResult GenTranSeq::train() {
  // Without a manager the resumable path has no store I/O and cannot fail.
  return train_resumable(TrainCheckpointing{}).value();
}

Result<TrainResult> GenTranSeq::train_resumable(const TrainCheckpointing& ckpt) {
  PAROLE_OBS_SPAN("ml.train");
  const solvers::EvalStats stats_before = problem_->eval_stats();
  TrainResult result;
  result.baseline = env_.baseline_balance();
  result.best_balance = result.baseline;
  std::size_t start_episode = 0;

  if (ckpt.manager != nullptr && ckpt.manager->has_checkpoint()) {
    auto loaded = ckpt.manager->load_latest();
    if (!loaded.ok()) return loaded.error();
    if (Status s = restore_train_state(loaded.value().checkpoint, result,
                                       start_episode);
        !s.ok()) {
      return s.error();
    }
  }

  const double eps_max = config_.epsilon_override >= 0.0
                             ? config_.epsilon_override
                             : config_.dqn.epsilon_max;
  const ml::EpsilonSchedule schedule(eps_max, config_.dqn.epsilon_min,
                                     config_.dqn.epsilon_decay);

  std::size_t ran_this_invocation = 0;
  for (std::size_t ep = start_episode; ep < config_.dqn.episodes; ++ep) {
    PAROLE_OBS_SPAN("ml.episode");
    PAROLE_OBS_COUNT("parole.ml.episodes", 1);
    PAROLE_OBS_HEARTBEAT("ml.train");
    std::vector<double> state = env_.reset();
    const double epsilon = schedule.at(ep);
    PAROLE_OBS_GAUGE("parole.ml.epsilon", epsilon);
    double episode_reward = 0.0;
    bool episode_found_profit = false;

    for (std::size_t sp = 0; sp < config_.dqn.steps_per_episode; ++sp) {
      PAROLE_OBS_SPAN("ml.step");
      const std::size_t action = agent_.select_action(state, epsilon);
      EnvStep step = env_.step(action);
      episode_reward += step.reward;

      const bool done = sp + 1 == config_.dqn.steps_per_episode;
      agent_.remember({std::move(state), action, step.reward, step.state,
                       done});
      state = std::move(step.state);

      if (step.profit && !episode_found_profit) {
        episode_found_profit = true;
        result.swaps_to_first_candidate.push_back(env_.swaps_applied());
        result.first_candidate_episode.push_back(ep);
      }
      if (step.balance > result.best_balance) {
        result.best_balance = step.balance;
        result.best_order = env_.order();
        result.found_profit = true;
      }

      // Q-network fitting every 5 steps (Table II).
      if ((sp + 1) % config_.dqn.qnet_update_every == 0) {
        (void)agent_.train_step();
      }
      // Target sync: every 30 steps (Table II) and on profit (Algorithm 1).
      if ((sp + 1) % config_.dqn.target_update_every == 0 ||
          (step.profit && config_.sync_target_on_profit)) {
        agent_.sync_target();
      }
    }
    PAROLE_OBS_OBSERVE("parole.ml.episode_reward", episode_reward);
    result.episode_rewards.push_back(episode_reward);
    result.episodes_run = ep + 1;
    ++ran_this_invocation;

    if (ckpt.manager != nullptr) {
      const bool cadence = ckpt.every_episodes != 0 &&
                           (ep + 1) % ckpt.every_episodes == 0;
      if (cadence || ep + 1 == config_.dqn.episodes) {
        if (Status s = save_train_state(*ckpt.manager, ep + 1, result);
            !s.ok()) {
          return s.error();
        }
      }
    }
    if (ckpt.halt_after_episodes != 0 &&
        ran_this_invocation >= ckpt.halt_after_episodes &&
        ep + 1 < config_.dqn.episodes) {
      // Simulated crash: stop without a final save. Whatever ran past the
      // last generation is re-run identically on resume.
      result.completed = false;
      solvers::publish_eval_stats(problem_->eval_stats() - stats_before);
      return result;
    }
  }
  result.episodes_run = config_.dqn.episodes;
  solvers::publish_eval_stats(problem_->eval_stats() - stats_before);

  if (result.best_order.empty()) {
    // Never improved: the final sequence is the original one.
    result.best_order.resize(problem_->size());
    for (std::size_t i = 0; i < result.best_order.size(); ++i) {
      result.best_order[i] = i;
    }
  }
  return result;
}

Status GenTranSeq::save_train_state(io::CheckpointManager& manager,
                                    std::size_t next_episode,
                                    const TrainResult& result) const {
  io::CheckpointBuilder builder;
  obs::JsonObject meta;
  meta["kind"] = "gentranseq-training";
  meta["next_episode"] = next_episode;
  meta["episodes"] = config_.dqn.episodes;
  meta["seed"] = seed_;  // lets `parole_cli resume` rebuild the trainer
  meta["eval_candidates"] = config_.eval_candidates;
  meta["substream_base"] = config_.substream_base;
  builder.set_meta(meta);
  agent_.save(builder.section(kAgentTag));
  io::ByteWriter& w = builder.section(kTrainTag);
  w.u64(next_episode);
  io::save_rng(w, rng_.checkpoint_state());
  save_f64s(w, result.episode_rewards);
  save_u64s(w, result.swaps_to_first_candidate);
  save_u64s(w, result.first_candidate_episode);
  save_u64s(w, result.best_order);
  w.i64(result.best_balance);
  w.i64(result.baseline);
  w.boolean(result.found_profit);
  // Parallel fingerprint (DESIGN.md §12): the beam width and substream base
  // shape which searches a resumed run replays, so a mismatch must be
  // rejected rather than silently honored.
  w.u64(config_.eval_candidates);
  w.u64(config_.substream_base);
  auto generation = manager.save(builder);
  if (!generation.ok()) return generation.error();
  return ok_status();
}

Status GenTranSeq::restore_train_state(const io::Checkpoint& checkpoint,
                                       TrainResult& result,
                                       std::size_t& start_episode) {
  auto meta = checkpoint.meta();
  if (!meta.ok()) return meta.error();
  const auto kind = meta.value().find("kind");
  if (kind == meta.value().end() || !kind->second.is_string() ||
      kind->second.as_string() != "gentranseq-training") {
    return Error{"config_mismatch",
                 "checkpoint is not a GENTRANSEQ training checkpoint"};
  }

  auto train_reader = checkpoint.reader(kTrainTag);
  if (!train_reader.ok()) return train_reader.error();
  io::ByteReader& r = train_reader.value();

  std::uint64_t next_episode = 0;
  PAROLE_IO_READ(r.u64(next_episode), "training episode cursor");
  if (next_episode > config_.dqn.episodes) {
    return Error{"config_mismatch",
                 "checkpoint ran more episodes than this config allows"};
  }
  RngState rng_state;
  PAROLE_IO_READ(io::load_rng(r, rng_state), "training rng state");

  TrainResult loaded;
  PAROLE_IO_READ(load_f64s(r, loaded.episode_rewards), "episode rewards");
  PAROLE_IO_READ(load_u64s(r, loaded.swaps_to_first_candidate),
                 "swaps to first candidate");
  PAROLE_IO_READ(load_u64s(r, loaded.first_candidate_episode),
                 "first candidate episodes");
  PAROLE_IO_READ(load_u64s(r, loaded.best_order), "best order");
  std::int64_t best_balance = 0, baseline = 0;
  PAROLE_IO_READ(r.i64(best_balance), "best balance");
  PAROLE_IO_READ(r.i64(baseline), "baseline balance");
  PAROLE_IO_READ(r.boolean(loaded.found_profit), "found-profit flag");
  std::uint64_t eval_candidates = 0, substream_base = 0;
  PAROLE_IO_READ(r.u64(eval_candidates), "inference beam width");
  PAROLE_IO_READ(r.u64(substream_base), "rng substream base");
  if (Status s = r.finish("GTSQ section"); !s.ok()) return s;
  if (eval_candidates != config_.eval_candidates ||
      substream_base != config_.substream_base) {
    return Error{"config_mismatch",
                 "checkpoint was taken under a different parallel "
                 "configuration (eval_candidates/substream_base)"};
  }
  loaded.best_balance = static_cast<Amount>(best_balance);
  loaded.baseline = static_cast<Amount>(baseline);

  // Cross-field validation: a CRC-clean image can still be inconsistent, and
  // a consistent image can still belong to a different batch.
  if (loaded.episode_rewards.size() != next_episode) {
    return Error{"corrupt_checkpoint",
                 "episode rewards inconsistent with the cursor"};
  }
  if (loaded.swaps_to_first_candidate.size() !=
      loaded.first_candidate_episode.size()) {
    return Error{"corrupt_checkpoint", "candidate series length mismatch"};
  }
  for (std::size_t i = 0; i < loaded.first_candidate_episode.size(); ++i) {
    const std::size_t ep = loaded.first_candidate_episode[i];
    if (ep >= next_episode ||
        (i > 0 && ep <= loaded.first_candidate_episode[i - 1])) {
      return Error{"corrupt_checkpoint", "candidate episodes out of order"};
    }
  }
  if (!loaded.best_order.empty()) {
    if (loaded.best_order.size() != problem_->size()) {
      return Error{"config_mismatch",
                   "checkpoint order length differs from this batch"};
    }
    std::vector<bool> seen(loaded.best_order.size(), false);
    for (const std::size_t idx : loaded.best_order) {
      if (idx >= seen.size() || seen[idx]) {
        return Error{"corrupt_checkpoint", "best order is not a permutation"};
      }
      seen[idx] = true;
    }
  }
  if (loaded.baseline != env_.baseline_balance()) {
    return Error{"config_mismatch",
                 "checkpoint baseline differs from this batch"};
  }
  if (loaded.best_balance < loaded.baseline ||
      loaded.found_profit != (loaded.best_balance > loaded.baseline)) {
    return Error{"corrupt_checkpoint", "best balance inconsistent"};
  }

  auto agent_reader = checkpoint.reader(kAgentTag);
  if (!agent_reader.ok()) return agent_reader.error();
  if (Status s = agent_.load(agent_reader.value()); !s.ok()) return s;
  if (Status s = agent_reader.value().finish("AGNT section"); !s.ok()) {
    return s;
  }

  loaded.episodes_run = static_cast<std::size_t>(next_episode);
  result = std::move(loaded);
  rng_.restore_state(rng_state);
  start_episode = static_cast<std::size_t>(next_episode);
  return ok_status();
}

InferenceResult GenTranSeq::infer(std::size_t max_steps) {
  if (max_steps == 0) max_steps = 2 * env_.tx_count();

  InferenceResult result;
  result.baseline = env_.baseline_balance();

  std::vector<double> state = env_.reset();
  result.order = env_.order();
  result.balance = result.baseline;

  const std::size_t beam =
      std::min(std::max<std::size_t>(1, config_.eval_candidates),
               env_.action_count());
  std::size_t last_action = env_.action_count();  // sentinel
  for (std::size_t sp = 0; sp < max_steps; ++sp) {
    std::size_t action;
    if (beam == 1) {
      action = agent_.greedy_action(state);
    } else {
      // Beam inference: take the top-`beam` Q actions and let one batched
      // environment probe arbitrate among them — the Q-ranking proposes,
      // the true objective disposes. Falls back to the argmax action when
      // every candidate swap is constraint-breaking.
      const ml::Matrix q = agent_.q_values(state);
      std::vector<std::size_t> candidates(env_.action_count());
      std::iota(candidates.begin(), candidates.end(), 0);
      std::partial_sort(candidates.begin(), candidates.begin() + beam,
                        candidates.end(),
                        [&q](std::size_t a, std::size_t b) {
                          return q.at(0, a) > q.at(0, b);
                        });
      candidates.resize(beam);
      const auto balances = env_.peek_actions(candidates);
      action = candidates[0];
      std::optional<Amount> best;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (balances[c].has_value() && (!best || *balances[c] > *best)) {
          best = balances[c];
          action = candidates[c];
        }
      }
    }
    // A policy that keeps picking the same swap is oscillating (swap + swap
    // back) or stuck on a rejected action; stop early.
    if (action == last_action) break;
    last_action = action;

    const EnvStep step = env_.step(action);
    state = step.state;

    if (step.balance > result.balance) {
      result.balance = step.balance;
      result.order = env_.order();
      if (!result.improved) {
        result.improved = true;
        result.swaps_to_first_candidate = env_.swaps_applied();
      }
    }
  }
  result.swaps_applied = env_.swaps_applied();
  result.improved = result.balance > result.baseline;
  return result;
}

}  // namespace parole::core
