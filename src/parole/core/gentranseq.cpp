#include "parole/core/gentranseq.hpp"

#include <cassert>

#include "parole/ml/epsilon.hpp"
#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"

namespace parole::core {

GenTranSeq::GenTranSeq(const solvers::ReorderingProblem& problem,
                       GenTranSeqConfig config, std::uint64_t seed)
    : problem_(&problem),
      config_(std::move(config)),
      env_(problem, config_.reward),
      agent_(env_.state_dim(), env_.action_count(), config_.dqn, seed),
      rng_(seed ^ 0xa77acc5eedULL) {
  assert(problem.size() >= 2);
}

TrainResult GenTranSeq::train() {
  PAROLE_OBS_SPAN("ml.train");
  const solvers::EvalStats stats_before = problem_->eval_stats();
  TrainResult result;
  result.baseline = env_.baseline_balance();
  result.best_balance = result.baseline;

  const double eps_max = config_.epsilon_override >= 0.0
                             ? config_.epsilon_override
                             : config_.dqn.epsilon_max;
  const ml::EpsilonSchedule schedule(eps_max, config_.dqn.epsilon_min,
                                     config_.dqn.epsilon_decay);

  for (std::size_t ep = 0; ep < config_.dqn.episodes; ++ep) {
    PAROLE_OBS_SPAN("ml.episode");
    PAROLE_OBS_COUNT("parole.ml.episodes", 1);
    std::vector<double> state = env_.reset();
    const double epsilon = schedule.at(ep);
    PAROLE_OBS_GAUGE("parole.ml.epsilon", epsilon);
    double episode_reward = 0.0;
    bool episode_found_profit = false;

    for (std::size_t sp = 0; sp < config_.dqn.steps_per_episode; ++sp) {
      PAROLE_OBS_SPAN("ml.step");
      const std::size_t action = agent_.select_action(state, epsilon);
      EnvStep step = env_.step(action);
      episode_reward += step.reward;

      const bool done = sp + 1 == config_.dqn.steps_per_episode;
      agent_.remember({std::move(state), action, step.reward, step.state,
                       done});
      state = std::move(step.state);

      if (step.profit && !episode_found_profit) {
        episode_found_profit = true;
        result.swaps_to_first_candidate.push_back(env_.swaps_applied());
        result.first_candidate_episode.push_back(ep);
      }
      if (step.balance > result.best_balance) {
        result.best_balance = step.balance;
        result.best_order = env_.order();
        result.found_profit = true;
      }

      // Q-network fitting every 5 steps (Table II).
      if ((sp + 1) % config_.dqn.qnet_update_every == 0) {
        (void)agent_.train_step();
      }
      // Target sync: every 30 steps (Table II) and on profit (Algorithm 1).
      if ((sp + 1) % config_.dqn.target_update_every == 0 ||
          (step.profit && config_.sync_target_on_profit)) {
        agent_.sync_target();
      }
    }
    PAROLE_OBS_OBSERVE("parole.ml.episode_reward", episode_reward);
    result.episode_rewards.push_back(episode_reward);
  }
  solvers::publish_eval_stats(problem_->eval_stats() - stats_before);

  if (result.best_order.empty()) {
    // Never improved: the final sequence is the original one.
    result.best_order.resize(problem_->size());
    for (std::size_t i = 0; i < result.best_order.size(); ++i) {
      result.best_order[i] = i;
    }
  }
  return result;
}

InferenceResult GenTranSeq::infer(std::size_t max_steps) {
  if (max_steps == 0) max_steps = 2 * env_.tx_count();

  InferenceResult result;
  result.baseline = env_.baseline_balance();

  std::vector<double> state = env_.reset();
  result.order = env_.order();
  result.balance = result.baseline;

  std::size_t last_action = env_.action_count();  // sentinel
  for (std::size_t sp = 0; sp < max_steps; ++sp) {
    const std::size_t action = agent_.greedy_action(state);
    // A greedy policy that keeps picking the same swap is oscillating
    // (swap + swap back) or stuck on a rejected action; stop early.
    if (action == last_action) break;
    last_action = action;

    const EnvStep step = env_.step(action);
    state = step.state;

    if (step.balance > result.balance) {
      result.balance = step.balance;
      result.order = env_.order();
      if (!result.improved) {
        result.improved = true;
        result.swaps_to_first_candidate = env_.swaps_applied();
      }
    }
  }
  result.swaps_applied = env_.swaps_applied();
  result.improved = result.balance > result.baseline;
  return result;
}

}  // namespace parole::core
