// GENTRANSEQ — the DQN-driven transaction re-ordering module (Sec. V-C,
// Algorithm 1 lines 3-21).
//
// Trains a DqnAgent on the ReorderEnv MDP for a fresh batch: every episode
// restarts from the original order, every step swaps one transaction pair,
// rewards follow Eq. 8. The target network is synchronised both on the
// Table II cadence (every 30 steps) and whenever an order beats the original
// ("TargetNet.copy(QNet) if Profit", Algorithm 1 line 16). After training,
// infer() replays greedy policy rollouts to produce TxSeq^Final.
#pragma once

#include <cstdint>
#include <vector>

#include "parole/core/reorder_env.hpp"
#include "parole/ml/dqn.hpp"

namespace parole::core {

struct GenTranSeqConfig {
  ml::DqnConfig dqn;      // Table II defaults
  RewardConfig reward;
  bool sync_target_on_profit = true;
  // Override epsilon_max for the Fig. 8 epsilon sweep (<0 keeps dqn value).
  double epsilon_override = -1.0;
};

struct TrainResult {
  // R^ep, total reward per episode (Eq. 7) — the Fig. 8 series.
  std::vector<double> episode_rewards;
  // Applied swaps until the episode first found a candidate solution (an
  // order strictly better than the original) — the Fig. 9 samples. One entry
  // per episode that found one; first_candidate_episode[i] records which
  // episode sample i came from (so consumers can keep trained-agent episodes
  // only).
  std::vector<std::size_t> swaps_to_first_candidate;
  std::vector<std::size_t> first_candidate_episode;
  // Best order and balance seen across all training episodes.
  std::vector<std::size_t> best_order;
  Amount best_balance{0};
  Amount baseline{0};
  bool found_profit{false};
};

struct InferenceResult {
  std::vector<std::size_t> order;
  Amount balance{0};
  Amount baseline{0};
  bool improved{false};
  std::size_t swaps_applied{0};
  // Applied swaps when the rollout first beat the original order (Fig. 9's
  // "solution size"); 0 when never.
  std::size_t swaps_to_first_candidate{0};
};

class GenTranSeq {
 public:
  GenTranSeq(const solvers::ReorderingProblem& problem,
             GenTranSeqConfig config, std::uint64_t seed);

  // Run the Algorithm 1 training loop.
  TrainResult train();

  // Greedy policy rollout from the original order (inference path used once
  // the model is trained; also what Fig. 11 times). max_steps = 0 means
  // 2 * N steps.
  InferenceResult infer(std::size_t max_steps = 0);

  [[nodiscard]] ml::DqnAgent& agent() { return agent_; }
  [[nodiscard]] const ReorderEnv& env() const { return env_; }
  [[nodiscard]] const GenTranSeqConfig& config() const { return config_; }

 private:
  const solvers::ReorderingProblem* problem_;
  GenTranSeqConfig config_;
  ReorderEnv env_;
  ml::DqnAgent agent_;
  Rng rng_;
};

}  // namespace parole::core
