// GENTRANSEQ — the DQN-driven transaction re-ordering module (Sec. V-C,
// Algorithm 1 lines 3-21).
//
// Trains a DqnAgent on the ReorderEnv MDP for a fresh batch: every episode
// restarts from the original order, every step swaps one transaction pair,
// rewards follow Eq. 8. The target network is synchronised both on the
// Table II cadence (every 30 steps) and whenever an order beats the original
// ("TargetNet.copy(QNet) if Profit", Algorithm 1 line 16). After training,
// infer() replays greedy policy rollouts to produce TxSeq^Final.
#pragma once

#include <cstdint>
#include <vector>

#include "parole/core/reorder_env.hpp"
#include "parole/io/manifest.hpp"
#include "parole/ml/dqn.hpp"

namespace parole::core {

struct GenTranSeqConfig {
  ml::DqnConfig dqn;      // Table II defaults
  RewardConfig reward;
  bool sync_target_on_profit = true;
  // Override epsilon_max for the Fig. 8 epsilon sweep (<0 keeps dqn value).
  double epsilon_override = -1.0;
  // Inference beam width: each greedy rollout step scores this many top-Q
  // actions against the environment in one batched probe
  // (ReorderEnv::peek_actions) and applies the one with the best resulting
  // balance. 1 = the paper's plain argmax rollout (unchanged behavior).
  std::size_t eval_candidates = 1;
  // Offset into the Rng substream space (matches PortfolioConfig's field).
  // Recorded with eval_candidates in training checkpoints as the parallel
  // fingerprint: resuming under different parallelism is rejected.
  std::uint64_t substream_base = 0;
};

// Crash-safe training (DESIGN.md §10). Checkpoints are cut at episode
// boundaries: an episode is a pure function of the agent state at its start
// (env.reset() is deterministic, epsilon is a function of the episode index),
// so re-running the episodes after the last durable generation reproduces the
// uninterrupted run bit for bit.
struct TrainCheckpointing {
  // Rolling-generation store; nullptr trains without checkpointing. When the
  // manager already holds a checkpoint, train() resumes from it instead of
  // starting over.
  io::CheckpointManager* manager = nullptr;
  // Cut a generation every N completed episodes (and at completion).
  std::size_t every_episodes = 10;
  // Test/crash-drill hook: stop after running this many episodes in this
  // invocation without a final save — the in-process equivalent of SIGKILL
  // between checkpoints. 0 runs to completion.
  std::size_t halt_after_episodes = 0;
};

struct TrainResult {
  // R^ep, total reward per episode (Eq. 7) — the Fig. 8 series.
  std::vector<double> episode_rewards;
  // Applied swaps until the episode first found a candidate solution (an
  // order strictly better than the original) — the Fig. 9 samples. One entry
  // per episode that found one; first_candidate_episode[i] records which
  // episode sample i came from (so consumers can keep trained-agent episodes
  // only).
  std::vector<std::size_t> swaps_to_first_candidate;
  std::vector<std::size_t> first_candidate_episode;
  // Best order and balance seen across all training episodes.
  std::vector<std::size_t> best_order;
  Amount best_balance{0};
  Amount baseline{0};
  bool found_profit{false};
  // False when the run was halted early (TrainCheckpointing::
  // halt_after_episodes); resume by calling train() again with the same
  // manager.
  bool completed{true};
  // Episodes finished across all invocations (== dqn.episodes when
  // completed).
  std::size_t episodes_run{0};
};

struct InferenceResult {
  std::vector<std::size_t> order;
  Amount balance{0};
  Amount baseline{0};
  bool improved{false};
  std::size_t swaps_applied{0};
  // Applied swaps when the rollout first beat the original order (Fig. 9's
  // "solution size"); 0 when never.
  std::size_t swaps_to_first_candidate{0};
};

class GenTranSeq {
 public:
  GenTranSeq(const solvers::ReorderingProblem& problem,
             GenTranSeqConfig config, std::uint64_t seed);

  // Run the Algorithm 1 training loop.
  TrainResult train();

  // Training with durable checkpoints: resumes from `ckpt.manager` when it
  // holds a generation, otherwise starts fresh; cuts a new generation every
  // `every_episodes` completed episodes and at completion. A resumed
  // trajectory is bit-identical to an uninterrupted run. Store failures
  // (unwritable directory, checkpoint from a different problem/config, all
  // generations corrupt) surface as typed errors; a merely *missing*
  // checkpoint is a fresh start, not an error.
  [[nodiscard]] Result<TrainResult> train_resumable(
      const TrainCheckpointing& ckpt);

  // Greedy policy rollout from the original order (inference path used once
  // the model is trained; also what Fig. 11 times). max_steps = 0 means
  // 2 * N steps.
  InferenceResult infer(std::size_t max_steps = 0);

  [[nodiscard]] ml::DqnAgent& agent() { return agent_; }
  [[nodiscard]] const ReorderEnv& env() const { return env_; }
  [[nodiscard]] const GenTranSeqConfig& config() const { return config_; }

 private:
  [[nodiscard]] Status save_train_state(io::CheckpointManager& manager,
                                        std::size_t next_episode,
                                        const TrainResult& result) const;
  [[nodiscard]] Status restore_train_state(const io::Checkpoint& checkpoint,
                                           TrainResult& result,
                                           std::size_t& start_episode);

  const solvers::ReorderingProblem* problem_;
  GenTranSeqConfig config_;
  ReorderEnv env_;
  ml::DqnAgent agent_;
  Rng rng_;
  std::uint64_t seed_;  // construction seed, echoed into checkpoint META
};

}  // namespace parole::core
