#include "parole/core/parole_attack.hpp"

#include <cassert>
#include <numeric>

#include "parole/ml/serialize.hpp"
#include "parole/obs/journal.hpp"
#include "parole/solvers/annealing.hpp"
#include "parole/solvers/greedy.hpp"
#include "parole/solvers/hill_climb.hpp"

namespace parole::core {
namespace {

Amount sum_of(const std::vector<Amount>& balances) {
  return std::accumulate(balances.begin(), balances.end(), Amount{0});
}

// A solver's order is only usable if it is a true permutation of 0..n-1: a
// buggy order that drops or duplicates an index would silently drop or
// duplicate *transactions* in the committed batch (the chaos harness's
// conservation invariant exists to catch exactly that downstream).
bool is_permutation_of(const std::vector<std::size_t>& order, std::size_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const std::size_t index : order) {
    if (index >= n || seen[index]) return false;
    seen[index] = true;
  }
  return true;
}

}  // namespace

Parole::Parole(ParoleConfig config) : config_(std::move(config)) {}

TrainResult Parole::pretrain(const vm::L2State& chain_state,
                             std::vector<vm::Tx> representative_batch,
                             const std::vector<UserId>& ifus) {
  const std::size_t batch_size = representative_batch.size();
  solvers::ReorderingProblem problem(chain_state,
                                     std::move(representative_batch), ifus,
                                     config_.objective);
  GenTranSeq gts(problem, config_.gentranseq, config_.seed ^ 0x0ff11e);
  TrainResult result = gts.train();
  pretrained_weights_ = ml::serialize_network(gts.agent().q_network());
  pretrained_batch_size_ = batch_size;
  return result;
}

Status Parole::load_pretrained(const std::vector<std::uint8_t>& checkpoint,
                               std::size_t batch_size) {
  // Shape validation happens at first use (the network is rebuilt per batch
  // and import fails loudly on mismatch); record eagerly.
  if (checkpoint.empty()) {
    return Error{"empty_checkpoint", "no weights provided"};
  }
  pretrained_weights_ = checkpoint;
  pretrained_batch_size_ = batch_size;
  return ok_status();
}

std::vector<std::uint8_t> Parole::export_pretrained() const {
  return pretrained_weights_;
}

AttackOutcome Parole::run(const vm::L2State& chain_state,
                          std::vector<vm::Tx> txs,
                          const std::vector<UserId>& ifus) {
  AttackOutcome outcome;
  outcome.assessment = assess_arbitrage(txs, ifus);

  // Per-invocation stream so repeated batches explore independently but the
  // whole campaign stays reproducible from one seed.
  const std::uint64_t seed =
      config_.seed + 0x9e3779b97f4a7c15ULL * ++invocation_;

  if (!outcome.assessment.opportunity || txs.size() < 2) {
    outcome.final_sequence = std::move(txs);
    return outcome;
  }

  solvers::ReorderingProblem problem(chain_state, std::move(txs), ifus,
                                     config_.objective);
  const Amount baseline_score = problem.baseline();
  outcome.baseline = sum_of(problem.baseline_balances());
  outcome.achieved = outcome.baseline;

  // The solver search re-executes thousands of probe orders; none of those
  // are lifecycle events. Suppress journaling for the whole search and emit
  // only the committed permutation delta afterwards.
  obs::TxJournal* journal = obs::TxJournal::current();
  const obs::TxJournal::Scope suppress(nullptr);

  std::vector<std::size_t> best_order;
  Amount best_score = baseline_score;
  switch (config_.kind) {
    case ReordererKind::kDqn: {
      GenTranSeq gts(problem, config_.gentranseq, seed);
      const TrainResult trained = gts.train();
      // Inference pass per Algorithm 1 line 24's returned TxSeq^Final; the
      // training best is kept when the greedy rollout underperforms it.
      const InferenceResult inferred = gts.infer();
      if (inferred.balance >= trained.best_balance) {
        best_order = inferred.order;
        best_score = inferred.balance;
      } else {
        best_order = trained.best_order;
        best_score = trained.best_balance;
      }
      break;
    }
    case ReordererKind::kDqnPretrained: {
      if (pretrained_weights_.empty() ||
          problem.size() != pretrained_batch_size_) {
        // No usable model for this batch size: ship the original order.
        break;
      }
      GenTranSeq gts(problem, config_.gentranseq, seed);
      const Status loaded = ml::deserialize_network(
          gts.agent().q_network(), pretrained_weights_);
      if (!loaded.ok()) break;
      gts.agent().sync_target();
      const InferenceResult inferred = gts.infer();
      best_order = inferred.order;
      best_score = inferred.balance;
      break;
    }
    case ReordererKind::kAnnealing: {
      solvers::AnnealingSolver solver;
      Rng rng(seed);
      const solvers::SolveResult solved = solver.solve(problem, rng);
      best_order = solved.best_order;
      best_score = solved.best_value;
      break;
    }
    case ReordererKind::kHillClimb: {
      solvers::HillClimbSolver solver;
      Rng rng(seed);
      const solvers::SolveResult solved = solver.solve(problem, rng);
      best_order = solved.best_order;
      best_score = solved.best_value;
      break;
    }
    case ReordererKind::kGreedy: {
      solvers::GreedyInsertionSolver solver;
      Rng rng(seed);
      const solvers::SolveResult solved = solver.solve(problem, rng);
      best_order = solved.best_order;
      best_score = solved.best_value;
      break;
    }
    case ReordererKind::kPortfolio: {
      // run() takes the per-invocation seed directly: worker substreams are
      // a pure function of it, so campaigns stay reproducible at any
      // --threads value (deterministic mode, the default).
      solvers::PortfolioSolver solver(config_.portfolio);
      const solvers::SolveResult solved = solver.run(problem, seed);
      best_order = solved.best_order;
      best_score = solved.best_value;
      break;
    }
  }

  if (best_score > baseline_score &&
      is_permutation_of(best_order, problem.size())) {
    // Only hand over orders that improve the objective *and* are valid; a
    // malformed order degrades to the identity sequence below instead of
    // corrupting the batch.
    const auto balances = problem.ifu_balances(best_order);
    assert(balances.has_value());
    outcome.achieved = sum_of(*balances);
    outcome.reordered = true;
    outcome.final_sequence = problem.materialize(best_order);
    if (journal != nullptr) {
      // The committed permutation delta: best_order[j] = i means the tx that
      // arrived at collection position i ships at position j (a = from,
      // b = to). Only displaced transactions get an event.
      for (std::size_t j = 0; j < best_order.size(); ++j) {
        if (best_order[j] == j) continue;
        journal->record({outcome.final_sequence[j].id.value(),
                         obs::TxEventKind::kReordered, 0, 0, obs::kNoBatch,
                         best_order[j], j});
      }
    }
  } else {
    std::vector<std::size_t> identity(problem.size());
    std::iota(identity.begin(), identity.end(), 0);
    outcome.final_sequence = problem.materialize(identity);
  }
  return outcome;
}

rollup::Reorderer Parole::as_reorderer(std::vector<UserId> ifus,
                                       Amount* profit_sink) {
  return [this, ifus = std::move(ifus), profit_sink](
             const vm::L2State& state,
             std::vector<vm::Tx> txs) -> std::vector<vm::Tx> {
    AttackOutcome outcome = run(state, std::move(txs), ifus);
    if (profit_sink != nullptr) *profit_sink += outcome.profit();
    return std::move(outcome.final_sequence);
  };
}

}  // namespace parole::core
