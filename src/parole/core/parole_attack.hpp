// The PAROLE module (Sec. IV, Algorithm 1).
//
// Entry point the adversarial aggregator calls with the IFU wallet set, the
// current L2 chain state and the originally collected transaction sequence:
//
//   1. Arbitrage(U_IFU, TxSeq) gate — assess_arbitrage().
//   2. GENTRANSEQ: train (or reuse) the DQN and search for an order with a
//      higher final balance for the IFUs.
//   3. Return TxSeq^Final — the profitable order, or the original sequence
//      when nothing better was found (the attack must never hand the
//      aggregator an invalid or losing order).
//
// Reorderer strategy is pluggable: kDqn is the paper's design; the heuristic
// strategies reuse the baseline solvers and exist for fast large-scale
// campaign simulation (Figs. 6/7 sweeps) and for ablations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "parole/core/arbitrage.hpp"
#include "parole/core/gentranseq.hpp"
#include "parole/rollup/aggregator.hpp"
#include "parole/solvers/portfolio.hpp"
#include "parole/solvers/problem.hpp"

namespace parole::core {

enum class ReordererKind : std::uint8_t {
  kDqn,            // GENTRANSEQ trained per batch (as Algorithm 1 reads)
  kDqnPretrained,  // GENTRANSEQ trained *offline* once, inference per batch
                   // (the paper's threat model: "the IFU trains the model
                   // offline"); requires pretrain() before the first batch
  kAnnealing,      // heuristic stand-in (fast campaigns)
  kHillClimb,      // heuristic stand-in
  kGreedy,         // heuristic stand-in
  kPortfolio,      // multi-threaded solver portfolio (DESIGN.md §12)
};

struct ParoleConfig {
  ReordererKind kind = ReordererKind::kDqn;
  GenTranSeqConfig gentranseq;
  // Joint objective when serving several IFUs (see solvers::Objective);
  // identical rankings for a single IFU.
  solvers::Objective objective = solvers::Objective::kSumBalance;
  std::uint64_t seed = 0x9a601eULL;
  // kPortfolio member/threading configuration; ignored by the other kinds.
  solvers::PortfolioConfig portfolio;
};

struct AttackOutcome {
  ArbitrageAssessment assessment;
  bool reordered{false};
  Amount baseline{0};   // IFUs' summed final balance, original order
  Amount achieved{0};   // IFUs' summed final balance, returned order
  std::vector<vm::Tx> final_sequence;

  [[nodiscard]] Amount profit() const { return achieved - baseline; }
};

class Parole {
 public:
  explicit Parole(ParoleConfig config = {});

  // Offline training for kDqnPretrained: train GENTRANSEQ on a
  // representative batch (same size N as the batches the aggregator will
  // collect) and keep the Q-network weights for inference-only reordering.
  // Returns the training result; also accepts an existing checkpoint via
  // load_pretrained().
  TrainResult pretrain(const vm::L2State& chain_state,
                       std::vector<vm::Tx> representative_batch,
                       const std::vector<UserId>& ifus);
  Status load_pretrained(const std::vector<std::uint8_t>& checkpoint,
                         std::size_t batch_size);
  [[nodiscard]] std::vector<std::uint8_t> export_pretrained() const;
  [[nodiscard]] bool pretrained() const { return !pretrained_weights_.empty(); }

  // Algorithm 1: PAROLE(U_IFU, Chain^L2, TxSeq^Original) -> TxSeq^Final.
  AttackOutcome run(const vm::L2State& chain_state, std::vector<vm::Tx> txs,
                    const std::vector<UserId>& ifus);

  // Adapt to the rollup layer: a Reorderer closure for AggregatorConfig.
  // `profit_sink`, when non-null, accumulates the per-batch profit so
  // campaigns can aggregate attack revenue.
  [[nodiscard]] rollup::Reorderer as_reorderer(std::vector<UserId> ifus,
                                               Amount* profit_sink = nullptr);

  [[nodiscard]] const ParoleConfig& config() const { return config_; }

  // Checkpointing hook (DESIGN.md §10): each run() derives its seed from the
  // invocation counter, so restoring the counter is what makes a resumed
  // campaign replay the same reordering searches an uninterrupted one runs.
  [[nodiscard]] std::uint64_t invocations() const { return invocation_; }
  void set_invocations(std::uint64_t n) { invocation_ = n; }

 private:
  ParoleConfig config_;
  std::uint64_t invocation_{0};
  // kDqnPretrained: serialized Q-network weights + the batch size they were
  // trained for (the network shape is a function of N).
  std::vector<std::uint8_t> pretrained_weights_;
  std::size_t pretrained_batch_size_{0};
};

}  // namespace parole::core
