#include "parole/core/reorder_env.hpp"

#include <cassert>
#include <numeric>

namespace parole::core {
namespace {

constexpr double kMilliEthPerGwei = 1.0 / 1'000'000.0;  // 1e-3 ETH = 1e6 gwei

}  // namespace

ReorderEnv::ReorderEnv(const solvers::ReorderingProblem& problem,
                       RewardConfig reward)
    : problem_(&problem),
      reward_(reward),
      encoder_(problem.initial_state(),
               std::vector<UserId>(problem.ifus().begin(),
                                   problem.ifus().end())),
      n_(problem.size()) {
  baseline_ = problem_->baseline();
  (void)reset();
}

std::vector<double> ReorderEnv::reset() {
  order_.resize(n_);
  std::iota(order_.begin(), order_.end(), 0);
  problem_->commit_order(order_);  // swap probes run against the incumbent
  txs_ = problem_->materialize(order_);
  current_balance_ = baseline_;
  swaps_applied_ = 0;
  encode_current();
  return encoding_;
}

EnvStep ReorderEnv::step(std::size_t action) {
  assert(action < action_count());
  const auto [i, j] = decode_action(action, n_);

  EnvStep out;
  const Amount previous_balance = current_balance_;

  // Resync the shared problem's incumbent with this env's order: a no-op
  // vector compare when we were the last committer, a trail rebuild when
  // another env (or solver) moved it in between.
  problem_->commit_order(order_);
  const std::optional<Amount> value = problem_->evaluate_swap(i, j);

  if (!value) {
    // Constraint-breaking order: reject the swap, penalize the action. The
    // order is unchanged, so the cached encoding is still current.
    problem_->revert();
    out.applied = false;
    out.balance = current_balance_;
    out.reward = -reward_.invalid_action_penalty * reward_.penalty_weight;
  } else {
    std::swap(order_[i], order_[j]);
    std::swap(txs_[i], txs_[j]);
    problem_->commit();
    encode_current();
    out.applied = true;
    ++swaps_applied_;
    current_balance_ = *value;
    out.balance = current_balance_;

    // Eq. 8: r = W * (B^{N,k} - B^{N,0}), in milli-ETH.
    const double delta_milli =
        static_cast<double>(current_balance_ - baseline_) * kMilliEthPerGwei;
    const double weight = delta_milli < 0.0 ? reward_.penalty_weight : 1.0;
    out.reward = weight * delta_milli;

    if (current_balance_ <= previous_balance) {
      out.reward -= reward_.no_progress_penalty;
    }
  }

  out.profit = current_balance_ > baseline_;
  out.state = encoding_;
  return out;
}

std::vector<std::optional<Amount>> ReorderEnv::peek_actions(
    std::span<const std::size_t> actions) const {
  // One resync for the whole batch; each probe is evaluate + revert, so the
  // incumbent (and this env's order) is untouched on return.
  problem_->commit_order(order_);
  std::vector<std::optional<Amount>> balances;
  balances.reserve(actions.size());
  for (const std::size_t action : actions) {
    assert(action < action_count());
    const auto [i, j] = decode_action(action, n_);
    balances.push_back(problem_->evaluate_swap(i, j));
    problem_->revert();
  }
  return balances;
}

void ReorderEnv::encode_current() { encoding_ = encoder_.encode(txs_); }

std::pair<std::size_t, std::size_t> ReorderEnv::decode_action(
    std::size_t action, std::size_t n) {
  assert(n >= 2);
  // Lexicographic over pairs (i, j), i < j: action = i*(2n-i-1)/2 + (j-i-1).
  std::size_t i = 0;
  std::size_t remaining = action;
  while (remaining >= n - i - 1) {
    remaining -= n - i - 1;
    ++i;
    assert(i + 1 < n);
  }
  return {i, i + 1 + remaining};
}

std::size_t ReorderEnv::encode_action(std::size_t i, std::size_t j,
                                      std::size_t n) {
  assert(i < j && j < n);
  return i * (2 * n - i - 1) / 2 + (j - i - 1);
}

}  // namespace parole::core
