// The transaction re-ordering MDP (Sec. V-C-1).
//
//   State:  the current order of the collected transactions (encoded as the
//           flattened 8*N feature tensor).
//   Action: swap two transactions — C(N,2) discrete actions.
//   Reward: Eq. 8,  r_k = W * (B_IFU^{N,k} - B_IFU^{N,0}),  the IFUs' final
//           balance of the current order minus the original order's, with W
//           a high penalty multiplier for "penalizable" actions (orders that
//           reduce the balance or break a transaction's constraints) and 1
//           otherwise.
//
// Rewards are expressed in milli-ETH so episode totals land in the +-10^4
// range of Fig. 8.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "parole/core/encoding.hpp"
#include "parole/solvers/problem.hpp"

namespace parole::core {

struct RewardConfig {
  // W for penalizable actions (balance-reducing orders). 1 for gains.
  double penalty_weight = 10.0;
  // Flat extra penalty (milli-ETH) for an action producing an *invalid*
  // order; the swap is rejected and the state does not change. Kept small
  // relative to typical balance deltas so exploration under high epsilon is
  // not drowned in rejection penalties (it is multiplied by penalty_weight).
  double invalid_action_penalty = 5.0;
  // Small shaping penalty when an action fails to improve on the previous
  // step's balance ("penalized if it takes an action that fails to guide the
  // agent towards an increasing final balance").
  double no_progress_penalty = 1.0;
};

struct EnvStep {
  std::vector<double> state;  // encoding of the (possibly unchanged) order
  double reward{0.0};
  // B^{N,k} > B^{N,0}: the current order beats the original (Algorithm 1's
  // "Profit" flag).
  bool profit{false};
  // The attempted swap produced a valid order (and was applied).
  bool applied{false};
  Amount balance{0};  // IFUs' final balance under the current order
};

class ReorderEnv {
 public:
  ReorderEnv(const solvers::ReorderingProblem& problem, RewardConfig reward);

  [[nodiscard]] std::size_t tx_count() const { return n_; }
  [[nodiscard]] std::size_t state_dim() const {
    return kFeaturesPerTx * n_;
  }
  [[nodiscard]] std::size_t action_count() const {
    return n_ < 2 ? 0 : n_ * (n_ - 1) / 2;
  }

  // Reset to the original order; returns its encoding.
  std::vector<double> reset();

  // Apply action (a swap). Invalid-resulting swaps are rejected with a
  // penalty; valid swaps move the state.
  EnvStep step(std::size_t action);

  // Batched candidate scoring: the IFU balance each action would reach from
  // the current order, nullopt where the swap breaks a constraint. The state
  // does not move, and the incumbent resync that step() pays per call is
  // amortized over the whole candidate set — this is the fast path behind
  // GenTranSeqConfig::eval_candidates.
  [[nodiscard]] std::vector<std::optional<Amount>> peek_actions(
      std::span<const std::size_t> actions) const;

  // Current order (indices into the problem's original sequence).
  [[nodiscard]] const std::vector<std::size_t>& order() const {
    return order_;
  }
  [[nodiscard]] Amount current_balance() const { return current_balance_; }
  [[nodiscard]] Amount baseline_balance() const { return baseline_; }
  // Number of *applied* swaps since reset.
  [[nodiscard]] std::size_t swaps_applied() const { return swaps_applied_; }

  // Action index <-> (i, j) pair with i < j, lexicographic enumeration.
  static std::pair<std::size_t, std::size_t> decode_action(std::size_t action,
                                                           std::size_t n);
  static std::size_t encode_action(std::size_t i, std::size_t j,
                                   std::size_t n);

 private:
  void encode_current();

  const solvers::ReorderingProblem* problem_;
  RewardConfig reward_;
  SequenceEncoder encoder_;
  std::size_t n_;
  Amount baseline_{0};
  std::vector<std::size_t> order_;
  // The materialized batch under order_, kept in sync by element swaps so
  // step() never re-materializes the whole sequence.
  std::vector<vm::Tx> txs_;
  // Encoding of txs_, refreshed only when a swap is applied; rejected swaps
  // return this cached copy.
  std::vector<double> encoding_;
  Amount current_balance_{0};
  std::size_t swaps_applied_{0};
};

}  // namespace parole::core
