#include "parole/crypto/hash.hpp"

#include <cstring>

#include "parole/crypto/keccak256.hpp"

namespace parole::crypto {
namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::string Hash256::hex() const { return "0x" + to_hex(bytes_); }

std::string Hash256::short_hex() const {
  const std::string full = to_hex(bytes_);
  return "0x" + full.substr(0, 4) + ".." + full.substr(full.size() - 2);
}

bool Hash256::is_zero() const {
  for (std::uint8_t b : bytes_) {
    if (b != 0) return false;
  }
  return true;
}

Address Address::derive(std::span<const std::uint8_t> seed) {
  const Hash256 digest = Keccak256::hash(seed);
  std::array<std::uint8_t, kSize> out{};
  std::memcpy(out.data(), digest.bytes().data() + (Hash256::kSize - kSize),
              kSize);
  return Address(out);
}

Address Address::from_id(std::string_view domain, std::uint64_t id) {
  Keccak256 k;
  k.update(domain);
  std::uint8_t raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::uint8_t>(id >> (8 * i));
  k.update(std::span<const std::uint8_t>(raw, sizeof(raw)));
  const Hash256 digest = k.finalize();
  std::array<std::uint8_t, kSize> out{};
  std::memcpy(out.data(), digest.bytes().data() + (Hash256::kSize - kSize),
              kSize);
  return Address(out);
}

std::string Address::hex() const { return "0x" + to_hex(bytes_); }

std::string Address::short_hex() const {
  const std::string full = to_hex(bytes_);
  return "0x" + full.substr(0, 2) + ".." + full.substr(full.size() - 3);
}

}  // namespace parole::crypto
