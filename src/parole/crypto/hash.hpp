// 32-byte hash value and 20-byte Ethereum-style address types, plus hex
// rendering. These are the currency of the fraud-proof machinery: state roots,
// batch commitments and Merkle nodes are all Hash256.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace parole::crypto {

class Hash256 {
 public:
  static constexpr std::size_t kSize = 32;

  constexpr Hash256() = default;
  explicit Hash256(const std::array<std::uint8_t, kSize>& bytes)
      : bytes_(bytes) {}

  [[nodiscard]] const std::array<std::uint8_t, kSize>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::span<const std::uint8_t, kSize> span() const {
    return bytes_;
  }

  // "0x"-prefixed lowercase hex.
  [[nodiscard]] std::string hex() const;
  // Abbreviated "0x8f..56" form used in Table III.
  [[nodiscard]] std::string short_hex() const;

  [[nodiscard]] bool is_zero() const;

  friend bool operator==(const Hash256&, const Hash256&) = default;
  friend auto operator<=>(const Hash256&, const Hash256&) = default;

 private:
  std::array<std::uint8_t, kSize> bytes_{};
};

class Address {
 public:
  static constexpr std::size_t kSize = 20;

  constexpr Address() = default;
  explicit Address(const std::array<std::uint8_t, kSize>& bytes)
      : bytes_(bytes) {}

  // Derive an address the Ethereum way: last 20 bytes of keccak256(seed).
  static Address derive(std::span<const std::uint8_t> seed);
  // Deterministic address for simulator user/aggregator ids.
  static Address from_id(std::string_view domain, std::uint64_t id);

  [[nodiscard]] const std::array<std::uint8_t, kSize>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::string hex() const;
  // "0x7A..c8e"-style abbreviation (Sec. VII-E).
  [[nodiscard]] std::string short_hex() const;

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;

 private:
  std::array<std::uint8_t, kSize> bytes_{};
};

// Lowercase hex of arbitrary bytes, no prefix.
std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace parole::crypto

namespace std {
template <>
struct hash<parole::crypto::Hash256> {
  size_t operator()(const parole::crypto::Hash256& h) const noexcept {
    size_t out;
    static_assert(sizeof(out) <= parole::crypto::Hash256::kSize);
    __builtin_memcpy(&out, h.bytes().data(), sizeof(out));
    return out;
  }
};
template <>
struct hash<parole::crypto::Address> {
  size_t operator()(const parole::crypto::Address& a) const noexcept {
    size_t out;
    static_assert(sizeof(out) <= parole::crypto::Address::kSize);
    __builtin_memcpy(&out, a.bytes().data(), sizeof(out));
    return out;
  }
};
}  // namespace std
