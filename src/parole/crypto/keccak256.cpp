#include "parole/crypto/keccak256.hpp"

#include <cassert>
#include <cstring>

namespace parole::crypto {
namespace {

constexpr std::array<std::uint64_t, 24> kRoundConstants = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr std::array<int, 25> kRotations = {0,  1,  62, 28, 27, 36, 44, 6,  55,
                                            20, 3,  10, 43, 25, 39, 41, 45, 15,
                                            21, 8,  18, 2,  61, 56, 14};

constexpr std::uint64_t rotl64(std::uint64_t x, int n) {
  return n == 0 ? x : (x << n) | (x >> (64 - n));
}

void keccak_f1600(std::array<std::uint64_t, 25>& a) {
  for (int round = 0; round < 24; ++round) {
    // Theta
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      const std::uint64_t d = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) a[x + 5 * y] ^= d;
    }
    // Rho + Pi
    std::uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        b[y + 5 * ((2 * x + 3 * y) % 5)] =
            rotl64(a[x + 5 * y], kRotations[x + 5 * y]);
      }
    }
    // Chi
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        a[x + 5 * y] =
            b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota
    a[0] ^= kRoundConstants[round];
  }
}

}  // namespace

Keccak256& Keccak256::update(std::span<const std::uint8_t> data) {
  assert(!finalized_);
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t take =
        std::min(data.size() - offset, kRate - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data() + offset, take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == kRate) absorb_block();
  }
  return *this;
}

Keccak256& Keccak256::update(std::string_view data) {
  return update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

void Keccak256::absorb_block() {
  for (std::size_t i = 0; i < kRate / 8; ++i) {
    std::uint64_t lane;
    std::memcpy(&lane, buffer_.data() + 8 * i, 8);  // little-endian host
    state_[i] ^= lane;
  }
  keccak_f1600(state_);
  buffer_len_ = 0;
}

Hash256 Keccak256::finalize() {
  assert(!finalized_);
  // Keccak (pre-SHA3) pad10*1: 0x01 domain byte, 0x80 at the rate boundary.
  std::memset(buffer_.data() + buffer_len_, 0, kRate - buffer_len_);
  buffer_[buffer_len_] ^= 0x01;
  buffer_[kRate - 1] ^= 0x80;
  buffer_len_ = kRate;
  absorb_block();
  finalized_ = true;

  std::array<std::uint8_t, Hash256::kSize> out{};
  std::memcpy(out.data(), state_.data(), out.size());
  return Hash256(out);
}

Hash256 Keccak256::hash(std::span<const std::uint8_t> data) {
  Keccak256 k;
  k.update(data);
  return k.finalize();
}

Hash256 Keccak256::hash(std::string_view data) {
  Keccak256 k;
  k.update(data);
  return k.finalize();
}

}  // namespace parole::crypto
