// Keccak-256 as used by Ethereum (the original Keccak padding, 0x01, not the
// NIST SHA-3 0x06 variant). Addresses and transaction hashes use this so the
// simulator's identifiers look and behave like mainnet ones.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "parole/crypto/hash.hpp"

namespace parole::crypto {

class Keccak256 {
 public:
  Keccak256() = default;

  Keccak256& update(std::span<const std::uint8_t> data);
  Keccak256& update(std::string_view data);

  [[nodiscard]] Hash256 finalize();

  static Hash256 hash(std::span<const std::uint8_t> data);
  static Hash256 hash(std::string_view data);

 private:
  static constexpr std::size_t kRate = 136;  // 1088-bit rate for 256-bit output

  void absorb_block();

  std::array<std::uint64_t, 25> state_{};
  std::array<std::uint8_t, kRate> buffer_{};
  std::size_t buffer_len_{0};
  bool finalized_{false};
};

}  // namespace parole::crypto
