#include "parole/crypto/merkle.hpp"

#include <cassert>

#include "parole/crypto/sha256.hpp"

namespace parole::crypto {
namespace {
constexpr std::uint8_t kLeafDomain = 0x00;
constexpr std::uint8_t kNodeDomain = 0x01;
}  // namespace

Hash256 MerkleTree::hash_leaf(const Hash256& data) {
  Sha256 h;
  h.update(std::span<const std::uint8_t>(&kLeafDomain, 1));
  h.update(data.span());
  return h.finalize();
}

Hash256 MerkleTree::hash_node(const Hash256& left, const Hash256& right) {
  Sha256 h;
  h.update(std::span<const std::uint8_t>(&kNodeDomain, 1));
  h.update(left.span());
  h.update(right.span());
  return h.finalize();
}

MerkleTree::MerkleTree(std::vector<Hash256> leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) return;
  std::vector<Hash256> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(hash_leaf(leaf));
  levels_.push_back(std::move(level));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Hash256> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      const Hash256& left = prev[i];
      const Hash256& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(hash_node(left, right));
    }
    levels_.push_back(std::move(next));
  }
}

Hash256 MerkleTree::root() const {
  if (levels_.empty()) return Hash256{};
  return levels_.back().front();
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  assert(index < leaf_count_);
  MerkleProof proof;
  proof.leaf_index = index;
  std::size_t pos = index;
  for (std::size_t depth = 0; depth + 1 < levels_.size(); ++depth) {
    const auto& level = levels_[depth];
    const bool is_left = (pos % 2 == 0);
    std::size_t sibling_pos = is_left ? pos + 1 : pos - 1;
    if (sibling_pos >= level.size()) sibling_pos = pos;  // duplicated tail
    proof.steps.push_back({level[sibling_pos], /*sibling_on_left=*/!is_left});
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Hash256& root, const Hash256& leaf,
                        const MerkleProof& proof) {
  Hash256 current = hash_leaf(leaf);
  for (const auto& step : proof.steps) {
    current = step.sibling_on_left ? hash_node(step.sibling, current)
                                   : hash_node(current, step.sibling);
  }
  return current == root;
}

Hash256 MerkleTree::root_of(std::span<const std::vector<std::uint8_t>> items) {
  std::vector<Hash256> leaves;
  leaves.reserve(items.size());
  for (const auto& item : items) leaves.push_back(Sha256::hash(item));
  return MerkleTree(std::move(leaves)).root();
}

}  // namespace parole::crypto
