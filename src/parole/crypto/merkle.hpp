// Binary Merkle tree over arbitrary leaf hashes, with inclusion proofs.
//
// The aggregator commits to the post-batch L2 state with a Merkle root
// ("cryptographic aggregate of these transactions along with the Merkle state
// root of the L2 chain", Sec. II-A). Verifiers check inclusion proofs during
// the dispute game. Odd levels duplicate the trailing node (Bitcoin-style),
// and leaves are domain-separated from interior nodes to prevent second
// pre-image ambiguity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "parole/crypto/hash.hpp"

namespace parole::crypto {

struct MerkleProofStep {
  Hash256 sibling;
  bool sibling_on_left{false};
};

struct MerkleProof {
  std::size_t leaf_index{0};
  std::vector<MerkleProofStep> steps;
};

class MerkleTree {
 public:
  // Builds the full tree; leaves may be empty (root is the zero-hash then).
  explicit MerkleTree(std::vector<Hash256> leaves);

  [[nodiscard]] Hash256 root() const;
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }

  // Inclusion proof for the given leaf index; index must be < leaf_count().
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  // Verify an inclusion proof against a root.
  static bool verify(const Hash256& root, const Hash256& leaf,
                     const MerkleProof& proof);

  // Domain-separated hashing used by the tree (exposed so fraud proofs can
  // recompute single nodes).
  static Hash256 hash_leaf(const Hash256& data);
  static Hash256 hash_node(const Hash256& left, const Hash256& right);

  // Convenience: root of a sequence of raw byte strings.
  static Hash256 root_of(std::span<const std::vector<std::uint8_t>> items);

 private:
  // levels_[0] = hashed leaves; levels_.back() has exactly one node (if any).
  std::vector<std::vector<Hash256>> levels_;
  std::size_t leaf_count_{0};
};

}  // namespace parole::crypto
