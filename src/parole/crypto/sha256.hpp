// SHA-256 (FIPS 180-4), streaming interface plus one-shot helper.
// Used for Merkle trees and state roots in the rollup simulator.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "parole/crypto/hash.hpp"

namespace parole::crypto {

class Sha256 {
 public:
  Sha256();

  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view data);

  // Finalizes and returns the digest. The object must not be reused after
  // finalize() without reset().
  [[nodiscard]] Hash256 finalize();

  void reset();

  static Hash256 hash(std::span<const std::uint8_t> data);
  static Hash256 hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_{0};
  std::uint64_t total_len_{0};
  bool finalized_{false};
};

}  // namespace parole::crypto
