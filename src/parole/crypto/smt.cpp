#include "parole/crypto/smt.hpp"

#include <algorithm>
#include <cassert>

#include "parole/crypto/keccak256.hpp"
#include "parole/crypto/sha256.hpp"
#include "parole/io/codec.hpp"

namespace parole::crypto {
namespace {

// levels[l] maps node index -> hash at height l (0 = leaf slots). Builds all
// ancestors of the occupied nodes; absent nodes are empty subtrees.
using LevelMaps =
    std::array<std::map<std::uint32_t, Hash256>, SparseMerkleTree::kDepth + 1>;

LevelMaps build_levels(
    const std::map<std::uint32_t, std::vector<SparseMerkleTree::Entry>>&
        slots) {
  LevelMaps levels;
  for (const auto& [slot, entries] : slots) {
    levels[0][slot] = SparseMerkleTree::hash_slot(entries);
  }
  for (int l = 0; l < SparseMerkleTree::kDepth; ++l) {
    for (const auto& [idx, hash] : levels[l]) {
      const std::uint32_t parent = idx >> 1;
      if (levels[l + 1].contains(parent)) continue;
      const std::uint32_t sibling = idx ^ 1;
      const auto sit = levels[l].find(sibling);
      const Hash256 sibling_hash = sit != levels[l].end()
                                       ? sit->second
                                       : SparseMerkleTree::empty_hash(l);
      const Hash256 left = (idx & 1) ? sibling_hash : hash;
      const Hash256 right = (idx & 1) ? hash : sibling_hash;
      levels[l + 1][parent] =
          SparseMerkleTree::hash_children(left, right);
    }
  }
  return levels;
}

}  // namespace

std::uint32_t SparseMerkleTree::slot_of(const Hash256& key) {
  const Hash256 digest = Keccak256::hash(key.span());
  std::uint32_t raw = 0;
  for (int i = 0; i < 4; ++i) {
    raw = (raw << 8) | digest.bytes()[static_cast<std::size_t>(i)];
  }
  return raw >> (32 - kDepth);
}

Hash256 SparseMerkleTree::hash_slot(const std::vector<Entry>& entries) {
  if (entries.empty()) return empty_hash(0);
  Sha256 h;
  h.update("smt_leaf");
  for (const Entry& e : entries) {
    h.update(e.key.span());
    h.update(e.value.span());
  }
  return h.finalize();
}

Hash256 SparseMerkleTree::empty_hash(int level) {
  static const std::array<Hash256, kDepth + 1> kCache = [] {
    std::array<Hash256, kDepth + 1> cache;
    cache[0] = Sha256::hash("smt_empty");
    for (int l = 1; l <= kDepth; ++l) {
      cache[static_cast<std::size_t>(l)] = hash_children(
          cache[static_cast<std::size_t>(l - 1)],
          cache[static_cast<std::size_t>(l - 1)]);
    }
    return cache;
  }();
  assert(level >= 0 && level <= kDepth);
  return kCache[static_cast<std::size_t>(level)];
}

Hash256 SparseMerkleTree::hash_children(const Hash256& left,
                                        const Hash256& right) {
  Sha256 h;
  h.update("smt_node");
  h.update(left.span());
  h.update(right.span());
  return h.finalize();
}

std::optional<Hash256> SparseMerkleTree::set(const Hash256& key,
                                             const Hash256& value) {
  auto& entries = slots_[slot_of(key)];
  for (Entry& e : entries) {
    if (e.key == key) {
      const Hash256 previous = e.value;
      e.value = value;
      return previous;
    }
  }
  entries.push_back({key, value});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  return std::nullopt;
}

bool SparseMerkleTree::erase(const Hash256& key) {
  const std::uint32_t slot = slot_of(key);
  const auto it = slots_.find(slot);
  if (it == slots_.end()) return false;
  auto& entries = it->second;
  const auto eit =
      std::find_if(entries.begin(), entries.end(),
                   [&key](const Entry& e) { return e.key == key; });
  if (eit == entries.end()) return false;
  entries.erase(eit);
  if (entries.empty()) slots_.erase(it);
  return true;
}

std::optional<Hash256> SparseMerkleTree::get(const Hash256& key) const {
  const auto it = slots_.find(slot_of(key));
  if (it == slots_.end()) return std::nullopt;
  for (const Entry& e : it->second) {
    if (e.key == key) return e.value;
  }
  return std::nullopt;
}

std::size_t SparseMerkleTree::size() const {
  std::size_t total = 0;
  for (const auto& [slot, entries] : slots_) total += entries.size();
  return total;
}

Hash256 SparseMerkleTree::root() const {
  if (slots_.empty()) return empty_hash(kDepth);
  const LevelMaps levels = build_levels(slots_);
  return levels[kDepth].begin()->second;
}

SparseMerkleTree::Proof SparseMerkleTree::prove(const Hash256& key) const {
  Proof proof;
  const std::uint32_t slot = slot_of(key);
  const auto it = slots_.find(slot);
  if (it != slots_.end()) proof.slot_entries = it->second;

  const LevelMaps levels = build_levels(slots_);
  for (int l = 0; l < kDepth; ++l) {
    const std::uint32_t sibling = (slot >> l) ^ 1;
    const auto sit = levels[static_cast<std::size_t>(l)].find(sibling);
    proof.siblings[static_cast<std::size_t>(l)] =
        sit != levels[static_cast<std::size_t>(l)].end() ? sit->second
                                                         : empty_hash(l);
  }
  return proof;
}

SparseMerkleTree::VerifyResult SparseMerkleTree::verify(const Hash256& root,
                                                        const Hash256& key,
                                                        const Proof& proof) {
  VerifyResult result;
  const std::uint32_t slot = slot_of(key);

  // Slot entries must be key-sorted (canonical form; otherwise two byte
  // encodings of the same slot could both verify).
  for (std::size_t i = 1; i < proof.slot_entries.size(); ++i) {
    if (!(proof.slot_entries[i - 1].key < proof.slot_entries[i].key)) {
      return result;
    }
  }

  Hash256 current = hash_slot(proof.slot_entries);
  for (int l = 0; l < kDepth; ++l) {
    const std::uint32_t idx = slot >> l;
    const Hash256& sibling = proof.siblings[static_cast<std::size_t>(l)];
    current = (idx & 1) ? hash_children(sibling, current)
                        : hash_children(current, sibling);
  }
  if (current != root) return result;

  result.valid = true;
  for (const Entry& e : proof.slot_entries) {
    if (e.key == key) {
      result.value = e.value;
      break;
    }
  }
  return result;
}

// --- PartialSmt -------------------------------------------------------------------

Status PartialSmt::add_proof(const Hash256& key,
                             const SparseMerkleTree::Proof& proof) {
  const auto check = SparseMerkleTree::verify(root_, key, proof);
  if (!check.valid) {
    return Error{"bad_proof", "witness proof does not match the pre-root"};
  }
  const std::uint32_t slot = SparseMerkleTree::slot_of(key);
  const auto it = slots_.find(slot);
  if (it != slots_.end()) {
    // Same slot registered twice (two touched keys colliding): the proofs
    // must agree on the slot contents.
    if (it->second.entries != proof.slot_entries) {
      return Error{"inconsistent_witness",
                   "conflicting proofs for one slot"};
    }
    return ok_status();
  }
  slots_[slot] = SlotState{proof.slot_entries, proof.siblings};
  return ok_status();
}

bool PartialSmt::covers(const Hash256& key) const {
  return slots_.contains(SparseMerkleTree::slot_of(key));
}

std::optional<Hash256> PartialSmt::get(const Hash256& key) const {
  const auto it = slots_.find(SparseMerkleTree::slot_of(key));
  if (it == slots_.end()) return std::nullopt;
  for (const auto& e : it->second.entries) {
    if (e.key == key) return e.value;
  }
  return std::nullopt;
}

Status PartialSmt::set(const Hash256& key, const Hash256& value) {
  const auto it = slots_.find(SparseMerkleTree::slot_of(key));
  if (it == slots_.end()) {
    return Error{"uncovered_key", "witness has no proof for this key"};
  }
  auto& entries = it->second.entries;
  for (auto& e : entries) {
    if (e.key == key) {
      e.value = value;
      return ok_status();
    }
  }
  entries.push_back({key, value});
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  return ok_status();
}

Status PartialSmt::erase(const Hash256& key) {
  const auto it = slots_.find(SparseMerkleTree::slot_of(key));
  if (it == slots_.end()) {
    return Error{"uncovered_key", "witness has no proof for this key"};
  }
  auto& entries = it->second.entries;
  const auto eit = std::find_if(entries.begin(), entries.end(),
                                [&key](const auto& e) { return e.key == key; });
  if (eit == entries.end()) {
    return Error{"missing_key", "key not present in witness slot"};
  }
  entries.erase(eit);
  return ok_status();
}

Hash256 PartialSmt::root() const {
  if (slots_.empty()) return root_;

  // Current hash of every registered slot's path, recomputed bottom-up.
  // Paths may converge; computed nodes take precedence over the recorded
  // (pre-update) siblings from the proofs.
  std::map<std::uint32_t, Hash256> level;
  for (const auto& [slot, state] : slots_) {
    level[slot] = SparseMerkleTree::hash_slot(state.entries);
  }

  for (int l = 0; l < SparseMerkleTree::kDepth; ++l) {
    // Recorded sibling for index at this level: from any registered slot
    // whose path passes through it.
    auto recorded_sibling = [this, l](std::uint32_t idx) {
      for (const auto& [slot, state] : slots_) {
        if ((slot >> l) == idx) {
          return state.siblings[static_cast<std::size_t>(l)];
        }
      }
      // Unreachable: only queried for indices on registered paths.
      return SparseMerkleTree::empty_hash(l);
    };

    std::map<std::uint32_t, Hash256> next;
    for (const auto& [idx, hash] : level) {
      const std::uint32_t parent = idx >> 1;
      if (next.contains(parent)) continue;
      const std::uint32_t sibling_idx = idx ^ 1;
      const auto sit = level.find(sibling_idx);
      const Hash256 sibling =
          sit != level.end() ? sit->second : recorded_sibling(idx);
      const Hash256 left = (idx & 1) ? sibling : hash;
      const Hash256 right = (idx & 1) ? hash : sibling;
      next[parent] = SparseMerkleTree::hash_children(left, right);
    }
    level = std::move(next);
  }
  return level.begin()->second;
}

void SparseMerkleTree::save(io::ByteWriter& w) const {
  w.u64(slots_.size());
  for (const auto& [slot, entries] : slots_) {  // std::map: ascending order
    w.u32(slot);
    w.u64(entries.size());
    for (const Entry& e : entries) {
      io::save_hash(w, e.key);
      io::save_hash(w, e.value);
    }
  }
}

Status SparseMerkleTree::load(io::ByteReader& r) {
  std::uint64_t slot_count = 0;
  // Minimal slot image: u32 slot id + u64 entry count + one 64-byte entry.
  PAROLE_IO_READ(r.length(slot_count, 76), "smt slot count");
  std::map<std::uint32_t, std::vector<Entry>> slots;
  std::int64_t previous_slot = -1;
  for (std::uint64_t i = 0; i < slot_count; ++i) {
    std::uint32_t slot = 0;
    PAROLE_IO_READ(r.u32(slot), "smt slot id");
    if (slot >= (1u << kDepth) || static_cast<std::int64_t>(slot) <= previous_slot) {
      return Error{"corrupt_checkpoint", "smt slot ids out of range or order"};
    }
    previous_slot = static_cast<std::int64_t>(slot);
    std::uint64_t entry_count = 0;
    PAROLE_IO_READ(r.length(entry_count, 64), "smt entry count");
    if (entry_count == 0) {
      // erase() removes emptied slots; an empty slot in the image would make
      // the restored root disagree with the live tree's canonical form.
      return Error{"corrupt_checkpoint", "smt slot with no entries"};
    }
    std::vector<Entry> entries(static_cast<std::size_t>(entry_count));
    for (Entry& e : entries) {
      PAROLE_IO_READ(io::load_hash(r, e.key), "smt entry key");
      PAROLE_IO_READ(io::load_hash(r, e.value), "smt entry value");
      if (slot_of(e.key) != slot) {
        return Error{"corrupt_checkpoint", "smt entry hashed to another slot"};
      }
    }
    for (std::size_t j = 1; j < entries.size(); ++j) {
      if (!(entries[j - 1].key < entries[j].key)) {
        return Error{"corrupt_checkpoint", "smt slot entries not key-sorted"};
      }
    }
    slots.emplace(slot, std::move(entries));
  }
  slots_ = std::move(slots);
  return ok_status();
}

}  // namespace parole::crypto
