// Sparse Merkle tree with membership and non-membership proofs.
//
// The dispute game's final step asks L1 to re-execute one transaction. A
// production optimistic rollup cannot hand L1 the whole L2 state; it hands a
// *witness*: the few state entries the transaction touches, each proven
// against the committed pre-state root. That requires an accumulator
// supporting both membership proofs ("this account has balance X") and
// non-membership proofs ("this token id does not exist") — which a plain
// Merkle list cannot do. This SMT provides both:
//
//  * fixed depth kDepth over the first kDepth bits of keccak(key);
//  * empty subtrees hash to precomputed per-level defaults, so the tree is
//    O(entries) to build regardless of the 2^kDepth key space;
//  * each occupied slot stores the key-sorted list of entries hashing to it
//    (collision chaining), so proofs stay sound even when two keys share a
//    slot;
//  * PartialSmt reconstructs the proof-covered fragment of the tree,
//    applies updates to proven keys, and recomputes the post-root — the
//    verifier-side primitive for stateless execution (vm/witness.*).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "parole/common/result.hpp"
#include "parole/crypto/hash.hpp"
#include "parole/io/bytes.hpp"

namespace parole::crypto {

class SparseMerkleTree {
 public:
  static constexpr int kDepth = 20;

  struct Entry {
    Hash256 key;
    Hash256 value;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  struct Proof {
    // Sibling hashes from the leaf level (index 0) up to the root's
    // children (index kDepth-1).
    std::array<Hash256, kDepth> siblings;
    // Every entry stored in the key's slot (possibly empty, possibly other
    // keys only — that is the non-membership case).
    std::vector<Entry> slot_entries;
  };

  struct VerifyResult {
    bool valid{false};
    // Set when the key is present (membership); nullopt with valid=true is
    // a proven absence (non-membership).
    std::optional<Hash256> value;
  };

  SparseMerkleTree() = default;

  // Insert or update a key. Returns the previous value if any.
  std::optional<Hash256> set(const Hash256& key, const Hash256& value);
  // Remove a key; true if it existed.
  bool erase(const Hash256& key);

  [[nodiscard]] std::optional<Hash256> get(const Hash256& key) const;
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] Hash256 root() const;
  [[nodiscard]] Proof prove(const Hash256& key) const;

  // Checkpointing (DESIGN.md §10). Slots are written in ascending slot order
  // with key-sorted entries, so equal trees serialize to equal bytes. load()
  // re-validates the structural invariants (slot ids in range and strictly
  // ascending, entries key-sorted, every key hashing into its slot) before
  // mutating, so a bit-flipped image cannot smuggle in a tree whose proofs
  // disagree with its root.
  void save(io::ByteWriter& w) const;
  [[nodiscard]] Status load(io::ByteReader& r);

  static VerifyResult verify(const Hash256& root, const Hash256& key,
                             const Proof& proof);

  // Exposed for PartialSmt / tests.
  static std::uint32_t slot_of(const Hash256& key);
  static Hash256 hash_slot(const std::vector<Entry>& entries);
  static Hash256 empty_hash(int level);  // level 0 = leaf
  static Hash256 hash_children(const Hash256& left, const Hash256& right);

 private:
  // slot -> key-sorted entries.
  std::map<std::uint32_t, std::vector<Entry>> slots_;
};

// Verifier-side partial tree: seeded with proofs against a trusted root,
// then updated (set/erase on proven keys only) to derive the post-root.
class PartialSmt {
 public:
  explicit PartialSmt(const Hash256& root) : root_(root) {}

  // Register a proof for `key`; rejected unless it verifies against the
  // construction root (or is consistent with already-registered slots).
  Status add_proof(const Hash256& key, const SparseMerkleTree::Proof& proof);

  [[nodiscard]] bool covers(const Hash256& key) const;
  [[nodiscard]] std::optional<Hash256> get(const Hash256& key) const;

  // Update a covered key. Fails on uncovered keys (the witness did not
  // authorize touching them).
  Status set(const Hash256& key, const Hash256& value);
  Status erase(const Hash256& key);

  // Current root after the applied updates.
  [[nodiscard]] Hash256 root() const;

 private:
  Hash256 root_;
  // Proven slots: entries + path siblings (leaf-level upward).
  struct SlotState {
    std::vector<SparseMerkleTree::Entry> entries;
    std::array<Hash256, SparseMerkleTree::kDepth> siblings;
  };
  std::map<std::uint32_t, SlotState> slots_;
};

}  // namespace parole::crypto
