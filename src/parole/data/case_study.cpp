#include "parole/data/case_study.hpp"

#include <cassert>

namespace parole::data::case_study {
namespace {

// Token ids assigned by the seed mints below.
constexpr TokenId kIfuToken0{0};
constexpr TokenId kU1TokenA{2};  // sold to U2 in TX1, burnt in TX7
constexpr TokenId kU1TokenB{3};  // sold to the IFU in TX8
constexpr TokenId kU13Token{4};  // sold to U3 in TX6

}  // namespace

vm::L2State initial_state() {
  vm::L2State state(/*max_supply=*/10, /*initial_price=*/eth(0, 200));

  // L2 balances: exactly what each participant needs for its paper role.
  state.ledger().credit(kIfu, eth(1, 500));
  state.ledger().credit(kU2, eth(0, 400));
  // U3 buys at the "0.66" cell of Fig. 5(a), which is exactly 2/3 ETH; 0.7
  // covers it (the paper's display rounds 0.666... down to 0.66).
  state.ledger().credit(kU3, eth(0, 700));
  state.ledger().credit(kU6, eth(0, 500));
  state.ledger().credit(kU11, eth(0, 500));
  state.ledger().credit(kU19, eth(0, 400));

  // 5 pre-minted tokens: IFU 2 (ids 0,1), U1 2 (ids 2,3), U13 1 (id 4).
  auto seeded = state.nft().seed_mint(kIfu, 2);
  assert(seeded.ok());
  seeded = state.nft().seed_mint(kU1, 2);
  assert(seeded.ok());
  seeded = state.nft().seed_mint(kU13, 1);
  assert(seeded.ok());
  (void)seeded;

  assert(state.nft().remaining_supply() == 5);
  assert(state.nft().current_price() == eth(0, 400));
  assert(state.total_balance(kIfu) == kInitialIfuBalance);
  return state;
}

std::vector<vm::Tx> original_txs() {
  std::vector<vm::Tx> txs;
  txs.push_back(vm::Tx::make_transfer(TxId{1}, kU1, kU2, kU1TokenA));
  // Explicit mint ids keep TX4's target well-defined in every order: TX2
  // creates token 5 (which TX4 then sells), TX5 creates token 6.
  txs.push_back(vm::Tx::make_mint(TxId{2}, kU19, 0, 0, TokenId{5}));
  txs.push_back(vm::Tx::make_transfer(TxId{3}, kIfu, kU11, kIfuToken0));
  txs.push_back(vm::Tx::make_transfer(TxId{4}, kU19, kU6, TokenId{5}));
  txs.push_back(vm::Tx::make_mint(TxId{5}, kIfu, 0, 0, TokenId{6}));
  txs.push_back(vm::Tx::make_transfer(TxId{6}, kU13, kU3, kU13Token));
  txs.push_back(vm::Tx::make_burn(TxId{7}, kU2, kU1TokenA));
  txs.push_back(vm::Tx::make_transfer(TxId{8}, kU1, kIfu, kU1TokenB));
  return txs;
}

std::vector<std::size_t> case1_order() {
  return {0, 1, 2, 3, 4, 5, 6, 7};
}

std::vector<std::size_t> paper_case2_order() {
  // TX1, TX7, TX5, TX4, TX3, TX6, TX2, TX8 (Fig. 5(b), 1-based).
  return {0, 6, 4, 3, 2, 5, 1, 7};
}

std::vector<std::size_t> paper_case3_order() {
  // TX1, TX7, TX8, TX5, TX4, TX3, TX6, TX2 (Fig. 5(c), 1-based).
  return {0, 6, 7, 4, 3, 2, 5, 1};
}

std::vector<std::size_t> case2_order() {
  // Feasible repair of Fig. 5(b): TX4 moved after TX2.
  // TX1, TX7, TX5, TX3, TX6, TX2, TX8, TX4.
  return {0, 6, 4, 2, 5, 1, 7, 3};
}

std::vector<std::size_t> case3_order() {
  // Feasible repair of Fig. 5(c): TX4 moved after TX2.
  // TX1, TX7, TX8, TX5, TX3, TX6, TX2, TX4.
  return {0, 6, 7, 4, 2, 5, 1, 3};
}

std::vector<std::size_t> optimal_order() {
  // TX1, TX7, TX8, TX5, TX2, TX3, TX4, TX6: buy and mint at the post-burn
  // 1/3 ETH trough, sell only after both mints at 0.5 ETH.
  return {0, 6, 7, 4, 1, 2, 3, 5};
}

solvers::ReorderingProblem make_problem() {
  return solvers::ReorderingProblem(initial_state(), original_txs(), {kIfu});
}

}  // namespace parole::data::case_study
