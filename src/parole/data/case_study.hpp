// The Sec. VI case-study scenario (Fig. 5), as an executable fixture.
//
// System status: S^0 = 10, P^0 = 0.2 ETH, 5 PTs already minted (so S^t = 5
// and the price is 0.4 ETH). The IFU holds 1.5 ETH of L2 balance and 2 PTs.
// Eight transactions, numbered TX1..TX8 in original-arrival order:
//
//   TX1 Transfer U1  -> U2    TX5 Mint  IFU
//   TX2 Mint     U19          TX6 Transfer U13 -> U3
//   TX3 Transfer IFU -> U11   TX7 Burn  U2
//   TX4 Transfer U19 -> U6    TX8 Transfer U1 -> IFU
//
// Token bookkeeping (implied by the narrative): the 5 live tokens are split
// IFU:2, U1:2, U13:1; TX1/TX8 move U1's two tokens, TX7 burns the one U2
// bought in TX1, TX4 sells the token U19 mints in TX2.
//
// Reproduction notes, pinned by tests/case_study_test.cpp:
//  * Fig. 5(a) (original order) reproduces exactly: final IFU balance
//    2.5 ETH.
//  * Fig. 5(b)/(c) as *printed* are infeasible under the paper's own Eq. 3:
//    both place TX4 (U19 sells) before TX2 (U19's mint), when U19 owns no
//    token yet. paper_case2_order()/paper_case3_order() expose the literal
//    orders so the infeasibility is testable.
//  * case2_order()/case3_order() are the minimal feasible repairs (TX4 moved
//    after TX2); every IFU-balance and price cell of the paper's tables is
//    unchanged, yielding 2.5(6) and 2.7(3) ETH — the paper's rounded 2.57 and
//    2.74.
//  * The true optimum of the instance is 2.8(3) ETH (buy+mint at the
//    post-burn trough of 1/3 ETH *and* sell after both mints at 0.5 ETH);
//    optimal_order() exposes it and exhaustive search confirms it. The
//    paper's Case 3 is a near-optimal, not optimal, sequence.
#pragma once

#include <vector>

#include "parole/common/ids.hpp"
#include "parole/solvers/problem.hpp"
#include "parole/vm/engine.hpp"
#include "parole/vm/tx.hpp"

namespace parole::data::case_study {

// Participants (paper numbering; the IFU gets an out-of-band id).
inline constexpr UserId kIfu{100};
inline constexpr UserId kU1{1};
inline constexpr UserId kU2{2};
inline constexpr UserId kU3{3};
inline constexpr UserId kU6{6};
inline constexpr UserId kU11{11};
inline constexpr UserId kU13{13};
inline constexpr UserId kU19{19};

// Exact expected balances (gwei).
inline constexpr Amount kInitialIfuBalance = 2'300'000'000;  // 2.3 ETH
inline constexpr Amount kCase1Final = 2'500'000'000;         // 2.5 ETH
inline constexpr Amount kCase2Final = 2'566'666'667;         // paper's "2.57"
inline constexpr Amount kCase3Final = 2'733'333'334;         // paper's "2.74"
inline constexpr Amount kOptimalFinal = 2'833'333'334;       // true optimum

// The L2 state described in Sec. VI-A (5 tokens pre-minted, users funded).
[[nodiscard]] vm::L2State initial_state();

// TX1..TX8 in original order (index i = TX_{i+1}).
[[nodiscard]] std::vector<vm::Tx> original_txs();

// Orders as permutations over original_txs() indices (0-based).
[[nodiscard]] std::vector<std::size_t> case1_order();        // Fig. 5(a)
[[nodiscard]] std::vector<std::size_t> paper_case2_order();  // literal 5(b)
[[nodiscard]] std::vector<std::size_t> paper_case3_order();  // literal 5(c)
[[nodiscard]] std::vector<std::size_t> case2_order();  // feasible repair
[[nodiscard]] std::vector<std::size_t> case3_order();  // feasible repair
[[nodiscard]] std::vector<std::size_t> optimal_order();

// The whole scenario as a ReorderingProblem with the IFU as target.
[[nodiscard]] solvers::ReorderingProblem make_problem();

}  // namespace parole::data::case_study
