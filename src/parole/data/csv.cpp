#include "parole/data/csv.hpp"

#include <cstdio>
#include <sstream>

namespace parole::data {
namespace {

constexpr char kHeader[] =
    "collection_id,chain,band,max_supply,initial_price_gwei,"
    "time,kind,price_gwei,from,to,token";

std::string_view kind_name(vm::TxKind kind) { return vm::to_string(kind); }

Result<vm::TxKind> parse_kind(const std::string& s) {
  if (s == "mint") return vm::TxKind::kMint;
  if (s == "transfer") return vm::TxKind::kTransfer;
  if (s == "burn") return vm::TxKind::kBurn;
  return Error{"bad_kind", "unknown tx kind '" + s + "'"};
}

Result<RollupChain> parse_chain(const std::string& s) {
  if (s == "Optimism") return RollupChain::kOptimism;
  if (s == "Arbitrum") return RollupChain::kArbitrum;
  return Error{"bad_chain", "unknown chain '" + s + "'"};
}

Result<FtBand> parse_band(const std::string& s) {
  if (s == "LFT") return FtBand::kLft;
  if (s == "MFT") return FtBand::kMft;
  if (s == "HFT") return FtBand::kHft;
  return Error{"bad_band", "unknown FT band '" + s + "'"};
}

Result<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return Error{"bad_number", "empty numeric field"};
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Error{"bad_number", "non-digit in numeric field '" + s + "'"};
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::vector<std::string> split_commas(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  out.push_back(std::move(field));
  return out;
}

}  // namespace

std::string snapshot_csv_header() { return kHeader; }

std::string to_csv(const std::vector<CollectionSnapshot>& corpus) {
  std::ostringstream os;
  os << kHeader << '\n';
  for (const auto& snap : corpus) {
    for (const auto& e : snap.events) {
      os << snap.id.value() << ',' << to_string(snap.chain) << ','
         << to_string(snap.band) << ',' << snap.max_supply << ','
         << snap.initial_price << ',' << e.time << ',' << kind_name(e.kind)
         << ',' << e.price << ',' << e.from.value() << ',' << e.to.value()
         << ',' << e.token.value() << '\n';
    }
  }
  return os.str();
}

Result<std::vector<CollectionSnapshot>> from_csv(const std::string& text) {
  std::vector<CollectionSnapshot> corpus;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    if (line_no == 1 && line.rfind("collection_id,", 0) == 0) continue;

    const auto fields = split_commas(line);
    if (fields.size() != 11) {
      return Error{"bad_row", "line " + std::to_string(line_no) + ": " +
                                  std::to_string(fields.size()) +
                                  " fields, expected 11"};
    }
    auto fail = [&line_no](const Error& e) {
      return Error{e.code, "line " + std::to_string(line_no) + ": " + e.detail};
    };

    const auto id = parse_u64(fields[0]);
    if (!id.ok()) return fail(id.error());
    const auto chain = parse_chain(fields[1]);
    if (!chain.ok()) return fail(chain.error());
    const auto band = parse_band(fields[2]);
    if (!band.ok()) return fail(band.error());
    const auto max_supply = parse_u64(fields[3]);
    if (!max_supply.ok()) return fail(max_supply.error());
    const auto initial_price = parse_u64(fields[4]);
    if (!initial_price.ok()) return fail(initial_price.error());
    const auto time = parse_u64(fields[5]);
    if (!time.ok()) return fail(time.error());
    const auto kind = parse_kind(fields[6]);
    if (!kind.ok()) return fail(kind.error());
    const auto price = parse_u64(fields[7]);
    if (!price.ok()) return fail(price.error());
    const auto from = parse_u64(fields[8]);
    if (!from.ok()) return fail(from.error());
    const auto to = parse_u64(fields[9]);
    if (!to.ok()) return fail(to.error());
    const auto token = parse_u64(fields[10]);
    if (!token.ok()) return fail(token.error());

    const CollectionId collection{static_cast<std::uint32_t>(id.value())};
    if (corpus.empty() || corpus.back().id != collection) {
      CollectionSnapshot snap;
      snap.id = collection;
      snap.chain = chain.value();
      snap.band = band.value();
      snap.contract =
          crypto::Address::from_id("collection", collection.value());
      snap.max_supply = static_cast<std::uint32_t>(max_supply.value());
      snap.initial_price = static_cast<Amount>(initial_price.value());
      corpus.push_back(std::move(snap));
    }

    SnapshotEvent event;
    event.time = time.value();
    event.kind = kind.value();
    event.price = static_cast<Amount>(price.value());
    event.from = UserId{static_cast<std::uint32_t>(from.value())};
    event.to = UserId{static_cast<std::uint32_t>(to.value())};
    event.token = TokenId{static_cast<std::uint32_t>(token.value())};
    corpus.back().events.push_back(event);
  }
  return corpus;
}

Status save_csv(const std::vector<CollectionSnapshot>& corpus,
                const std::string& path) {
  const std::string text = to_csv(corpus);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Error{"io_error", "cannot open " + path + " for writing"};
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  if (written != text.size()) {
    return Error{"io_error", "short write to " + path};
  }
  return ok_status();
}

Result<std::vector<CollectionSnapshot>> load_csv(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Error{"io_error", "cannot open " + path + " for reading"};
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::string text(static_cast<std::size_t>(size), '\0');
  const std::size_t read = std::fread(text.data(), 1, text.size(), file);
  std::fclose(file);
  if (read != text.size()) {
    return Error{"io_error", "short read from " + path};
  }
  return from_csv(text);
}

}  // namespace parole::data
