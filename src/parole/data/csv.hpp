// CSV import/export for the snapshot substrate.
//
// The paper's Fig. 10 analysis consumed NFT snapshots collected from
// holders.at; anyone re-running this reproduction with *real* snapshot data
// needs a wire format. One CSV row per event:
//
//   collection_id,chain,band,max_supply,initial_price_gwei,
//   time,kind,price_gwei,from,to,token
//
// (collection metadata is repeated per row so a file is self-contained and
// trivially filterable with standard tools). Export and import round-trip
// exactly; import validates enums and numeric fields and fails with row
// context instead of guessing.
#pragma once

#include <string>
#include <vector>

#include "parole/common/result.hpp"
#include "parole/data/snapshot.hpp"

namespace parole::data {

// Header line (without trailing newline).
[[nodiscard]] std::string snapshot_csv_header();

// Serialize a corpus (any mix of collections) to CSV text.
[[nodiscard]] std::string to_csv(
    const std::vector<CollectionSnapshot>& corpus);

// Parse CSV text (with or without the header row) back into collections.
// Events of one collection must be contiguous; rows are validated.
[[nodiscard]] Result<std::vector<CollectionSnapshot>> from_csv(
    const std::string& text);

// File convenience wrappers.
Status save_csv(const std::vector<CollectionSnapshot>& corpus,
                const std::string& path);
[[nodiscard]] Result<std::vector<CollectionSnapshot>> load_csv(
    const std::string& path);

}  // namespace parole::data
