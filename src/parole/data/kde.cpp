#include "parole/data/kde.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parole/common/stats.hpp"

namespace parole::data {
namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
}

Kde::Kde(std::vector<double> samples, double bandwidth)
    : samples_(std::move(samples)) {
  assert(!samples_.empty());
  if (bandwidth > 0.0) {
    bandwidth_ = bandwidth;
  } else {
    // Silverman: h = 0.9 * min(sigma, IQR/1.34) * n^(-1/5).
    const double sigma = stddev_of(samples_);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double q1 = percentile(sorted, 25.0);
    const double q3 = percentile(sorted, 75.0);
    const double iqr = (q3 - q1) / 1.34;
    double spread = sigma;
    if (iqr > 0.0) spread = std::min(spread, iqr);
    if (spread <= 0.0) spread = 1.0;  // degenerate sample
    bandwidth_ = 0.9 * spread *
                 std::pow(static_cast<double>(samples_.size()), -0.2);
    if (bandwidth_ <= 0.0) bandwidth_ = 1.0;
  }
}

double Kde::density(double x) const {
  double total = 0.0;
  for (double s : samples_) {
    const double z = (x - s) / bandwidth_;
    total += std::exp(-0.5 * z * z);
  }
  return total * kInvSqrt2Pi /
         (bandwidth_ * static_cast<double>(samples_.size()));
}

std::vector<std::pair<double, double>> Kde::grid(double lo, double hi,
                                                 std::size_t points) const {
  assert(points >= 2);
  assert(hi > lo);
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    out.emplace_back(x, density(x));
  }
  return out;
}

double Kde::mode(double lo, double hi, std::size_t points) const {
  const auto g = grid(lo, hi, points);
  double best_x = g.front().first;
  double best_density = g.front().second;
  for (const auto& [x, d] : g) {
    if (d > best_density) {
      best_density = d;
      best_x = x;
    }
  }
  return best_x;
}

}  // namespace parole::data
