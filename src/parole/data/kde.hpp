// Gaussian kernel density estimation (Fig. 9 plots KDE curves of solution
// sizes). Bandwidth defaults to Silverman's rule of thumb.
#pragma once

#include <cstddef>
#include <vector>

namespace parole::data {

class Kde {
 public:
  // `samples` must be non-empty. bandwidth <= 0 selects Silverman's rule.
  explicit Kde(std::vector<double> samples, double bandwidth = 0.0);

  [[nodiscard]] double density(double x) const;
  [[nodiscard]] double bandwidth() const { return bandwidth_; }

  // Evaluate on a uniform grid of `points` values across [lo, hi].
  [[nodiscard]] std::vector<std::pair<double, double>> grid(
      double lo, double hi, std::size_t points) const;

  // Location of the highest-density grid point (the mode Fig. 9 discusses).
  [[nodiscard]] double mode(double lo, double hi,
                            std::size_t points = 256) const;

 private:
  std::vector<double> samples_;
  double bandwidth_{1.0};
};

}  // namespace parole::data
