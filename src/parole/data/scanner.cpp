#include "parole/data/scanner.hpp"

#include <algorithm>
#include <unordered_set>

namespace parole::data {

CollectionReport SnapshotScanner::scan(const CollectionSnapshot& snap) const {
  CollectionReport report;
  report.id = snap.id;
  report.chain = snap.chain;
  report.band = snap.band;

  if (snap.events.size() < config_.window) return report;

  for (std::size_t start = 0; start + config_.window <= snap.events.size();
       start += config_.window) {
    ++report.windows_scanned;

    Amount min_price = snap.events[start].price;
    Amount max_price = min_price;
    std::unordered_set<TokenId> tokens;
    for (std::size_t i = start; i < start + config_.window; ++i) {
      const SnapshotEvent& e = snap.events[i];
      min_price = std::min(min_price, e.price);
      max_price = std::max(max_price, e.price);
      if (e.kind == vm::TxKind::kTransfer) tokens.insert(e.token);
    }

    const Amount spread = max_price - min_price;
    if (spread <= 0 || tokens.empty()) continue;
    if (static_cast<double>(spread) <
        config_.min_spread_fraction * static_cast<double>(min_price)) {
      continue;  // immaterial: the spread would not survive fees
    }

    WindowOpportunity opp;
    opp.start_event = start;
    opp.min_price = min_price;
    opp.max_price = max_price;
    opp.tradable_tokens = tokens.size();
    opp.profit = static_cast<Amount>(
        static_cast<double>(spread) * static_cast<double>(tokens.size()) *
        config_.capture_rate);
    if (opp.profit <= 0) continue;

    ++report.windows_with_opportunity;
    report.total_profit += opp.profit;
    report.opportunities.push_back(opp);
  }
  return report;
}

std::vector<CellSummary> SnapshotScanner::summarize(
    const std::vector<CollectionSnapshot>& corpus) const {
  std::vector<CellSummary> cells;
  for (RollupChain chain :
       {RollupChain::kOptimism, RollupChain::kArbitrum}) {
    for (FtBand band : {FtBand::kLft, FtBand::kMft, FtBand::kHft}) {
      CellSummary cell;
      cell.chain = chain;
      cell.band = band;
      std::size_t windows = 0;
      std::size_t hits = 0;
      for (const auto& snap : corpus) {
        if (snap.chain != chain || snap.band != band) continue;
        const CollectionReport report = scan(snap);
        ++cell.collections;
        cell.total_profit += report.total_profit;
        windows += report.windows_scanned;
        hits += report.windows_with_opportunity;
      }
      if (cell.collections > 0) {
        cell.mean_profit_per_collection =
            static_cast<double>(cell.total_profit) /
            static_cast<double>(cell.collections);
      }
      if (windows > 0) {
        cell.opportunity_rate =
            static_cast<double>(hits) / static_cast<double>(windows);
      }
      cells.push_back(cell);
    }
  }
  return cells;
}

}  // namespace parole::data
