// Snapshot arbitrage scanner (Sec. VII-E).
//
// "We searched for instances where the same NFT was priced differently at
// different times and looked for arbitrage opportunities among the
// transactions." The scanner walks each collection's event history with a
// sliding window (one aggregator batch's worth of events), finds windows
// where the same token trades at different prices, and values the
// re-ordering opportunity as the profit a PAROLE-style attacker could take
// inside that window: buy at the window minimum, sell at the window maximum,
// per tradable token, discounted by the empirical capture rate observed in
// the simulation experiments (Fig. 6/7) — "we calculate the total profit
// opportunity by deriving the relation we obtained through our
// simulation-based experiments".
#pragma once

#include <cstdint>
#include <vector>

#include "parole/data/snapshot.hpp"

namespace parole::data {

struct ScanConfig {
  // Sliding window length in events (an aggregator batch's worth).
  std::size_t window = 10;
  // Fraction of the ideal min->max spread a real attack captures; calibrated
  // from the campaign experiments (core::AttackCampaign).
  double capture_rate = 0.35;
  // A window only counts as an opportunity when its spread exceeds this
  // fraction of the window-minimum price (materiality: tiny spreads are
  // eaten by fees).
  double min_spread_fraction = 0.20;
};

struct WindowOpportunity {
  std::size_t start_event{0};
  Amount min_price{0};
  Amount max_price{0};
  std::size_t tradable_tokens{0};
  Amount profit{0};
};

struct CollectionReport {
  CollectionId id{};
  RollupChain chain{RollupChain::kOptimism};
  FtBand band{FtBand::kLft};
  std::size_t windows_scanned{0};
  std::size_t windows_with_opportunity{0};
  Amount total_profit{0};
  std::vector<WindowOpportunity> opportunities;
};

// Aggregate over many collections of the same (chain, band) cell — the
// Fig. 10 bars.
struct CellSummary {
  RollupChain chain{RollupChain::kOptimism};
  FtBand band{FtBand::kLft};
  std::size_t collections{0};
  Amount total_profit{0};
  double mean_profit_per_collection{0.0};
  double opportunity_rate{0.0};  // share of windows with an opportunity
};

class SnapshotScanner {
 public:
  explicit SnapshotScanner(ScanConfig config = {}) : config_(config) {}

  [[nodiscard]] CollectionReport scan(const CollectionSnapshot& snap) const;

  [[nodiscard]] std::vector<CellSummary> summarize(
      const std::vector<CollectionSnapshot>& corpus) const;

 private:
  ScanConfig config_;
};

}  // namespace parole::data
