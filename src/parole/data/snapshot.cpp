#include "parole/data/snapshot.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parole/token/price_curve.hpp"

namespace parole::data {

std::string_view to_string(RollupChain chain) {
  switch (chain) {
    case RollupChain::kOptimism:
      return "Optimism";
    case RollupChain::kArbitrum:
      return "Arbitrum";
  }
  return "unknown";
}

std::string_view to_string(FtBand band) {
  switch (band) {
    case FtBand::kLft:
      return "LFT";
    case FtBand::kMft:
      return "MFT";
    case FtBand::kHft:
      return "HFT";
  }
  return "unknown";
}

std::size_t CollectionSnapshot::ownership_count() const {
  std::size_t count = 0;
  for (const auto& e : events) {
    if (e.kind == vm::TxKind::kTransfer) ++count;
  }
  return count;
}

namespace {
std::uint32_t max_supply_floor(std::uint32_t max_supply) {
  return std::max<std::uint32_t>(1, max_supply / 4);
}
}  // namespace

SnapshotGenerator::SnapshotGenerator(SnapshotConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

CollectionSnapshot SnapshotGenerator::generate(RollupChain chain,
                                               FtBand band) {
  return generate_with(chain, band, rng_);
}

CollectionSnapshot SnapshotGenerator::generate_with(RollupChain chain,
                                                    FtBand band, Rng& rng) {
  CollectionSnapshot snap;
  snap.id = CollectionId{next_collection_++};
  snap.chain = chain;
  snap.band = band;
  snap.contract = crypto::Address::from_id("collection", snap.id.value());
  snap.max_supply = static_cast<std::uint32_t>(
      rng.uniform_int(config_.supply_min, config_.supply_max));
  snap.initial_price =
      rng.uniform_int(config_.initial_price_min, config_.initial_price_max);

  std::size_t lo = 0, hi = 0;
  switch (band) {
    case FtBand::kLft:
      lo = config_.lft_min;
      hi = config_.lft_max;
      break;
    case FtBand::kMft:
      lo = config_.mft_min;
      hi = config_.mft_max;
      break;
    case FtBand::kHft:
      lo = config_.hft_min;
      hi = config_.hft_max;
      break;
  }
  const auto event_count = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(lo),
                       static_cast<std::int64_t>(hi)));

  const double volatility = chain == RollupChain::kArbitrum
                                ? config_.arbitrum_volatility
                                : config_.optimism_volatility;

  const token::PriceCurve curve(snap.max_supply, snap.initial_price);
  std::uint32_t remaining = snap.max_supply;
  std::uint32_t next_token = 0;
  std::vector<std::pair<TokenId, UserId>> owners;
  std::uint64_t time = 0;
  std::uint32_t next_user = 0;

  snap.events.reserve(event_count);
  while (snap.events.size() < event_count) {
    time += static_cast<std::uint64_t>(rng.uniform_int(30, 3'600));

    // Curve price + chain-specific market noise (never below 10% of curve).
    const Amount curve_price = curve.price(remaining);
    const double noisy = static_cast<double>(curve_price) *
                         (1.0 + volatility * rng.normal());
    const Amount price = std::max<Amount>(
        static_cast<Amount>(noisy), curve_price / 10);

    SnapshotEvent event;
    event.time = time;
    event.price = price;

    const double roll = rng.uniform();
    // Mints stop once scarcity hits 25% remaining: live collections keep a
    // float of unminted supply, and this keeps the curve price within ~4x of
    // P0 so the window spreads are dominated by market volatility (the
    // chain-dependent signal) rather than curve blow-up.
    const bool mintable = remaining > max_supply_floor(snap.max_supply);
    if ((roll < 0.25 && mintable) || owners.empty()) {
      if (remaining == 0) break;  // fully minted and nothing owned: done
      event.kind = vm::TxKind::kMint;
      event.to = UserId{next_user++};
      event.token = TokenId{next_token++};
      owners.emplace_back(event.token, event.to);
      --remaining;
    } else if (roll < 0.92 || owners.size() < 2) {
      event.kind = vm::TxKind::kTransfer;
      auto& [token, owner] = owners[rng.index(owners.size())];
      event.token = token;
      event.from = owner;
      // Mostly fresh buyers (market growth), sometimes an existing holder.
      event.to = rng.chance(0.7) || owners.size() < 2
                     ? UserId{next_user++}
                     : owners[rng.index(owners.size())].second;
      owner = event.to;
    } else {
      event.kind = vm::TxKind::kBurn;
      const std::size_t pick = rng.index(owners.size());
      event.token = owners[pick].first;
      event.from = owners[pick].second;
      owners.erase(owners.begin() + static_cast<std::ptrdiff_t>(pick));
      ++remaining;
    }
    snap.events.push_back(event);
  }
  return snap;
}

std::vector<CollectionSnapshot> SnapshotGenerator::generate_corpus(
    std::size_t per_cell) {
  std::vector<CollectionSnapshot> out;
  out.reserve(per_cell * 6);
  for (FtBand band : {FtBand::kLft, FtBand::kMft, FtBand::kHft}) {
    for (std::size_t i = 0; i < per_cell; ++i) {
      // Pair the chains: identical parameter and event randomness, so the
      // volatility difference is the only cross-chain variable.
      const std::uint64_t pair_seed = rng_.next();
      for (RollupChain chain :
           {RollupChain::kOptimism, RollupChain::kArbitrum}) {
        Rng paired(pair_seed);
        out.push_back(generate_with(chain, band, paired));
      }
    }
  }
  return out;
}

}  // namespace parole::data
