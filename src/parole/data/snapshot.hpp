// Synthetic NFT-snapshot substrate (Sec. VII-E / Fig. 10).
//
// The paper inspects historical snapshots of NFT collections deployed via
// the Optimism and Arbitrum optimistic rollups (wallet / minting-contract
// lookups on holders.at), splits them into transaction-frequency bands —
// LFT (<100 ownerships), MFT (101-3000), HFT (>3000) — and estimates the
// arbitrage opportunity in each. We do not have holders.at; this module
// synthesizes statistically matched collection histories instead:
// scarcity-curve pricing (Eq. 10) plus chain-specific market noise, with
// Arbitrum collections exhibiting higher volatility than Optimism ones
// (the property behind the paper's "higher arbitrage opportunity with the
// NFTs deployed via the Arbitrum chain" observation). See DESIGN.md
// substitutions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parole/common/amount.hpp"
#include "parole/common/ids.hpp"
#include "parole/common/rng.hpp"
#include "parole/crypto/hash.hpp"
#include "parole/vm/tx.hpp"

namespace parole::data {

enum class RollupChain : std::uint8_t { kOptimism, kArbitrum };
enum class FtBand : std::uint8_t { kLft, kMft, kHft };

[[nodiscard]] std::string_view to_string(RollupChain chain);
[[nodiscard]] std::string_view to_string(FtBand band);

// One ownership-changing event in a collection's history.
struct SnapshotEvent {
  std::uint64_t time{0};
  vm::TxKind kind{vm::TxKind::kTransfer};
  Amount price{0};  // observed market price at the event
  UserId from{};
  UserId to{};
  TokenId token{};
};

struct CollectionSnapshot {
  CollectionId id{};
  RollupChain chain{RollupChain::kOptimism};
  FtBand band{FtBand::kLft};
  crypto::Address contract;
  std::uint32_t max_supply{0};
  Amount initial_price{0};
  std::vector<SnapshotEvent> events;

  // Number of ownership transfers — the paper's FT measure.
  [[nodiscard]] std::size_t ownership_count() const;
};

struct SnapshotConfig {
  // Event counts drawn uniformly inside each band.
  std::size_t lft_min = 30, lft_max = 99;
  std::size_t mft_min = 101, mft_max = 3'000;
  std::size_t hft_min = 3'001, hft_max = 6'000;
  // Market-noise stddev as a fraction of the curve price, per chain.
  double optimism_volatility = 0.05;
  double arbitrum_volatility = 0.12;
  Amount initial_price_min = eth(0, 50);   // 0.05 ETH
  Amount initial_price_max = eth(0, 500);  // 0.5 ETH
  std::uint32_t supply_min = 10;
  std::uint32_t supply_max = 500;
};

class SnapshotGenerator {
 public:
  SnapshotGenerator(SnapshotConfig config, std::uint64_t seed);

  // One synthetic collection of the requested band on the requested chain.
  [[nodiscard]] CollectionSnapshot generate(RollupChain chain, FtBand band);

  // A corpus of `per_cell` collections for every (chain, band) pair. The
  // corpus is *paired*: collection i of a band shares its parameters and
  // event randomness across both chains, so the only cross-chain difference
  // is the volatility — making the Fig. 10 Optimism/Arbitrum comparison a
  // controlled one.
  [[nodiscard]] std::vector<CollectionSnapshot> generate_corpus(
      std::size_t per_cell);

 private:
  CollectionSnapshot generate_with(RollupChain chain, FtBand band, Rng& rng);

  SnapshotConfig config_;
  Rng rng_;
  std::uint32_t next_collection_{0};
};

}  // namespace parole::data
