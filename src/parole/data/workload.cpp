#include "parole/data/workload.hpp"

#include <algorithm>
#include <cassert>

namespace parole::data {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      state_(config.max_supply, config.initial_price),
      engine_(vm::ExecConfig{vm::InvalidTxPolicy::kSkipInvalid,
                             /*charge_fees=*/false, vm::GasSchedule{}}) {
  assert(config_.num_users >= 2);
  assert(config_.premint <= config_.max_supply);

  for (std::size_t u = 0; u < config_.num_users; ++u) {
    const Amount funding =
        rng_.uniform_int(config_.min_funding, config_.max_funding);
    state_.ledger().credit(UserId{static_cast<std::uint32_t>(u)}, funding);
  }
  // Distribute the pre-minted tokens across random users for free (they are
  // prior history, not part of the measured workload).
  for (std::uint32_t i = 0; i < config_.premint; ++i) {
    const auto minted = state_.nft().mint(pick_user());
    assert(minted.ok());
    (void)minted;
  }
}

std::vector<UserId> WorkloadGenerator::users() const {
  std::vector<UserId> out;
  out.reserve(config_.num_users);
  for (std::size_t u = 0; u < config_.num_users; ++u) {
    out.push_back(UserId{static_cast<std::uint32_t>(u)});
  }
  return out;
}

UserId WorkloadGenerator::pick_user() {
  const std::size_t rank = rng_.zipf(config_.num_users, config_.activity_skew);
  return UserId{static_cast<std::uint32_t>(rank)};
}

Amount WorkloadGenerator::random_fee(Amount lo, Amount hi) {
  return rng_.uniform_int(lo, hi);
}

bool WorkloadGenerator::try_mint(vm::Tx& out) {
  if (state_.nft().remaining_supply() == 0) return false;
  const Amount price = state_.nft().current_price();
  // Find a funded minter, biased by activity.
  for (int attempt = 0; attempt < 8; ++attempt) {
    const UserId user = pick_user();
    if (state_.ledger().balance(user) >= price) {
      // Explicit token id from the shadow state so later transfers/burns of
      // this token stay well-defined however the aggregator orders the batch.
      const TokenId token{state_.nft().minted_total()};
      out = vm::Tx::make_mint(
          TxId{next_tx_id_}, user,
          random_fee(config_.base_fee_min, config_.base_fee_max),
          random_fee(config_.priority_fee_min, config_.priority_fee_max),
          token);
      return true;
    }
  }
  return false;
}

bool WorkloadGenerator::try_transfer(vm::Tx& out) {
  const auto owners = state_.nft().sorted_owners();
  if (owners.empty()) return false;
  const Amount price = state_.nft().current_price();
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto& [token, seller] = owners[rng_.index(owners.size())];
    const UserId buyer = pick_user();
    if (buyer == seller) continue;
    if (state_.ledger().balance(buyer) < price) continue;
    out = vm::Tx::make_transfer(
        TxId{next_tx_id_}, seller, buyer, token,
        random_fee(config_.base_fee_min, config_.base_fee_max),
        random_fee(config_.priority_fee_min, config_.priority_fee_max));
    return true;
  }
  return false;
}

bool WorkloadGenerator::try_burn(vm::Tx& out) {
  const auto owners = state_.nft().sorted_owners();
  if (owners.empty()) return false;
  const auto& [token, owner] = owners[rng_.index(owners.size())];
  out = vm::Tx::make_burn(
      TxId{next_tx_id_}, owner, token,
      random_fee(config_.base_fee_min, config_.base_fee_max),
      random_fee(config_.priority_fee_min, config_.priority_fee_max));
  return true;
}

std::vector<vm::Tx> WorkloadGenerator::generate(std::size_t count) {
  const double total_weight =
      config_.mint_weight + config_.transfer_weight + config_.burn_weight;
  assert(total_weight > 0.0);

  std::vector<vm::Tx> out;
  out.reserve(count);

  while (out.size() < count) {
    const double roll = rng_.uniform() * total_weight;
    vm::Tx tx;
    bool made = false;
    if (roll < config_.mint_weight) {
      made = try_mint(tx) || try_transfer(tx) || try_burn(tx);
    } else if (roll < config_.mint_weight + config_.transfer_weight) {
      made = try_transfer(tx) || try_mint(tx) || try_burn(tx);
    } else {
      made = try_burn(tx) || try_transfer(tx) || try_mint(tx);
    }
    if (!made) {
      // Market wedged (nobody funded, nothing owned): top a user up so the
      // stream keeps flowing — models fresh deposits arriving.
      state_.ledger().credit(pick_user(), config_.max_funding);
      continue;
    }
    ++next_tx_id_;
    // Advance the shadow state so the *next* tx is feasible given this one.
    (void)engine_.execute_tx(state_, tx);
    out.push_back(std::move(tx));
  }
  return out;
}

std::vector<UserId> WorkloadGenerator::pick_ifus(std::size_t k) {
  // Colluding users come in two flavours with *opposing* price interests:
  // holders (who profit when their tokens appreciate and their sells land
  // high) and cash-rich buyers (who profit when their buys/mints land low).
  // Alternating between the two rankings models the paper's observation
  // that "very few alternate orders could increase the final balance for
  // multiple IFUs" — a single order cannot serve both sides well, so the
  // average per-IFU profit falls as more IFUs are served.
  std::vector<UserId> holders = users();
  std::sort(holders.begin(), holders.end(), [this](UserId a, UserId b) {
    const auto ha = state_.nft().balance_of(a);
    const auto hb = state_.nft().balance_of(b);
    if (ha != hb) return ha > hb;
    return state_.ledger().balance(a) > state_.ledger().balance(b);
  });
  std::vector<UserId> buyers = users();
  std::sort(buyers.begin(), buyers.end(), [this](UserId a, UserId b) {
    const auto ha = state_.nft().balance_of(a);
    const auto hb = state_.nft().balance_of(b);
    if (ha != hb) return ha < hb;  // fewest tokens first
    return state_.ledger().balance(a) > state_.ledger().balance(b);
  });

  std::vector<UserId> out;
  std::size_t hi = 0, bi = 0;
  while (out.size() < k && out.size() < config_.num_users) {
    auto take_from = [&out](std::vector<UserId>& ranked, std::size_t& index) {
      while (index < ranked.size()) {
        const UserId candidate = ranked[index++];
        if (std::find(out.begin(), out.end(), candidate) == out.end()) {
          out.push_back(candidate);
          return;
        }
      }
    };
    if (out.size() % 2 == 0) {
      take_from(holders, hi);
    } else {
      take_from(buyers, bi);
    }
  }
  return out;
}

}  // namespace parole::data
