// Synthetic NFT-market workload generator.
//
// Drives the Figs. 6/7 campaign sweeps: a population of rollup users trading
// one limited-edition collection. The generator keeps a shadow L2 state so
// each generated transaction is feasible at generation time (mints pick
// funded users while supply remains, transfers pick real owners and funded
// buyers, burns pick owners); fees are drawn independently, so the
// fee-priority *collection* order can still reorder them — exactly the
// situation an aggregator faces.
#pragma once

#include <cstdint>
#include <vector>

#include "parole/common/amount.hpp"
#include "parole/common/rng.hpp"
#include "parole/vm/engine.hpp"
#include "parole/vm/tx.hpp"

namespace parole::data {

struct WorkloadConfig {
  std::size_t num_users = 20;
  Amount min_funding = eth(1);
  Amount max_funding = eth(4);
  // Transaction mix (normalized internally).
  double mint_weight = 0.30;
  double transfer_weight = 0.50;
  double burn_weight = 0.20;
  // Fee ranges (gwei).
  Amount base_fee_min = gwei(50);
  Amount base_fee_max = gwei(200);
  Amount priority_fee_min = gwei(0);
  Amount priority_fee_max = gwei(500);
  // Collection parameters.
  std::uint32_t max_supply = 40;
  Amount initial_price = eth(0, 200);  // 0.2 ETH
  std::uint32_t premint = 10;          // seeded before the workload starts
  // Zipf exponent of user activity (0 = uniform).
  double activity_skew = 0.8;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, std::uint64_t seed);

  // The initial L2 state: all users funded, `premint` tokens distributed.
  [[nodiscard]] const vm::L2State& initial_state() const { return state_; }

  [[nodiscard]] std::vector<UserId> users() const;

  // Generate `count` transactions, advancing the shadow state.
  std::vector<vm::Tx> generate(std::size_t count);

  // Pick `k` distinct IFUs that hold at least one token and some balance —
  // the colluding users an adversarial aggregator would serve.
  [[nodiscard]] std::vector<UserId> pick_ifus(std::size_t k);

 private:
  [[nodiscard]] UserId pick_user();
  [[nodiscard]] Amount random_fee(Amount lo, Amount hi);
  bool try_mint(vm::Tx& out);
  bool try_transfer(vm::Tx& out);
  bool try_burn(vm::Tx& out);

  WorkloadConfig config_;
  Rng rng_;
  vm::L2State state_;       // shadow state, advanced as txs are generated
  vm::ExecutionEngine engine_;
  std::uint64_t next_tx_id_{0};
};

}  // namespace parole::data
