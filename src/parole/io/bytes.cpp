#include "parole/io/bytes.hpp"

#include <cstring>

namespace parole::io {

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::blob(std::span<const std::uint8_t> bytes) {
  u64(bytes.size());
  raw(bytes);
}

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

bool ByteReader::u8(std::uint8_t& v) {
  if (failed_ || pos_ + 1 > in_.size()) {
    failed_ = true;
    return false;
  }
  v = in_[pos_++];
  return true;
}

bool ByteReader::u32(std::uint32_t& v) {
  if (failed_ || in_.size() - pos_ < 4) {
    failed_ = true;
    return false;
  }
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(in_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  v = out;
  return true;
}

bool ByteReader::u64(std::uint64_t& v) {
  if (failed_ || in_.size() - pos_ < 8) {
    failed_ = true;
    return false;
  }
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(in_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  v = out;
  return true;
}

bool ByteReader::i64(std::int64_t& v) {
  std::uint64_t raw = 0;
  if (!u64(raw)) return false;
  v = static_cast<std::int64_t>(raw);
  return true;
}

bool ByteReader::f64(double& v) {
  std::uint64_t bits = 0;
  if (!u64(bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool ByteReader::boolean(bool& v) {
  std::uint8_t raw = 0;
  if (!u8(raw)) return false;
  // Anything but 0/1 is corruption, not a bool.
  if (raw > 1) {
    failed_ = true;
    return false;
  }
  v = raw == 1;
  return true;
}

bool ByteReader::raw(std::span<std::uint8_t> out) {
  if (failed_ || in_.size() - pos_ < out.size()) {
    failed_ = true;
    return false;
  }
  std::memcpy(out.data(), in_.data() + pos_, out.size());
  pos_ += out.size();
  return true;
}

bool ByteReader::blob(std::vector<std::uint8_t>& out) {
  std::uint64_t len = 0;
  if (!length(len, 1)) return false;
  out.assign(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
             in_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return true;
}

bool ByteReader::str(std::string& out) {
  std::uint64_t len = 0;
  if (!length(len, 1)) return false;
  out.assign(reinterpret_cast<const char*>(in_.data() + pos_),
             static_cast<std::size_t>(len));
  pos_ += len;
  return true;
}

bool ByteReader::length(std::uint64_t& count, std::size_t element_size) {
  std::uint64_t declared = 0;
  if (!u64(declared)) return false;
  // Overflow-checked: a declared count that could not possibly fit in the
  // remaining bytes is rejected before anyone allocates for it.
  const std::uint64_t left = remaining();
  if (element_size == 0 || declared > left / element_size) {
    failed_ = true;
    return false;
  }
  count = declared;
  return true;
}

Status ByteReader::finish(const std::string& what) const {
  if (failed_) {
    return Error{"corrupt_checkpoint", what + ": truncated or malformed"};
  }
  if (!exhausted()) {
    return Error{"corrupt_checkpoint",
                 what + ": " + std::to_string(remaining()) +
                     " trailing bytes"};
  }
  return ok_status();
}

Error read_error(const std::string& what) {
  return Error{"corrupt_checkpoint", what + ": truncated or malformed"};
}

}  // namespace parole::io
