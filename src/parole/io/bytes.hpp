// Bounds-checked binary codec for durable state (DESIGN.md §10).
//
// Every persistent structure in the repo serializes through this pair. The
// writer is append-only little-endian; the reader treats its input as hostile
// bytes: every primitive read is bounds-checked against the buffer, every
// length prefix is validated against the *remaining* bytes before anything is
// allocated, and a failed read poisons the reader so later reads cannot
// silently consume garbage after a short field. Loaders built on top can
// therefore follow one rule — validate everything, then mutate — and a
// truncated or bit-flipped checkpoint always surfaces as a typed Status
// error, never as a crash or a partially mutated object.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "parole/common/result.hpp"

namespace parole::io {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  // Raw bytes, no length prefix.
  void raw(std::span<const std::uint8_t> bytes);
  // u64 length prefix + bytes.
  void blob(std::span<const std::uint8_t> bytes);
  void str(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const {
    return out_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }
  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t> out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : in_(bytes) {}

  // Each read returns false (and sets the failed flag) when the buffer is
  // exhausted; the value is untouched on failure.
  [[nodiscard]] bool u8(std::uint8_t& v);
  [[nodiscard]] bool u32(std::uint32_t& v);
  [[nodiscard]] bool u64(std::uint64_t& v);
  [[nodiscard]] bool i64(std::int64_t& v);
  [[nodiscard]] bool f64(double& v);
  [[nodiscard]] bool boolean(bool& v);

  // Raw bytes, no length prefix.
  [[nodiscard]] bool raw(std::span<std::uint8_t> out);
  // u64 length prefix + bytes; the declared length is checked against the
  // remaining input *before* any allocation, so a hostile 2^60 prefix fails
  // cleanly instead of driving a giant resize.
  [[nodiscard]] bool blob(std::vector<std::uint8_t>& out);
  [[nodiscard]] bool str(std::string& out);

  // Length prefix for a sequence of fixed-size elements: validates
  // `count * element_size <= remaining` (overflow-checked) before returning.
  [[nodiscard]] bool length(std::uint64_t& count, std::size_t element_size);

  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == in_.size(); }
  [[nodiscard]] bool failed() const { return failed_; }

  // Standard epilogue for loaders: ok iff no read failed and the payload was
  // consumed exactly (trailing garbage is as suspicious as truncation).
  [[nodiscard]] Status finish(const std::string& what) const;

 private:
  std::span<const std::uint8_t> in_;
  std::size_t pos_{0};
  bool failed_{false};
};

// One-line guard used by loaders: `if (Status s = ...; !s.ok()) return s;`
// reads better as PAROLE_IO_READ(reader.u64(x), "field") when chained a dozen
// times. Returns a plain Error so the macro works in any function returning
// Status or Result<T>.
[[nodiscard]] Error read_error(const std::string& what);

}  // namespace parole::io

#define PAROLE_IO_READ(expr, what)                         \
  do {                                                     \
    if (!(expr)) return ::parole::io::read_error(what);    \
  } while (0)
