#include "parole/io/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "parole/io/crc32.hpp"

namespace parole::io {
namespace {

Error io_error(const std::string& what) {
  return Error{"io_error", what + ": " + std::strerror(errno)};
}

}  // namespace

ByteWriter& CheckpointBuilder::section(std::uint32_t tag) {
  sections_.push_back(std::make_unique<Section>(Section{tag, ByteWriter{}}));
  return sections_.back()->writer;
}

void CheckpointBuilder::set_meta(const obs::JsonObject& meta) {
  const std::string text = obs::JsonValue{meta}.dump();
  section(kMetaTag).str(text);
}

std::vector<std::uint8_t> CheckpointBuilder::finish() const {
  ByteWriter out;
  out.u32(kCheckpointMagic);
  out.u32(kCheckpointFormatVersion);
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  out.u32(crc32(out.buffer()));
  for (const auto& section : sections_) {
    const auto& payload = section->writer.buffer();
    out.u32(section->tag);
    out.u64(payload.size());
    out.u32(crc32(payload));
    out.raw(payload);
  }
  out.u32(crc32(out.buffer()));
  return out.take();
}

Result<Checkpoint> Checkpoint::parse(std::span<const std::uint8_t> bytes) {
  // The trailing file CRC covers everything before it; check it first so a
  // torn tail is caught even when the damage is inside a payload we would
  // otherwise accept (CRC32 can collide per-section in a long sweep, the
  // double cover makes that astronomically unlikely).
  if (bytes.size() < 20) {
    return Error{"corrupt_checkpoint", "container shorter than header"};
  }
  ByteReader trailer(bytes.subspan(bytes.size() - 4));
  std::uint32_t file_crc = 0;
  PAROLE_IO_READ(trailer.u32(file_crc), "file crc");
  if (crc32(bytes.first(bytes.size() - 4)) != file_crc) {
    return Error{"corrupt_checkpoint", "file checksum mismatch"};
  }

  ByteReader in(bytes.first(bytes.size() - 4));
  std::uint32_t magic = 0, version = 0, count = 0, header_crc = 0;
  PAROLE_IO_READ(in.u32(magic), "magic");
  PAROLE_IO_READ(in.u32(version), "version");
  PAROLE_IO_READ(in.u32(count), "section count");
  PAROLE_IO_READ(in.u32(header_crc), "header crc");
  if (magic != kCheckpointMagic) {
    return Error{"corrupt_checkpoint", "bad container magic"};
  }
  if (version != kCheckpointFormatVersion) {
    return Error{"corrupt_checkpoint",
                 "unsupported container version " + std::to_string(version)};
  }
  if (crc32(bytes.first(12)) != header_crc) {
    return Error{"corrupt_checkpoint", "header checksum mismatch"};
  }

  Checkpoint cp;
  cp.sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Section section;
    std::uint32_t payload_crc = 0;
    std::uint64_t payload_len = 0;
    PAROLE_IO_READ(in.u32(section.tag), "section tag");
    PAROLE_IO_READ(in.u64(payload_len), "section length");
    PAROLE_IO_READ(in.u32(payload_crc), "section crc");
    if (payload_len > in.remaining()) {
      return Error{"corrupt_checkpoint", "section overruns container"};
    }
    section.payload.resize(static_cast<std::size_t>(payload_len));
    PAROLE_IO_READ(in.raw(section.payload), "section payload");
    if (crc32(section.payload) != payload_crc) {
      return Error{"corrupt_checkpoint", "section checksum mismatch"};
    }
    cp.sections_.push_back(std::move(section));
  }
  if (Status s = in.finish("container"); !s.ok()) return s.error();
  return cp;
}

const Checkpoint::Section* Checkpoint::find(std::uint32_t tag) const {
  for (const auto& section : sections_) {
    if (section.tag == tag) return &section;
  }
  return nullptr;
}

Result<ByteReader> Checkpoint::reader(std::uint32_t tag) const {
  const Section* section = find(tag);
  if (section == nullptr) {
    const char fourcc[5] = {static_cast<char>(tag & 0xff),
                            static_cast<char>(tag >> 8 & 0xff),
                            static_cast<char>(tag >> 16 & 0xff),
                            static_cast<char>(tag >> 24 & 0xff), '\0'};
    return Error{"missing_section",
                 std::string("checkpoint lacks section '") + fourcc + "'"};
  }
  return ByteReader(section->payload);
}

Result<obs::JsonObject> Checkpoint::meta() const {
  auto in = reader(kMetaTag);
  if (!in.ok()) return in.error();
  std::string text;
  PAROLE_IO_READ(in.value().str(text), "meta payload");
  if (Status s = in.value().finish("meta section"); !s.ok()) {
    return s.error();
  }
  auto parsed = obs::json_parse(text);
  if (!parsed.ok()) {
    return Error{"corrupt_checkpoint",
                 "meta section is not valid JSON: " + parsed.error().detail};
  }
  if (!parsed.value().is_object()) {
    return Error{"corrupt_checkpoint", "meta section is not a JSON object"};
  }
  return parsed.value().as_object();
}

Status write_file_atomic(const std::string& path,
                         std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return io_error("open " + tmp);
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return io_error("write " + tmp);
  }
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return io_error("flush " + tmp);
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return io_error("close " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return io_error("rename " + tmp);
  }
  // fsync the parent directory so the rename itself is durable.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dirfd = ::open(dir.empty() ? "." : dir.c_str(),
                           O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  return ok_status();
}

Result<std::vector<std::uint8_t>> read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return io_error("open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return io_error("read " + path);
  return bytes;
}

}  // namespace parole::io
