// Versioned, CRC-checked checkpoint container (DESIGN.md §10).
//
// One checkpoint file is a sequence of typed sections so heterogeneous state
// composes into a single artifact: a DQN training checkpoint carries network,
// optimizer, replay-buffer and RNG sections; a rollup soak checkpoint carries
// L1-chain, ORSC, mempool, ledger and chaos sections. Layout (v1, all
// little-endian):
//
//   u32 magic "PRCK"   u32 version   u32 section_count   u32 header_crc
//   per section:  u32 tag   u64 payload_len   u32 payload_crc   payload
//   u32 file_crc       (over every preceding byte)
//
// Every length is validated against the remaining bytes before allocation and
// every CRC is verified before a payload is handed out, so truncation and bit
// flips surface as typed errors at parse time. Writing goes through
// write_file_atomic(): write to a temp sibling, fsync, rename over the target,
// fsync the directory — a crash mid-write leaves either the old file or the
// new one, never a torn hybrid.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "parole/common/result.hpp"
#include "parole/io/bytes.hpp"
#include "parole/obs/json.hpp"

namespace parole::io {

inline constexpr std::uint32_t kCheckpointMagic = 0x4b435250;  // "PRCK"
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

// Four-character section tag, e.g. section_tag("L1CH").
constexpr std::uint32_t section_tag(const char (&s)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

// Conventional tags shared across producers. Anything may add its own.
inline constexpr std::uint32_t kMetaTag = section_tag("META");

class CheckpointBuilder {
 public:
  // Open a new section; the returned writer is valid until finish(). Sections
  // are emitted in open order; duplicate tags are allowed but find() returns
  // the first, so producers keep tags unique.
  ByteWriter& section(std::uint32_t tag);

  // JSON "META" section: free-form run description plus the "kind"
  // discriminator `parole_cli resume` dispatches on.
  void set_meta(const obs::JsonObject& meta);

  // Serialize the container (header + sections + trailing file CRC).
  [[nodiscard]] std::vector<std::uint8_t> finish() const;

 private:
  struct Section {
    std::uint32_t tag;
    ByteWriter writer;
  };
  std::vector<std::unique_ptr<Section>> sections_;
};

// A parsed, CRC-verified container.
class Checkpoint {
 public:
  struct Section {
    std::uint32_t tag{0};
    std::vector<std::uint8_t> payload;
  };

  // Full validation: magic, version, bounds of every section, every CRC.
  static Result<Checkpoint> parse(std::span<const std::uint8_t> bytes);

  // First section with `tag`, or nullptr.
  [[nodiscard]] const Section* find(std::uint32_t tag) const;
  // Reader over a required section's payload; typed error when missing.
  [[nodiscard]] Result<ByteReader> reader(std::uint32_t tag) const;
  // Parsed META section ("missing_section" error when absent).
  [[nodiscard]] Result<obs::JsonObject> meta() const;

  [[nodiscard]] const std::vector<Section>& sections() const {
    return sections_;
  }

 private:
  std::vector<Section> sections_;
};

// Atomic durable write: temp sibling + fsync + rename + directory fsync.
Status write_file_atomic(const std::string& path,
                         std::span<const std::uint8_t> bytes);

// Whole-file read ("io_error" when unreadable).
Result<std::vector<std::uint8_t>> read_file(const std::string& path);

}  // namespace parole::io
