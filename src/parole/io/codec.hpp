// Shared field codecs for checkpoint serializers: types from common/ and
// crypto/ that many modules persist but that must not themselves depend on
// the io layer.
#pragma once

#include "parole/common/rng.hpp"
#include "parole/crypto/hash.hpp"
#include "parole/io/bytes.hpp"

namespace parole::io {

inline void save_rng(ByteWriter& w, const RngState& s) {
  for (const std::uint64_t word : s.words) w.u64(word);
  w.boolean(s.have_cached_normal);
  w.f64(s.cached_normal);
}

[[nodiscard]] inline bool load_rng(ByteReader& r, RngState& s) {
  RngState tmp;
  for (std::uint64_t& word : tmp.words) {
    if (!r.u64(word)) return false;
  }
  if (!r.boolean(tmp.have_cached_normal)) return false;
  if (!r.f64(tmp.cached_normal)) return false;
  s = tmp;
  return true;
}

inline void save_hash(ByteWriter& w, const crypto::Hash256& h) {
  w.raw(h.bytes());
}

[[nodiscard]] inline bool load_hash(ByteReader& r, crypto::Hash256& h) {
  std::array<std::uint8_t, 32> bytes{};
  if (!r.raw(bytes)) return false;
  h = crypto::Hash256(bytes);
  return true;
}

inline void save_address(ByteWriter& w, const crypto::Address& a) {
  w.raw(a.bytes());
}

[[nodiscard]] inline bool load_address(ByteReader& r, crypto::Address& a) {
  std::array<std::uint8_t, 20> bytes{};
  if (!r.raw(bytes)) return false;
  a = crypto::Address(bytes);
  return true;
}

}  // namespace parole::io
