#include "parole/io/crc32.hpp"

#include <array>

namespace parole::io {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xffffffffu;
  for (const std::uint8_t byte : bytes) {
    c = kTable[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace parole::io
