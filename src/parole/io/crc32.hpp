// CRC-32 (IEEE 802.3 polynomial, reflected) over byte spans. Every checkpoint
// section and file carries one so torn writes and bit flips are detected at
// load time instead of surfacing as absurd state downstream.
#pragma once

#include <cstdint>
#include <span>

namespace parole::io {

// Incremental: feed the previous return value back in as `seed` to extend a
// running checksum; the default seed starts a fresh one.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                                  std::uint32_t seed = 0);

}  // namespace parole::io
