#include "parole/io/manifest.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "parole/obs/json.hpp"
#include "parole/obs/metrics.hpp"

namespace parole::io {
namespace {

constexpr std::uint32_t kManifestVersion = 1;

}  // namespace

CheckpointManager::CheckpointManager(std::string dir, std::string basename,
                                     std::size_t keep_generations)
    : dir_(std::move(dir)),
      basename_(std::move(basename)),
      keep_generations_(std::max<std::size_t>(1, keep_generations)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::string CheckpointManager::manifest_path() const {
  return dir_ + "/MANIFEST.json";
}

std::string CheckpointManager::generation_path(
    std::uint64_t generation) const {
  return dir_ + "/" + basename_ + "." + std::to_string(generation) + ".prck";
}

Result<CheckpointManager::ManifestState> CheckpointManager::read_manifest()
    const {
  auto bytes = read_file(manifest_path());
  if (!bytes.ok()) return bytes.error();
  const std::string text(bytes.value().begin(), bytes.value().end());
  auto parsed = obs::json_parse(text);
  if (!parsed.ok()) {
    return Error{"corrupt_manifest",
                 "MANIFEST.json: " + parsed.error().detail};
  }
  if (!parsed.value().is_object()) {
    return Error{"corrupt_manifest", "MANIFEST.json is not an object"};
  }
  ManifestState state;
  const obs::JsonValue* version = parsed.value().find("version");
  const obs::JsonValue* next = parsed.value().find("next_generation");
  const obs::JsonValue* gens = parsed.value().find("generations");
  if (version == nullptr || !version->is_number() ||
      version->as_uint() != kManifestVersion) {
    return Error{"corrupt_manifest", "MANIFEST.json: bad or missing version"};
  }
  if (next == nullptr || !next->is_number()) {
    return Error{"corrupt_manifest",
                 "MANIFEST.json: bad or missing next_generation"};
  }
  if (gens == nullptr || !gens->is_array()) {
    return Error{"corrupt_manifest",
                 "MANIFEST.json: bad or missing generations"};
  }
  state.next_generation = next->as_uint();
  for (const auto& g : gens->as_array()) {
    if (!g.is_number()) {
      return Error{"corrupt_manifest",
                   "MANIFEST.json: non-numeric generation entry"};
    }
    state.generations.push_back(g.as_uint());
  }
  std::sort(state.generations.begin(), state.generations.end());
  return state;
}

Status CheckpointManager::write_manifest(const ManifestState& state) const {
  obs::JsonArray gens;
  for (const std::uint64_t g : state.generations) gens.emplace_back(g);
  obs::JsonObject root{
      {"version", obs::JsonValue{kManifestVersion}},
      {"basename", obs::JsonValue{basename_}},
      {"next_generation", obs::JsonValue{state.next_generation}},
      {"generations", obs::JsonValue{std::move(gens)}},
  };
  const std::string text = obs::JsonValue{std::move(root)}.dump() + "\n";
  const std::span<const std::uint8_t> bytes{
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()};
  return write_file_atomic(manifest_path(), bytes);
}

Result<std::uint64_t> CheckpointManager::save(
    const CheckpointBuilder& builder) {
  ManifestState state;
  if (std::filesystem::exists(manifest_path())) {
    auto existing = read_manifest();
    // An unreadable manifest is treated as a fresh start for writing: the
    // save still succeeds and re-establishes a valid index.
    if (existing.ok()) state = existing.value();
  }

  const std::uint64_t generation = state.next_generation;
  const std::vector<std::uint8_t> bytes = builder.finish();
  if (Status s = write_file_atomic(generation_path(generation), bytes);
      !s.ok()) {
    return s.error();
  }
  PAROLE_OBS_COUNT("parole.io.checkpoints_written", 1);
  PAROLE_OBS_COUNT("parole.io.checkpoint_bytes_written", bytes.size());

  state.generations.push_back(generation);
  state.next_generation = generation + 1;
  // Prune beyond the keep window only after the manifest stops referencing
  // the pruned files, so a crash between the two steps leaves stale files,
  // never dangling manifest entries.
  std::vector<std::uint64_t> pruned;
  while (state.generations.size() > keep_generations_) {
    pruned.push_back(state.generations.front());
    state.generations.erase(state.generations.begin());
  }
  if (Status s = write_manifest(state); !s.ok()) return s.error();
  for (const std::uint64_t old : pruned) {
    std::remove(generation_path(old).c_str());
    PAROLE_OBS_COUNT("parole.io.generations_pruned", 1);
  }
  return generation;
}

bool CheckpointManager::has_checkpoint() const {
  if (!std::filesystem::exists(manifest_path())) return false;
  auto state = read_manifest();
  return state.ok() && !state.value().generations.empty();
}

Result<CheckpointManager::Loaded> CheckpointManager::load_latest() {
  if (!std::filesystem::exists(manifest_path())) {
    return Error{"no_checkpoint", "no manifest in " + dir_};
  }
  auto state = read_manifest();
  if (!state.ok()) return state.error();
  if (state.value().generations.empty()) {
    return Error{"no_checkpoint", "manifest lists no generations"};
  }

  std::size_t fallbacks = 0;
  std::string last_error;
  const auto& generations = state.value().generations;
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string path = generation_path(*it);
    auto bytes = read_file(path);
    Result<Checkpoint> parsed =
        bytes.ok() ? Checkpoint::parse(bytes.value())
                   : Result<Checkpoint>(bytes.error());
    if (parsed.ok()) {
      PAROLE_OBS_COUNT("parole.io.checkpoints_loaded", 1);
      if (fallbacks > 0) PAROLE_OBS_COUNT("parole.io.fallbacks", 1);
      return Loaded{std::move(parsed).value(), *it, fallbacks};
    }
    // Quarantine the bad file so the next load does not re-pay the parse and
    // an operator can inspect what went wrong.
    last_error = parsed.error().code + ": " + parsed.error().detail;
    std::rename(path.c_str(), (path + ".quarantined").c_str());
    PAROLE_OBS_COUNT("parole.io.crc_failures", 1);
    ++fallbacks;
  }
  return Error{"corrupt_checkpoint",
               "all " + std::to_string(generations.size()) +
                   " generations corrupt; newest error: " + last_error};
}

}  // namespace parole::io
