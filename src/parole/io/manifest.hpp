// Rolling-generation checkpoint manager (DESIGN.md §10).
//
// A CheckpointManager owns one directory and writes numbered generations
// (`<basename>.<generation>.prck`) plus a MANIFEST.json index, keeping the
// newest `keep_generations` files and pruning older ones. Loading walks the
// manifest newest-first: a generation that fails CRC/parse validation is
// quarantined on disk (renamed to `<file>.quarantined`), counted in
// `parole.io.crc_failures`, and the previous good generation is returned
// instead (`parole.io.fallbacks`). Only when every generation is bad does the
// caller see an error — a half-written or bit-flipped newest checkpoint can
// cost at most one generation of progress, never the run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "parole/common/result.hpp"
#include "parole/io/checkpoint.hpp"

namespace parole::io {

class CheckpointManager {
 public:
  // `dir` is created if missing. keep_generations must be >= 1.
  CheckpointManager(std::string dir, std::string basename,
                    std::size_t keep_generations = 3);

  // Serialize the builder as the next generation (atomic write), update the
  // manifest atomically, then prune generations beyond the keep window.
  // Returns the generation number written.
  Result<std::uint64_t> save(const CheckpointBuilder& builder);

  struct Loaded {
    Checkpoint checkpoint;
    std::uint64_t generation{0};
    // How many newer generations were quarantined before this one parsed.
    std::size_t fallbacks{0};
  };

  // Newest good generation, quarantining corrupt ones along the way.
  // "no_checkpoint" when the manifest lists nothing (fresh start);
  // "corrupt_checkpoint" when every listed generation is bad.
  Result<Loaded> load_latest();

  // True when the manifest exists and lists at least one generation.
  [[nodiscard]] bool has_checkpoint() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::string manifest_path() const;
  [[nodiscard]] std::string generation_path(std::uint64_t generation) const;

 private:
  struct ManifestState {
    std::uint64_t next_generation{1};
    std::vector<std::uint64_t> generations;  // ascending
  };

  Result<ManifestState> read_manifest() const;
  Status write_manifest(const ManifestState& state) const;

  std::string dir_;
  std::string basename_;
  std::size_t keep_generations_;
};

}  // namespace parole::io
