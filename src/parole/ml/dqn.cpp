#include "parole/ml/dqn.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

#include "parole/io/codec.hpp"
#include "parole/ml/loss.hpp"
#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"

namespace parole::ml {
namespace {

Matrix row_from(std::span<const double> values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

std::size_t argmax_row(const Matrix& m, std::size_t row) {
  std::size_t best = 0;
  double best_value = m.at(row, 0);
  for (std::size_t c = 1; c < m.cols(); ++c) {
    if (m.at(row, c) > best_value) {
      best_value = m.at(row, c);
      best = c;
    }
  }
  return best;
}

}  // namespace

DqnAgent::DqnAgent(std::size_t state_dim, std::size_t action_count,
                   DqnConfig config, std::uint64_t seed)
    : state_dim_(state_dim),
      action_count_(action_count),
      config_(std::move(config)),
      rng_(seed),
      buffer_(config_.replay_capacity) {
  assert(state_dim_ > 0 && action_count_ > 0);
  q_net_ = Network::mlp(state_dim_, config_.hidden, action_count_, rng_);
  target_net_ = q_net_;
  if (config_.use_adam) {
    optimizer_ = std::make_unique<Adam>(config_.adam_learning_rate);
  } else {
    optimizer_ = std::make_unique<Sgd>(config_.learning_rate,
                                       config_.grad_clip);
  }
}

std::size_t DqnAgent::select_action(std::span<const double> state,
                                    double epsilon) {
  if (rng_.chance(epsilon)) {
    return rng_.index(action_count_);
  }
  return greedy_action(state);
}

std::size_t DqnAgent::greedy_action(std::span<const double> state) {
  assert(state.size() == state_dim_);
  const Matrix q = q_net_.forward(row_from(state));
  return argmax_row(q, 0);
}

Matrix DqnAgent::q_values(std::span<const double> state) {
  assert(state.size() == state_dim_);
  return q_net_.forward(row_from(state));
}

void DqnAgent::remember(Transition transition) {
  assert(transition.state.size() == state_dim_);
  assert(transition.next_state.size() == state_dim_);
  assert(transition.action < action_count_);
  buffer_.push(std::move(transition));
}

double DqnAgent::train_step() {
  if (!buffer_.can_sample(config_.minibatch)) return -1.0;
  PAROLE_OBS_COUNT("parole.ml.train_steps", 1);
  PAROLE_OBS_GAUGE("parole.ml.replay_occupancy",
                   static_cast<double>(buffer_.size()));

  // Select the minibatch: uniform, or priority-proportional when enabled.
  std::vector<std::size_t> indices;
  std::vector<const Transition*> batch;
  {
    PAROLE_OBS_SPAN("ml.replay-sample");
    if (config_.prioritized_replay) {
      indices = buffer_.sample_prioritized(config_.minibatch,
                                           config_.priority_alpha, rng_);
      batch.reserve(indices.size());
      for (std::size_t index : indices) batch.push_back(&buffer_.at(index));
    } else {
      batch = buffer_.sample(config_.minibatch, rng_);
    }
  }

  Matrix states(batch.size(), state_dim_);
  Matrix next_states(batch.size(), state_dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::copy(batch[i]->state.begin(), batch[i]->state.end(),
              states.data() + i * state_dim_);
    std::copy(batch[i]->next_state.begin(), batch[i]->next_state.end(),
              next_states.data() + i * state_dim_);
  }

  // TD targets via the Bellman backup. Vanilla DQN takes both the argmax
  // and the value from the target network; Double DQN decouples them (the
  // online network chooses, the target network evaluates).
  const Matrix next_q_target = target_net_.forward(next_states);
  std::optional<Matrix> next_q_online;
  if (config_.use_double_dqn) {
    next_q_online = q_net_.forward(next_states);
  }

  std::vector<std::size_t> actions(batch.size());
  std::vector<double> targets(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    actions[i] = batch[i]->action;
    double target = batch[i]->reward;
    if (!batch[i]->done) {
      const std::size_t best = config_.use_double_dqn
                                   ? argmax_row(*next_q_online, i)
                                   : argmax_row(next_q_target, i);
      target += config_.gamma * next_q_target.at(i, best);
    }
    targets[i] = target;
  }

  const Matrix predictions = q_net_.forward(states);
  const LossResult loss = masked_huber_loss(predictions, actions, targets);

  if (config_.prioritized_replay) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      buffer_.update_priority(indices[i],
                              predictions.at(i, actions[i]) - targets[i]);
    }
  }

  {
    PAROLE_OBS_SPAN("ml.adam-step");
    q_net_.zero_grads();
    q_net_.backward(loss.grad);
    optimizer_->step(q_net_);
  }
  PAROLE_OBS_OBSERVE("parole.ml.loss", loss.value);
  return loss.value;
}

void DqnAgent::sync_target() {
  PAROLE_OBS_COUNT("parole.ml.target_syncs", 1);
  target_net_.copy_weights_from(q_net_);
}

namespace {

void save_weights(io::ByteWriter& w, const Network& net) {
  const std::vector<double> flat = net.export_weights();
  w.u64(flat.size());
  w.raw({reinterpret_cast<const std::uint8_t*>(flat.data()),
         flat.size() * sizeof(double)});
}

// A short/overlong read is corruption; a well-formed image whose parameter
// count differs from the live network is a config mismatch. Callers need to
// tell the two apart, so this returns a typed Status rather than bool.
[[nodiscard]] Status load_weights(io::ByteReader& r, std::size_t expected,
                                  std::vector<double>& flat,
                                  const char* what) {
  std::uint64_t count = 0;
  if (!r.length(count, sizeof(double))) return io::read_error(what);
  if (count != expected) {
    return Error{"config_mismatch",
                 std::string(what) + ": parameter count differs from this "
                                     "agent's network shape"};
  }
  std::vector<double> out(static_cast<std::size_t>(count));
  if (!r.raw({reinterpret_cast<std::uint8_t*>(out.data()),
              out.size() * sizeof(double)})) {
    return io::read_error(what);
  }
  flat = std::move(out);
  return ok_status();
}

}  // namespace

void DqnAgent::save(io::ByteWriter& w) const {
  w.u64(state_dim_);
  w.u64(action_count_);
  save_weights(w, q_net_);
  save_weights(w, target_net_);
  buffer_.save(w);
  io::save_rng(w, rng_.checkpoint_state());
  // Optimizer last: its load() mutates in place (internally atomic), so
  // keeping it as the final field lets the agent validate everything else
  // into temporaries first and stay whole-object atomic.
  optimizer_->save(w);
}

Status DqnAgent::load(io::ByteReader& r) {
  std::uint64_t state_dim = 0, action_count = 0;
  PAROLE_IO_READ(r.u64(state_dim), "agent state dim");
  PAROLE_IO_READ(r.u64(action_count), "agent action count");
  if (state_dim != state_dim_ || action_count != action_count_) {
    return Error{"config_mismatch",
                 "checkpoint agent dimensions differ from this agent"};
  }
  const std::size_t expected = q_net_.parameter_count();
  std::vector<double> q_flat, target_flat;
  if (Status s = load_weights(r, expected, q_flat, "q-network weights");
      !s.ok()) {
    return s;
  }
  if (Status s =
          load_weights(r, expected, target_flat, "target-network weights");
      !s.ok()) {
    return s;
  }
  ReplayBuffer buffer(1);
  if (Status s = buffer.load(r); !s.ok()) return s;
  if (buffer.capacity() != config_.replay_capacity) {
    return Error{"config_mismatch",
                 "checkpoint replay capacity differs from this agent"};
  }
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    const Transition& t = buffer.at(i);
    if (t.state.size() != state_dim_ || t.next_state.size() != state_dim_ ||
        t.action >= action_count_) {
      return Error{"corrupt_checkpoint",
                   "replay transition inconsistent with agent dimensions"};
    }
  }
  RngState rng_state;
  PAROLE_IO_READ(io::load_rng(r, rng_state), "agent rng state");
  if (Status s = optimizer_->load(r); !s.ok()) return s;
  q_net_.import_weights(q_flat);
  target_net_.import_weights(target_flat);
  buffer_ = std::move(buffer);
  rng_.restore_state(rng_state);
  return ok_status();
}

}  // namespace parole::ml
