#include "parole/ml/dqn.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

#include "parole/ml/loss.hpp"
#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"

namespace parole::ml {
namespace {

Matrix row_from(std::span<const double> values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

std::size_t argmax_row(const Matrix& m, std::size_t row) {
  std::size_t best = 0;
  double best_value = m.at(row, 0);
  for (std::size_t c = 1; c < m.cols(); ++c) {
    if (m.at(row, c) > best_value) {
      best_value = m.at(row, c);
      best = c;
    }
  }
  return best;
}

}  // namespace

DqnAgent::DqnAgent(std::size_t state_dim, std::size_t action_count,
                   DqnConfig config, std::uint64_t seed)
    : state_dim_(state_dim),
      action_count_(action_count),
      config_(std::move(config)),
      rng_(seed),
      buffer_(config_.replay_capacity) {
  assert(state_dim_ > 0 && action_count_ > 0);
  q_net_ = Network::mlp(state_dim_, config_.hidden, action_count_, rng_);
  target_net_ = q_net_;
  if (config_.use_adam) {
    optimizer_ = std::make_unique<Adam>(config_.adam_learning_rate);
  } else {
    optimizer_ = std::make_unique<Sgd>(config_.learning_rate,
                                       config_.grad_clip);
  }
}

std::size_t DqnAgent::select_action(std::span<const double> state,
                                    double epsilon) {
  if (rng_.chance(epsilon)) {
    return rng_.index(action_count_);
  }
  return greedy_action(state);
}

std::size_t DqnAgent::greedy_action(std::span<const double> state) {
  assert(state.size() == state_dim_);
  const Matrix q = q_net_.forward(row_from(state));
  return argmax_row(q, 0);
}

Matrix DqnAgent::q_values(std::span<const double> state) {
  assert(state.size() == state_dim_);
  return q_net_.forward(row_from(state));
}

void DqnAgent::remember(Transition transition) {
  assert(transition.state.size() == state_dim_);
  assert(transition.next_state.size() == state_dim_);
  assert(transition.action < action_count_);
  buffer_.push(std::move(transition));
}

double DqnAgent::train_step() {
  if (!buffer_.can_sample(config_.minibatch)) return -1.0;
  PAROLE_OBS_COUNT("parole.ml.train_steps", 1);
  PAROLE_OBS_GAUGE("parole.ml.replay_occupancy",
                   static_cast<double>(buffer_.size()));

  // Select the minibatch: uniform, or priority-proportional when enabled.
  std::vector<std::size_t> indices;
  std::vector<const Transition*> batch;
  {
    PAROLE_OBS_SPAN("ml.replay-sample");
    if (config_.prioritized_replay) {
      indices = buffer_.sample_prioritized(config_.minibatch,
                                           config_.priority_alpha, rng_);
      batch.reserve(indices.size());
      for (std::size_t index : indices) batch.push_back(&buffer_.at(index));
    } else {
      batch = buffer_.sample(config_.minibatch, rng_);
    }
  }

  Matrix states(batch.size(), state_dim_);
  Matrix next_states(batch.size(), state_dim_);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::copy(batch[i]->state.begin(), batch[i]->state.end(),
              states.data() + i * state_dim_);
    std::copy(batch[i]->next_state.begin(), batch[i]->next_state.end(),
              next_states.data() + i * state_dim_);
  }

  // TD targets via the Bellman backup. Vanilla DQN takes both the argmax
  // and the value from the target network; Double DQN decouples them (the
  // online network chooses, the target network evaluates).
  const Matrix next_q_target = target_net_.forward(next_states);
  std::optional<Matrix> next_q_online;
  if (config_.use_double_dqn) {
    next_q_online = q_net_.forward(next_states);
  }

  std::vector<std::size_t> actions(batch.size());
  std::vector<double> targets(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    actions[i] = batch[i]->action;
    double target = batch[i]->reward;
    if (!batch[i]->done) {
      const std::size_t best = config_.use_double_dqn
                                   ? argmax_row(*next_q_online, i)
                                   : argmax_row(next_q_target, i);
      target += config_.gamma * next_q_target.at(i, best);
    }
    targets[i] = target;
  }

  const Matrix predictions = q_net_.forward(states);
  const LossResult loss = masked_huber_loss(predictions, actions, targets);

  if (config_.prioritized_replay) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      buffer_.update_priority(indices[i],
                              predictions.at(i, actions[i]) - targets[i]);
    }
  }

  {
    PAROLE_OBS_SPAN("ml.adam-step");
    q_net_.zero_grads();
    q_net_.backward(loss.grad);
    optimizer_->step(q_net_);
  }
  PAROLE_OBS_OBSERVE("parole.ml.loss", loss.value);
  return loss.value;
}

void DqnAgent::sync_target() {
  PAROLE_OBS_COUNT("parole.ml.target_syncs", 1);
  target_net_.copy_weights_from(q_net_);
}

}  // namespace parole::ml
