// Deep Q-Network agent (Sec. II-C / V-C, Fig. 2 and Fig. 4).
//
// Q-network + target network over a generic discrete-action environment:
// epsilon-greedy action selection, replay-buffer storage, TD-target updates
// with the Bellman backup
//     y = r + gamma * max_a' Q_target(s', a')        (y = r when terminal)
// and periodic hard target synchronisation. Hyper-parameter defaults are the
// paper's Table II values.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "parole/common/rng.hpp"
#include "parole/ml/epsilon.hpp"
#include "parole/ml/network.hpp"
#include "parole/ml/optimizer.hpp"
#include "parole/ml/replay_buffer.hpp"

namespace parole::ml {

struct DqnConfig {
  // Table II values.
  double epsilon_max = 0.95;
  double epsilon_min = 0.01;
  double epsilon_decay = 0.05;
  double gamma = 0.618;
  std::size_t episodes = 100;
  std::size_t steps_per_episode = 200;
  double learning_rate = 0.7;
  std::size_t replay_capacity = 5'000;
  std::size_t qnet_update_every = 5;    // steps between fitting updates
  std::size_t target_update_every = 30; // steps between target syncs
  // Implementation parameters (not pinned by the paper).
  std::vector<std::size_t> hidden = {128, 128};
  std::size_t minibatch = 32;
  // SGD at the paper's alpha diverges on gwei-scale rewards unless gradients
  // are clipped; Adam (use_adam=true) at a much smaller step size reproduces
  // the same learning curves more stably. The ablation test covers both.
  bool use_adam = true;
  // Step size for the Adam path. Decoupled from `learning_rate` (which is
  // Table II's SGD alpha); the default keeps the historical alpha/1000
  // scaling so existing configs train identically.
  double adam_learning_rate = 0.7 / 1000.0;
  double grad_clip = 10.0;
  // Extensions beyond the paper's vanilla DQN (both off by default so the
  // reproduction stays faithful; flipped on by the extension tests and the
  // ablation bench):
  // Double DQN (van Hasselt et al.): the online network picks the next
  // action, the target network values it — removes the max-operator
  // overestimation bias.
  bool use_double_dqn = false;
  // Prioritized experience replay (Schaul et al.): sample transitions
  // proportional to |TD error|^alpha.
  bool prioritized_replay = false;
  double priority_alpha = 0.6;
};

class DqnAgent {
 public:
  DqnAgent(std::size_t state_dim, std::size_t action_count, DqnConfig config,
           std::uint64_t seed);

  // Epsilon-greedy: with probability `epsilon` a uniformly random action,
  // otherwise argmax_a Q(state, a).
  [[nodiscard]] std::size_t select_action(std::span<const double> state,
                                          double epsilon);

  // Greedy action (inference path; Fig. 9/11 use this).
  [[nodiscard]] std::size_t greedy_action(std::span<const double> state);

  // Q-values for a state (1 x action_count).
  [[nodiscard]] Matrix q_values(std::span<const double> state);

  void remember(Transition transition);

  // One fitting update from a replay minibatch; returns the TD loss, or a
  // negative value when the buffer cannot fill a minibatch yet.
  double train_step();

  void sync_target();

  // Checkpointing (DESIGN.md §10): online + target weights, optimizer state,
  // replay buffer, and the exploration/sampling RNG — the full set needed for
  // a resumed run to be bit-identical to an uninterrupted one. load() expects
  // an agent constructed with the same dimensions and config; anything else
  // is rejected before mutation.
  void save(io::ByteWriter& w) const;
  [[nodiscard]] Status load(io::ByteReader& r);

  [[nodiscard]] const DqnConfig& config() const { return config_; }
  [[nodiscard]] std::size_t state_dim() const { return state_dim_; }
  [[nodiscard]] std::size_t action_count() const { return action_count_; }
  [[nodiscard]] const ReplayBuffer& buffer() const { return buffer_; }
  [[nodiscard]] Network& q_network() { return q_net_; }
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  std::size_t state_dim_;
  std::size_t action_count_;
  DqnConfig config_;
  Rng rng_;
  Network q_net_;
  Network target_net_;
  std::unique_ptr<Optimizer> optimizer_;
  ReplayBuffer buffer_;
};

}  // namespace parole::ml
