#include "parole/ml/epsilon.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace parole::ml {

EpsilonSchedule::EpsilonSchedule(double eps_max, double eps_min, double decay)
    : eps_max_(eps_max), eps_min_(eps_min), decay_(decay) {
  assert(eps_max_ >= eps_min_);
  assert(eps_min_ >= 0.0 && eps_max_ <= 1.0);
  assert(decay_ >= 0.0);
}

double EpsilonSchedule::at(std::size_t episode) const {
  return eps_min_ + (eps_max_ - eps_min_) *
                        std::exp(-decay_ * static_cast<double>(episode));
}

double EpsilonSchedule::literal_eq9(std::size_t episode) const {
  const double base = eps_max_ - eps_min_;
  if (base <= 0.0) return eps_min_;
  const double raw =
      eps_min_ + std::pow(base, -decay_ * static_cast<double>(episode));
  return std::clamp(raw, eps_min_, eps_max_);
}

}  // namespace parole::ml
