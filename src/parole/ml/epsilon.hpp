// Exploration schedule (Eq. 9).
//
// The paper prints the decay as
//     eps_i = eps_min + (eps_max - eps_min)^(-(d * i))
// which, taken literally with eps_max - eps_min < 1, *grows* with i — while
// the text around it says epsilon "decays ... reducing the probability of
// random actions". We implement the standard exponential decay the text
// describes,
//     eps_i = eps_min + (eps_max - eps_min) * exp(-d * i),
// and additionally expose the literal printed formula (clamped to
// [eps_min, eps_max]) so the discrepancy can be inspected; tests document
// both behaviours.
#pragma once

#include <cstddef>

namespace parole::ml {

class EpsilonSchedule {
 public:
  EpsilonSchedule(double eps_max, double eps_min, double decay);

  // Exponential decay (the behaviour the paper describes).
  [[nodiscard]] double at(std::size_t episode) const;

  // The literal printed Eq. 9, clamped into [eps_min, eps_max].
  [[nodiscard]] double literal_eq9(std::size_t episode) const;

  [[nodiscard]] double eps_max() const { return eps_max_; }
  [[nodiscard]] double eps_min() const { return eps_min_; }
  [[nodiscard]] double decay() const { return decay_; }

 private:
  double eps_max_;
  double eps_min_;
  double decay_;
};

}  // namespace parole::ml
