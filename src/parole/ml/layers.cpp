#include "parole/ml/layers.hpp"

#include <cassert>

namespace parole::ml {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : weights_(Matrix::kaiming_uniform(in_features, out_features, rng)),
      bias_(1, out_features, 0.0),
      grad_weights_(in_features, out_features, 0.0),
      grad_bias_(1, out_features, 0.0) {}

Matrix Dense::forward(const Matrix& input) {
  assert(input.cols() == weights_.rows());
  last_input_ = input;
  Matrix out = input.matmul(weights_);
  out.add_row_broadcast(bias_);
  return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
  assert(grad_output.rows() == last_input_.rows());
  assert(grad_output.cols() == weights_.cols());
  grad_weights_.add_in_place(last_input_.transposed_matmul(grad_output));
  grad_bias_.add_in_place(grad_output.row_sum());
  return grad_output.matmul_transposed(weights_);
}

std::unique_ptr<Layer> Dense::clone() const {
  auto copy = std::unique_ptr<Dense>(new Dense());
  copy->weights_ = weights_;
  copy->bias_ = bias_;
  copy->grad_weights_ = Matrix::zeros(weights_.rows(), weights_.cols());
  copy->grad_bias_ = Matrix::zeros(1, bias_.cols());
  return copy;
}

Matrix Relu::forward(const Matrix& input) {
  last_input_ = input;
  return input.map([](double v) { return v > 0.0 ? v : 0.0; });
}

Matrix Relu::backward(const Matrix& grad_output) {
  assert(grad_output.rows() == last_input_.rows());
  assert(grad_output.cols() == last_input_.cols());
  Matrix grad = grad_output;
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    for (std::size_t c = 0; c < grad.cols(); ++c) {
      if (last_input_.at(r, c) <= 0.0) grad.at(r, c) = 0.0;
    }
  }
  return grad;
}

Matrix Flatten::forward(const Matrix& input) {
  in_rows_ = input.rows();
  in_cols_ = input.cols();
  Matrix out(1, input.rows() * input.cols());
  for (std::size_t r = 0; r < input.rows(); ++r) {
    for (std::size_t c = 0; c < input.cols(); ++c) {
      out.at(0, r * input.cols() + c) = input.at(r, c);
    }
  }
  return out;
}

Matrix Flatten::backward(const Matrix& grad_output) {
  assert(grad_output.rows() == 1);
  assert(grad_output.cols() == in_rows_ * in_cols_);
  Matrix grad(in_rows_, in_cols_);
  for (std::size_t r = 0; r < in_rows_; ++r) {
    for (std::size_t c = 0; c < in_cols_; ++c) {
      grad.at(r, c) = grad_output.at(0, r * in_cols_ + c);
    }
  }
  return grad;
}

}  // namespace parole::ml
