// Neural-network layers (Fig. 4: flatten -> input -> hidden -> output).
//
// Layers cache what backward() needs during forward(); backward() consumes
// dL/d(output) and returns dL/d(input) while accumulating parameter
// gradients. The numerical-gradient test suite (tests/ml) validates every
// layer's backward pass against finite differences.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "parole/ml/tensor.hpp"

namespace parole::ml {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Matrix forward(const Matrix& input) = 0;
  virtual Matrix backward(const Matrix& grad_output) = 0;

  // Parameter / gradient views (empty for stateless layers).
  virtual std::vector<Matrix*> params() { return {}; }
  virtual std::vector<Matrix*> grads() { return {}; }

  void zero_grads() {
    for (Matrix* g : grads()) g->fill(0.0);
  }

  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

// Fully-connected layer: Y = X W + b, with X (batch x in), W (in x out).
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;

  std::vector<Matrix*> params() override { return {&weights_, &bias_}; }
  std::vector<Matrix*> grads() override {
    return {&grad_weights_, &grad_bias_};
  }

  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Dense"; }

  [[nodiscard]] std::size_t in_features() const { return weights_.rows(); }
  [[nodiscard]] std::size_t out_features() const { return weights_.cols(); }

 private:
  Dense() = default;  // for clone()

  Matrix weights_;
  Matrix bias_;  // 1 x out
  Matrix grad_weights_;
  Matrix grad_bias_;
  Matrix last_input_;
};

class Relu final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Relu>();
  }
  [[nodiscard]] std::string name() const override { return "Relu"; }

 private:
  Matrix last_input_;
};

// The "flattening layer" of Fig. 4. The transaction encoder hands the network
// a (txs x features) 2D tensor per sample; Flatten reshapes each sample to a
// single row of txs*features values. For already-flat batches it is the
// identity. Gradients reshape back.
class Flatten final : public Layer {
 public:
  Matrix forward(const Matrix& input) override;
  Matrix backward(const Matrix& grad_output) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>();
  }
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  std::size_t in_rows_{0};
  std::size_t in_cols_{0};
};

}  // namespace parole::ml
