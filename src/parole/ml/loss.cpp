#include "parole/ml/loss.hpp"

#include <cassert>
#include <cmath>

namespace parole::ml {

LossResult mse_loss(const Matrix& predictions, const Matrix& targets) {
  assert(predictions.rows() == targets.rows());
  assert(predictions.cols() == targets.cols());
  LossResult result;
  result.grad = Matrix::zeros(predictions.rows(), predictions.cols());
  const double n = static_cast<double>(predictions.size());
  for (std::size_t r = 0; r < predictions.rows(); ++r) {
    for (std::size_t c = 0; c < predictions.cols(); ++c) {
      const double diff = predictions.at(r, c) - targets.at(r, c);
      result.value += diff * diff / n;
      result.grad.at(r, c) = 2.0 * diff / n;
    }
  }
  return result;
}

LossResult masked_mse_loss(const Matrix& predictions,
                           const std::vector<std::size_t>& actions,
                           const std::vector<double>& targets) {
  assert(actions.size() == predictions.rows());
  assert(targets.size() == predictions.rows());
  LossResult result;
  result.grad = Matrix::zeros(predictions.rows(), predictions.cols());
  const double n = static_cast<double>(predictions.rows());
  for (std::size_t r = 0; r < predictions.rows(); ++r) {
    assert(actions[r] < predictions.cols());
    const double diff = predictions.at(r, actions[r]) - targets[r];
    result.value += diff * diff / n;
    result.grad.at(r, actions[r]) = 2.0 * diff / n;
  }
  return result;
}

LossResult masked_huber_loss(const Matrix& predictions,
                             const std::vector<std::size_t>& actions,
                             const std::vector<double>& targets, double delta) {
  assert(actions.size() == predictions.rows());
  assert(targets.size() == predictions.rows());
  assert(delta > 0.0);
  LossResult result;
  result.grad = Matrix::zeros(predictions.rows(), predictions.cols());
  const double n = static_cast<double>(predictions.rows());
  for (std::size_t r = 0; r < predictions.rows(); ++r) {
    assert(actions[r] < predictions.cols());
    const double diff = predictions.at(r, actions[r]) - targets[r];
    if (std::fabs(diff) <= delta) {
      result.value += 0.5 * diff * diff / n;
      result.grad.at(r, actions[r]) = diff / n;
    } else {
      result.value += delta * (std::fabs(diff) - 0.5 * delta) / n;
      result.grad.at(r, actions[r]) = (diff > 0 ? delta : -delta) / n;
    }
  }
  return result;
}

}  // namespace parole::ml
