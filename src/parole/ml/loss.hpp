// Losses for DQN training.
//
// The TD error is computed only on the *chosen* action of each sample; the
// masked losses below return both the scalar loss and the gradient matrix to
// feed Network::backward (zero at unchosen actions).
#pragma once

#include <cstddef>
#include <vector>

#include "parole/ml/tensor.hpp"

namespace parole::ml {

struct LossResult {
  double value{0.0};
  Matrix grad;  // dL/d(predictions), same shape as predictions
};

// Mean squared error over all entries.
LossResult mse_loss(const Matrix& predictions, const Matrix& targets);

// MSE restricted to one action per row: loss = mean_i (pred[i][a_i] - y_i)^2.
LossResult masked_mse_loss(const Matrix& predictions,
                           const std::vector<std::size_t>& actions,
                           const std::vector<double>& targets);

// Huber (smooth-L1) variant of the masked TD loss; delta is the transition
// point between quadratic and linear regimes.
LossResult masked_huber_loss(const Matrix& predictions,
                             const std::vector<std::size_t>& actions,
                             const std::vector<double>& targets,
                             double delta = 1.0);

}  // namespace parole::ml
