#include "parole/ml/network.hpp"

#include <cassert>

namespace parole::ml {

Network::Network(const Network& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Network& Network::operator=(const Network& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
  return *this;
}

Network& Network::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Network Network::mlp(std::size_t in_features,
                     const std::vector<std::size_t>& hidden,
                     std::size_t out_features, Rng& rng) {
  Network net;
  std::size_t prev = in_features;
  for (std::size_t width : hidden) {
    net.add(std::make_unique<Dense>(prev, width, rng));
    net.add(std::make_unique<Relu>());
    prev = width;
  }
  net.add(std::make_unique<Dense>(prev, out_features, rng));
  return net;
}

Matrix Network::forward(const Matrix& input) {
  Matrix current = input;
  for (auto& layer : layers_) current = layer->forward(current);
  return current;
}

Matrix Network::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

void Network::zero_grads() {
  for (auto& layer : layers_) layer->zero_grads();
}

std::vector<Matrix*> Network::params() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_) {
    for (Matrix* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Matrix*> Network::grads() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_) {
    for (Matrix* g : layer->grads()) out.push_back(g);
  }
  return out;
}

std::size_t Network::parameter_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    for (Matrix* p : const_cast<Layer&>(*layer).params()) total += p->size();
  }
  return total;
}

void Network::copy_weights_from(const Network& other) {
  assert(layers_.size() == other.layers_.size());
  auto mine = params();
  auto theirs = const_cast<Network&>(other).params();
  assert(mine.size() == theirs.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    assert(mine[i]->rows() == theirs[i]->rows());
    assert(mine[i]->cols() == theirs[i]->cols());
    *mine[i] = *theirs[i];
  }
}

std::vector<double> Network::export_weights() const {
  std::vector<double> flat;
  for (Matrix* p : const_cast<Network*>(this)->params()) {
    flat.insert(flat.end(), p->data(), p->data() + p->size());
  }
  return flat;
}

void Network::import_weights(const std::vector<double>& flat) {
  std::size_t offset = 0;
  for (Matrix* p : params()) {
    assert(offset + p->size() <= flat.size());
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
              flat.begin() + static_cast<std::ptrdiff_t>(offset + p->size()),
              p->data());
    offset += p->size();
  }
  assert(offset == flat.size());
}

}  // namespace parole::ml
