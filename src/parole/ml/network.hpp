// Sequential network: the Q-network / target-network container.
//
// Supports cloning (the DQN's periodic "TargetNet.copy(QNet)", Algorithm 1
// line 16) and flat weight export/import for checkpointing in tests.
#pragma once

#include <memory>
#include <vector>

#include "parole/ml/layers.hpp"

namespace parole::ml {

class Network {
 public:
  Network() = default;

  Network(const Network& other);
  Network& operator=(const Network& other);
  Network(Network&&) noexcept = default;
  Network& operator=(Network&&) noexcept = default;

  Network& add(std::unique_ptr<Layer> layer);

  // Build the Fig. 4 MLP: in -> hidden... (ReLU between) -> out.
  static Network mlp(std::size_t in_features,
                     const std::vector<std::size_t>& hidden,
                     std::size_t out_features, Rng& rng);

  Matrix forward(const Matrix& input);
  // Backprop from dL/d(output); accumulates parameter grads, returns
  // dL/d(input).
  Matrix backward(const Matrix& grad_output);

  void zero_grads();

  [[nodiscard]] std::vector<Matrix*> params();
  [[nodiscard]] std::vector<Matrix*> grads();
  [[nodiscard]] std::size_t parameter_count() const;

  // Copy weights from another structurally identical network.
  void copy_weights_from(const Network& other);

  [[nodiscard]] std::vector<double> export_weights() const;
  void import_weights(const std::vector<double>& flat);

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace parole::ml
