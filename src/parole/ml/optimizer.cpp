#include "parole/ml/optimizer.hpp"

#include <cassert>
#include <cmath>

namespace parole::ml {

void Sgd::step(Network& net) {
  auto params = net.params();
  auto grads = net.grads();
  assert(params.size() == grads.size());

  double scale = 1.0;
  if (clip_ > 0.0) {
    double max_abs = 0.0;
    for (Matrix* g : grads) max_abs = std::max(max_abs, g->max_abs());
    if (max_abs > clip_) scale = clip_ / max_abs;
  }

  for (std::size_t i = 0; i < params.size(); ++i) {
    Matrix update = *grads[i];
    update.scale_in_place(lr_ * scale);
    params[i]->sub_in_place(update);
  }
  net.zero_grads();
}

void Adam::step(Network& net) {
  auto params = net.params();
  auto grads = net.grads();
  assert(params.size() == grads.size());

  if (m_.empty()) {
    for (Matrix* p : params) {
      m_.emplace_back(Matrix::zeros(p->rows(), p->cols()));
      v_.emplace_back(Matrix::zeros(p->rows(), p->cols()));
    }
  }
  assert(m_.size() == params.size());

  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));

  for (std::size_t i = 0; i < params.size(); ++i) {
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    Matrix& p = *params[i];
    const Matrix& g = *grads[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      const double grad = g.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (1.0 - beta1_) * grad;
      v.data()[j] = beta2_ * v.data()[j] + (1.0 - beta2_) * grad * grad;
      const double m_hat = m.data()[j] / bias1;
      const double v_hat = v.data()[j] / bias2;
      p.data()[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
  net.zero_grads();
}

namespace {

// Discriminator so a checkpoint written under SGD cannot be fed to Adam (or
// vice versa) without a typed error.
constexpr std::uint8_t kSgdMarker = 1;
constexpr std::uint8_t kAdamMarker = 2;

void save_matrix(io::ByteWriter& w, const Matrix& m) {
  w.u64(m.rows());
  w.u64(m.cols());
  w.raw({reinterpret_cast<const std::uint8_t*>(m.data()),
         m.size() * sizeof(double)});
}

[[nodiscard]] bool load_matrix(io::ByteReader& r, Matrix& out) {
  std::uint64_t rows = 0, cols = 0;
  if (!r.u64(rows) || !r.u64(cols)) return false;
  // Bound the allocation by the remaining payload before constructing.
  if (cols != 0 && rows > r.remaining() / (cols * sizeof(double))) {
    return false;
  }
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  if (!r.raw({reinterpret_cast<std::uint8_t*>(m.data()),
              m.size() * sizeof(double)})) {
    return false;
  }
  out = std::move(m);
  return true;
}

}  // namespace

void Sgd::save(io::ByteWriter& w) const { w.u8(kSgdMarker); }

Status Sgd::load(io::ByteReader& r) {
  std::uint8_t marker = 0;
  PAROLE_IO_READ(r.u8(marker), "optimizer marker");
  if (marker != kSgdMarker) {
    return Error{"corrupt_checkpoint",
                 "checkpoint optimizer is not SGD"};
  }
  return ok_status();
}

void Adam::save(io::ByteWriter& w) const {
  w.u8(kAdamMarker);
  w.u64(t_);
  w.u64(m_.size());
  for (const Matrix& m : m_) save_matrix(w, m);
  w.u64(v_.size());
  for (const Matrix& v : v_) save_matrix(w, v);
}

Status Adam::load(io::ByteReader& r) {
  std::uint8_t marker = 0;
  PAROLE_IO_READ(r.u8(marker), "optimizer marker");
  if (marker != kAdamMarker) {
    return Error{"corrupt_checkpoint",
                 "checkpoint optimizer is not Adam"};
  }
  std::uint64_t t = 0;
  PAROLE_IO_READ(r.u64(t), "adam step count");
  std::uint64_t m_count = 0;
  PAROLE_IO_READ(r.length(m_count, 16), "adam first-moment count");
  std::vector<Matrix> m(static_cast<std::size_t>(m_count));
  for (Matrix& mat : m) {
    PAROLE_IO_READ(load_matrix(r, mat), "adam first moment");
  }
  std::uint64_t v_count = 0;
  PAROLE_IO_READ(r.length(v_count, 16), "adam second-moment count");
  std::vector<Matrix> v(static_cast<std::size_t>(v_count));
  for (Matrix& mat : v) {
    PAROLE_IO_READ(load_matrix(r, mat), "adam second moment");
  }
  if (m.size() != v.size()) {
    return Error{"corrupt_checkpoint", "adam moment vectors differ in size"};
  }
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i].rows() != v[i].rows() || m[i].cols() != v[i].cols()) {
      return Error{"corrupt_checkpoint", "adam moment shapes differ"};
    }
  }
  t_ = static_cast<std::size_t>(t);
  m_ = std::move(m);
  v_ = std::move(v);
  return ok_status();
}

}  // namespace parole::ml
