#include "parole/ml/optimizer.hpp"

#include <cassert>
#include <cmath>

namespace parole::ml {

void Sgd::step(Network& net) {
  auto params = net.params();
  auto grads = net.grads();
  assert(params.size() == grads.size());

  double scale = 1.0;
  if (clip_ > 0.0) {
    double max_abs = 0.0;
    for (Matrix* g : grads) max_abs = std::max(max_abs, g->max_abs());
    if (max_abs > clip_) scale = clip_ / max_abs;
  }

  for (std::size_t i = 0; i < params.size(); ++i) {
    Matrix update = *grads[i];
    update.scale_in_place(lr_ * scale);
    params[i]->sub_in_place(update);
  }
  net.zero_grads();
}

void Adam::step(Network& net) {
  auto params = net.params();
  auto grads = net.grads();
  assert(params.size() == grads.size());

  if (m_.empty()) {
    for (Matrix* p : params) {
      m_.emplace_back(Matrix::zeros(p->rows(), p->cols()));
      v_.emplace_back(Matrix::zeros(p->rows(), p->cols()));
    }
  }
  assert(m_.size() == params.size());

  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));

  for (std::size_t i = 0; i < params.size(); ++i) {
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    Matrix& p = *params[i];
    const Matrix& g = *grads[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      const double grad = g.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (1.0 - beta1_) * grad;
      v.data()[j] = beta2_ * v.data()[j] + (1.0 - beta2_) * grad * grad;
      const double m_hat = m.data()[j] / bias1;
      const double v_hat = v.data()[j] / bias2;
      p.data()[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
  net.zero_grads();
}

}  // namespace parole::ml
