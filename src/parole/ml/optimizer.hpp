// Optimizers. SGD is what the paper's Table II learning rate (alpha = 0.7)
// maps onto; Adam is provided because the reward scale in gwei spans several
// orders of magnitude and adaptive steps keep training stable at the full
// Table II rate (the ablation in tests/ml compares both).
#pragma once

#include <memory>
#include <vector>

#include "parole/io/bytes.hpp"
#include "parole/ml/network.hpp"

namespace parole::ml {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Apply one update from the accumulated gradients, then zero them.
  virtual void step(Network& net) = 0;

  // Checkpointing (DESIGN.md §10). Stateless optimizers write a marker only;
  // Adam also writes its step count and moment estimates — without them a
  // resumed run re-warms the moments and the weight trajectory diverges from
  // the uninterrupted one. load() validates then mutates.
  virtual void save(io::ByteWriter& w) const = 0;
  virtual Status load(io::ByteReader& r) = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double grad_clip = 0.0)
      : lr_(learning_rate), clip_(grad_clip) {}

  void step(Network& net) override;
  void save(io::ByteWriter& w) const override;
  Status load(io::ByteReader& r) override;

 private:
  double lr_;
  double clip_;  // 0 disables clipping; otherwise clip by global max-abs.
};

class Adam final : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8)
      : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {}

  void step(Network& net) override;
  void save(io::ByteWriter& w) const override;
  Status load(io::ByteReader& r) override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_{0};
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace parole::ml
