#include "parole/ml/replay_buffer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace parole::ml {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  assert(capacity_ > 0);
  entries_.reserve(capacity_);
  priorities_.reserve(capacity_);
}

void ReplayBuffer::push(Transition transition) {
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(transition));
    priorities_.push_back(max_priority_);
  } else {
    entries_[write_pos_] = std::move(transition);
    priorities_[write_pos_] = max_priority_;
  }
  write_pos_ = (write_pos_ + 1) % capacity_;
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t batch,
                                                    Rng& rng) const {
  assert(can_sample(batch));
  std::vector<const Transition*> out;
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    out.push_back(&entries_[rng.index(entries_.size())]);
  }
  return out;
}

std::vector<std::size_t> ReplayBuffer::sample_prioritized(std::size_t batch,
                                                          double alpha,
                                                          Rng& rng) const {
  assert(can_sample(batch));
  assert(alpha >= 0.0);

  // Cumulative distribution over priority^alpha; linear scan is fine at the
  // Table II buffer size (5,000).
  std::vector<double> cumulative(entries_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    total += std::pow(priorities_[i], alpha);
    cumulative[i] = total;
  }

  std::vector<std::size_t> out;
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const double target = rng.uniform() * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), target);
    out.push_back(static_cast<std::size_t>(it - cumulative.begin()));
  }
  return out;
}

void ReplayBuffer::update_priority(std::size_t index, double td_error) {
  assert(index < priorities_.size());
  const double priority = std::fabs(td_error) + 1e-4;  // never exactly zero
  priorities_[index] = priority;
  max_priority_ = std::max(max_priority_, priority);
}

namespace {

void save_f64_vector(io::ByteWriter& w, const std::vector<double>& v) {
  w.u64(v.size());
  w.raw({reinterpret_cast<const std::uint8_t*>(v.data()),
         v.size() * sizeof(double)});
}

[[nodiscard]] bool load_f64_vector(io::ByteReader& r, std::vector<double>& v) {
  std::uint64_t count = 0;
  if (!r.length(count, sizeof(double))) return false;
  std::vector<double> out(static_cast<std::size_t>(count));
  if (!r.raw({reinterpret_cast<std::uint8_t*>(out.data()),
              out.size() * sizeof(double)})) {
    return false;
  }
  v = std::move(out);
  return true;
}

}  // namespace

void ReplayBuffer::save(io::ByteWriter& w) const {
  w.u64(capacity_);
  w.u64(write_pos_);
  w.u64(entries_.size());
  for (const Transition& t : entries_) {
    save_f64_vector(w, t.state);
    w.u64(t.action);
    w.f64(t.reward);
    save_f64_vector(w, t.next_state);
    w.boolean(t.done);
  }
  // priorities_ always has one slot per entry; the count is implied.
  w.raw({reinterpret_cast<const std::uint8_t*>(priorities_.data()),
         priorities_.size() * sizeof(double)});
  w.f64(max_priority_);
}

Status ReplayBuffer::load(io::ByteReader& r) {
  std::uint64_t capacity = 0, write_pos = 0, count = 0;
  PAROLE_IO_READ(r.u64(capacity), "replay capacity");
  PAROLE_IO_READ(r.u64(write_pos), "replay write cursor");
  if (capacity == 0) {
    return Error{"corrupt_checkpoint", "replay buffer capacity is zero"};
  }
  // Minimal transition image: two vector length prefixes, action, reward,
  // done flag = 33 bytes.
  PAROLE_IO_READ(r.length(count, 33), "replay entry count");
  if (count > capacity) {
    return Error{"corrupt_checkpoint",
                 "replay occupancy exceeds declared capacity"};
  }
  // While the ring is filling the cursor tracks the occupancy exactly; once
  // full it may point anywhere inside the ring.
  if (count < capacity ? write_pos != count : write_pos >= capacity) {
    return Error{"corrupt_checkpoint",
                 "replay write cursor inconsistent with occupancy"};
  }
  std::vector<Transition> entries(static_cast<std::size_t>(count));
  for (Transition& t : entries) {
    PAROLE_IO_READ(load_f64_vector(r, t.state), "transition state");
    std::uint64_t action = 0;
    PAROLE_IO_READ(r.u64(action), "transition action");
    t.action = static_cast<std::size_t>(action);
    PAROLE_IO_READ(r.f64(t.reward), "transition reward");
    PAROLE_IO_READ(load_f64_vector(r, t.next_state), "transition next state");
    PAROLE_IO_READ(r.boolean(t.done), "transition done flag");
  }
  std::vector<double> priorities(entries.size());
  PAROLE_IO_READ(
      r.raw({reinterpret_cast<std::uint8_t*>(priorities.data()),
             priorities.size() * sizeof(double)}),
      "replay priorities");
  double max_priority = 0.0;
  PAROLE_IO_READ(r.f64(max_priority), "replay max priority");
  for (double p : priorities) {
    if (!std::isfinite(p) || p <= 0.0) {
      return Error{"corrupt_checkpoint", "non-positive replay priority"};
    }
  }
  if (!std::isfinite(max_priority) || max_priority <= 0.0) {
    return Error{"corrupt_checkpoint", "non-positive replay max priority"};
  }
  capacity_ = static_cast<std::size_t>(capacity);
  write_pos_ = static_cast<std::size_t>(write_pos);
  entries_ = std::move(entries);
  priorities_ = std::move(priorities);
  max_priority_ = max_priority;
  return ok_status();
}

}  // namespace parole::ml
