#include "parole/ml/replay_buffer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace parole::ml {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  assert(capacity_ > 0);
  entries_.reserve(capacity_);
  priorities_.reserve(capacity_);
}

void ReplayBuffer::push(Transition transition) {
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(transition));
    priorities_.push_back(max_priority_);
  } else {
    entries_[write_pos_] = std::move(transition);
    priorities_[write_pos_] = max_priority_;
  }
  write_pos_ = (write_pos_ + 1) % capacity_;
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t batch,
                                                    Rng& rng) const {
  assert(can_sample(batch));
  std::vector<const Transition*> out;
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    out.push_back(&entries_[rng.index(entries_.size())]);
  }
  return out;
}

std::vector<std::size_t> ReplayBuffer::sample_prioritized(std::size_t batch,
                                                          double alpha,
                                                          Rng& rng) const {
  assert(can_sample(batch));
  assert(alpha >= 0.0);

  // Cumulative distribution over priority^alpha; linear scan is fine at the
  // Table II buffer size (5,000).
  std::vector<double> cumulative(entries_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    total += std::pow(priorities_[i], alpha);
    cumulative[i] = total;
  }

  std::vector<std::size_t> out;
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const double target = rng.uniform() * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), target);
    out.push_back(static_cast<std::size_t>(it - cumulative.begin()));
  }
  return out;
}

void ReplayBuffer::update_priority(std::size_t index, double td_error) {
  assert(index < priorities_.size());
  const double priority = std::fabs(td_error) + 1e-4;  // never exactly zero
  priorities_[index] = priority;
  max_priority_ = std::max(max_priority_, priority);
}

}  // namespace parole::ml
