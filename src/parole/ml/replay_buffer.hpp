// Replay memory buffer ("the agent's experiences are stored as training data
// in a repository known as the replay memory buffer", Sec. II-C). Fixed
// capacity ring (Table II: 5,000 entries), uniform sampling.
#pragma once

#include <cstddef>
#include <vector>

#include "parole/common/rng.hpp"
#include "parole/io/bytes.hpp"

namespace parole::ml {

struct Transition {
  std::vector<double> state;
  std::size_t action{0};
  double reward{0.0};
  std::vector<double> next_state;
  bool done{false};
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void push(Transition transition);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool can_sample(std::size_t batch) const {
    return entries_.size() >= batch;
  }

  // Uniform sample with replacement of `batch` transitions.
  [[nodiscard]] std::vector<const Transition*> sample(std::size_t batch,
                                                      Rng& rng) const;

  // Prioritized sample (Schaul et al.): transition i is drawn with
  // probability proportional to priority_i^alpha. New transitions enter at
  // the current maximum priority so everything is replayed at least once;
  // update_priority() feeds |TD error| back after each fit. Returns the
  // sampled indices so priorities can be updated.
  [[nodiscard]] std::vector<std::size_t> sample_prioritized(
      std::size_t batch, double alpha, Rng& rng) const;
  void update_priority(std::size_t index, double td_error);

  [[nodiscard]] const Transition& at(std::size_t index) const {
    return entries_[index];
  }
  [[nodiscard]] double priority_of(std::size_t index) const {
    return priorities_[index];
  }

  // Checkpointing (DESIGN.md §10). The buffer is part of the agent's training
  // state: dropping it on resume would replay a different transition mix and
  // diverge from the uninterrupted run. load() validates the ring invariants
  // (occupancy <= capacity, cursor consistent with occupancy) before mutating.
  void save(io::ByteWriter& w) const;
  [[nodiscard]] Status load(io::ByteReader& r);

 private:
  std::size_t capacity_;
  std::size_t write_pos_{0};
  std::vector<Transition> entries_;
  std::vector<double> priorities_;
  double max_priority_{1.0};
};

}  // namespace parole::ml
