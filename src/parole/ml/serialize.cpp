#include "parole/ml/serialize.hpp"

#include <cstdio>
#include <cstring>

namespace parole::ml {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

bool get_u32(const std::vector<std::uint8_t>& in, std::size_t& pos,
             std::uint32_t& out) {
  if (pos + 4 > in.size()) return false;
  out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(in[pos + i]) << (8 * i);
  }
  pos += 4;
  return true;
}

bool get_u64(const std::vector<std::uint8_t>& in, std::size_t& pos,
             std::uint64_t& out) {
  if (pos + 8 > in.size()) return false;
  out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
  }
  pos += 8;
  return true;
}

}  // namespace

std::vector<std::uint8_t> serialize_network(const Network& net) {
  // params() is non-const by interface; serialization does not mutate.
  auto& mutable_net = const_cast<Network&>(net);
  const auto params = mutable_net.params();

  std::vector<std::uint8_t> out;
  put_u32(out, kCheckpointMagic);
  put_u32(out, kCheckpointVersion);
  put_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const Matrix* p : params) {
    put_u64(out, p->rows());
    put_u64(out, p->cols());
  }
  for (const Matrix* p : params) {
    const auto* raw = reinterpret_cast<const std::uint8_t*>(p->data());
    out.insert(out.end(), raw, raw + p->size() * sizeof(double));
  }
  return out;
}

Status deserialize_network(Network& net,
                           const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  std::uint32_t magic = 0, version = 0, tensor_count = 0;
  if (!get_u32(bytes, pos, magic) || magic != kCheckpointMagic) {
    return Error{"bad_magic", "not a PAROLE checkpoint"};
  }
  if (!get_u32(bytes, pos, version) || version != kCheckpointVersion) {
    return Error{"bad_version", "unsupported checkpoint version"};
  }
  const auto params = net.params();
  if (!get_u32(bytes, pos, tensor_count) || tensor_count != params.size()) {
    return Error{"shape_mismatch", "tensor count differs from the network"};
  }
  for (const Matrix* p : params) {
    std::uint64_t rows = 0, cols = 0;
    if (!get_u64(bytes, pos, rows) || !get_u64(bytes, pos, cols) ||
        rows != p->rows() || cols != p->cols()) {
      return Error{"shape_mismatch",
                   "tensor shape differs from the network"};
    }
  }
  // Validate total size before mutating anything.
  std::size_t expected = pos;
  for (const Matrix* p : params) expected += p->size() * sizeof(double);
  if (bytes.size() != expected) {
    return Error{"truncated", "checkpoint payload size mismatch"};
  }
  for (Matrix* p : params) {
    std::memcpy(p->data(), bytes.data() + pos, p->size() * sizeof(double));
    pos += p->size() * sizeof(double);
  }
  return ok_status();
}

Status save_checkpoint(const Network& net, const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize_network(net);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Error{"io_error", "cannot open " + path + " for writing"};
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
  if (written != bytes.size()) {
    return Error{"io_error", "short write to " + path};
  }
  return ok_status();
}

Status load_checkpoint(Network& net, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Error{"io_error", "cannot open " + path + " for reading"};
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
  if (read != bytes.size()) {
    return Error{"io_error", "short read from " + path};
  }
  return deserialize_network(net, bytes);
}

}  // namespace parole::ml
