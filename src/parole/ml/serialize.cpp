#include "parole/ml/serialize.hpp"

#include <cstring>

#include "parole/io/bytes.hpp"
#include "parole/io/checkpoint.hpp"

namespace parole::ml {

std::vector<std::uint8_t> serialize_network(const Network& net) {
  // params() is non-const by interface; serialization does not mutate.
  auto& mutable_net = const_cast<Network&>(net);
  const auto params = mutable_net.params();

  io::ByteWriter out;
  out.u32(kCheckpointMagic);
  out.u32(kCheckpointVersion);
  out.u32(static_cast<std::uint32_t>(params.size()));
  for (const Matrix* p : params) {
    out.u64(p->rows());
    out.u64(p->cols());
  }
  for (const Matrix* p : params) {
    out.raw({reinterpret_cast<const std::uint8_t*>(p->data()),
             p->size() * sizeof(double)});
  }
  return out.take();
}

Status deserialize_network(Network& net,
                           const std::vector<std::uint8_t>& bytes) {
  // Hostile-bytes discipline (DESIGN.md §10): every read is bounds-checked
  // through ByteReader, every declared shape is compared against the live
  // network, and the full payload size is verified before the first byte of
  // `net` is overwritten — a corrupted checkpoint yields a typed error and an
  // untouched network, never a crash or a half-written one.
  io::ByteReader in(bytes);
  std::uint32_t magic = 0, version = 0, tensor_count = 0;
  if (!in.u32(magic) || magic != kCheckpointMagic) {
    return Error{"bad_magic", "not a PAROLE checkpoint"};
  }
  if (!in.u32(version) || version != kCheckpointVersion) {
    return Error{"bad_version", "unsupported checkpoint version"};
  }
  const auto params = net.params();
  if (!in.u32(tensor_count) || tensor_count != params.size()) {
    return Error{"shape_mismatch", "tensor count differs from the network"};
  }
  std::size_t payload = 0;
  for (const Matrix* p : params) {
    std::uint64_t rows = 0, cols = 0;
    if (!in.u64(rows) || !in.u64(cols) || rows != p->rows() ||
        cols != p->cols()) {
      return Error{"shape_mismatch",
                   "tensor shape differs from the network"};
    }
    payload += p->size() * sizeof(double);
  }
  // Exact-size check before mutating anything: short payloads are truncation,
  // trailing bytes are corruption.
  if (in.remaining() != payload) {
    return Error{"truncated", "checkpoint payload size mismatch"};
  }
  for (Matrix* p : params) {
    if (!in.raw({reinterpret_cast<std::uint8_t*>(p->data()),
                 p->size() * sizeof(double)})) {
      return Error{"truncated", "checkpoint payload size mismatch"};
    }
  }
  return ok_status();
}

Status save_checkpoint(const Network& net, const std::string& path) {
  // Atomic + durable: a crash mid-save leaves the previous checkpoint intact.
  return io::write_file_atomic(path, serialize_network(net));
}

Status load_checkpoint(Network& net, const std::string& path) {
  auto bytes = io::read_file(path);
  if (!bytes.ok()) return bytes.error();
  return deserialize_network(net, bytes.value());
}

}  // namespace parole::ml
