// Network checkpointing.
//
// The paper's threat model has the IFU train GENTRANSEQ *offline* and hand
// the weights to the adversarial aggregator; that hand-off needs a wire
// format. Checkpoints are a small binary file: magic, format version, the
// per-parameter-tensor shapes (so loading into a structurally different
// network fails loudly rather than silently misassigning weights), then the
// flat float64 weights.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parole/common/result.hpp"
#include "parole/ml/network.hpp"

namespace parole::ml {

inline constexpr std::uint32_t kCheckpointMagic = 0x50524C45;  // "PRLE"
inline constexpr std::uint32_t kCheckpointVersion = 1;

// Serialize the network's parameters into a checkpoint byte buffer.
[[nodiscard]] std::vector<std::uint8_t> serialize_network(const Network& net);

// Restore parameters from a checkpoint buffer into a structurally identical
// network. Fails (without touching `net`) on magic/version/shape mismatch.
Status deserialize_network(Network& net,
                           const std::vector<std::uint8_t>& bytes);

// File convenience wrappers.
Status save_checkpoint(const Network& net, const std::string& path);
Status load_checkpoint(Network& net, const std::string& path);

}  // namespace parole::ml
