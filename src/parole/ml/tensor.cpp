#include "parole/ml/tensor.hpp"

#include <cassert>
#include <cmath>

namespace parole::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill_value)
    : rows_(rows), cols_(cols), data_(rows * cols, fill_value) {}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0);
}

Matrix Matrix::kaiming_uniform(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double limit = std::sqrt(6.0 / static_cast<double>(rows));
  for (double& v : m.data_) v = rng.uniform(-limit, limit);
  return m;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  assert(!rows.empty());
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    for (std::size_t c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::matmul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(i, k);
      if (a == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::transposed_matmul(const Matrix& other) const {
  // (this^T) * other : (cols_ x rows_) * (rows_ x other.cols_)
  assert(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    const double* arow = data_.data() + k * cols_;
    const double* brow = other.data_.data() + k * other.cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = arow[i];
      if (a == 0.0) continue;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed(const Matrix& other) const {
  // this * (other^T) : (rows_ x cols_) * (other.cols_ x other.rows_)
  assert(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* arow = data_.data() + i * cols_;
    for (std::size_t j = 0; j < other.rows_; ++j) {
      const double* brow = other.data_.data() + j * other.cols_;
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) acc += arow[k] * brow[k];
      out.at(i, j) = acc;
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

void Matrix::add_in_place(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::sub_in_place(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::scale_in_place(double factor) {
  for (double& v : data_) v *= factor;
}

void Matrix::fill(double value) {
  for (double& v : data_) v = value;
}

void Matrix::add_row_broadcast(const Matrix& row) {
  assert(row.rows_ == 1 && row.cols_ == cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double* dst = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) dst[c] += row.data_[c];
  }
}

Matrix Matrix::row_sum() const {
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out.data_[c] += src[c];
  }
  return out;
}

void Matrix::apply(const std::function<double(double)>& fn) {
  for (double& v : data_) v = fn(v);
}

Matrix Matrix::map(const std::function<double(double)>& fn) const {
  Matrix out = *this;
  out.apply(fn);
  return out;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double Matrix::sum() const {
  double total = 0.0;
  for (double v : data_) total += v;
  return total;
}

}  // namespace parole::ml
