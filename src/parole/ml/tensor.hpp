// Dense row-major matrix used by the neural-network substrate.
//
// Sized for the GENTRANSEQ workload: batches of a few dozen rows, layer
// widths in the hundreds up to C(N,2) ~ 5k outputs. A hand-rolled triple loop
// with the middle index innermost (cache-friendly) is plenty; doubles keep
// the numerical-gradient tests tight.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "parole/common/rng.hpp"

namespace parole::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix zeros(std::size_t rows, std::size_t cols);
  // He/Kaiming-style uniform init in [-limit, limit], limit = sqrt(6/fan_in).
  static Matrix kaiming_uniform(std::size_t rows, std::size_t cols, Rng& rng);
  static Matrix from_rows(
      const std::vector<std::vector<double>>& rows);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  // this (r x k) times other (k x c) -> (r x c).
  [[nodiscard]] Matrix matmul(const Matrix& other) const;
  // this^T (k x r) times other... convenience fused transposed products used
  // by Dense::backward to avoid materializing transposes.
  [[nodiscard]] Matrix transposed_matmul(const Matrix& other) const;  // A^T B
  [[nodiscard]] Matrix matmul_transposed(const Matrix& other) const;  // A B^T

  [[nodiscard]] Matrix transpose() const;

  void add_in_place(const Matrix& other);
  void sub_in_place(const Matrix& other);
  void scale_in_place(double factor);
  void fill(double value);

  // Add a 1 x cols row vector to every row (bias broadcast).
  void add_row_broadcast(const Matrix& row);
  // Sum of rows -> 1 x cols (bias gradient).
  [[nodiscard]] Matrix row_sum() const;

  void apply(const std::function<double(double)>& fn);
  [[nodiscard]] Matrix map(const std::function<double(double)>& fn) const;

  [[nodiscard]] double max_abs() const;
  [[nodiscard]] double sum() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

}  // namespace parole::ml
