#include "parole/obs/expose.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "parole/obs/json.hpp"
#include "parole/obs/report.hpp"
#include "parole/obs/watchdog.hpp"

namespace parole::obs {
namespace {

// Prometheus accepts any float syntax; %.10g keeps integers clean (counter
// values print as "12345", not "12345.000000") without truncating rates.
std::string format_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

void append_metric(std::string& out, const std::string& name,
                   const char* type, double value) {
  out += "# TYPE " + name + " " + type + "\n";
  out += name + " " + format_number(value) + "\n";
}

std::string query_param(const std::string& target, const std::string& key) {
  const std::size_t question = target.find('?');
  if (question == std::string::npos) return {};
  std::string_view query(target);
  query.remove_prefix(question + 1);
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return {};
}

std::string target_path(const std::string& target) {
  const std::size_t question = target.find('?');
  return question == std::string::npos ? target : target.substr(0, question);
}

// Read until the request-line terminator (we only need "GET <target>");
// bounded so a garbage client cannot make us buffer forever.
std::string read_request_target(int fd) {
  std::string request;
  char buffer[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    const ssize_t got = recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;
    request.append(buffer, static_cast<std::size_t>(got));
  }
  // "GET /metrics HTTP/1.1" → "/metrics".
  if (request.rfind("GET ", 0) != 0) return {};
  const std::size_t start = 4;
  const std::size_t end = request.find(' ', start);
  if (end == std::string::npos) return {};
  return request.substr(start, end - start);
}

void send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent = send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent <= 0) return;
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
}

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    default:
      return "Error";
  }
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    // A '_' prefix alone would collide with Prometheus-reserved names; the
    // exporter prefix keeps the series addressable and unambiguous.
    out.insert(0, "parole_");
  }
  return out;
}

std::string render_prometheus(const SamplerView& view) {
  std::string out;
  out.reserve(4096);
  if (view.stats.empty() && view.samples_taken == 0) {
    // Nothing registered and never sampled: a comment-only body is still a
    // valid 0.0.4 exposition, so scrapers get a parseable 200 instead of an
    // empty document or misleading zero-valued meta series.
    out += "# parole: no metrics registered\n";
    return out;
  }
  append_metric(out, "parole_sampler_samples_total", "counter",
                static_cast<double>(view.samples_taken));
  append_metric(out, "parole_sampler_window_seconds", "gauge",
                view.window_seconds);
  for (const WindowStat& stat : view.stats) {
    const std::string name = prometheus_name(stat.name);
    switch (stat.kind) {
      case MetricSample::Kind::kCounter:
        append_metric(out, name, "counter", stat.value);
        append_metric(out, name + "_per_second", "gauge", stat.rate);
        break;
      case MetricSample::Kind::kGauge:
        append_metric(out, name, "gauge", stat.value);
        break;
      case MetricSample::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < stat.bucket_counts.size(); ++i) {
          cumulative += stat.bucket_counts[i];
          const std::string le = i < stat.bounds.size()
                                     ? format_number(stat.bounds[i])
                                     : std::string("+Inf");
          out += name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_sum " + format_number(stat.sum) + "\n";
        out += name + "_count " + format_number(stat.value) + "\n";
        append_metric(out, name + "_per_second", "gauge", stat.rate);
        append_metric(out, name + "_p50", "gauge", stat.window_p50);
        append_metric(out, name + "_p95", "gauge", stat.window_p95);
        append_metric(out, name + "_p99", "gauge", stat.window_p99);
        break;
      }
    }
  }
  return out;
}

std::string render_healthz(const SamplerView& view) {
  StallWatchdog& watchdog = StallWatchdog::instance();
  JsonObject doc;
  doc["status"] = watchdog.stalled() ? "stalled" : "ok";
  doc["t_ns"] = view.t_ns;
  doc["samples"] = view.samples_taken;
  doc["window_seconds"] = view.window_seconds;
  doc["metrics"] = static_cast<std::uint64_t>(view.stats.size());
  doc["watchdog_armed"] = watchdog.armed();
  JsonArray stages;
  for (const StageStatus& stage : watchdog.status()) {
    JsonObject entry;
    entry["name"] = stage.name;
    entry["beats"] = stage.beats;
    entry["age_ms"] = stage.age_ms;
    stages.push_back(JsonValue(std::move(entry)));
  }
  doc["stages"] = std::move(stages);
  return JsonValue(std::move(doc)).dump() + "\n";
}

std::string render_journal_tail(const TxJournal& journal, std::size_t n) {
  const std::vector<TxEvent> events = journal.snapshot();
  const std::size_t begin =
      n != 0 && events.size() > n ? events.size() - n : 0;
  std::string out;
  out.reserve((events.size() - begin) * 96);
  for (std::size_t i = begin; i < events.size(); ++i) {
    out += JsonValue(txevent_to_object(events[i])).dump();
    out += '\n';
  }
  return out;
}

TelemetryServer::~TelemetryServer() { stop(); }

Status TelemetryServer::start(const ServerConfig& config) {
  if (running_.load(std::memory_order_relaxed)) {
    return Error{"telemetry_server", "already running"};
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error{"telemetry_server", "socket() failed"};
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Error{"telemetry_server", "bad host '" + config.host + "'"};
  }
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Error{"telemetry_server",
                 "bind failed for " + config.host + ":" +
                     std::to_string(config.port) + " (" +
                     std::strerror(errno) + ")"};
  }
  if (listen(fd, 16) != 0) {
    close(fd);
    return Error{"telemetry_server", "listen() failed"};
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    close(fd);
    return Error{"telemetry_server", "getsockname() failed"};
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve(); });
  return ok_status();
}

void TelemetryServer::stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  // The accept loop polls with a timeout and re-checks running_, so closing
  // after the flag flip is enough to unstick it.
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
}

void TelemetryServer::set_journal(const TxJournal* journal) {
  std::lock_guard lock(journal_mutex_);
  journal_ = journal;
}

TelemetryServer::Response TelemetryServer::handle(const std::string& target) {
  const std::string path = target_path(target);
  if (path == "/metrics") {
    // A synchronous tick first: a scrape always sees data no older than the
    // request, even between background ticks (or with the thread stopped).
    sampler_.sample_now();
    Response response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = render_prometheus(sampler_.view());
    return response;
  }
  if (path == "/healthz") {
    Response response;
    response.content_type = "application/json; charset=utf-8";
    response.body = render_healthz(sampler_.view());
    return response;
  }
  if (path == "/journal/tail") {
    std::size_t n = 256;
    if (const std::string raw = query_param(target, "n"); !raw.empty()) {
      n = static_cast<std::size_t>(std::strtoull(raw.c_str(), nullptr, 10));
    }
    Response response;
    response.content_type = "application/jsonl; charset=utf-8";
    std::lock_guard lock(journal_mutex_);
    if (journal_ == nullptr) {
      response.status = 404;
      response.body = "no journal attached\n";
      return response;
    }
    response.body = render_journal_tail(*journal_, n);
    return response;
  }
  Response response;
  response.status = 404;
  response.body =
      "not found; endpoints: /metrics /healthz /journal/tail?n=N\n";
  return response;
}

void TelemetryServer::serve() {
  while (running_.load(std::memory_order_relaxed)) {
    pollfd pfd = {};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = poll(&pfd, 1, 200);
    if (!running_.load(std::memory_order_relaxed)) break;
    if (ready <= 0) continue;
    const int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    const std::string target = read_request_target(client);
    if (!target.empty()) {
      const Response response = handle(target);
      std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                         status_text(response.status) + "\r\n";
      head += "Content-Type: " + response.content_type + "\r\n";
      head += "Content-Length: " + std::to_string(response.body.size()) +
              "\r\n";
      head += "Connection: close\r\n\r\n";
      send_all(client, head);
      send_all(client, response.body);
    }
    close(client);
  }
}

Result<std::string> http_get(const std::string& host, std::uint16_t port,
                             const std::string& target, int timeout_ms) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error{"http_get", "socket() failed"};
  timeval tv = {};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Error{"http_get", "bad host '" + host + "'"};
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return Error{"http_get", "connect to " + host + ":" +
                                 std::to_string(port) + " failed (" +
                                 std::strerror(errno) + ")"};
  }
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  send_all(fd, request);

  std::string reply;
  char buffer[4096];
  for (;;) {
    const ssize_t got = recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;
    reply.append(buffer, static_cast<std::size_t>(got));
  }
  close(fd);

  const std::size_t header_end = reply.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Error{"http_get", "malformed response (no header terminator)"};
  }
  // "HTTP/1.0 200 OK" — accept any 2xx.
  if (reply.rfind("HTTP/", 0) != 0 || reply.size() < 12 ||
      reply[9] != '2') {
    return Error{"http_get",
                 "non-2xx status: " + reply.substr(0, reply.find("\r\n"))};
  }
  return reply.substr(header_end + 4);
}

}  // namespace parole::obs
