// Telemetry exposition endpoint (DESIGN.md §13).
//
// A run that only reports at exit is a black box while it is alive. The
// TelemetryServer closes that gap with a deliberately tiny embedded HTTP
// server (blocking sockets, one connection at a time, GET only — a scrape
// target, not a web framework) over the MetricsSampler's sliding window:
//
//   /metrics        Prometheus text format v0.0.4. Counters come with a
//                   derived <name>_per_second gauge over the sampler window
//                   (rolling tx/s is first-class, not a PromQL exercise);
//                   histograms expose cumulative le-buckets plus rolling
//                   window p50/p95/p99 gauges.
//   /healthz        JSON: sampler stats, watchdog armed/stalled and
//                   per-stage heartbeat ages, stalest first.
//   /journal/tail   JSONL of the newest journal events (schema-1 txevent
//                   lines, same builder as RunReport), ?n= caps the tail.
//
// The server reads sampler views and journal snapshots; it never touches
// hot-path atomics, so a scrape cannot perturb the workload. Like the rest
// of obs, the code builds under PAROLE_OBS_DISABLED (the CLI flags keep
// working; the registry is simply quiet).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "parole/common/result.hpp"
#include "parole/obs/journal.hpp"
#include "parole/obs/sampler.hpp"

namespace parole::obs {

// Prometheus metric-name sanitization: [a-zA-Z0-9_:] pass through, anything
// else (the registry's dots) becomes '_'; a name sanitizing to a leading
// digit gets a 'parole_' prefix (plain '_' would collide with the reserved
// Prometheus namespace).
[[nodiscard]] std::string prometheus_name(const std::string& name);

// Render a sampler view as Prometheus text exposition format v0.0.4. An
// empty, never-sampled view renders a comment-only (still valid) exposition.
[[nodiscard]] std::string render_prometheus(const SamplerView& view);

// JSON health document over the sampler view + watchdog stage table.
[[nodiscard]] std::string render_healthz(const SamplerView& view);

// JSONL tail: the newest `n` journal events (0 = all) as txevent lines.
[[nodiscard]] std::string render_journal_tail(const TxJournal& journal,
                                              std::size_t n);

struct ServerConfig {
  std::string host{"127.0.0.1"};
  std::uint16_t port{0};  // 0 = kernel-assigned; port() reports the binding
};

class TelemetryServer {
 public:
  explicit TelemetryServer(MetricsSampler& sampler) : sampler_(sampler) {}
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // Bind + listen + spawn the accept loop. Error code "telemetry_server"
  // when the bind fails (port taken, bad host).
  Status start(const ServerConfig& config = {});
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }
  // The bound port (after a successful start); 0 before.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  // Journal backing /journal/tail (nullptr = endpoint reports none). Clear
  // before the journal dies.
  void set_journal(const TxJournal* journal);

  // Route one request target to a response — the accept loop and tests
  // share this, so routing is testable without sockets.
  struct Response {
    int status{200};
    std::string content_type{"text/plain; charset=utf-8"};
    std::string body;
  };
  [[nodiscard]] Response handle(const std::string& target);

 private:
  void serve();

  MetricsSampler& sampler_;
  mutable std::mutex journal_mutex_;
  const TxJournal* journal_{nullptr};

  int listen_fd_{-1};
  std::uint16_t port_{0};
  std::thread thread_;
  std::atomic<bool> running_{false};
};

// Minimal blocking HTTP/1.0 GET against a local endpoint; returns the body
// on a 2xx status. Used by `parole_cli top` and the endpoint tests — not a
// general client.
Result<std::string> http_get(const std::string& host, std::uint16_t port,
                             const std::string& target, int timeout_ms = 2000);

}  // namespace parole::obs
