#include "parole/obs/flow.hpp"

#include <algorithm>
#include <cstdlib>

#include "parole/obs/metrics.hpp"

namespace parole::obs {

std::atomic<int> ValueFlowTracker::armed_{0};
thread_local ValueFlowTracker* ValueFlowTracker::active_ = nullptr;

std::string_view to_string(FlowActorKind kind) {
  switch (kind) {
    case FlowActorKind::kAttacker:
      return "attacker";
    case FlowActorKind::kVictim:
      return "victims";
    case FlowActorKind::kSeat:
      return "seat";
    case FlowActorKind::kVerifier:
      return "verifier";
    case FlowActorKind::kBridge:
      return "bridge";
    case FlowActorKind::kBondPool:
      return "bond_pool";
    case FlowActorKind::kFeePool:
      return "fee_pool";
    case FlowActorKind::kBurn:
      return "burn";
  }
  return "unknown";
}

std::string_view to_string(FlowReason reason) {
  switch (reason) {
    case FlowReason::kSwap:
      return "swap";
    case FlowReason::kFee:
      return "fee";
    case FlowReason::kDeposit:
      return "deposit";
    case FlowReason::kWithdraw:
      return "withdraw";
    case FlowReason::kAuctionSpend:
      return "auction_spend";
    case FlowReason::kSlash:
      return "slash";
    case FlowReason::kShed:
      return "shed";
    case FlowReason::kRevert:
      return "revert";
  }
  return "unknown";
}

std::string FlowActor::label() const {
  std::string out(to_string(kind));
  // Indexed kinds carry which seat/verifier/attacker; singleton kinds don't.
  if (kind == FlowActorKind::kAttacker || kind == FlowActorKind::kSeat ||
      kind == FlowActorKind::kVerifier) {
    out += ":" + std::to_string(index);
  }
  return out;
}

ValueFlowTracker::Scope::Scope(ValueFlowTracker* tracker)
    : previous_(active_) {
  active_ = tracker;
  armed_.fetch_add(1, std::memory_order_relaxed);
}

ValueFlowTracker::Scope::~Scope() {
  armed_.fetch_sub(1, std::memory_order_relaxed);
  active_ = previous_;
}

void ValueFlowTracker::set_attackers(const std::vector<UserId>& ifus) {
  attackers_.clear();
  attackers_.reserve(ifus.size());
  for (const UserId u : ifus) attackers_.push_back(u.value());
  std::sort(attackers_.begin(), attackers_.end());
  attackers_.erase(std::unique(attackers_.begin(), attackers_.end()),
                   attackers_.end());
}

BatchFlows& ValueFlowTracker::sink_record() {
  return batch_open_ ? staging_ : chain_;
}

void ValueFlowTracker::record(FlowActor from, FlowActor to, FlowReason reason,
                              Amount amount) {
  if (amount == 0) return;
  BatchFlows& rec = sink_record();
  rec.positions[from.key()] -= amount;
  rec.positions[to.key()] += amount;
  rec.reason_totals[static_cast<std::size_t>(reason)] += amount;
  positions_[from.key()] -= amount;
  positions_[to.key()] += amount;
  reason_totals_[static_cast<std::size_t>(reason)] += amount;
  current_epoch().reason_totals[static_cast<std::size_t>(reason)] += amount;
}

void ValueFlowTracker::open_batch() {
  staging_ = BatchFlows{};
  batch_open_ = true;
}

void ValueFlowTracker::seal_batch(std::uint64_t batch_id) {
  if (!batch_open_) return;
  batch_open_ = false;
  staging_.sealed = true;
  batches_[batch_id] = std::move(staging_);
  staging_ = BatchFlows{};
}

void ValueFlowTracker::finalize_batch(std::uint64_t batch_id) {
  // Finalized batches can never revert; their flows are settled history and
  // the per-batch record is pruned to bound memory over long soaks.
  const auto it = batches_.find(batch_id);
  if (it == batches_.end()) return;
  batches_.erase(it);
  ++finalized_batches_;
}

void ValueFlowTracker::revert_batch(std::uint64_t batch_id) {
  const auto it = batches_.find(batch_id);
  if (it == batches_.end()) return;
  const BatchFlows& rec = it->second;
  // Undo the batch's double entries and its component contributions; the
  // rollback restored the pre-state, so the deltas must follow. The gross
  // value undone is logged under kRevert in the current epoch (epochs are a
  // log of what happened, including the undoing).
  std::int64_t gross = 0;
  for (const auto& [key, net] : rec.positions) {
    positions_[key] -= net;
    if (net > 0) gross += net;
  }
  for (std::size_t r = 0; r < kFlowReasonCount; ++r) {
    reason_totals_[r] -= rec.reason_totals[r];
  }
  supply_delta_ -= rec.supply_delta;
  fee_delta_ -= rec.fee_delta;
  burned_delta_ -= rec.burned_delta;
  locked_delta_ -= rec.locked_delta;
  current_epoch()
      .reason_totals[static_cast<std::size_t>(FlowReason::kRevert)] += gross;
  batches_.erase(it);
  ++reverted_batches_;
}

void ValueFlowTracker::record_tx(vm::TxKind kind, UserId sender,
                                 UserId recipient, Amount price, Amount fee) {
  // Mirrors vm::ExecutionEngine::apply_effects exactly — each debit/credit
  // there has one double entry here, so the component deltas below track the
  // real state mutation bit-for-bit.
  const FlowActor from = classify(sender);
  BatchFlows& rec = sink_record();
  switch (kind) {
    case vm::TxKind::kMint:
      // Buyer pays the scarcity price into token value ("burn") + fees.
      record(from, FlowActor::burn(), FlowReason::kSwap, price);
      record(from, FlowActor::fee_pool(), FlowReason::kFee, fee);
      rec.supply_delta -= price + fee;
      supply_delta_ -= price + fee;
      rec.burned_delta += price;
      burned_delta_ += price;
      break;
    case vm::TxKind::kTransfer:
      // Buyer pays the current price to the seller; seller pays the fee.
      record(classify(recipient), from, FlowReason::kSwap, price);
      record(from, FlowActor::fee_pool(), FlowReason::kFee, fee);
      rec.supply_delta -= fee;
      supply_delta_ -= fee;
      break;
    case vm::TxKind::kBurn:
      record(from, FlowActor::fee_pool(), FlowReason::kFee, fee);
      rec.supply_delta -= fee;
      supply_delta_ -= fee;
      break;
  }
  rec.fee_delta += fee;
  fee_delta_ += fee;
}

void ValueFlowTracker::record_deposit(UserId user, Amount amount) {
  // L1 escrow and L2 supply rise together; conservation drift is unchanged.
  record(FlowActor::bridge(), classify(user), FlowReason::kDeposit, amount);
  BatchFlows& rec = sink_record();
  rec.supply_delta += amount;
  supply_delta_ += amount;
  rec.locked_delta += amount;
  locked_delta_ += amount;
}

void ValueFlowTracker::record_withdraw(UserId user, Amount amount) {
  record(classify(user), FlowActor::bridge(), FlowReason::kWithdraw, amount);
  BatchFlows& rec = sink_record();
  rec.supply_delta -= amount;
  supply_delta_ -= amount;
  rec.locked_delta -= amount;
  locked_delta_ -= amount;
}

void ValueFlowTracker::record_bond_post(FlowActor who, Amount amount) {
  // Capital committed into the dispute bond pool. L1-side bonds sit outside
  // the L2 conservation identity: positions move, components don't.
  record(who, FlowActor::bond_pool(), FlowReason::kDeposit, amount);
}

void ValueFlowTracker::record_auction_spend(std::uint32_t seat,
                                            Amount amount) {
  // Winner-pays-bid out of the seat bond, forfeited to the protocol.
  record(FlowActor::seat(seat), FlowActor::burn(), FlowReason::kAuctionSpend,
         amount);
}

void ValueFlowTracker::record_slash(FlowActor who, FlowActor winner,
                                    Amount slashed, Amount reward) {
  record(who, winner, FlowReason::kSlash, reward);
  record(who, FlowActor::burn(), FlowReason::kSlash, slashed - reward);
}

void ValueFlowTracker::note_shed(Amount est_value) {
  ++shed_count_;
  shed_value_ += est_value;
  EpochFlows& e = current_epoch();
  ++e.shed_count;
  e.shed_value += est_value;
  e.reason_totals[static_cast<std::size_t>(FlowReason::kShed)] += est_value;
}

void ValueFlowTracker::note_degraded() {
  ++degraded_windows_;
  ++current_epoch().degraded_windows;
}

Amount ValueFlowTracker::position(FlowActor actor) const {
  const auto it = positions_.find(actor.key());
  return it == positions_.end() ? 0 : it->second;
}

Amount ValueFlowTracker::attacker_position() const {
  Amount sum = 0;
  for (const auto& [key, net] : positions_) {
    if (FlowActor::from_key(key).kind == FlowActorKind::kAttacker) sum += net;
  }
  return sum;
}

std::int64_t ValueFlowTracker::worst_batch_imbalance(
    std::uint64_t& bad_batch) const {
  std::int64_t worst = 0;
  bad_batch = 0;
  const auto consider = [&](std::uint64_t id, const BatchFlows& rec) {
    std::int64_t sum = 0;
    for (const auto& [key, net] : rec.positions) {
      (void)key;
      sum += net;
    }
    if (std::llabs(sum) > std::llabs(worst)) {
      worst = sum;
      bad_batch = id;
    }
  };
  for (const auto& [id, rec] : batches_) consider(id, rec);
  consider(0, chain_);
  return worst;
}

void ValueFlowTracker::publish_metrics() const {
#if !defined(PAROLE_OBS_DISABLED)
  MetricsRegistry& reg = MetricsRegistry::instance();
  if (!reg.enabled()) return;
  reg.gauge("parole.flow.position.attacker")
      .set(static_cast<double>(attacker_position()));
  reg.gauge("parole.flow.position.victims")
      .set(static_cast<double>(position(FlowActor::victims())));
  reg.gauge("parole.flow.position.bridge")
      .set(static_cast<double>(position(FlowActor::bridge())));
  reg.gauge("parole.flow.position.bond_pool")
      .set(static_cast<double>(position(FlowActor::bond_pool())));
  reg.gauge("parole.flow.position.fee_pool")
      .set(static_cast<double>(position(FlowActor::fee_pool())));
  reg.gauge("parole.flow.position.burn")
      .set(static_cast<double>(position(FlowActor::burn())));
  for (const auto& [key, net] : positions_) {
    const FlowActor actor = FlowActor::from_key(key);
    if (actor.kind == FlowActorKind::kSeat) {
      reg.gauge("parole.flow.position.seat_" + std::to_string(actor.index))
          .set(static_cast<double>(net));
    }
  }
  reg.gauge("parole.flow.shed_value")
      .set(static_cast<double>(shed_value_));
  reg.gauge("parole.flow.degraded_windows")
      .set(static_cast<double>(degraded_windows_));
#endif
}

std::vector<JsonObject> ValueFlowTracker::report_lines() const {
  std::vector<JsonObject> lines;
  for (const auto& [key, net] : positions_) {
    if (net == 0) continue;
    JsonObject line;
    line["scope"] = JsonValue(std::string("actor"));
    line["actor"] = JsonValue(FlowActor::from_key(key).label());
    line["amount_gwei"] = JsonValue(static_cast<std::int64_t>(net));
    lines.push_back(std::move(line));
  }
  for (std::size_t r = 0; r < kFlowReasonCount; ++r) {
    if (reason_totals_[r] == 0) continue;
    JsonObject line;
    line["scope"] = JsonValue(std::string("reason"));
    line["reason"] =
        JsonValue(std::string(to_string(static_cast<FlowReason>(r))));
    line["amount_gwei"] = JsonValue(static_cast<std::int64_t>(reason_totals_[r]));
    lines.push_back(std::move(line));
  }
  for (const auto& [epoch, flows] : epochs_) {
    for (std::size_t r = 0; r < kFlowReasonCount; ++r) {
      if (flows.reason_totals[r] == 0) continue;
      JsonObject line;
      line["scope"] = JsonValue(std::string("epoch"));
      line["epoch"] = JsonValue(static_cast<std::uint64_t>(epoch));
      line["reason"] =
          JsonValue(std::string(to_string(static_cast<FlowReason>(r))));
      line["amount_gwei"] =
          JsonValue(static_cast<std::int64_t>(flows.reason_totals[r]));
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

namespace {

void save_batch(io::ByteWriter& w, const BatchFlows& rec) {
  w.u64(rec.positions.size());
  for (const auto& [key, net] : rec.positions) {
    w.u64(key);
    w.i64(net);
  }
  for (std::size_t r = 0; r < kFlowReasonCount; ++r) w.i64(rec.reason_totals[r]);
  w.i64(rec.supply_delta);
  w.i64(rec.fee_delta);
  w.i64(rec.burned_delta);
  w.i64(rec.locked_delta);
  w.boolean(rec.sealed);
}

Status load_batch(io::ByteReader& r, BatchFlows& rec) {
  std::uint64_t n = 0;
  PAROLE_IO_READ(r.length(n, 16), "flow batch position count");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t key = 0;
    std::int64_t net = 0;
    PAROLE_IO_READ(r.u64(key), "flow position key");
    PAROLE_IO_READ(r.i64(net), "flow position net");
    rec.positions[key] = net;
  }
  for (std::size_t i = 0; i < kFlowReasonCount; ++i) {
    PAROLE_IO_READ(r.i64(rec.reason_totals[i]), "flow batch reason total");
  }
  PAROLE_IO_READ(r.i64(rec.supply_delta), "flow batch supply delta");
  PAROLE_IO_READ(r.i64(rec.fee_delta), "flow batch fee delta");
  PAROLE_IO_READ(r.i64(rec.burned_delta), "flow batch burned delta");
  PAROLE_IO_READ(r.i64(rec.locked_delta), "flow batch locked delta");
  PAROLE_IO_READ(r.boolean(rec.sealed), "flow batch sealed flag");
  return ok_status();
}

}  // namespace

void ValueFlowTracker::save(io::ByteWriter& w) const {
  // Every container below is a sorted std::map (or sorted vector), so the
  // byte image — and therefore the checkpoint fingerprint — is deterministic.
  w.u64(attackers_.size());
  for (const std::uint32_t a : attackers_) w.u32(a);
  w.u64(epoch_len_);
  w.u64(step_);
  w.u64(positions_.size());
  for (const auto& [key, net] : positions_) {
    w.u64(key);
    w.i64(net);
  }
  for (std::size_t r = 0; r < kFlowReasonCount; ++r) w.i64(reason_totals_[r]);
  w.i64(supply_delta_);
  w.i64(fee_delta_);
  w.i64(burned_delta_);
  w.i64(locked_delta_);
  save_batch(w, chain_);
  // A snapshot is only ever cut between steps, never mid-build.
  w.u64(batches_.size());
  for (const auto& [id, rec] : batches_) {
    w.u64(id);
    save_batch(w, rec);
  }
  w.u64(epochs_.size());
  for (const auto& [epoch, flows] : epochs_) {
    w.u64(epoch);
    for (std::size_t r = 0; r < kFlowReasonCount; ++r) {
      w.i64(flows.reason_totals[r]);
    }
    w.u64(flows.shed_count);
    w.i64(flows.shed_value);
    w.u64(flows.degraded_windows);
  }
  w.u64(shed_count_);
  w.i64(shed_value_);
  w.u64(degraded_windows_);
  w.u64(finalized_batches_);
  w.u64(reverted_batches_);
}

Status ValueFlowTracker::load(io::ByteReader& r) {
  // Validate everything into a fresh image, then commit (§10 discipline).
  std::vector<std::uint32_t> attackers;
  std::uint64_t n = 0;
  PAROLE_IO_READ(r.length(n, 4), "flow attacker count");
  attackers.resize(static_cast<std::size_t>(n));
  for (std::uint32_t& a : attackers) PAROLE_IO_READ(r.u32(a), "flow attacker");
  std::uint64_t epoch_len = 0, step = 0;
  PAROLE_IO_READ(r.u64(epoch_len), "flow epoch length");
  PAROLE_IO_READ(r.u64(step), "flow step cursor");
  if (epoch_len == 0) return io::read_error("flow epoch length must be nonzero");
  std::map<std::uint64_t, Amount> positions;
  PAROLE_IO_READ(r.length(n, 16), "flow position count");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t key = 0;
    std::int64_t net = 0;
    PAROLE_IO_READ(r.u64(key), "flow position key");
    PAROLE_IO_READ(r.i64(net), "flow position net");
    positions[key] = net;
  }
  std::int64_t reason_totals[kFlowReasonCount] = {};
  for (std::size_t i = 0; i < kFlowReasonCount; ++i) {
    PAROLE_IO_READ(r.i64(reason_totals[i]), "flow reason total");
  }
  std::int64_t supply = 0, fee = 0, burned = 0, locked = 0;
  PAROLE_IO_READ(r.i64(supply), "flow supply delta");
  PAROLE_IO_READ(r.i64(fee), "flow fee delta");
  PAROLE_IO_READ(r.i64(burned), "flow burned delta");
  PAROLE_IO_READ(r.i64(locked), "flow locked delta");
  BatchFlows chain;
  if (Status s = load_batch(r, chain); !s.ok()) return s;
  std::map<std::uint64_t, BatchFlows> batches;
  PAROLE_IO_READ(r.length(n, 8), "flow batch count");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t id = 0;
    PAROLE_IO_READ(r.u64(id), "flow batch id");
    BatchFlows rec;
    if (Status s = load_batch(r, rec); !s.ok()) return s;
    batches[id] = std::move(rec);
  }
  std::map<std::uint64_t, EpochFlows> epochs;
  PAROLE_IO_READ(r.length(n, 8), "flow epoch count");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t epoch = 0;
    PAROLE_IO_READ(r.u64(epoch), "flow epoch index");
    EpochFlows flows;
    for (std::size_t j = 0; j < kFlowReasonCount; ++j) {
      PAROLE_IO_READ(r.i64(flows.reason_totals[j]), "flow epoch reason total");
    }
    PAROLE_IO_READ(r.u64(flows.shed_count), "flow epoch shed count");
    PAROLE_IO_READ(r.i64(flows.shed_value), "flow epoch shed value");
    PAROLE_IO_READ(r.u64(flows.degraded_windows), "flow epoch degraded");
    epochs[epoch] = flows;
  }
  std::uint64_t shed_count = 0, degraded = 0, finalized = 0, reverted = 0;
  std::int64_t shed_value = 0;
  PAROLE_IO_READ(r.u64(shed_count), "flow shed count");
  PAROLE_IO_READ(r.i64(shed_value), "flow shed value");
  PAROLE_IO_READ(r.u64(degraded), "flow degraded windows");
  PAROLE_IO_READ(r.u64(finalized), "flow finalized batches");
  PAROLE_IO_READ(r.u64(reverted), "flow reverted batches");
  if (Status s = r.finish("FLOW section"); !s.ok()) return s;

  attackers_ = std::move(attackers);
  epoch_len_ = epoch_len;
  step_ = step;
  positions_ = std::move(positions);
  for (std::size_t i = 0; i < kFlowReasonCount; ++i) {
    reason_totals_[i] = reason_totals[i];
  }
  supply_delta_ = supply;
  fee_delta_ = fee;
  burned_delta_ = burned;
  locked_delta_ = locked;
  chain_ = std::move(chain);
  staging_ = BatchFlows{};
  batch_open_ = false;
  batches_ = std::move(batches);
  epochs_ = std::move(epochs);
  shed_count_ = shed_count;
  shed_value_ = shed_value;
  degraded_windows_ = degraded;
  finalized_batches_ = finalized;
  reverted_batches_ = reverted;
  return ok_status();
}

}  // namespace parole::obs
