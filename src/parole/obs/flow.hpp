// Value-flow attribution (DESIGN.md §16): double-entry provenance for every
// gwei the simulator moves.
//
// The paper's headline quantity is attacker *profit*, but by now the system
// moves value through many more mechanisms than reordered swaps: auction
// spend and equivocation slashes (§15), dispute bonds and burns (§5),
// admission sheds and degraded windows (§14), bridge deposits. The
// ValueFlowTracker records each movement at the point it happens as a
// (from-actor, to-actor, reason, amount) double entry, aggregates them into
// per-batch and per-epoch waterfalls, and keeps four derived component
// deltas (ledger supply, fee pool, mint burns, bridge escrow) that must
// reconcile *bit-exactly* with the InvariantChecker's value-conservation
// baseline — a tracker bug and a conservation bug cannot hide behind each
// other.
//
// Recording discipline:
//   * per-tx flows come from one hook in vm::ExecutionEngine::execute_tx,
//     compiled out entirely under -DPAROLE_OBS=OFF (PAROLE_FLOW macro, same
//     contract as the span/metric macros: unarmed cost is one relaxed load);
//   * the hook only fires for *canonical* execution: the node installs a
//     thread-local Scope around aggregator.build_batch, so solver probes,
//     verifier replays and dispute re-executions record nothing;
//   * economic events (bond posts, slashes, auction charges, deposits,
//     sheds) are recorded by their owning module through a plain pointer
//     sink — they are rare, not hot-path.
//
// Batches revert: a fraud rollback negates the batch's (and its
// descendants') positions and component deltas, so the tracker tracks the
// canonical chain, not everything ever executed. Finalized batches fold
// into a compact aggregate and are pruned. The whole tracker state rides
// RollupNode snapshots as a FLOW checkpoint section, so a SIGKILL'd run
// resumes with an identical waterfall.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "parole/common/amount.hpp"
#include "parole/common/ids.hpp"
#include "parole/common/result.hpp"
#include "parole/io/bytes.hpp"
#include "parole/obs/json.hpp"
#include "parole/vm/tx.hpp"

namespace parole::obs {

// Who holds the value. kSeat/kVerifier carry the seat/verifier index;
// kAttacker carries the user id (each IFU gets its own position); the victim
// cohort is aggregated into one actor.
enum class FlowActorKind : std::uint8_t {
  kAttacker = 0,
  kVictim = 1,
  kSeat = 2,
  kVerifier = 3,
  kBridge = 4,
  kBondPool = 5,
  kFeePool = 6,
  kBurn = 7,
};

// Why the value moved.
enum class FlowReason : std::uint8_t {
  kSwap = 0,          // NFT price paid/received (token/price_curve impact)
  kFee = 1,           // base + priority fees into the aggregator pool
  kDeposit = 2,       // L1 -> L2 bridge deposit
  kWithdraw = 3,      // L2 -> L1 bridge withdrawal
  kAuctionSpend = 4,  // first-price leadership auction charge
  kSlash = 5,         // bond slash / forfeiture (equivocation or dispute)
  kShed = 6,          // admission-control shed (value turned away, not moved)
  kRevert = 7,        // fraud rollback undoing a batch's flows
};

inline constexpr std::size_t kFlowReasonCount = 8;

[[nodiscard]] std::string_view to_string(FlowActorKind kind);
[[nodiscard]] std::string_view to_string(FlowReason reason);

// A (kind, index) pair packed into one orderable key so positions live in
// plain sorted maps (checkpoint determinism for free).
struct FlowActor {
  FlowActorKind kind{FlowActorKind::kVictim};
  std::uint32_t index{0};

  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(kind) << 32) | index;
  }
  [[nodiscard]] static FlowActor from_key(std::uint64_t key) {
    return {static_cast<FlowActorKind>(key >> 32),
            static_cast<std::uint32_t>(key & 0xffffffffu)};
  }
  // Display name: "attacker:7", "victims", "seat:2", "bond_pool", ...
  [[nodiscard]] std::string label() const;

  static FlowActor attacker(UserId user) {
    return {FlowActorKind::kAttacker, user.value()};
  }
  static FlowActor victims() { return {FlowActorKind::kVictim, 0}; }
  static FlowActor seat(std::uint32_t i) { return {FlowActorKind::kSeat, i}; }
  static FlowActor verifier(std::uint32_t i) {
    return {FlowActorKind::kVerifier, i};
  }
  static FlowActor bridge() { return {FlowActorKind::kBridge, 0}; }
  static FlowActor bond_pool() { return {FlowActorKind::kBondPool, 0}; }
  static FlowActor fee_pool() { return {FlowActorKind::kFeePool, 0}; }
  static FlowActor burn() { return {FlowActorKind::kBurn, 0}; }
};

// Per-batch double-entry record. Positions sum to zero by construction
// (checked structurally by the flow_conservation invariant); the component
// deltas are what a fraud rollback needs to subtract.
struct BatchFlows {
  std::map<std::uint64_t, Amount> positions;  // actor key -> net
  std::int64_t reason_totals[kFlowReasonCount] = {};
  std::int64_t supply_delta{0};
  std::int64_t fee_delta{0};
  std::int64_t burned_delta{0};
  std::int64_t locked_delta{0};
  bool sealed{false};
};

// Per-epoch waterfall: gross value moved per reason plus shed/degrade
// side-channel counters. Epochs never revert (they are a log, not a chain).
struct EpochFlows {
  std::int64_t reason_totals[kFlowReasonCount] = {};
  std::uint64_t shed_count{0};
  std::int64_t shed_value{0};
  std::uint64_t degraded_windows{0};
};

class ValueFlowTracker {
 public:
  ValueFlowTracker() = default;
  ValueFlowTracker(const ValueFlowTracker&) = delete;
  ValueFlowTracker& operator=(const ValueFlowTracker&) = delete;
  // Movable so a restore can swap in a freshly loaded image (consumers hold
  // the tracker by address, which move-assignment preserves).
  ValueFlowTracker(ValueFlowTracker&&) = default;
  ValueFlowTracker& operator=(ValueFlowTracker&&) = default;

  // --- arming (hot-path contract) ------------------------------------------
  // The engine's PAROLE_FLOW hook pays exactly one relaxed load while no
  // Scope is live anywhere in the process. A Scope arms the global flag and
  // publishes the tracker thread-locally, so concurrent probe threads (which
  // never install a Scope) stay unhooked even mid-batch.
  class Scope {
   public:
    explicit Scope(ValueFlowTracker* tracker);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ValueFlowTracker* previous_;
  };

  [[nodiscard]] static bool armed() {
    return armed_.load(std::memory_order_relaxed) != 0;
  }
  [[nodiscard]] static ValueFlowTracker* active() { return active_; }

  // True when the per-tx engine hook is compiled in. The flow_conservation
  // invariant is vacuous without it (state moves, deltas do not) and skips.
  [[nodiscard]] static constexpr bool tx_hooks_compiled() {
#if defined(PAROLE_OBS_DISABLED)
    return false;
#else
    return true;
#endif
  }

  // --- attribution config ---------------------------------------------------
  // Users in the attacker set get individual kAttacker positions; everyone
  // else aggregates into the victim cohort. Persisted in the FLOW section.
  void set_attackers(const std::vector<UserId>& ifus);
  [[nodiscard]] bool is_attacker(UserId user) const {
    for (const std::uint32_t a : attackers_)
      if (a == user.value()) return true;
    return false;
  }

  // Epoch index = step / epoch_len. The node forwards its step cursor.
  void set_step(std::uint64_t step) { step_ = step; }
  [[nodiscard]] std::uint64_t epoch_len() const { return epoch_len_; }

  // --- batch lifecycle ------------------------------------------------------
  // open_batch stages flows under a provisional record; seal_batch moves it
  // to its L1-assigned id once the ORSC accepts the header. Flows recorded
  // outside any open batch (deposits, slashes, auction charges) land in a
  // chain-level bucket that never reverts.
  void open_batch();
  void seal_batch(std::uint64_t batch_id);
  void finalize_batch(std::uint64_t batch_id);
  void revert_batch(std::uint64_t batch_id);

  // --- recording ------------------------------------------------------------
  // Canonical per-tx flows, called from the engine hook under a live Scope.
  void record_tx(vm::TxKind kind, UserId sender, UserId recipient,
                 Amount price, Amount fee);
  // Bridge deposit credited on L2 (raises both escrow and supply).
  void record_deposit(UserId user, Amount amount);
  // Withdrawal released back to L1 (lowers both escrow and supply).
  void record_withdraw(UserId user, Amount amount);
  // L1 bond posted by a seat / verifier into the dispute bond pool.
  void record_bond_post(FlowActor who, Amount amount);
  // First-price auction charge against the winning seat's bond.
  void record_auction_spend(std::uint32_t seat, Amount amount);
  // Bond slash: `slashed` leaves `who`; `reward` of it goes to `winner`
  // (bond pool when no challenger exists), the rest burns.
  void record_slash(FlowActor who, FlowActor winner, Amount slashed,
                    Amount reward);
  // Admission-control shed: value turned away at the mempool edge. Counted
  // per epoch, never part of the conservation sums (nothing moved).
  void note_shed(Amount est_value);
  // A supervised stage crash-looped into honest passthrough for this window.
  void note_degraded();

  // --- views ----------------------------------------------------------------
  [[nodiscard]] const std::map<std::uint64_t, Amount>& positions() const {
    return positions_;
  }
  [[nodiscard]] Amount position(FlowActor actor) const;
  // Summed over every individual kAttacker position.
  [[nodiscard]] Amount attacker_position() const;
  [[nodiscard]] const std::map<std::uint64_t, BatchFlows>& batches() const {
    return batches_;
  }
  [[nodiscard]] const std::map<std::uint64_t, EpochFlows>& epochs() const {
    return epochs_;
  }
  [[nodiscard]] std::int64_t reason_total(FlowReason reason) const {
    return reason_totals_[static_cast<std::size_t>(reason)];
  }
  [[nodiscard]] std::uint64_t shed_count() const { return shed_count_; }
  [[nodiscard]] std::int64_t shed_value() const { return shed_value_; }
  [[nodiscard]] std::uint64_t degraded_windows() const {
    return degraded_windows_;
  }
  [[nodiscard]] std::uint64_t finalized_batches() const {
    return finalized_batches_;
  }
  [[nodiscard]] std::uint64_t reverted_batches() const {
    return reverted_batches_;
  }

  // Component running deltas (the reconciliation surface; see chaos.cpp):
  //   ledger.total_supply() == base_supply + supply_delta()
  //   fee_pool()            == base_fee    + fee_delta()
  //   value_burned()        == base_burned + burned_delta()
  //   bridge.locked()       == base_locked + locked_delta()
  [[nodiscard]] std::int64_t supply_delta() const { return supply_delta_; }
  [[nodiscard]] std::int64_t fee_delta() const { return fee_delta_; }
  [[nodiscard]] std::int64_t burned_delta() const { return burned_delta_; }
  [[nodiscard]] std::int64_t locked_delta() const { return locked_delta_; }

  // Largest |position| imbalance across sealed batch records (all must be
  // zero-sum); returns the offending batch id through `bad_batch`.
  [[nodiscard]] std::int64_t worst_batch_imbalance(
      std::uint64_t& bad_batch) const;

  // --- sinks ----------------------------------------------------------------
  // Fixed-name Prometheus gauges (parole.flow.position.*) on the process
  // registry; no-op when metrics are disabled.
  void publish_metrics() const;
  // Schema-validated RunReport "flow" lines: per-actor positions, per-reason
  // waterfall, per-epoch breakdown (see report.cpp validate_line).
  [[nodiscard]] std::vector<JsonObject> report_lines() const;

  // --- checkpointing (FLOW section, DESIGN.md §10/§16) ----------------------
  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);

 private:
  [[nodiscard]] FlowActor classify(UserId user) const {
    return is_attacker(user) ? FlowActor::attacker(user)
                             : FlowActor::victims();
  }
  BatchFlows& sink_record();
  void record(FlowActor from, FlowActor to, FlowReason reason, Amount amount);
  EpochFlows& current_epoch() { return epochs_[step_ / epoch_len_]; }

  static std::atomic<int> armed_;
  static thread_local ValueFlowTracker* active_;

  std::vector<std::uint32_t> attackers_;  // sorted user ids
  std::uint64_t epoch_len_{32};
  std::uint64_t step_{0};

  std::map<std::uint64_t, Amount> positions_;  // actor key -> global net
  std::int64_t reason_totals_[kFlowReasonCount] = {};
  std::int64_t supply_delta_{0};
  std::int64_t fee_delta_{0};
  std::int64_t burned_delta_{0};
  std::int64_t locked_delta_{0};

  // Chain-level bucket (never reverts), the staging record for the batch
  // being built, and sealed batches awaiting finalization.
  BatchFlows chain_;
  BatchFlows staging_;
  bool batch_open_{false};
  std::map<std::uint64_t, BatchFlows> batches_;

  std::map<std::uint64_t, EpochFlows> epochs_;
  std::uint64_t shed_count_{0};
  std::int64_t shed_value_{0};
  std::uint64_t degraded_windows_{0};
  std::uint64_t finalized_batches_{0};
  std::uint64_t reverted_batches_{0};
};

}  // namespace parole::obs

// Engine-side hook. Unarmed cost: one relaxed atomic load. Compiled out
// entirely under PAROLE_OBS_DISABLED, like the span/metric macros.
#if defined(PAROLE_OBS_DISABLED)

#define PAROLE_FLOW(...) ((void)0)

#else

#define PAROLE_FLOW(...)                                                \
  do {                                                                  \
    if (::parole::obs::ValueFlowTracker::armed()) {                     \
      if (auto* parole_flow_t = ::parole::obs::ValueFlowTracker::active()) \
        parole_flow_t->__VA_ARGS__;                                     \
    }                                                                   \
  } while (0)

#endif  // PAROLE_OBS_DISABLED
