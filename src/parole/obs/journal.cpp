#include "parole/obs/journal.hpp"

#include <algorithm>
#include <map>

#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"

namespace parole::obs {
namespace {

thread_local TxJournal* tls_current_journal = nullptr;

// Rare paths (evictions) resolve the counter by name instead of caching a
// handle: the cost is irrelevant there and it keeps the journal usable in
// -DPAROLE_OBS=OFF builds where the macros compile out.
void bump_counter(const char* name) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  if (registry.enabled()) registry.counter(name).add(1);
}

}  // namespace

std::string_view to_string(TxEventKind kind) {
  switch (kind) {
    case TxEventKind::kDeposited: return "deposited";
    case TxEventKind::kSubmitted: return "submitted";
    case TxEventKind::kCollected: return "collected";
    case TxEventKind::kDeferred: return "deferred";
    case TxEventKind::kReordered: return "reordered";
    case TxEventKind::kExecuted: return "executed";
    case TxEventKind::kRejected: return "rejected";
    case TxEventKind::kRootCommitted: return "root-committed";
    case TxEventKind::kVerified: return "verified";
    case TxEventKind::kFinalized: return "finalized";
    case TxEventKind::kReverted: return "reverted";
    case TxEventKind::kDropped: return "dropped";
    case TxEventKind::kDelayed: return "delayed";
    case TxEventKind::kReplayed: return "replayed";
    case TxEventKind::kRestored: return "restored";
    case TxEventKind::kFraudProven: return "fraud-proven";
    case TxEventKind::kShed: return "shed";
  }
  return "unknown";
}

bool is_terminal(TxEventKind kind) {
  return kind == TxEventKind::kFinalized || kind == TxEventKind::kDropped ||
         kind == TxEventKind::kReverted || kind == TxEventKind::kShed;
}

TxJournal::TxJournal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

TxJournal::TxJournal(TxJournal&& other) noexcept {
  std::lock_guard lock(other.mutex_);
  events_ = std::move(other.events_);
  capacity_ = other.capacity_;
  evicted_ = other.evicted_;
  step_ = other.step_;
}

TxJournal& TxJournal::operator=(TxJournal&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  events_ = std::move(other.events_);
  capacity_ = other.capacity_;
  evicted_ = other.evicted_;
  step_ = other.step_;
  return *this;
}

TxJournal* TxJournal::current() noexcept { return tls_current_journal; }

TxJournal::Scope::Scope(TxJournal* journal) noexcept
    : previous_(tls_current_journal) {
  tls_current_journal = journal;
}

TxJournal::Scope::~Scope() { tls_current_journal = previous_; }

void TxJournal::record(TxEvent event) {
  if (!enabled()) return;
  if (event.t_ns == 0) event.t_ns = TraceRecorder::instance().now_ns();
  std::lock_guard lock(mutex_);
  if (event.step == 0) event.step = step_;
  events_.push_back(event);
  if (events_.size() > capacity_) evict_locked();
}

void TxJournal::set_step(std::uint64_t step) {
  std::lock_guard lock(mutex_);
  step_ = step;
}

std::uint64_t TxJournal::current_step() const {
  std::lock_guard lock(mutex_);
  return step_;
}

void TxJournal::evict_locked() {
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++evicted_;
    bump_counter("parole.obs.journal_evictions");
  }
}

void TxJournal::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  events_.clear();
  evicted_ = 0;
}

std::size_t TxJournal::capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

std::size_t TxJournal::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::uint64_t TxJournal::evicted() const {
  std::lock_guard lock(mutex_);
  return evicted_;
}

void TxJournal::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  evicted_ = 0;
}

std::vector<TxEvent> TxJournal::snapshot() const {
  std::lock_guard lock(mutex_);
  return {events_.begin(), events_.end()};
}

std::vector<TxEvent> TxJournal::events_for_tx(std::uint64_t tx) const {
  std::lock_guard lock(mutex_);
  std::vector<TxEvent> out;
  for (const TxEvent& event : events_) {
    if (event.tx == tx) out.push_back(event);
  }
  return out;
}

std::vector<TxEvent> TxJournal::events_for_batch(std::uint64_t batch) const {
  if (batch == kNoBatch) return {};
  std::lock_guard lock(mutex_);
  std::vector<TxEvent> out;
  for (const TxEvent& event : events_) {
    if (event.batch == batch) out.push_back(event);
  }
  return out;
}

TxJournal::Audit TxJournal::audit() const {
  const std::vector<TxEvent> events = snapshot();
  Audit audit;
  audit.truncated = evicted() > 0;

  // Group per tx, preserving order. std::map keeps the issue list stable.
  std::map<std::uint64_t, std::vector<TxEvent>> per_tx;
  for (const TxEvent& event : events) {
    if (event.tx == 0) continue;  // pipeline-level events carry no chain
    per_tx[event.tx].push_back(event);
  }
  audit.txs_seen = per_tx.size();

  const auto issue = [&audit](std::uint64_t tx, const std::string& what) {
    audit.ok = false;
    if (audit.issues.size() < 32) {
      audit.issues.push_back("tx " + std::to_string(tx) + ": " + what);
    }
  };

  for (const auto& [tx, chain] : per_tx) {
    // Evictions can behead an old transaction's chain; those are skipped
    // (and flagged as truncation) rather than reported as broken.
    if (audit.truncated && chain.front().kind != TxEventKind::kSubmitted) {
      continue;
    }
    std::size_t opens = 0, collects = 0, finals = 0, sheds = 0;
    for (const TxEvent& event : chain) {
      switch (event.kind) {
        case TxEventKind::kSubmitted: ++opens; break;
        case TxEventKind::kCollected: ++collects; break;
        case TxEventKind::kFinalized:
        case TxEventKind::kDropped: ++finals; break;
        case TxEventKind::kShed: ++sheds; break;
        default: break;
      }
    }
    if (sheds > 0) {
      // A shed transaction never reached the mempool: its whole chain is the
      // terminal kShed. Anything else alongside it is a bookkeeping bug.
      ++audit.txs_shed;
      if (opens != 0 || collects != 0 || chain.size() != sheds) {
        issue(tx, "shed transaction carries non-shed events");
      }
      continue;
    }
    if (collects == 0) continue;  // never entered a batch — nothing to close
    ++audit.txs_collected;

    // A trailing revert is the one place kReverted is terminal: nothing
    // re-collected the transaction, so the revert closed its chain.
    const TxEventKind last = chain.back().kind;
    if (last == TxEventKind::kReverted) ++finals;

    if (opens == 0) {
      issue(tx, "collected without a mempool admission");
      continue;
    }
    if (!is_terminal(last)) {
      issue(tx, "chain ends in non-terminal '" +
                    std::string(to_string(last)) + "'");
      continue;
    }
    if (finals != opens) {
      issue(tx, std::to_string(opens) + " admission(s) vs " +
                    std::to_string(finals) + " terminal event(s)");
      continue;
    }
    ++audit.txs_complete;
  }
  return audit;
}

TxJournal::LatencySummary TxJournal::latencies() const {
  const std::vector<TxEvent> events = snapshot();
  LatencySummary summary;

  struct TxTrack {
    std::vector<std::uint64_t> admissions;  // t_ns of each kSubmitted
    std::size_t matched{0};                 // admissions already finalized
  };
  std::map<std::uint64_t, TxTrack> tracks;
  struct BatchTrack {
    std::uint64_t finalize_t{0};
    std::uint64_t min_admission{0};
    bool seen{false};
  };
  std::map<std::uint64_t, BatchTrack> batches;

  const auto clamped = [](std::uint64_t end, std::uint64_t begin) {
    return end > begin ? end - begin : std::uint64_t{0};
  };

  for (const TxEvent& event : events) {
    if (event.tx == 0) continue;
    TxTrack& track = tracks[event.tx];
    if (event.kind == TxEventKind::kSubmitted) {
      track.admissions.push_back(event.t_ns);
    } else if (event.kind == TxEventKind::kFinalized) {
      // Pair the i-th finalization with the i-th admission (a re-gossiped
      // duplicate opens a second chain and gets its own pairing).
      if (track.matched < track.admissions.size()) {
        const std::uint64_t admitted = track.admissions[track.matched++];
        summary.tx_latency_ns.push_back(clamped(event.t_ns, admitted));
        if (event.batch != kNoBatch) {
          BatchTrack& batch = batches[event.batch];
          if (!batch.seen || admitted < batch.min_admission) {
            batch.min_admission = admitted;
          }
          batch.finalize_t = std::max(batch.finalize_t, event.t_ns);
          batch.seen = true;
        }
      }
    }
  }
  for (const auto& [id, batch] : batches) {
    summary.batch_e2e_ns.push_back(
        clamped(batch.finalize_t, batch.min_admission));
  }
  std::sort(summary.tx_latency_ns.begin(), summary.tx_latency_ns.end());
  std::sort(summary.batch_e2e_ns.begin(), summary.batch_e2e_ns.end());
  return summary;
}

void TxJournal::save(io::ByteWriter& w) const {
  std::lock_guard lock(mutex_);
  w.u64(capacity_);
  w.u64(evicted_);
  w.u64(events_.size());
  for (const TxEvent& event : events_) {
    w.u64(event.tx);
    w.u8(static_cast<std::uint8_t>(event.kind));
    w.u64(event.step);
    w.u64(event.t_ns);
    w.u64(event.batch);
    w.u64(event.a);
    w.u64(event.b);
  }
}

Status TxJournal::load(io::ByteReader& r) {
  std::uint64_t capacity = 0, evicted = 0, count = 0;
  PAROLE_IO_READ(r.u64(capacity), "journal capacity");
  PAROLE_IO_READ(r.u64(evicted), "journal evictions");
  // Each event is 6 u64 fields plus one kind byte.
  PAROLE_IO_READ(r.length(count, 49), "journal event count");
  if (capacity == 0 || count > capacity) {
    return Error{"corrupt_checkpoint", "journal count exceeds capacity"};
  }
  std::deque<TxEvent> events;
  for (std::uint64_t i = 0; i < count; ++i) {
    TxEvent event;
    std::uint8_t kind = 0;
    PAROLE_IO_READ(r.u64(event.tx), "journal event tx");
    PAROLE_IO_READ(r.u8(kind), "journal event kind");
    if (kind >= kTxEventKindCount) {
      return Error{"corrupt_checkpoint", "journal event kind out of range"};
    }
    event.kind = static_cast<TxEventKind>(kind);
    PAROLE_IO_READ(r.u64(event.step), "journal event step");
    PAROLE_IO_READ(r.u64(event.t_ns), "journal event t_ns");
    PAROLE_IO_READ(r.u64(event.batch), "journal event batch");
    PAROLE_IO_READ(r.u64(event.a), "journal event a");
    PAROLE_IO_READ(r.u64(event.b), "journal event b");
    events.push_back(event);
  }
  std::lock_guard lock(mutex_);
  capacity_ = static_cast<std::size_t>(capacity);
  evicted_ = evicted;
  events_ = std::move(events);
  return ok_status();
}

double sample_quantile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return static_cast<double>(sorted.front());
  const double clamped = std::min(1.0, std::max(0.0, q));
  const double rank = clamped * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) +
         frac * (static_cast<double>(sorted[hi]) -
                 static_cast<double>(sorted[lo]));
}

}  // namespace parole::obs
