// Per-transaction lifecycle journal (DESIGN.md §11).
//
// PAROLE's attack is a story about where individual transactions go: the
// adversarial aggregator pulls them from the private Bedrock mempool,
// permutes them, and the victim only ever sees the finalized order. The
// TxJournal closes that visibility gap: every stage of the rollup pipeline
// appends a causal TxEvent — deposited, submitted, collected, reordered
// i→j, executed/rejected, root-committed, verified, finalized, reverted,
// chaos-dropped/delayed/replayed — keyed by tx id, so "what happened to
// tx 4711?" has a queryable answer.
//
// Cost model mirrors the TraceRecorder: journaling is OFF by default and an
// unarmed emission site costs one relaxed atomic load (plus, for free
// functions, one thread-local read). When armed, events go through a mutex
// into a bounded ring — the journal overwrites its oldest events and counts
// evictions into parole.obs.journal_evictions rather than growing without
// bound.
//
// Ownership: each RollupNode owns one TxJournal (tx ids are unique per node,
// not per process, so a process-global journal would conflate campaigns that
// run several nodes). Pipeline stages that have no node pointer — the
// mempool, the VM engine, the PAROLE reorderer, the dispute game — emit
// through a thread-local *current* journal the node installs for the
// duration of a step via TxJournal::Scope. A Scope installing nullptr
// suppresses emission, which is how re-execution paths (solver search,
// verifier replay, bisection) keep probe executions out of the lifecycle
// record.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "parole/io/bytes.hpp"

namespace parole::obs {

enum class TxEventKind : std::uint8_t {
  kDeposited,      // L1 deposit credited on L2 (tx = 0; a = user, b = amount)
  kSubmitted,      // admitted to the Bedrock mempool — opens a chain
  kCollected,      // pulled into an aggregator's collection
  kDeferred,       // pushed to the block behind (screen / revert return)
  kReordered,      // moved by the adversarial reorderer (a = from, b = to)
  kExecuted,       // applied by the VM inside a batch build
  kRejected,       // constraints failed inside a batch build (reverts on chain)
  kRootCommitted,  // its batch's header + roots committed on L1
  kVerified,       // a verifier re-executed its batch and found it valid
  kFinalized,      // its batch finalized on L1 — terminal
  kReverted,       // its batch was rolled back (fraud/orphan); re-enters pool
  kDropped,        // chaos: dropped from a collected set — terminal
  kDelayed,        // chaos: withheld; will re-enter the pool later
  kReplayed,       // chaos: duplicate re-gossiped (a second chain opens)
  kRestored,       // returned to the pool (crash restore / delay release)
  kFraudProven,    // dispute game verdict against its batch (tx = 0)
  kShed,           // admission control refused it at the ingest edge — terminal
};
inline constexpr std::size_t kTxEventKindCount = 17;

[[nodiscard]] std::string_view to_string(TxEventKind kind);

// A terminal event ends a transaction's causal chain: it either made it onto
// the finalized L1 order, was rolled back with nothing re-collecting it, or
// was dropped by a fault. kReverted is terminal only as a *last* event — a
// reverted tx normally re-enters the pool and continues its chain.
[[nodiscard]] bool is_terminal(TxEventKind kind);

// "No batch" sentinel for TxEvent::batch. L1 batch ids are 0-based (the
// first committed batch IS batch 0), so 0 cannot double as the absence
// marker — it would make the first batch of every run invisible to batch
// queries and e2e latency.
inline constexpr std::uint64_t kNoBatch = ~std::uint64_t{0};

struct TxEvent {
  std::uint64_t tx{0};  // 0 = pipeline-level event (deposit, dispute verdict)
  TxEventKind kind{TxEventKind::kSubmitted};
  std::uint64_t step{0};  // rollup step index when emitted
  std::uint64_t t_ns{0};  // TraceRecorder clock (shared with spans)
  std::uint64_t batch{kNoBatch};  // kNoBatch = not yet batch-associated
  std::uint64_t a{0};             // kind-specific (reordered: from-position)
  std::uint64_t b{0};             // kind-specific (reordered: to-position)

  friend bool operator==(const TxEvent&, const TxEvent&) = default;
};

class TxJournal {
 public:
  explicit TxJournal(std::size_t capacity = 1 << 16);

  TxJournal(const TxJournal&) = delete;
  TxJournal& operator=(const TxJournal&) = delete;
  // Movable so RollupNode stays movable. Moving a journal that is installed
  // as a thread's *current* would leave that thread pointing at the husk —
  // move nodes before stepping them, as the tests do.
  TxJournal(TxJournal&& other) noexcept;
  TxJournal& operator=(TxJournal&& other) noexcept;

  // Process-wide arm switch (mirrors TraceRecorder::set_enabled): a plain
  // static atomic so the unarmed emission fast path is one relaxed load.
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // The journal installed on this thread (nullptr = none/suppressed).
  [[nodiscard]] static TxJournal* current() noexcept;

  // RAII installer. RollupNode::step() installs its own journal; replay and
  // search paths install nullptr to keep probe executions out of the record.
  class Scope {
   public:
    explicit Scope(TxJournal* journal) noexcept;
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TxJournal* previous_;
  };

  // Emit through the thread-local current journal; no-op when journaling is
  // off or no journal is installed. This is the free-function entry point
  // for stages without a node pointer (mempool, engine, reorderer, dispute).
  static void emit(TxEvent event) {
    if (!enabled()) return;
    if (TxJournal* journal = current()) journal->record(event);
  }

  // Append one event (stamps t_ns and step when the caller left them 0).
  // No-op unless journaling is enabled.
  void record(TxEvent event);

  // The rollup step stamped onto events whose step is 0 — the node updates
  // this at the top of each step() so free-function emitters (mempool, VM)
  // need no step plumbing of their own.
  void set_step(std::uint64_t step);
  [[nodiscard]] std::uint64_t current_step() const;

  // Ring capacity in events; resizing clears the journal.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] std::size_t size() const;
  // Events that fell off the ring (also counted process-wide into the
  // parole.obs.journal_evictions counter).
  [[nodiscard]] std::uint64_t evicted() const;
  void clear();

  // All events, oldest first.
  [[nodiscard]] std::vector<TxEvent> snapshot() const;
  // Events for one transaction / one batch, oldest first.
  [[nodiscard]] std::vector<TxEvent> events_for_tx(std::uint64_t tx) const;
  [[nodiscard]] std::vector<TxEvent> events_for_batch(
      std::uint64_t batch) const;

  // Causal-chain audit: every collected transaction must own a complete
  // chain ending in exactly one terminal event per admission (a re-gossiped
  // duplicate opens a second chain that must also terminate). Run this at
  // quiescence — a transaction still sitting in the mempool legitimately has
  // an open chain and is reported as incomplete.
  struct Audit {
    bool ok{true};
    std::size_t txs_seen{0};       // distinct tx ids with events
    std::size_t txs_collected{0};  // ids that entered at least one batch
    std::size_t txs_complete{0};   // collected ids whose chains all closed
    std::size_t txs_shed{0};       // ids refused at the admission edge
    bool truncated{false};         // evictions occurred; old chains skipped
    std::vector<std::string> issues;  // capped at 32 entries
  };
  [[nodiscard]] Audit audit() const;

  // Derived latency distributions, exact over the journaled events:
  //   tx_latency     admission (first kSubmitted) → that chain's kFinalized
  //   batch_e2e      earliest admission of a batch's txs → batch finalized
  // Durations are on the TraceRecorder clock; a resumed run's restored
  // events may predate the new process epoch, so negative spans clamp to 0.
  struct LatencySummary {
    std::vector<std::uint64_t> tx_latency_ns;   // sorted ascending
    std::vector<std::uint64_t> batch_e2e_ns;    // sorted ascending
  };
  [[nodiscard]] LatencySummary latencies() const;

  // Checkpointing (DESIGN.md §10): the full ring, so a killed-and-resumed
  // run's journal still carries every pre-crash event and the audit holds
  // across the SIGKILL boundary.
  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);

 private:
  void evict_locked();

  mutable std::mutex mutex_;
  std::deque<TxEvent> events_;
  std::size_t capacity_;
  std::uint64_t evicted_{0};
  std::uint64_t step_{0};
  inline static std::atomic<bool> enabled_{false};
};

// Exact quantile of a sorted duration sample (linear interpolation between
// order statistics); 0 on an empty sample. Shared by the journal exporter
// and tests.
[[nodiscard]] double sample_quantile(const std::vector<std::uint64_t>& sorted,
                                     double q);

}  // namespace parole::obs
