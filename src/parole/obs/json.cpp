#include "parole/obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace parole::obs {
namespace {

std::string format_double(double v) {
  // Shortest round-trippable form; %.17g always round-trips IEEE doubles and
  // %g trims trailing noise for the common "1.5"-style values.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  if (parsed == v) {
    char shorter[64];
    for (int prec = 1; prec < 17; ++prec) {
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      std::sscanf(shorter, "%lf", &parsed);
      if (parsed == v) return shorter;
    }
  }
  return buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> parse() {
    skip_ws();
    auto value = parse_value();
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Result<JsonValue> fail(const std::string& what) {
    return Error{"json_parse",
                 what + " at offset " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Result<JsonValue> parse_value() {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    struct DepthGuard {
      std::size_t& d;
      ~DepthGuard() { --d; }
    } guard{depth_};

    if (eof()) return fail("unexpected end of input");
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.ok()) return s.error();
      return JsonValue(std::move(s.value()));
    }
    if (consume("true")) return JsonValue(true);
    if (consume("false")) return JsonValue(false);
    if (consume("null")) return JsonValue(nullptr);
    return parse_number();
  }

  Result<std::string> parse_string() {
    if (eof() || peek() != '"') {
      return Error{"json_parse",
                   "expected string at offset " + std::to_string(pos_)};
    }
    ++pos_;
    std::string out;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error{"json_parse", "truncated \\u escape"};
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error{"json_parse", "bad \\u escape"};
          }
          // Telemetry strings are ASCII; encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Error{"json_parse", "unknown escape character"};
      }
    }
    return Error{"json_parse", "unterminated string"};
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    bool is_double = false;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-')) {
      if (peek() == '.' || peek() == 'e' || peek() == 'E') is_double = true;
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    if (!is_double) {
      if (token[0] == '-') {
        std::int64_t v = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), v);
        if (ec == std::errc() && ptr == token.data() + token.size()) {
          return JsonValue(v);
        }
      } else {
        std::uint64_t v = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), v);
        if (ec == std::errc() && ptr == token.data() + token.size()) {
          return JsonValue(v);
        }
      }
    }
    double v = 0.0;
    if (std::sscanf(token.c_str(), "%lf", &v) != 1 || !std::isfinite(v)) {
      return fail("malformed number '" + token + "'");
    }
    return JsonValue(v);
  }

  Result<JsonValue> parse_array() {
    ++pos_;  // '['
    JsonArray out;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue(std::move(out));
    }
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value.ok()) return value;
      out.push_back(std::move(value.value()));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return JsonValue(std::move(out));
      }
      return fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonObject out;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue(std::move(out));
    }
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      auto value = parse_value();
      if (!value.ok()) return value;
      out.emplace(std::move(key.value()), std::move(value.value()));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return JsonValue(std::move(out));
      }
      return fail("expected ',' or '}'");
    }
  }

  static constexpr std::size_t kMaxDepth = 64;
  const std::string& text_;
  std::size_t pos_{0};
  std::size_t depth_{0};
};

void dump_into(const JsonValue& value, std::string& out);

void dump_object(const JsonObject& object, std::string& out) {
  out.push_back('{');
  bool first = true;
  for (const auto& [key, member] : object) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += json_escape(key);
    out += "\":";
    dump_into(member, out);
  }
  out.push_back('}');
}

void dump_array(const JsonArray& array, std::string& out) {
  out.push_back('[');
  for (std::size_t i = 0; i < array.size(); ++i) {
    if (i > 0) out.push_back(',');
    dump_into(array[i], out);
  }
  out.push_back(']');
}

void dump_into(const JsonValue& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_string()) {
    out.push_back('"');
    out += json_escape(value.as_string());
    out.push_back('"');
  } else if (value.is_array()) {
    dump_array(value.as_array(), out);
  } else if (value.is_object()) {
    dump_object(value.as_object(), out);
  } else if (value.holds_signed()) {
    out += std::to_string(value.as_int());
  } else if (!value.holds_double()) {
    out += std::to_string(value.as_uint());
  } else {
    out += format_double(value.as_double());
  }
}

}  // namespace

double JsonValue::as_double() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    return static_cast<double>(*u);
  }
  return std::get<double>(value_);
}

std::int64_t JsonValue::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    return static_cast<std::int64_t>(*u);
  }
  return static_cast<std::int64_t>(std::get<double>(value_));
}

std::uint64_t JsonValue::as_uint() const {
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) return *u;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<std::uint64_t>(*i);
  }
  return static_cast<std::uint64_t>(std::get<double>(value_));
}

const JsonValue* JsonValue::find(const std::string& key) const {
  const auto* object = std::get_if<JsonObject>(&value_);
  if (object == nullptr) return nullptr;
  const auto it = object->find(key);
  return it == object->end() ? nullptr : &it->second;
}

std::string JsonValue::dump() const {
  std::string out;
  dump_into(*this, out);
  return out;
}

Result<JsonValue> json_parse(const std::string& text) {
  return Parser(text).parse();
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace parole::obs
