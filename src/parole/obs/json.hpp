// Minimal JSON object model for the telemetry layer.
//
// RunReport emits JSONL (one JSON object per line) and the CLI / CI validator
// parses those lines back; both sides go through this model so the writer and
// the parser can never drift apart. It is deliberately small: no comments, no
// NaN/Inf (rejected on write and read — telemetry with non-finite numbers is
// a bug upstream), UTF-8 passed through verbatim.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "parole/common/result.hpp"

namespace parole::obs {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
// std::map keeps member order deterministic for stable golden files.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, std::int64_t,
                               std::uint64_t, double, std::string, JsonArray,
                               JsonObject>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(int v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(long v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(long long v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(unsigned v) : value_(static_cast<std::uint64_t>(v)) {}
  JsonValue(unsigned long v) : value_(static_cast<std::uint64_t>(v)) {}
  JsonValue(unsigned long long v) : value_(static_cast<std::uint64_t>(v)) {}
  JsonValue(double v) : value_(v) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<std::int64_t>(value_) ||
           std::holds_alternative<std::uint64_t>(value_) ||
           std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool holds_double() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool holds_signed() const {
    return std::holds_alternative<std::int64_t>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<JsonArray>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<JsonObject>(value_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  // Numbers collapse to double for consumers that only compare magnitudes.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const JsonArray& as_array() const {
    return std::get<JsonArray>(value_);
  }
  [[nodiscard]] const JsonObject& as_object() const {
    return std::get<JsonObject>(value_);
  }

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  // Compact single-line rendering (JSONL-safe: no raw newlines).
  [[nodiscard]] std::string dump() const;

 private:
  Storage value_;
};

// Parse one JSON document. Trailing non-whitespace is an error (JSONL lines
// hold exactly one object).
Result<JsonValue> json_parse(const std::string& text);

// Escape a string for embedding in JSON output.
std::string json_escape(const std::string& raw);

}  // namespace parole::obs
