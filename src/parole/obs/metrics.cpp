#include "parole/obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace parole::obs {
namespace {

// Default decade buckets cover everything the pipelines observe today:
// batch sizes, bisection rounds, losses, rewards in gwei.
std::vector<double> default_bounds() {
  return {1,       5,       10,      50,       100,      500,     1'000,
          5'000,   10'000,  50'000,  100'000,  500'000,  1e6,     5e6};
}

template <typename T>
T* find_entry(std::vector<std::pair<std::string, std::unique_ptr<T>>>& entries,
              std::string_view name) {
  for (auto& [key, value] : entries) {
    if (key == name) return value.get();
  }
  return nullptr;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) bounds_ = default_bounds();
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

std::vector<double> Histogram::log_bounds(double lo, double hi,
                                          int per_decade) {
  std::vector<double> out;
  if (!(lo > 0.0) || !(hi > lo) || per_decade < 1) return out;
  const double decades = std::log10(hi / lo);
  const auto steps =
      static_cast<std::size_t>(std::ceil(per_decade * decades - 1e-9));
  out.reserve(steps + 1);
  for (std::size_t i = 0; i < steps; ++i) {
    out.push_back(lo * std::pow(10.0, static_cast<double>(i) / per_decade));
  }
  // Rounding can land the last computed bound on (or past) hi; hi itself is
  // always the final bound so the range is covered exactly once.
  while (!out.empty() && out.back() >= hi) out.pop_back();
  out.push_back(hi);
  return out;
}

double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double clamped = std::min(1.0, std::max(0.0, q));
  const double target = clamped * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  double lower = 0.0;
  for (std::size_t i = 0; i < bounds.size() && i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket > 0 &&
        static_cast<double>(cumulative + in_bucket) >= target) {
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + fraction * (bounds[i] - lower);
    }
    cumulative += in_bucket;
    lower = bounds[i];
  }
  return bounds.empty() ? 0.0 : bounds.back();  // overflow: clamp
}

double Histogram::quantile(double q) const {
  return bucket_quantile(bounds_, counts(), q);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20; relaxed CAS keeps us portable to
  // libstdc++ versions that lack the member.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  if (Counter* existing = find_entry(counters_, name)) return *existing;
  counters_.emplace_back(std::string(name), std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  if (Gauge* existing = find_entry(gauges_, name)) return *existing;
  gauges_.emplace_back(std::string(name), std::make_unique<Gauge>());
  return *gauges_.back().second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard lock(mutex_);
  if (Histogram* existing = find_entry(histograms_, name)) return *existing;
  histograms_.emplace_back(std::string(name),
                           std::make_unique<Histogram>(std::move(upper_bounds)));
  return *histograms_.back().second;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  {
    std::lock_guard lock(mutex_);
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, counter] : counters_) {
      MetricSample sample;
      sample.kind = MetricSample::Kind::kCounter;
      sample.name = name;
      sample.value = static_cast<double>(counter->value());
      out.push_back(std::move(sample));
    }
    for (const auto& [name, gauge] : gauges_) {
      MetricSample sample;
      sample.kind = MetricSample::Kind::kGauge;
      sample.name = name;
      sample.value = gauge->value();
      out.push_back(std::move(sample));
    }
    for (const auto& [name, histogram] : histograms_) {
      MetricSample sample;
      sample.kind = MetricSample::Kind::kHistogram;
      sample.name = name;
      sample.value = static_cast<double>(histogram->count());
      sample.bounds = histogram->bounds();
      sample.bucket_counts = histogram->counts();
      sample.sum = histogram->sum();
      sample.p50 = histogram->quantile(0.50);
      sample.p95 = histogram->quantile(0.95);
      sample.p99 = histogram->quantile(0.99);
      out.push_back(std::move(sample));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace parole::obs
