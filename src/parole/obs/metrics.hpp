// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms (DESIGN.md §8).
//
// Naming convention: `parole.<module>.<name>` (e.g. parole.solvers.cache_hits,
// parole.rollup.batch_size). Handles returned by the registry are stable for
// the life of the process — components resolve them once (constructor or
// function-local static) and then increment through the pointer, so the hot
// path is a single relaxed atomic add.
//
// Cost model:
//   * compile-time off  — build with PAROLE_OBS_DISABLED (CMake
//     -DPAROLE_OBS=OFF): the PAROLE_OBS_* macros expand to nothing, call
//     sites vanish entirely;
//   * runtime off       — MetricsRegistry::set_enabled(false) (the default is
//     ON for metrics): macro call sites check one relaxed atomic bool;
//   * runtime on        — relaxed atomic increments, no locks, no allocation.
// Registration (name lookup) takes a mutex but only runs once per call site.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace parole::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
// implicit overflow bucket counts the rest. Lock-free observes.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  // Log-spaced bounds: `per_decade` geometrically spaced buckets per power
  // of ten covering [lo, hi] (hi is always the last bound). The right shape
  // for latency-style metrics whose tails span orders of magnitude — decade
  // buckets put p99 in the overflow bucket, log buckets keep it resolvable.
  // Returns {} (→ default decade buckets) on a degenerate range.
  [[nodiscard]] static std::vector<double> log_bounds(double lo, double hi,
                                                      int per_decade = 3);

  void observe(double v) noexcept;

  // Bucket-interpolated quantile estimate (q in [0,1]): finds the bucket
  // holding the q-th observation and interpolates linearly inside it.
  // Observations in the overflow bucket clamp to the last bound; exact only
  // up to bucket resolution. 0 on an empty histogram.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  // counts() has bounds().size() + 1 entries; the last is the overflow.
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// A point-in-time view of one metric, for sinks (table dump, RunReport).
struct MetricSample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  Kind kind{Kind::kCounter};
  std::string name;
  // Counter/gauge value (count for histograms).
  double value{0.0};
  // Histogram detail (empty otherwise).
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  double sum{0.0};
  // Bucket-interpolated quantile estimates (0 when the histogram is empty).
  double p50{0.0};
  double p95{0.0};
  double p99{0.0};
};

// Bucket-interpolated quantile over (bounds, per-bucket counts): finds the
// bucket holding the q-th observation and interpolates linearly inside it.
// `counts` has bounds.size() + 1 entries (last = overflow, clamped to the
// final bound). Histogram::quantile and the MetricsSampler's sliding-window
// quantiles are both this computation — one over cumulative counts, one over
// per-window deltas.
[[nodiscard]] double bucket_quantile(const std::vector<double>& bounds,
                                     const std::vector<std::uint64_t>& counts,
                                     double q);

class MetricsRegistry {
 public:
  // The process-wide registry every PAROLE_OBS_* macro talks to.
  static MetricsRegistry& instance();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name. References stay valid for the registry's life
  // (values live behind unique_ptr; reset_values() zeroes, never deletes).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `upper_bounds` is used on first registration only and must be ascending;
  // pass {} to get the default decade buckets.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds = {});

  // Runtime switch read by the hot-path macros. Metrics default ON.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Sorted-by-name snapshot of every registered metric.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  // Zero every value (handles stay valid). Tests and per-run sinks use this.
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
  std::atomic<bool> enabled_{true};
};

}  // namespace parole::obs

// --- hot-path macros ----------------------------------------------------------
//
// PAROLE_OBS_COUNT(name, n)    add n to counter `name`
// PAROLE_OBS_GAUGE(name, v)    set gauge `name` to v
// PAROLE_OBS_OBSERVE(name, v)  record v into histogram `name`
//
// Each call site resolves its handle once (function-local static) and then
// pays one enabled() load + one relaxed atomic op. With PAROLE_OBS_DISABLED
// the macros expand to a void no-op and the handle is never created.
#if defined(PAROLE_OBS_DISABLED)

#define PAROLE_OBS_COUNT(name, n) ((void)0)
#define PAROLE_OBS_GAUGE(name, v) ((void)0)
#define PAROLE_OBS_OBSERVE(name, v) ((void)0)

#else

#define PAROLE_OBS_COUNT(name, n)                                           \
  do {                                                                      \
    auto& parole_obs_reg = ::parole::obs::MetricsRegistry::instance();      \
    if (parole_obs_reg.enabled()) {                                         \
      static ::parole::obs::Counter& parole_obs_handle =                    \
          parole_obs_reg.counter(name);                                     \
      parole_obs_handle.add(n);                                             \
    }                                                                       \
  } while (0)

#define PAROLE_OBS_GAUGE(name, v)                                           \
  do {                                                                      \
    auto& parole_obs_reg = ::parole::obs::MetricsRegistry::instance();      \
    if (parole_obs_reg.enabled()) {                                         \
      static ::parole::obs::Gauge& parole_obs_handle =                      \
          parole_obs_reg.gauge(name);                                       \
      parole_obs_handle.set(v);                                             \
    }                                                                       \
  } while (0)

#define PAROLE_OBS_OBSERVE(name, v)                                         \
  do {                                                                      \
    auto& parole_obs_reg = ::parole::obs::MetricsRegistry::instance();      \
    if (parole_obs_reg.enabled()) {                                         \
      static ::parole::obs::Histogram& parole_obs_handle =                  \
          parole_obs_reg.histogram(name);                                   \
      parole_obs_handle.observe(static_cast<double>(v));                    \
    }                                                                       \
  } while (0)

#endif  // PAROLE_OBS_DISABLED
