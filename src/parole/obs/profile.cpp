#include "parole/obs/profile.hpp"

#include <fstream>
#include <functional>
#include <unordered_map>

#include "parole/common/table.hpp"
#include "parole/obs/json.hpp"

namespace parole::obs {

Profile build_profile(const std::vector<SpanRecord>& records) {
  Profile profile;
  profile.nodes.push_back(ProfileNode{});  // synthetic root
  profile.spans = records.size();

  std::unordered_map<std::uint64_t, std::size_t> record_by_id;
  record_by_id.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].id != 0) record_by_id[records[i].id] = i;
  }

  // Direct-children time per span id, for self = total - children.
  std::unordered_map<std::uint64_t, std::uint64_t> child_ns;
  for (const SpanRecord& record : records) {
    if (record.parent != 0 && record_by_id.count(record.parent) != 0) {
      child_ns[record.parent] += record.duration_ns;
    }
  }

  // Resolve each span to its name-path node, memoized per span id. The ring
  // is completion-ordered (parents complete after children), so resolution
  // recurses upward; depth is bounded by span nesting, not ring size.
  std::unordered_map<std::uint64_t, std::size_t> node_of_span;
  node_of_span.reserve(records.size());
  const std::function<std::size_t(std::size_t)> resolve =
      [&](std::size_t index) -> std::size_t {
    const SpanRecord& record = records[index];
    if (const auto it = node_of_span.find(record.id);
        it != node_of_span.end()) {
      return it->second;
    }
    std::size_t parent_node = 0;
    if (record.parent != 0) {
      const auto parent = record_by_id.find(record.parent);
      if (parent != record_by_id.end()) {
        parent_node = resolve(parent->second);
      } else {
        ++profile.orphans;  // ancestor fell off the ring; graft onto root
      }
    }
    auto [child, inserted] =
        profile.nodes[parent_node].children.try_emplace(record.name, 0);
    if (inserted) {
      child->second = profile.nodes.size();
      ProfileNode node;
      node.name = record.name;
      node.depth = profile.nodes[parent_node].depth + 1;
      profile.nodes.push_back(std::move(node));
    }
    const std::size_t node_index = child->second;
    node_of_span.emplace(record.id, node_index);
    return node_index;
  };

  for (std::size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& record = records[i];
    ProfileNode& node = profile.nodes[resolve(i)];
    ++node.count;
    node.total_ns += record.duration_ns;
    const auto children = child_ns.find(record.id);
    const std::uint64_t nested =
        children == child_ns.end() ? 0 : children->second;
    node.self_ns +=
        record.duration_ns > nested ? record.duration_ns - nested : 0;
  }

  // Root totals: the sum over its direct children, i.e. all root-span time.
  ProfileNode& root = profile.nodes[0];
  for (const auto& [name, index] : root.children) {
    root.count += profile.nodes[index].count;
    root.total_ns += profile.nodes[index].total_ns;
  }
  return profile;
}

std::string Profile::collapsed() const {
  std::string out;
  const std::function<void(std::size_t, const std::string&)> dfs =
      [&](std::size_t index, const std::string& prefix) {
        const ProfileNode& node = nodes[index];
        const std::string path =
            prefix.empty() ? node.name : prefix + ";" + node.name;
        if (index != 0 && node.self_ns > 0) {
          out += path;
          out.push_back(' ');
          out += std::to_string(node.self_ns);
          out.push_back('\n');
        }
        for (const auto& [name, child] : node.children) dfs(child, path);
      };
  dfs(0, "");
  return out;
}

std::string profile_table(const Profile& profile) {
  TablePrinter table("telemetry: profile");
  table.columns({"span", "count", "total_ms", "self_ms", "self_%"});
  const double root_ns =
      static_cast<double>(profile.nodes.empty() ? 0 : profile.nodes[0].total_ns);
  const std::function<void(std::size_t)> dfs = [&](std::size_t index) {
    const ProfileNode& node = profile.nodes[index];
    if (index != 0) {
      const std::string indent((node.depth - 1) * 2, ' ');
      const double share =
          root_ns > 0.0
              ? 100.0 * static_cast<double>(node.self_ns) / root_ns
              : 0.0;
      table.row({indent + node.name,
                 TablePrinter::integer(static_cast<long long>(node.count)),
                 TablePrinter::num(static_cast<double>(node.total_ns) / 1e6, 3),
                 TablePrinter::num(static_cast<double>(node.self_ns) / 1e6, 3),
                 TablePrinter::num(share, 1)});
    }
    for (const auto& [name, child] : profile.nodes[index].children) dfs(child);
  };
  dfs(0);
  return table.to_string();
}

Result<std::vector<SpanRecord>> spans_from_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{"report_io", "cannot open '" + path + "'"};
  std::vector<SpanRecord> spans;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto parsed = json_parse(line);
    if (!parsed.ok()) {
      return Error{"report_schema",
                   path + ":" + std::to_string(line_no) + ": " +
                       parsed.error().detail};
    }
    const JsonValue& value = parsed.value();
    if (!value.is_object()) continue;
    const JsonValue* type = value.find("type");
    if (type == nullptr || !type->is_string() ||
        type->as_string() != "span") {
      continue;
    }
    const auto number = [&](const char* key) -> std::uint64_t {
      const JsonValue* member = value.find(key);
      return member != nullptr && member->is_number() ? member->as_uint() : 0;
    };
    const JsonValue* name = value.find("name");
    if (name == nullptr || !name->is_string() || number("id") == 0) {
      return Error{"report_schema", path + ":" + std::to_string(line_no) +
                                        ": malformed span line"};
    }
    SpanRecord record;
    record.id = number("id");
    record.parent = number("parent");
    record.depth = static_cast<std::uint32_t>(number("depth"));
    record.thread_id = static_cast<std::uint32_t>(number("tid"));
    record.name = name->as_string();
    record.start_ns = number("start_ns");
    record.duration_ns = number("dur_ns");
    spans.push_back(std::move(record));
  }
  return spans;
}

}  // namespace parole::obs
