// Span-profile aggregation (DESIGN.md §11).
//
// A TraceRecorder snapshot is a flat ring of completed spans with
// parent-id links. build_profile() folds it into a call-tree profile: one
// node per distinct *name path* (root > solvers.solve > solvers.evaluate),
// carrying invocation count, total (inclusive) time and self (exclusive)
// time. Two export surfaces:
//
//   * profile_table()  — human-readable hot-path table via common/table,
//     rows in depth-first order, names indented by depth;
//   * Profile::collapsed() — the collapsed-stack format flamegraph.pl and
//     speedscope consume: one `frame;frame;frame <self_ns>` line per node
//     with nonzero self time. Because self times partition each root span's
//     duration, the collapsed values sum to the root spans' total durations
//     (exactly, modulo clamping of clock jitter).
//
// The ring is bounded, so a snapshot can be missing ancestors (dropped
// records). Spans whose parent id is absent are grafted onto the synthetic
// root and counted in Profile::orphans — the profile stays a tree and the
// sum property degrades gracefully instead of crashing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "parole/common/result.hpp"
#include "parole/obs/trace.hpp"

namespace parole::obs {

struct ProfileNode {
  std::string name;          // frame name ("" for the synthetic root)
  std::uint32_t depth{0};    // 0 = root; children of root are depth 1
  std::uint64_t count{0};    // completed spans aggregated into this node
  std::uint64_t total_ns{0};  // inclusive time
  std::uint64_t self_ns{0};   // exclusive time (total minus direct children)
  std::map<std::string, std::size_t> children;  // name -> index in nodes
};

struct Profile {
  // nodes[0] is the synthetic root; its total_ns is the sum of root-span
  // durations and its self_ns is always 0.
  std::vector<ProfileNode> nodes;
  std::uint64_t spans{0};    // records aggregated
  std::uint64_t orphans{0};  // records whose parent fell off the ring

  // Collapsed-stack export: `a;b;c <self_ns>` lines, depth-first, children
  // in name order (deterministic). Nodes with zero self time are omitted.
  [[nodiscard]] std::string collapsed() const;
};

// Fold a span snapshot into a call-tree profile. Handles any record order
// (the ring is completion-ordered, so parents complete after children).
[[nodiscard]] Profile build_profile(const std::vector<SpanRecord>& records);

// Hot-path table: name (indented by depth), count, total/self ms, and self
// as a share of all root time. Depth-first, children in name order.
[[nodiscard]] std::string profile_table(const Profile& profile);

// Re-hydrate span records from a schema-1 JSONL report ("span" lines; all
// other line types are skipped). This is what `parole_cli profile` feeds
// build_profile with.
[[nodiscard]] Result<std::vector<SpanRecord>> spans_from_report(
    const std::string& path);

}  // namespace parole::obs
