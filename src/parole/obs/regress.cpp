#include "parole/obs/regress.hpp"

#include <algorithm>
#include <fstream>
#include <map>

#include "parole/common/table.hpp"
#include "parole/obs/json.hpp"

namespace parole::obs {
namespace {

// All "result" rows of a schema-1 JSONL report, in file order.
Result<std::vector<JsonObject>> result_rows(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{"report_io", "cannot open '" + path + "'"};
  std::vector<JsonObject> rows;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto parsed = json_parse(line);
    if (!parsed.ok()) {
      return Error{"report_schema", path + ":" + std::to_string(line_no) +
                                        ": " + parsed.error().detail};
    }
    const JsonValue& value = parsed.value();
    if (!value.is_object()) continue;
    const JsonValue* type = value.find("type");
    if (type != nullptr && type->is_string() &&
        type->as_string() == "result") {
      rows.push_back(value.as_object());
    }
  }
  return rows;
}

// Identity of a row under the configured keys, e.g. "n=64 move=swap-local".
// Missing keys render as "?" so near-matches stay distinguishable.
std::string row_identity(const JsonObject& row,
                         const std::vector<std::string>& keys) {
  std::string identity;
  for (const std::string& key : keys) {
    if (!identity.empty()) identity.push_back(' ');
    identity += key;
    identity.push_back('=');
    const auto member = row.find(key);
    identity += member == row.end() ? "?" : member->second.dump();
  }
  return identity;
}

}  // namespace

Result<RegressReport> compare_reports(const std::string& baseline_path,
                                      const std::string& current_path,
                                      const RegressOptions& options) {
  auto baseline = result_rows(baseline_path);
  if (!baseline.ok()) return baseline.error();
  auto current = result_rows(current_path);
  if (!current.ok()) return current.error();

  RegressReport report;
  report.baseline_rows = baseline.value().size();
  report.current_rows = current.value().size();

  const auto problem = [&report](std::string what) {
    report.ok = false;
    report.problems.push_back(std::move(what));
  };

  if (baseline.value().empty()) {
    problem("baseline '" + baseline_path + "' has no result rows");
    return report;
  }

  std::map<std::string, const JsonObject*> current_by_identity;
  for (const JsonObject& row : current.value()) {
    current_by_identity[row_identity(row, options.keys)] = &row;
  }

  for (const JsonObject& baseline_row : baseline.value()) {
    const std::string identity = row_identity(baseline_row, options.keys);
    const auto match = current_by_identity.find(identity);
    if (match == current_by_identity.end()) {
      problem("row [" + identity + "] missing from current report");
      continue;
    }
    for (const RegressRule& rule : options.rules) {
      if (!rule.row_contains.empty() &&
          identity.find(rule.row_contains) == std::string::npos) {
        continue;
      }
      const auto base_member = baseline_row.find(rule.metric);
      const auto cur_member = match->second->find(rule.metric);
      if (base_member == baseline_row.end() ||
          !base_member->second.is_number()) {
        problem("row [" + identity + "] baseline lacks numeric '" +
                rule.metric + "'");
        continue;
      }
      if (cur_member == match->second->end() ||
          !cur_member->second.is_number()) {
        problem("row [" + identity + "] current lacks numeric '" +
                rule.metric + "'");
        continue;
      }
      const double base_value = base_member->second.as_double();
      if (!(base_value > 0.0)) {
        problem("row [" + identity + "] baseline '" + rule.metric +
                "' is not positive; cannot gate on a ratio");
        continue;
      }
      RegressCheck check;
      check.row = identity;
      check.metric = rule.metric;
      check.baseline = base_value;
      check.current = cur_member->second.as_double() * options.scale;
      check.ratio = check.current / check.baseline;
      check.ok = (rule.min_ratio <= 0.0 || check.ratio >= rule.min_ratio) &&
                 (rule.max_ratio <= 0.0 || check.ratio <= rule.max_ratio);
      if (!check.ok) report.ok = false;
      report.checks.push_back(std::move(check));
    }
  }
  return report;
}

RegressReport merge_best(const std::vector<RegressReport>& runs) {
  RegressReport merged;
  if (runs.empty()) {
    merged.ok = false;
    merged.problems.emplace_back("no runs to merge");
    return merged;
  }
  merged.baseline_rows = runs.front().baseline_rows;

  // Per (row, metric): the check with the best ratio across runs, in first
  // appearance order so the verdict table stays stable.
  std::vector<const RegressCheck*> best;
  std::map<std::string, std::size_t> index;
  for (const RegressReport& run : runs) {
    merged.current_rows = std::max(merged.current_rows, run.current_rows);
    for (const RegressCheck& check : run.checks) {
      const std::string key = check.row + "\n" + check.metric;
      const auto slot = index.find(key);
      if (slot == index.end()) {
        index.emplace(key, best.size());
        best.push_back(&check);
      } else {
        // "Best" must be verdict-aware: under a max_ratio rule a higher
        // ratio is the *failing* direction, so a passing check always beats
        // a failing one, and ratio only breaks ties within the same verdict.
        const RegressCheck& incumbent = *best[slot->second];
        if ((check.ok && !incumbent.ok) ||
            (check.ok == incumbent.ok && check.ratio > incumbent.ratio)) {
          best[slot->second] = &check;
        }
      }
    }
  }
  merged.ok = true;
  for (const RegressCheck* check : best) {
    if (!check->ok) merged.ok = false;
    merged.checks.push_back(*check);
  }

  // A problem survives only when every run reports it.
  for (const std::string& problem : runs.front().problems) {
    const bool everywhere = std::all_of(
        runs.begin() + 1, runs.end(), [&problem](const RegressReport& run) {
          return std::find(run.problems.begin(), run.problems.end(),
                           problem) != run.problems.end();
        });
    if (everywhere) {
      merged.ok = false;
      merged.problems.push_back(problem);
    }
  }
  return merged;
}

std::string RegressReport::to_string() const {
  TablePrinter table("bench: regression gate");
  table.columns({"row", "metric", "baseline", "current", "ratio", "status"});
  for (const RegressCheck& check : checks) {
    table.row({check.row, check.metric, TablePrinter::num(check.baseline, 3),
               TablePrinter::num(check.current, 3),
               TablePrinter::num(check.ratio, 3),
               check.ok ? "ok" : "FAIL"});
  }
  std::string out = table.to_string();
  for (const std::string& what : problems) {
    out += "problem: " + what + "\n";
  }
  out += std::string("verdict: ") + (ok ? "PASS" : "FAIL") + "\n";
  return out;
}

}  // namespace parole::obs
