// Benchmark regression gate (DESIGN.md §11).
//
// compare_reports() diffs two BENCH_*.json RunReports (schema-1 JSONL):
// result rows are matched by an identity key tuple (for the evaluator bench:
// n + move), then per-metric ratio rules are applied — fail when
// current/baseline drops below min_ratio or rises above max_ratio. A row
// present in the baseline but missing from the current report is a failure
// (a silently vanished configuration must not turn the gate green).
//
// CI gates on *dimensionless* metrics only (the evaluator's `speedup` —
// incremental vs full evaluation throughput on the same machine in the same
// process). Raw evals/sec vary with runner hardware; a ratio of two numbers
// measured side by side does not, so a checked-in baseline stays meaningful
// across machines. The default rule (speedup, min_ratio 0.85) is the ">15%
// regression fails the build" acceptance gate.
#pragma once

#include <string>
#include <vector>

#include "parole/common/result.hpp"

namespace parole::obs {

struct RegressRule {
  std::string metric;     // numeric key inside matched result rows
  double min_ratio{0.0};  // fail when current/baseline < min_ratio (0 = off)
  double max_ratio{0.0};  // fail when current/baseline > max_ratio (0 = off)
  // Apply the rule only to rows whose rendered identity contains this
  // substring (empty = every row). Lets one invocation hold different rows
  // to different tolerances — e.g. the sampler-armed parity row is a ±5%
  // two-sided band while the speedup rows keep the one-sided floor.
  std::string row_contains;
};

struct RegressOptions {
  // Result-row identity: rows agree when every key dumps to the same value.
  std::vector<std::string> keys{"n", "move"};
  std::vector<RegressRule> rules{{"speedup", 0.85, 0.0, ""}};
  // Multiplier applied to the current report's gated metrics before the
  // ratio check. CI's self-test injects an artificial slowdown this way to
  // prove the gate actually fires (scale 0.82 ≈ an 18% regression).
  double scale{1.0};
};

struct RegressCheck {
  std::string row;     // rendered identity, e.g. "n=64 move=swap-local"
  std::string metric;
  double baseline{0.0};
  double current{0.0};  // after options.scale
  double ratio{0.0};    // current/baseline
  bool ok{false};
};

struct RegressReport {
  bool ok{true};
  std::vector<RegressCheck> checks;
  std::vector<std::string> problems;  // missing rows/metrics, bad baselines
  std::size_t baseline_rows{0};
  std::size_t current_rows{0};

  // Human-readable verdict table (one row per check, problems appended).
  [[nodiscard]] std::string to_string() const;
};

// Diff two reports. Returns an error only when a file cannot be read or
// parsed; gate verdicts (including missing rows) land in RegressReport.
[[nodiscard]] Result<RegressReport> compare_reports(
    const std::string& baseline_path, const std::string& current_path,
    const RegressOptions& options = {});

// Best-of-N merge across repeated comparisons of the same baseline.
// Micro-bench timing windows are noisy on shared runners, and the noise is
// per-run independent while a real regression depresses every run — so the
// gate takes, per (row, metric), the check with the best ratio across runs,
// and keeps only problems that occur in *every* run (a row missing from one
// run but present in another is a flake, not a vanished configuration).
[[nodiscard]] RegressReport merge_best(const std::vector<RegressReport>& runs);

}  // namespace parole::obs
