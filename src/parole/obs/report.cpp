#include "parole/obs/report.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include <unistd.h>

#include "parole/common/table.hpp"

namespace parole::obs {
namespace {

JsonObject sample_to_object(const MetricSample& sample) {
  JsonObject line;
  line["name"] = sample.name;
  switch (sample.kind) {
    case MetricSample::Kind::kCounter:
      line["type"] = "counter";
      line["value"] = static_cast<std::uint64_t>(sample.value);
      break;
    case MetricSample::Kind::kGauge:
      line["type"] = "gauge";
      line["value"] = sample.value;
      break;
    case MetricSample::Kind::kHistogram: {
      line["type"] = "histogram";
      line["count"] = static_cast<std::uint64_t>(sample.value);
      line["sum"] = sample.sum;
      JsonArray bounds;
      for (const double b : sample.bounds) bounds.emplace_back(b);
      JsonArray counts;
      for (const std::uint64_t c : sample.bucket_counts) counts.emplace_back(c);
      line["bounds"] = std::move(bounds);
      line["counts"] = std::move(counts);
      line["p50"] = sample.p50;
      line["p95"] = sample.p95;
      line["p99"] = sample.p99;
      break;
    }
  }
  return line;
}

// Derived latency distribution as a histogram line: log-spaced buckets from
// 1µs to 10s (latencies are on the ns span clock) with *exact* quantiles
// computed from the sample rather than bucket-interpolated.
JsonObject latency_histogram_line(const std::string& name,
                                  const std::vector<std::uint64_t>& sorted) {
  Histogram hist(Histogram::log_bounds(1e3, 1e10, 2));
  double sum = 0.0;
  for (const std::uint64_t v : sorted) {
    hist.observe(static_cast<double>(v));
    sum += static_cast<double>(v);
  }
  JsonObject line;
  line["type"] = "histogram";
  line["name"] = name;
  line["count"] = static_cast<std::uint64_t>(sorted.size());
  line["sum"] = sum;
  JsonArray bounds;
  for (const double b : hist.bounds()) bounds.emplace_back(b);
  JsonArray counts;
  for (const std::uint64_t c : hist.counts()) counts.emplace_back(c);
  line["bounds"] = std::move(bounds);
  line["counts"] = std::move(counts);
  line["p50"] = sample_quantile(sorted, 0.50);
  line["p95"] = sample_quantile(sorted, 0.95);
  line["p99"] = sample_quantile(sorted, 0.99);
  return line;
}

Status check(bool ok, const std::string& what) {
  if (ok) return ok_status();
  return Error{"report_schema", what};
}

Status require_number(const JsonValue& object, const char* key) {
  const JsonValue* member = object.find(key);
  return check(member != nullptr && member->is_number(),
               std::string("missing or non-numeric '") + key + "'");
}

Status require_string(const JsonValue& object, const char* key) {
  const JsonValue* member = object.find(key);
  return check(member != nullptr && member->is_string() &&
                   !member->as_string().empty(),
               std::string("missing or empty '") + key + "'");
}

}  // namespace

JsonObject txevent_to_object(const TxEvent& event) {
  JsonObject line;
  line["type"] = "txevent";
  line["tx"] = event.tx;
  line["event"] = std::string(to_string(event.kind));
  line["step"] = event.step;
  line["t_ns"] = event.t_ns;
  if (event.batch != kNoBatch) line["batch"] = event.batch;
  // Reorder deltas always carry both positions — 0 is a legal position.
  const bool reordered = event.kind == TxEventKind::kReordered;
  if (reordered || event.a != 0) line["a"] = event.a;
  if (reordered || event.b != 0) line["b"] = event.b;
  return line;
}

void RunReport::set_meta(const std::string& key, JsonValue value) {
  meta_[key] = std::move(value);
}

void RunReport::add_result(JsonObject row) {
  row["type"] = "result";
  lines_.push_back(std::move(row));
}

void RunReport::add_flow(JsonObject row) {
  row["type"] = "flow";
  lines_.push_back(std::move(row));
}

void RunReport::capture_metrics(const MetricsRegistry& registry) {
  for (const MetricSample& sample : registry.snapshot()) {
    lines_.push_back(sample_to_object(sample));
  }
}

void RunReport::capture_trace(const TraceRecorder& recorder,
                              std::size_t tail) {
  std::vector<SpanRecord> spans = recorder.snapshot();
  const std::size_t begin =
      tail != 0 && spans.size() > tail ? spans.size() - tail : 0;
  for (std::size_t i = begin; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    JsonObject line;
    line["type"] = "span";
    line["name"] = span.name;
    line["id"] = span.id;
    line["parent"] = span.parent;
    line["depth"] = static_cast<std::uint64_t>(span.depth);
    line["tid"] = static_cast<std::uint64_t>(span.thread_id);
    line["start_ns"] = span.start_ns;
    line["dur_ns"] = span.duration_ns;
    lines_.push_back(std::move(line));
  }
}

void RunReport::add_fault(std::uint64_t step, const std::string& kind,
                          std::uint64_t subject, const std::string& detail) {
  JsonObject line;
  line["type"] = "fault";
  line["kind"] = kind;
  line["step"] = step;
  line["subject"] = subject;
  if (!detail.empty()) line["detail"] = detail;
  lines_.push_back(std::move(line));
}

void RunReport::capture_journal(const TxJournal& journal) {
  capture_journal_tail(journal, 0);
}

void RunReport::capture_journal_tail(const TxJournal& journal,
                                     std::size_t tail) {
  const std::vector<TxEvent> events = journal.snapshot();
  const std::size_t begin =
      tail != 0 && events.size() > tail ? events.size() - tail : 0;
  for (std::size_t i = begin; i < events.size(); ++i) {
    lines_.push_back(txevent_to_object(events[i]));
  }
  const TxJournal::LatencySummary latencies = journal.latencies();
  lines_.push_back(latency_histogram_line("parole.journal.tx_latency_ns",
                                          latencies.tx_latency_ns));
  lines_.push_back(latency_histogram_line("parole.journal.batch_e2e_ns",
                                          latencies.batch_e2e_ns));
}

std::string RunReport::to_jsonl() const {
  JsonObject meta = meta_;
  meta["type"] = "meta";
  meta["report"] = name_;
  meta["schema"] = kReportSchemaVersion;

  std::string out = JsonValue(std::move(meta)).dump();
  out.push_back('\n');
  for (const JsonObject& line : lines_) {
    out += JsonValue(line).dump();
    out.push_back('\n');
  }
  return out;
}

Status RunReport::write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Error{"report_io", "cannot open '" + path + "' for writing"};
  }
  const std::string body = to_jsonl();
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  if (written != body.size()) {
    return Error{"report_io", "short write to '" + path + "'"};
  }
  return ok_status();
}

Status RunReport::validate_line(const std::string& line) {
  auto parsed = json_parse(line);
  if (!parsed.ok()) return parsed.error();
  const JsonValue& value = parsed.value();
  if (!value.is_object()) return check(false, "line is not a JSON object");

  const JsonValue* type = value.find("type");
  if (type == nullptr || !type->is_string()) {
    return check(false, "missing 'type' discriminator");
  }
  const std::string& kind = type->as_string();

  if (kind == "meta") {
    if (Status s = require_string(value, "report"); !s.ok()) return s;
    const JsonValue* schema = value.find("schema");
    return check(schema != nullptr && schema->is_number() &&
                     schema->as_uint() == kReportSchemaVersion,
                 "meta line missing schema version " +
                     std::to_string(kReportSchemaVersion));
  }
  if (kind == "result") {
    return check(value.as_object().size() > 1, "empty result row");
  }
  if (kind == "counter" || kind == "gauge") {
    if (Status s = require_string(value, "name"); !s.ok()) return s;
    return require_number(value, "value");
  }
  if (kind == "histogram") {
    if (Status s = require_string(value, "name"); !s.ok()) return s;
    for (const char* key : {"count", "sum"}) {
      if (Status s = require_number(value, key); !s.ok()) return s;
    }
    const JsonValue* bounds = value.find("bounds");
    const JsonValue* counts = value.find("counts");
    if (bounds == nullptr || !bounds->is_array() || counts == nullptr ||
        !counts->is_array()) {
      return check(false, "histogram missing bounds/counts arrays");
    }
    return check(counts->as_array().size() == bounds->as_array().size() + 1,
                 "histogram counts must have bounds+1 entries");
  }
  if (kind == "fault") {
    if (Status s = require_string(value, "kind"); !s.ok()) return s;
    return require_number(value, "step");
  }
  if (kind == "span") {
    if (Status s = require_string(value, "name"); !s.ok()) return s;
    for (const char* key :
         {"id", "parent", "depth", "tid", "start_ns", "dur_ns"}) {
      if (Status s = require_number(value, key); !s.ok()) return s;
    }
    return check(value.find("id")->as_uint() > 0, "span id must be positive");
  }
  if (kind == "txevent") {
    if (Status s = require_string(value, "event"); !s.ok()) return s;
    for (const char* key : {"tx", "step", "t_ns"}) {
      if (Status s = require_number(value, key); !s.ok()) return s;
    }
    // The event name must belong to the lifecycle taxonomy.
    const std::string& event = value.find("event")->as_string();
    for (std::size_t i = 0; i < kTxEventKindCount; ++i) {
      if (event == to_string(static_cast<TxEventKind>(i))) return ok_status();
    }
    return check(false, "unknown lifecycle event '" + event + "'");
  }
  if (kind == "flow") {
    if (Status s = require_string(value, "scope"); !s.ok()) return s;
    if (Status s = require_number(value, "amount_gwei"); !s.ok()) return s;
    const std::string& scope = value.find("scope")->as_string();
    if (scope == "actor") return require_string(value, "actor");
    if (scope == "reason") return require_string(value, "reason");
    if (scope == "epoch") {
      if (Status s = require_number(value, "epoch"); !s.ok()) return s;
      return require_string(value, "reason");
    }
    return check(false, "unknown flow scope '" + scope + "'");
  }
  return check(false, "unknown line type '" + kind + "'");
}

Status RunReport::validate_file(const std::string& path) {
  // Strict mode: a torn tail is as fatal as any other schema violation.
  auto validation = validate_file_tolerant(path);
  if (!validation.ok()) return validation.error();
  if (validation.value().torn_tail) {
    return Error{"report_schema", path + ": torn final line"};
  }
  return ok_status();
}

Result<RunReport::FileValidation> RunReport::validate_file_tolerant(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{"report_io", "cannot open '" + path + "'"};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string body = buffer.str();

  FileValidation validation;
  bool saw_meta = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t newline = body.find('\n', pos);
    if (newline == std::string::npos) {
      // Bytes after the last newline: the process died mid-append. Only this
      // final fragment is forgiven — and it is dropped, not counted, even
      // when it happens to parse (there is no way to know it was complete).
      validation.torn_tail = true;
      break;
    }
    const std::string line = body.substr(pos, newline - pos);
    pos = newline + 1;
    ++line_no;
    if (line.empty()) continue;
    if (Status s = validate_line(line); !s.ok()) {
      return Error{"report_schema", path + ":" + std::to_string(line_no) +
                                        ": " + s.error().detail};
    }
    // The first complete line must be the meta header.
    auto parsed = json_parse(line);
    const std::string& kind = parsed.value().find("type")->as_string();
    if (!saw_meta) {
      if (kind != "meta") {
        return Error{"report_schema", path + ": first line must be meta"};
      }
      saw_meta = true;
    }
    ++validation.lines;
  }
  if (!saw_meta) return Error{"report_schema", path + ": empty report"};
  return validation;
}

Result<StreamingReport> StreamingReport::open(const std::string& path,
                                              const std::string& name,
                                              JsonObject meta) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Error{"report_io", "cannot open '" + path + "' for writing"};
  }
  StreamingReport report(file, path);
  meta["type"] = "meta";
  meta["report"] = name;
  meta["schema"] = kReportSchemaVersion;
  if (Status s = report.append(meta); !s.ok()) return s.error();
  return report;
}

StreamingReport::StreamingReport(StreamingReport&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)),
      lines_written_(other.lines_written_) {}

StreamingReport& StreamingReport::operator=(StreamingReport&& other) noexcept {
  if (this != &other) {
    close();
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    lines_written_ = other.lines_written_;
  }
  return *this;
}

StreamingReport::~StreamingReport() { close(); }

Status StreamingReport::append(const JsonObject& line) {
  if (file_ == nullptr) {
    return Error{"report_io", "streaming report is closed"};
  }
  std::string out = JsonValue(line).dump();
  out.push_back('\n');
  if (std::fwrite(out.data(), 1, out.size(), file_) != out.size() ||
      std::fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
    return Error{"report_io", "short write to '" + path_ + "'"};
  }
  ++lines_written_;
  return ok_status();
}

Status StreamingReport::add_result(JsonObject row) {
  row["type"] = "result";
  return append(row);
}

Status StreamingReport::add_fault(std::uint64_t step, const std::string& kind,
                                  std::uint64_t subject,
                                  const std::string& detail) {
  JsonObject line;
  line["type"] = "fault";
  line["kind"] = kind;
  line["step"] = step;
  line["subject"] = subject;
  if (!detail.empty()) line["detail"] = detail;
  return append(line);
}

Status StreamingReport::add_txevent(const TxEvent& event) {
  return append(txevent_to_object(event));
}

void StreamingReport::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::string metrics_table(const MetricsRegistry& registry) {
  TablePrinter table("telemetry: metrics");
  table.columns({"metric", "kind", "value", "sum", "p50", "p95", "p99"});
  for (const MetricSample& sample : registry.snapshot()) {
    const bool histogram = sample.kind == MetricSample::Kind::kHistogram;
    const char* kind = sample.kind == MetricSample::Kind::kCounter ? "counter"
                       : sample.kind == MetricSample::Kind::kGauge
                           ? "gauge"
                           : "histogram";
    table.row({sample.name, kind, TablePrinter::num(sample.value, 3),
               histogram ? TablePrinter::num(sample.sum, 3) : "",
               histogram ? TablePrinter::num(sample.p50, 3) : "",
               histogram ? TablePrinter::num(sample.p95, 3) : "",
               histogram ? TablePrinter::num(sample.p99, 3) : ""});
  }
  return table.to_string();
}

}  // namespace parole::obs
