// RunReport: the machine-readable sink of a run (DESIGN.md §8).
//
// One JSONL file per run, one JSON object per line, every line carrying a
// "type" discriminator. Schema version 1:
//
//   {"type":"meta","report":<name>,"schema":1, ...free-form meta...}
//   {"type":"result", ...one free-form row per bench/table result...}
//   {"type":"counter","name":...,"value":...}
//   {"type":"gauge","name":...,"value":...}
//   {"type":"histogram","name":...,"count":...,"sum":...,
//    "bounds":[...],"counts":[...]}            # counts has bounds+1 entries
//   {"type":"span","name":...,"id":...,"parent":...,"depth":...,
//    "start_ns":...,"dur_ns":...}              # parent 0 = root
//   {"type":"fault","kind":...,"step":...,"subject":...,"detail":...}
//                                              # one injected chaos fault
//
// The meta line always comes first. validate_file()/validate_line() are the
// single source of truth for the schema — tests, `parole_cli validate` and CI
// all go through them. The human-readable counterpart is metrics_table()
// (the common/table printer over the same registry snapshot).
#pragma once

#include <string>

#include "parole/common/result.hpp"
#include "parole/obs/json.hpp"
#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"

namespace parole::obs {

inline constexpr std::uint64_t kReportSchemaVersion = 1;

class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  // Extra key/values for the meta line (seed, scale, scenario, ...).
  void set_meta(const std::string& key, JsonValue value);

  // One free-form result row (a bench table row, a campaign summary, ...).
  void add_result(JsonObject row);

  // Append a metrics snapshot: every registered counter/gauge/histogram.
  void capture_metrics(const MetricsRegistry& registry =
                           MetricsRegistry::instance());
  // Append every completed span currently in the trace ring.
  void capture_trace(const TraceRecorder& recorder =
                         TraceRecorder::instance());
  // One injected chaos fault (rollup/chaos FaultLog entries go through here;
  // the seeded fault log is part of the reproducibility artifact).
  void add_fault(std::uint64_t step, const std::string& kind,
                 std::uint64_t subject, const std::string& detail);

  [[nodiscard]] std::size_t line_count() const {
    return 1 + lines_.size();  // meta + body
  }

  // Serialize to JSONL (meta line first). write() creates/truncates `path`.
  [[nodiscard]] std::string to_jsonl() const;
  Status write(const std::string& path) const;

  [[nodiscard]] const std::string& name() const { return name_; }

  // Schema validation; error detail names the offending line.
  static Status validate_line(const std::string& line);
  static Status validate_file(const std::string& path);

 private:
  std::string name_;
  JsonObject meta_;
  std::vector<JsonObject> lines_;
};

// Human-readable dump of a registry snapshot via common/table (one row per
// metric; histograms show count/sum).
std::string metrics_table(const MetricsRegistry& registry =
                              MetricsRegistry::instance());

}  // namespace parole::obs
