// RunReport: the machine-readable sink of a run (DESIGN.md §8).
//
// One JSONL file per run, one JSON object per line, every line carrying a
// "type" discriminator. Schema version 1:
//
//   {"type":"meta","report":<name>,"schema":1, ...free-form meta...}
//   {"type":"result", ...one free-form row per bench/table result...}
//   {"type":"counter","name":...,"value":...}
//   {"type":"gauge","name":...,"value":...}
//   {"type":"histogram","name":...,"count":...,"sum":...,
//    "bounds":[...],"counts":[...],            # counts has bounds+1 entries
//    "p50":...,"p95":...,"p99":...}            # quantile estimates
//   {"type":"span","name":...,"id":...,"parent":...,"depth":...,"tid":...,
//    "start_ns":...,"dur_ns":...}              # parent 0 = root
//   {"type":"fault","kind":...,"step":...,"subject":...,"detail":...}
//                                              # one injected chaos fault
//   {"type":"txevent","tx":...,"event":...,"step":...,"t_ns":...,
//    "batch":...,"a":...,"b":...}              # one lifecycle event; batch/
//                                              # a/b present when nonzero
//   {"type":"flow","scope":"actor|reason|epoch","amount_gwei":...}
//                                              # value-flow attribution
//                                              # (DESIGN.md §16); actor scope
//                                              # carries "actor", reason scope
//                                              # "reason", epoch scope both
//                                              # "epoch" and "reason"
//
// The meta line always comes first. validate_file()/validate_line() are the
// single source of truth for the schema — tests, `parole_cli validate` and CI
// all go through them. The human-readable counterpart is metrics_table()
// (the common/table printer over the same registry snapshot).
#pragma once

#include <cstdio>
#include <string>

#include "parole/common/result.hpp"
#include "parole/obs/json.hpp"
#include "parole/obs/journal.hpp"
#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"

namespace parole::obs {

inline constexpr std::uint64_t kReportSchemaVersion = 1;

class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  // Extra key/values for the meta line (seed, scale, scenario, ...).
  void set_meta(const std::string& key, JsonValue value);

  // One free-form result row (a bench table row, a campaign summary, ...).
  void add_result(JsonObject row);

  // One value-flow attribution line (ValueFlowTracker::report_lines rows go
  // through here; the row carries scope/actor/reason/epoch/amount_gwei and
  // this stamps the discriminator).
  void add_flow(JsonObject row);

  // Append a metrics snapshot: every registered counter/gauge/histogram.
  void capture_metrics(const MetricsRegistry& registry =
                           MetricsRegistry::instance());
  // Append every completed span currently in the trace ring — or, with a
  // nonzero `tail`, only the newest `tail` of them (the flight recorder caps
  // its bundle this way).
  void capture_trace(const TraceRecorder& recorder = TraceRecorder::instance(),
                     std::size_t tail = 0);
  // One injected chaos fault (rollup/chaos FaultLog entries go through here;
  // the seeded fault log is part of the reproducibility artifact).
  void add_fault(std::uint64_t step, const std::string& kind,
                 std::uint64_t subject, const std::string& detail);
  // Append every lifecycle event in the journal as a txevent line, followed
  // by two derived latency histograms (parole.journal.tx_latency_ns,
  // parole.journal.batch_e2e_ns) with exact p50/p95/p99 over the journaled
  // durations and log-spaced buckets.
  void capture_journal(const TxJournal& journal);
  // Like capture_journal but keeping only the newest `tail` events (0 = all);
  // the latency histograms still cover every journaled event.
  void capture_journal_tail(const TxJournal& journal, std::size_t tail);

  [[nodiscard]] std::size_t line_count() const {
    return 1 + lines_.size();  // meta + body
  }

  // Serialize to JSONL (meta line first). write() creates/truncates `path`.
  [[nodiscard]] std::string to_jsonl() const;
  Status write(const std::string& path) const;

  [[nodiscard]] const std::string& name() const { return name_; }

  // Schema validation; error detail names the offending line.
  static Status validate_line(const std::string& line);
  static Status validate_file(const std::string& path);

  // Crash-tolerant validation (DESIGN.md §10). A process killed mid-append
  // can leave one torn fragment after the last newline; that — and only
  // that — is tolerated and reported instead of failing. Invalid
  // newline-terminated lines anywhere are still hard errors, as is a report
  // whose first complete line is not the meta header.
  struct FileValidation {
    std::size_t lines{0};   // complete, schema-valid lines (meta included)
    bool torn_tail{false};  // a partial final line was dropped
  };
  static Result<FileValidation> validate_file_tolerant(
      const std::string& path);

 private:
  std::string name_;
  JsonObject meta_;
  std::vector<JsonObject> lines_;
};

// Streaming, crash-durable run report (DESIGN.md §10). Where RunReport
// buffers in memory and writes once at the end — losing everything on a
// crash — StreamingReport appends each line to disk as it happens, flushing
// and fsync'ing per line, so a SIGKILL costs at most the line being written.
// The file stays a valid schema-1 JSONL report (meta line first) modulo a
// possible torn tail, which RunReport::validate_file_tolerant() accepts.
class StreamingReport {
 public:
  // Creates/truncates `path` and durably writes the meta line.
  static Result<StreamingReport> open(const std::string& path,
                                      const std::string& name,
                                      JsonObject meta = {});

  StreamingReport(StreamingReport&& other) noexcept;
  StreamingReport& operator=(StreamingReport&& other) noexcept;
  StreamingReport(const StreamingReport&) = delete;
  StreamingReport& operator=(const StreamingReport&) = delete;
  ~StreamingReport();

  // Append one schema line durably (fwrite + fflush + fsync).
  Status append(const JsonObject& line);
  // Convenience wrappers mirroring RunReport.
  Status add_result(JsonObject row);
  Status add_fault(std::uint64_t step, const std::string& kind,
                   std::uint64_t subject, const std::string& detail);
  Status add_txevent(const TxEvent& event);

  [[nodiscard]] std::size_t lines_written() const { return lines_written_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  void close();

 private:
  StreamingReport(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  std::FILE* file_{nullptr};
  std::string path_;
  std::size_t lines_written_{0};
};

// One lifecycle event as a schema-1 txevent line. RunReport's journal
// captures and the telemetry server's /journal/tail both emit through this
// so the endpoint can never drift from the file schema.
JsonObject txevent_to_object(const TxEvent& event);

// Human-readable dump of a registry snapshot via common/table (one row per
// metric; histograms show count/sum).
std::string metrics_table(const MetricsRegistry& registry =
                              MetricsRegistry::instance());

}  // namespace parole::obs
