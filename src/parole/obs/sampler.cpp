#include "parole/obs/sampler.hpp"

#include <algorithm>
#include <chrono>

#include "parole/obs/trace.hpp"

namespace parole::obs {

MetricsSampler::MetricsSampler(SamplerConfig config, MetricsRegistry& registry)
    : config_(config), registry_(registry) {
  if (config_.window < 2) config_.window = 2;  // a window needs two endpoints
  if (config_.interval_ms == 0) config_.interval_ms = 1;
}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::start() {
  if (running_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard lock(wake_mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void MetricsSampler::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard lock(wake_mutex_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

void MetricsSampler::run() {
  // Tick immediately so a short-lived run still gets a first sample, then on
  // the configured cadence until stop() wakes us.
  sample_now();
  std::unique_lock lock(wake_mutex_);
  while (!stop_requested_) {
    wake_.wait_for(lock, std::chrono::milliseconds(config_.interval_ms));
    if (stop_requested_) break;
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

void MetricsSampler::sample_now() {
  Snap snap;
  snap.t_ns = TraceRecorder::instance().now_ns();
  snap.metrics = registry_.snapshot();
  std::lock_guard lock(mutex_);
  ring_.push_back(std::move(snap));
  while (ring_.size() > config_.window) ring_.pop_front();
  ++samples_taken_;
}

SamplerView MetricsSampler::view() const {
  std::lock_guard lock(mutex_);
  SamplerView out;
  out.samples_taken = samples_taken_;
  if (ring_.empty()) return out;

  const Snap& newest = ring_.back();
  const Snap& oldest = ring_.front();
  out.t_ns = newest.t_ns;
  const double dt =
      static_cast<double>(newest.t_ns - oldest.t_ns) / 1e9;  // 0 if one snap
  out.window_seconds = dt;

  // Both snapshots are sorted by name; walk them in lockstep. A metric that
  // appeared mid-window has no old entry — its whole value is the delta.
  std::size_t old_index = 0;
  out.stats.reserve(newest.metrics.size());
  for (const MetricSample& cur : newest.metrics) {
    while (old_index < oldest.metrics.size() &&
           oldest.metrics[old_index].name < cur.name) {
      ++old_index;
    }
    const MetricSample* old =
        (old_index < oldest.metrics.size() &&
         oldest.metrics[old_index].name == cur.name &&
         oldest.metrics[old_index].kind == cur.kind)
            ? &oldest.metrics[old_index]
            : nullptr;

    WindowStat stat;
    stat.kind = cur.kind;
    stat.name = cur.name;
    stat.value = cur.value;
    stat.delta = cur.value - (old != nullptr ? old->value : 0.0);
    stat.rate = dt > 0.0 ? stat.delta / dt : 0.0;
    if (cur.kind == MetricSample::Kind::kHistogram) {
      stat.sum = cur.sum;
      stat.bounds = cur.bounds;
      stat.bucket_counts = cur.bucket_counts;
      // Window bucket deltas. Counter-like bucket counts only grow; a
      // registry reset mid-window would make them shrink, in which case the
      // window falls back to the cumulative distribution.
      std::vector<std::uint64_t> window_counts = cur.bucket_counts;
      if (old != nullptr && old->bucket_counts.size() == window_counts.size()) {
        bool monotone = true;
        for (std::size_t i = 0; i < window_counts.size(); ++i) {
          if (old->bucket_counts[i] > window_counts[i]) {
            monotone = false;
            break;
          }
        }
        if (monotone) {
          for (std::size_t i = 0; i < window_counts.size(); ++i) {
            window_counts[i] -= old->bucket_counts[i];
          }
        }
      }
      stat.window_p50 = bucket_quantile(cur.bounds, window_counts, 0.50);
      stat.window_p95 = bucket_quantile(cur.bounds, window_counts, 0.95);
      stat.window_p99 = bucket_quantile(cur.bounds, window_counts, 0.99);
    }
    out.stats.push_back(std::move(stat));
  }
  return out;
}

}  // namespace parole::obs
