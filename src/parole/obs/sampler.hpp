// MetricsSampler: periodic registry snapshots with sliding-window rates and
// quantiles (DESIGN.md §13).
//
// The MetricsRegistry holds cumulative values — good for end-of-run reports,
// useless for "what is the pipeline doing *now*". The sampler closes that
// gap: a background thread snapshots the registry on a fixed cadence into a
// bounded ring, and view() derives per-window values from the ring:
//
//   counters    window rate (delta / window seconds) — tx/s, evals/s
//   gauges      latest value plus the per-window delta
//   histograms  window rate of observations plus rolling p50/p95/p99 over
//               the *window's* bucket deltas (newest ring entry minus
//               oldest), so the quantiles track the last few seconds of
//               traffic, not the whole run
//
// The sampler is read-only over the registry: it takes the registry snapshot
// mutex briefly per tick and never touches hot-path atomics, so arming it
// must not perturb the workload (bench/evaluator_throughput carries a
// sampler-armed parity row gated at ±5%, and deterministic-mode results are
// clock-independent by construction). sample_now() takes one tick
// synchronously — tests and the exposition endpoint use it to get fresh data
// without depending on thread timing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "parole/obs/metrics.hpp"

namespace parole::obs {

struct SamplerConfig {
  std::uint64_t interval_ms{250};  // tick cadence of the background thread
  std::size_t window{16};          // ring depth; window = oldest..newest span
};

// One metric's view over the current window.
struct WindowStat {
  MetricSample::Kind kind{MetricSample::Kind::kCounter};
  std::string name;
  double value{0.0};   // cumulative (counter), current (gauge), count (hist)
  double delta{0.0};   // change across the window
  double rate{0.0};    // delta per second (0 when the window is a point)
  // Histogram-only: cumulative detail for exposition plus rolling quantiles
  // over the window's bucket deltas.
  double sum{0.0};
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  // cumulative, bounds+1 entries
  double window_p50{0.0};
  double window_p95{0.0};
  double window_p99{0.0};
};

struct SamplerView {
  std::uint64_t t_ns{0};           // newest sample's timestamp
  std::uint64_t samples_taken{0};  // ticks since construction
  double window_seconds{0.0};      // oldest..newest span covered by the ring
  std::vector<WindowStat> stats;   // sorted by name (registry order)
};

class MetricsSampler {
 public:
  explicit MetricsSampler(SamplerConfig config = {},
                          MetricsRegistry& registry =
                              MetricsRegistry::instance());
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  // Start/stop the background tick thread. start() on a running sampler and
  // stop() on a stopped one are no-ops; the destructor stops.
  void start();
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }

  // Take one tick synchronously (also what the thread calls).
  void sample_now();

  // Derive the current window view from the ring. Empty stats before the
  // first tick.
  [[nodiscard]] SamplerView view() const;

  [[nodiscard]] const SamplerConfig& config() const { return config_; }

 private:
  struct Snap {
    std::uint64_t t_ns{0};
    std::vector<MetricSample> metrics;  // sorted by name
  };

  void run();

  SamplerConfig config_;
  MetricsRegistry& registry_;
  mutable std::mutex mutex_;  // guards ring_ and samples_taken_
  std::deque<Snap> ring_;
  std::uint64_t samples_taken_{0};

  std::thread thread_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::atomic<bool> running_{false};
  bool stop_requested_{false};  // guarded by wake_mutex_
};

}  // namespace parole::obs
