#include "parole/obs/trace.hpp"

#include <chrono>

#include "parole/obs/metrics.hpp"

namespace parole::obs {
namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Innermost live span on this thread; 0 when none. Spans restore the previous
// value on destruction, which gives correct nesting for strictly scoped
// (RAII) spans without a stack allocation.
thread_local std::uint64_t tls_current_span = 0;
thread_local std::uint32_t tls_depth = 0;

// Drops are rare but can run hot once the ring saturates; cache the handle
// the way the PAROLE_OBS_COUNT macro does (handles are stable for the
// registry's life). Called under the trace mutex — safe, the registry never
// locks back into the recorder.
void count_dropped_record() {
  MetricsRegistry& registry = MetricsRegistry::instance();
  if (!registry.enabled()) return;
  static Counter& counter = registry.counter("parole.obs.trace_dropped");
  counter.add(1);
}

}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::TraceRecorder() : epoch_ns_(steady_ns()) {
  ring_.resize(capacity_);
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, SpanRecord{});
  write_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::size_t TraceRecorder::capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

void TraceRecorder::record(SpanRecord record) {
  std::lock_guard lock(mutex_);
  if (size_ == capacity_) {
    ++dropped_;
    count_dropped_record();
  }
  ring_[write_] = std::move(record);
  write_ = (write_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

std::vector<SpanRecord> TraceRecorder::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(size_);
  // Oldest record sits at write_ once the ring has wrapped, at 0 before.
  const std::size_t begin = size_ == capacity_ ? write_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(begin + i) % capacity_]);
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mutex_);
  write_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::uint64_t TraceRecorder::now_ns() const { return steady_ns() - epoch_ns_; }

std::uint32_t TraceRecorder::current_thread_id() noexcept {
  static std::atomic<std::uint32_t> next_thread{1};
  thread_local const std::uint32_t id =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Span::start(Timing timing) {
  TraceRecorder& recorder = TraceRecorder::instance();
  armed_ = TraceRecorder::enabled();
  timed_ = armed_ || timing == Timing::kAlways;
  if (!timed_) return;
  start_ns_ = recorder.now_ns();
  if (!armed_) return;
  id_ = recorder.next_id();
  parent_ = tls_current_span;
  depth_ = tls_depth;
  tls_current_span = id_;
  ++tls_depth;
}

void Span::finish() {
  tls_current_span = parent_;
  --tls_depth;
  TraceRecorder& recorder = TraceRecorder::instance();
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.depth = depth_;
  record.thread_id = TraceRecorder::current_thread_id();
  record.name = std::string(name_);
  record.start_ns = start_ns_;
  record.duration_ns = recorder.now_ns() - start_ns_;
  recorder.record(std::move(record));
}

std::uint64_t Span::elapsed_ns() const {
  if (!timed_) return 0;
  return TraceRecorder::instance().now_ns() - start_ns_;
}

}  // namespace parole::obs
