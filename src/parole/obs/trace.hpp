// Hierarchical span tracing (DESIGN.md §8).
//
// A Span is an RAII timer: construction captures a start timestamp and links
// to the innermost live span on the same thread (parent/child nesting via a
// thread-local cursor); destruction records a SpanRecord into the process
// TraceRecorder ring buffer. The recorder is OFF by default — an unarmed Span
// costs one relaxed atomic load and never touches the clock — and bounded
// when on: the ring overwrites the oldest records and counts drops.
//
// Span taxonomy (names are `<module>.<stage>`, see DESIGN.md §8):
//   solvers:  solvers.solve > solvers.evaluate > vm.execute_indexed
//   ml:       ml.episode > ml.step,  ml.replay-sample / ml.adam-step
//   rollup:   rollup.batch > rollup.sequence / rollup.execute /
//             rollup.commit-root / rollup.verify / rollup.dispute
//   core:     core.campaign > core.reorder / core.forensics
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace parole::obs {

struct SpanRecord {
  std::uint64_t id{0};      // unique per process, 1-based
  std::uint64_t parent{0};  // 0 = root span
  std::uint32_t depth{0};   // 0 = root
  std::uint32_t thread_id{0};  // dense per-thread index, 1-based
  std::string name;
  std::uint64_t start_ns{0};  // steady-clock, relative to the recorder epoch
  std::uint64_t duration_ns{0};
};

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Runtime switch; tracing is OFF by default (hot paths then skip even the
  // clock reads). The flag is process-wide — a plain static atomic, not a
  // magic-static — so the unarmed Span fast path inlines to one relaxed load
  // with no init-guard check.
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Ring capacity in records (default 8192). Resizing clears the buffer.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  void record(SpanRecord record);

  // Records currently held, oldest first (by completion order).
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  // Completed spans that fell off the ring.
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

  // Nanoseconds since the recorder epoch, on the same steady clock every
  // span uses — exposed so ad-hoc timing can share the span clock.
  [[nodiscard]] std::uint64_t now_ns() const;

  // Dense 1-based id of the calling thread (assigned on first use). Spans
  // stamp it into SpanRecord::thread_id; the parent/depth cursor is itself
  // thread-local, so a worker thread's spans never adopt a parent from
  // another thread.
  [[nodiscard]] static std::uint32_t current_thread_id() noexcept;

  [[nodiscard]] std::uint64_t next_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t capacity_{8192};
  std::size_t write_{0};  // next slot
  std::size_t size_{0};
  std::uint64_t dropped_{0};
  inline static std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::uint64_t epoch_ns_{0};  // steady-clock origin
};

class Span {
 public:
  enum class Timing : std::uint8_t {
    kIfEnabled,  // time + record only while the recorder is enabled
    kAlways,     // always time (elapsed_ns usable), record only when enabled
  };

  // The common case — tracing off, Timing::kIfEnabled — must cost one
  // inlined relaxed load and nothing else: these spans sit inside the
  // evaluator/VM hot loops.
  explicit Span(std::string_view name, Timing timing = Timing::kIfEnabled)
      : name_(name) {
    if (timing == Timing::kIfEnabled && !TraceRecorder::enabled()) return;
    start(timing);
  }
  ~Span() {
    if (armed_) finish();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Wall time since construction on the recorder clock. Valid when armed or
  // constructed with Timing::kAlways; 0 otherwise.
  [[nodiscard]] std::uint64_t elapsed_ns() const;
  [[nodiscard]] double elapsed_millis() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  // Cold paths (tracing on, or Timing::kAlways), out of line.
  void start(Timing timing);
  void finish();

  std::string_view name_;
  std::uint64_t id_{0};
  std::uint64_t parent_{0};
  std::uint32_t depth_{0};
  std::uint64_t start_ns_{0};
  bool armed_{false};  // will record into the ring on destruction
  bool timed_{false};
};

}  // namespace parole::obs

// PAROLE_OBS_SPAN(name): drop an RAII span into the current scope. Compiles
// to nothing with PAROLE_OBS_DISABLED; otherwise an unarmed span is one
// atomic load at construction.
#if defined(PAROLE_OBS_DISABLED)
#define PAROLE_OBS_SPAN(name) ((void)0)
#else
#define PAROLE_OBS_SPAN_CONCAT2(a, b) a##b
#define PAROLE_OBS_SPAN_CONCAT(a, b) PAROLE_OBS_SPAN_CONCAT2(a, b)
#define PAROLE_OBS_SPAN(name) \
  ::parole::obs::Span PAROLE_OBS_SPAN_CONCAT(parole_obs_span_, __LINE__){name}
#endif
