// Canonical telemetry-flag usage text (DESIGN.md §13/§16).
//
// Every parole_cli command accepts the same telemetry flags, parsed by one
// pre-pass — so their help text must be ONE string, not N hand-kept copies
// that drift. The CLI's usage() embeds this block verbatim, and a unit test
// audits that every flag the parser consumes is documented here (and nothing
// that isn't). Editing a flag means editing this file; the test makes a
// forgotten doc line a build failure, not a stale help screen.
#pragma once

namespace parole::obs {

// One "--flag" spelling per documented telemetry flag, in display order.
// The parser (parole_cli parse_telemetry_flag) and this list must agree;
// the usage-audit test cross-checks kTelemetryFlagsUsage against it.
inline constexpr const char* kTelemetryFlagNames[] = {
    "--metrics",         "--trace",        "--journal",
    "--listen",          "--linger",       "--watchdog-ms",
    "--flight-recorder",
};

inline constexpr const char kTelemetryFlagsUsage[] =
    "telemetry flags (every command accepts them, anywhere on the line):\n"
    "  --metrics <path>        write a RunReport metrics snapshot on exit\n"
    "  --trace <path>          write the span trace JSONL on exit\n"
    "  --journal <path>        write the tx lifecycle journal JSONL on exit\n"
    "  --listen <port>         live telemetry endpoint (0 = ephemeral)\n"
    "  --linger <ms>           keep the endpoint up after the run finishes\n"
    "  --watchdog-ms <ms>      stall watchdog deadline (exit 3 on stall)\n"
    "  --flight-recorder <p>   flight-bundle path, dumped on stall/fatal "
    "signal\n";

}  // namespace parole::obs
