#include "parole/obs/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "parole/io/checkpoint.hpp"
#include "parole/obs/metrics.hpp"
#include "parole/obs/report.hpp"
#include "parole/obs/trace.hpp"

namespace parole::obs {
namespace {

// Signal-handler state: plain statics set once by install_signal_handlers().
// A fatal signal can arrive on any thread; the handler does the (formally
// unsafe, practically fine) bundle dump and then re-raises with the default
// disposition so the exit status still names the signal.
std::atomic<bool> g_signal_handlers_installed{false};
char g_signal_flight_path[4096] = {0};

constexpr int kFatalSignals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL};

void fatal_signal_handler(int signum) {
  // One dump only — a crash inside the dump must not recurse.
  static std::atomic<bool> dumping{false};
  if (!dumping.exchange(true)) {
    const char* name = strsignal(signum);
    std::string reason = "signal:";
    reason += name != nullptr ? name : std::to_string(signum);
    (void)StallWatchdog::instance().dump_flight_recorder(
        reason, g_signal_flight_path);
    std::fprintf(stderr,
                 "flight recorder: fatal signal %d, bundle written to %s\n",
                 signum, g_signal_flight_path);
  }
  std::signal(signum, SIG_DFL);
  raise(signum);
}

}  // namespace

StallWatchdog& StallWatchdog::instance() {
  static StallWatchdog watchdog;
  return watchdog;
}

StallWatchdog::Stage& StallWatchdog::stage(std::string_view name) {
  std::lock_guard lock(stages_mutex_);
  for (const auto& stage : stages_) {
    if (stage->name == name) return *stage;
  }
  stages_.push_back(std::make_unique<Stage>());
  stages_.back()->name = std::string(name);
  return *stages_.back();
}

void StallWatchdog::beat(Stage& stage) {
  if (!enabled()) return;
  stage.last_beat_ns.store(TraceRecorder::instance().now_ns(),
                           std::memory_order_relaxed);
  stage.beats.fetch_add(1, std::memory_order_relaxed);
}

void StallWatchdog::arm(WatchdogConfig config) {
  disarm();
  config_ = std::move(config);
  if (config_.poll_ms == 0) config_.poll_ms = 1;
  stalled_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard lock(wake_mutex_);
    stop_requested_ = false;
  }
  armed_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { monitor(); });
}

void StallWatchdog::disarm() {
  if (!armed_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard lock(wake_mutex_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  armed_.store(false, std::memory_order_relaxed);
}

std::vector<StageStatus> StallWatchdog::status() const {
  const std::uint64_t now = TraceRecorder::instance().now_ns();
  std::vector<StageStatus> out;
  {
    std::lock_guard lock(stages_mutex_);
    out.reserve(stages_.size());
    for (const auto& stage : stages_) {
      StageStatus status;
      status.name = stage->name;
      status.beats = stage->beats.load(std::memory_order_relaxed);
      status.last_beat_ns = stage->last_beat_ns.load(std::memory_order_relaxed);
      // A pre-registered slot that never beat has last_beat_ns == 0; its
      // "age" would be the process uptime, which reads as an instant stall
      // on /healthz. Report 0 — the monitor ignores beat-less stages too.
      status.age_ms = status.beats > 0 && status.last_beat_ns <= now
                          ? (now - status.last_beat_ns) / 1'000'000
                          : 0;
      out.push_back(std::move(status));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const StageStatus& a, const StageStatus& b) {
              return a.age_ms > b.age_ms;
            });
  return out;
}

void StallWatchdog::stage_relaunched(std::string_view name) {
  Stage& slot = stage(name);
  slot.last_beat_ns.store(TraceRecorder::instance().now_ns(),
                          std::memory_order_relaxed);
  slot.beats.fetch_add(1, std::memory_order_relaxed);
  stalled_.store(false, std::memory_order_relaxed);
  PAROLE_OBS_COUNT("parole.obs.watchdog_relaunches", 1);
}

void StallWatchdog::set_journal(const TxJournal* journal) {
  std::lock_guard lock(journal_mutex_);
  journal_ = journal;
}

void StallWatchdog::monitor() {
  std::unique_lock lock(wake_mutex_);
  while (!stop_requested_) {
    wake_.wait_for(lock, std::chrono::milliseconds(config_.poll_ms));
    if (stop_requested_) break;
    lock.unlock();

    // Stall = every stage that ever beat has been quiet past the deadline.
    // A single stuck stage blocks the step loop, so everything goes quiet
    // together; stages that legitimately finished cannot false-alarm while
    // any other stage still makes progress.
    const std::uint64_t now = TraceRecorder::instance().now_ns();
    std::uint64_t newest_beat = 0;
    bool any = false;
    {
      std::lock_guard stages_lock(stages_mutex_);
      for (const auto& stage : stages_) {
        if (stage->beats.load(std::memory_order_relaxed) == 0) continue;
        any = true;
        newest_beat = std::max(
            newest_beat, stage->last_beat_ns.load(std::memory_order_relaxed));
      }
    }
    const bool stalled =
        any && now > newest_beat &&
        (now - newest_beat) / 1'000'000 >= config_.deadline_ms;
    if (stalled) {
      stalled_.store(true, std::memory_order_relaxed);
      PAROLE_OBS_COUNT("parole.obs.watchdog_stalls", 1);
      std::string stalest = "?";
      if (const auto statuses = status(); !statuses.empty()) {
        stalest = statuses.front().name;
      }
      std::fprintf(stderr,
                   "watchdog: stall detected — no heartbeat for %llu ms "
                   "(stalest stage: %s)\n",
                   static_cast<unsigned long long>(
                       (now - newest_beat) / 1'000'000),
                   stalest.c_str());
      if (!config_.flight_path.empty()) {
        const Status dumped =
            dump_flight_recorder("stall", config_.flight_path);
        std::fprintf(stderr, "watchdog: flight recorder bundle %s (%s)\n",
                     dumped.ok() ? "written to" : "FAILED for",
                     dumped.ok() ? config_.flight_path.c_str()
                                 : dumped.error().detail.c_str());
      }
      if (config_.exit_on_stall) {
        std::fflush(nullptr);
        _exit(config_.exit_code);
      }
      lock.lock();
      continue;
    }
    lock.lock();
  }
}

Status StallWatchdog::dump_flight_recorder(const std::string& reason,
                                           const std::string& path) {
  if (path.empty()) {
    return Error{"flight_recorder", "no flight-recorder path configured"};
  }
  RunReport report("flight_recorder");
  report.set_meta("reason", JsonValue(reason));
  JsonArray stages;
  for (const StageStatus& stage : status()) {
    JsonObject entry;
    entry["name"] = stage.name;
    entry["beats"] = stage.beats;
    entry["age_ms"] = stage.age_ms;
    stages.push_back(JsonValue(std::move(entry)));
  }
  report.set_meta("stages", JsonValue(std::move(stages)));

  report.capture_trace(TraceRecorder::instance(), config_.span_tail);
  {
    std::lock_guard lock(journal_mutex_);
    if (journal_ != nullptr) {
      report.capture_journal_tail(*journal_, config_.journal_tail);
    }
  }
  report.capture_metrics();

  // Atomic write: the bundle is either complete and schema-valid or absent —
  // a crash mid-dump must not leave a torn file that masquerades as the
  // flight record.
  const std::string body = report.to_jsonl();
  return io::write_file_atomic(
      path, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(body.data()),
                body.size()));
}

void StallWatchdog::install_signal_handlers(std::string flight_path) {
  std::snprintf(g_signal_flight_path, sizeof(g_signal_flight_path), "%s",
                flight_path.c_str());
  if (g_signal_handlers_installed.exchange(true)) return;
  struct sigaction action = {};
  action.sa_handler = fatal_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  for (const int signum : kFatalSignals) {
    sigaction(signum, &action, nullptr);
  }
}

}  // namespace parole::obs
