// Stall watchdog + flight recorder (DESIGN.md §13).
//
// Long adversarial campaigns fail quietly: a deadlocked pipeline stage or a
// wedged training loop burns hours before anyone looks. Every pipeline stage
// (mempool collect, aggregator build, verifier pass, node step, sequencer,
// campaign rounds, DQN episodes) stamps a named heartbeat via
// PAROLE_OBS_HEARTBEAT; the watchdog's monitor thread declares a stall when
// *no* stage has beaten within the deadline — per-stage ages tell the
// operator (via /healthz and the flight bundle) which stage went quiet
// first, while the all-quiet trigger keeps stages that legitimately finished
// (the solver phase of a quickstart) from tripping false alarms.
//
// On stall — or on a fatal signal when handlers are installed — the watchdog
// dumps a flight-recorder bundle: a schema-1 RunReport JSONL carrying the
// last-N spans from the TraceRecorder ring, the TxJournal tail, a full
// metrics snapshot and the per-stage heartbeat ages, written through
// io::write_file_atomic so a bundle is either complete and valid or absent.
//
// Cost model: a heartbeat is one relaxed enabled-load, one steady-clock read
// and two relaxed stores (beat sites are per-step, not per-probe). With
// PAROLE_OBS_DISABLED the macro compiles out; the watchdog itself stays
// built (like the rest of obs) so the CLI flags keep working, it just sees
// no stages.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "parole/common/result.hpp"
#include "parole/obs/journal.hpp"

namespace parole::obs {

struct WatchdogConfig {
  std::uint64_t deadline_ms{5000};  // all-quiet for this long = stall
  std::uint64_t poll_ms{100};       // monitor wake cadence
  std::string flight_path;          // bundle destination; empty = no bundle
  // On stall: dump (if flight_path set), report, then _exit(exit_code).
  // Tests set exit_on_stall=false and poll stalled() instead.
  bool exit_on_stall{true};
  int exit_code{3};
  std::size_t span_tail{2048};    // last-N spans captured into the bundle
  std::size_t journal_tail{4096};  // last-N journal events captured
};

struct StageStatus {
  std::string name;
  std::uint64_t beats{0};
  std::uint64_t last_beat_ns{0};  // TraceRecorder clock
  std::uint64_t age_ms{0};        // now - last beat
};

class StallWatchdog {
 public:
  static StallWatchdog& instance();

  StallWatchdog() = default;
  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  // One named heartbeat slot. References stay valid for the process's life;
  // the PAROLE_OBS_HEARTBEAT macro resolves its slot once per call site.
  struct Stage {
    std::string name;
    std::atomic<std::uint64_t> beats{0};
    std::atomic<std::uint64_t> last_beat_ns{0};
  };
  [[nodiscard]] Stage& stage(std::string_view name);

  // Stamp a beat. The macro-facing fast path: when heartbeats are disabled
  // this is one relaxed load.
  static void beat(Stage& stage);

  // Process-wide heartbeat switch (default ON — beats are per-step cheap and
  // /healthz wants ages even without an armed monitor).
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Start the deadline monitor. arm() on an armed watchdog re-arms with the
  // new config (the previous monitor is stopped first).
  void arm(WatchdogConfig config);
  void disarm();
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }
  // Set once the monitor declared a stall (sticky until re-armed or a
  // supervised stage is relaunched — see stage_relaunched()).
  [[nodiscard]] bool stalled() const {
    return stalled_.load(std::memory_order_relaxed);
  }

  // A supervisor relaunched the named stage after a fault. Stamps a fresh
  // beat on its slot (a relaunch IS liveness — without it the monitor would
  // re-declare the same stall on its next poll) and clears the sticky
  // stalled latch so /healthz and tests see the recovery, not the history.
  // Creates the slot when the stage never registered (a restart may race the
  // stage's first beat).
  void stage_relaunched(std::string_view name);

  // Per-stage ages for /healthz and the bundle, stalest first.
  [[nodiscard]] std::vector<StageStatus> status() const;

  // The journal whose tail rides the flight bundle (nullptr = none). The CLI
  // points this at the active node's journal and clears it before the node
  // dies.
  void set_journal(const TxJournal* journal);

  // Write a flight-recorder bundle to `path` now: meta (reason, stage ages),
  // span tail, journal tail, metrics snapshot — atomically. Usable directly;
  // the monitor and the signal handlers call it with their reason.
  Status dump_flight_recorder(const std::string& reason,
                              const std::string& path);

  // Install fatal-signal handlers (SIGABRT/SIGSEGV/SIGBUS/SIGFPE/SIGILL)
  // that dump a bundle to `flight_path` and then re-raise with the default
  // disposition, so the process still dies by the original signal. Dumping
  // from a signal handler is not strictly async-signal-safe; this is a
  // best-effort last gasp, which is exactly what a flight recorder is for.
  void install_signal_handlers(std::string flight_path);

 private:
  void monitor();

  mutable std::mutex stages_mutex_;
  std::vector<std::unique_ptr<Stage>> stages_;

  mutable std::mutex journal_mutex_;
  const TxJournal* journal_{nullptr};

  WatchdogConfig config_;
  std::thread thread_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_requested_{false};  // guarded by wake_mutex_
  std::atomic<bool> armed_{false};
  std::atomic<bool> stalled_{false};
  inline static std::atomic<bool> enabled_{true};
};

}  // namespace parole::obs

// PAROLE_OBS_HEARTBEAT(name): stamp the named stage's heartbeat. Compiles
// out under PAROLE_OBS_DISABLED; otherwise the slot resolves once per call
// site and a beat is an enabled-check + clock read + two relaxed stores.
#if defined(PAROLE_OBS_DISABLED)

#define PAROLE_OBS_HEARTBEAT(name) ((void)0)

#else

#define PAROLE_OBS_HEARTBEAT(name)                                          \
  do {                                                                      \
    if (::parole::obs::StallWatchdog::enabled()) {                          \
      static ::parole::obs::StallWatchdog::Stage& parole_obs_stage =        \
          ::parole::obs::StallWatchdog::instance().stage(name);             \
      ::parole::obs::StallWatchdog::beat(parole_obs_stage);                 \
    }                                                                       \
  } while (0)

#endif  // PAROLE_OBS_DISABLED
