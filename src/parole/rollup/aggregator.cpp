#include "parole/rollup/aggregator.hpp"

#include <utility>

#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"
#include "parole/obs/watchdog.hpp"

namespace parole::rollup {

Aggregator::Aggregator(AggregatorConfig config) : config_(std::move(config)) {}

Batch Aggregator::build_batch(vm::L2State& state, std::vector<vm::Tx> txs,
                              const vm::ExecutionEngine& engine,
                              bool suppress_reorderer) {
  PAROLE_OBS_COUNT("parole.rollup.batches_built", 1);
  PAROLE_OBS_HEARTBEAT("rollup.aggregator");
  PAROLE_OBS_OBSERVE("parole.rollup.batch_size", txs.size());
  if (config_.reorderer && !suppress_reorderer) {
    PAROLE_OBS_SPAN("rollup.sequence");
    txs = (*config_.reorderer)(state, std::move(txs));
  }

  Batch batch;
  batch.header.aggregator = config_.id;
  batch.header.pre_state_root = state.state_root();
  batch.header.tx_count = txs.size();

  {
    PAROLE_OBS_SPAN("rollup.execute");
    batch.intermediate_roots.reserve(txs.size());
    for (const vm::Tx& tx : txs) {
      // Per-tx execution so the trace carries every intermediate root. A tx
      // whose constraints fail in the committed order simply reverts on chain
      // (skip-invalid view at the batch level); GENTRANSEQ's own search uses
      // strict mode internally before the order ever reaches this point.
      (void)engine.execute_tx(state, tx);
      batch.intermediate_roots.push_back(state.state_root());
    }
  }

  {
    PAROLE_OBS_SPAN("rollup.commit-root");
    batch.txs = std::move(txs);
    batch.header.tx_root = Batch::tx_root_of(batch.txs);
    batch.header.post_state_root = batch.txs.empty()
                                       ? batch.header.pre_state_root
                                       : batch.intermediate_roots.back();
  }

  if (config_.corrupt_at_step && *config_.corrupt_at_step < batch.txs.size()) {
    // Fault injection: flip a byte in the committed root at the chosen step
    // and propagate to the post root so header and trace stay consistent.
    const std::size_t step = *config_.corrupt_at_step;
    for (std::size_t i = step; i < batch.intermediate_roots.size(); ++i) {
      auto bytes = batch.intermediate_roots[i].bytes();
      bytes[0] ^= 0xff;
      batch.intermediate_roots[i] = crypto::Hash256(bytes);
    }
    batch.header.post_state_root = batch.intermediate_roots.back();
  }

  return batch;
}

}  // namespace parole::rollup
