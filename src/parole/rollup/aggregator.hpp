// Rollup aggregator A_k.
//
// Collects a fixed number of transactions from Bedrock's mempool (its
// "Mempool size" N in the evaluation), executes them against its L2 view and
// commits the batch on L1. An *adversarial* aggregator A_P first routes the
// collected transactions through a Reorderer (the PAROLE module, injected as
// a callback so this layer stays independent of the attack implementation);
// after re-ordering it executes and commits *honestly* — the batch trace and
// post-root are correct for the altered order, so verifiers have nothing to
// challenge. That asymmetry (profitable yet unchallengeable) is the paper's
// core observation.
//
// For dispute-game testing the aggregator can also be configured to commit an
// outright fraudulent post-root.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "parole/rollup/fraud_proof.hpp"
#include "parole/vm/engine.hpp"

namespace parole::rollup {

// Maps (pre-state, collected txs) -> execution order. Implemented by
// core::Parole for the attack; identity for honest aggregators.
using Reorderer =
    std::function<std::vector<vm::Tx>(const vm::L2State&, std::vector<vm::Tx>)>;

struct AggregatorConfig {
  AggregatorId id{};
  // Number of transactions collected per batch ("Mempool size" N).
  std::size_t mempool_size = 10;
  // Present on adversarial aggregators only.
  std::optional<Reorderer> reorderer;
  // Fault injection for dispute tests: corrupt the committed post-root and
  // the trace entry at the given step.
  std::optional<std::size_t> corrupt_at_step;
};

class Aggregator {
 public:
  explicit Aggregator(AggregatorConfig config);

  // Execute `txs` on `state` (in place) and build the batch + trace that
  // would be committed on L1. Applies the reorderer first when adversarial.
  // `suppress_reorderer` models a reorderer failure/timeout (chaos fault):
  // the batch ships in collection order — the attack silently loses its slot
  // instead of stalling the chain.
  Batch build_batch(vm::L2State& state, std::vector<vm::Tx> txs,
                    const vm::ExecutionEngine& engine,
                    bool suppress_reorderer = false);

  [[nodiscard]] AggregatorId id() const { return config_.id; }
  [[nodiscard]] bool adversarial() const {
    return config_.reorderer.has_value();
  }
  [[nodiscard]] std::size_t mempool_size() const {
    return config_.mempool_size;
  }
  [[nodiscard]] const AggregatorConfig& config() const { return config_; }

 private:
  AggregatorConfig config_;
};

}  // namespace parole::rollup
