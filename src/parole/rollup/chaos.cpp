#include "parole/rollup/chaos.hpp"

#include <algorithm>
#include <string>

#include "parole/obs/flow.hpp"
#include "parole/rollup/consensus.hpp"
#include "parole/rollup/node.hpp"

namespace parole::rollup {
namespace {

// Stream tags keep the fault families independent draws of the same seed
// (common/fault mixes the tag into the SplitMix64 preimage). Stable values:
// changing one reshuffles every seeded schedule.
enum Stream : std::uint64_t {
  kStreamCrash = 1,
  kStreamReorderer = 2,
  kStreamVerifier = 3,
  kStreamDrop = 4,
  kStreamDuplicate = 5,
  kStreamDelay = 6,
  kStreamReorg = 7,
  kStreamLeaderCrash = 8,
  kStreamElectionDrop = 9,
  kStreamElectionDelay = 10,
  kStreamStalePropose = 11,
};

// "Does it fire, and at which index" as one decision: the same Rng answers
// both questions so the index pick never perturbs another family's stream.
std::optional<std::size_t> roll_index(std::uint64_t seed, std::uint64_t stream,
                                      std::uint64_t step, double p,
                                      std::size_t size) {
  if (size == 0 || p <= 0.0) return std::nullopt;
  Rng rng = fault_rng(seed, stream, /*subject=*/0, step);
  if (!(p >= 1.0) && rng.uniform() >= p) return std::nullopt;
  return static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

std::size_t clamp_index(std::uint64_t wanted, std::size_t size) {
  return std::min<std::size_t>(static_cast<std::size_t>(wanted), size - 1);
}

}  // namespace

const ChaosConfig::ForcedFault* FaultPlan::forced(std::uint64_t step,
                                                 FaultKind kind) const {
  for (const ChaosConfig::ForcedFault& f : config_.forced) {
    if (f.step == step && f.kind == kind) return &f;
  }
  return nullptr;
}

bool FaultPlan::aggregator_crashes(std::uint64_t step) const {
  if (forced(step, FaultKind::kAggregatorCrash) != nullptr) return true;
  return fault_roll(config_.seed, kStreamCrash, 0, step,
                    config_.p_aggregator_crash);
}

bool FaultPlan::reorderer_fails(std::uint64_t step) const {
  if (forced(step, FaultKind::kReordererFailure) != nullptr) return true;
  return fault_roll(config_.seed, kStreamReorderer, 0, step,
                    config_.p_reorderer_failure);
}

bool FaultPlan::verifier_down(std::uint64_t step, std::size_t verifier) const {
  // Forced downtime is an interval [f.step, f.step + f.param) for the exact
  // verifier named by `subject` — tests script "all verifiers sleep through
  // the whole challenge window" this way.
  for (const ChaosConfig::ForcedFault& f : config_.forced) {
    if (f.kind != FaultKind::kVerifierDown) continue;
    if (f.subject != verifier) continue;
    if (step >= f.step && step < f.step + std::max<std::uint64_t>(f.param, 1)) {
      return true;
    }
  }
  // Probabilistic downtime is drawn once per (verifier, window) so it comes
  // in contiguous outages, which is what makes late-wakeup challenges and
  // challenge-window expiry reachable at all.
  const std::uint64_t window_steps =
      std::max<std::uint64_t>(config_.verifier_window_steps, 1);
  return fault_roll(config_.seed, kStreamVerifier, verifier,
                    step / window_steps, config_.p_verifier_down);
}

std::optional<std::size_t> FaultPlan::tx_drop(std::uint64_t step,
                                              std::size_t collected_size) const {
  if (collected_size == 0) return std::nullopt;
  if (const auto* f = forced(step, FaultKind::kTxDrop)) {
    return clamp_index(f->subject, collected_size);
  }
  return roll_index(config_.seed, kStreamDrop, step, config_.p_tx_drop,
                    collected_size);
}

std::optional<std::size_t> FaultPlan::tx_duplicate(
    std::uint64_t step, std::size_t collected_size) const {
  if (collected_size == 0) return std::nullopt;
  if (const auto* f = forced(step, FaultKind::kTxDuplicate)) {
    return clamp_index(f->subject, collected_size);
  }
  return roll_index(config_.seed, kStreamDuplicate, step,
                    config_.p_tx_duplicate, collected_size);
}

std::optional<std::pair<std::size_t, std::uint64_t>> FaultPlan::tx_delay(
    std::uint64_t step, std::size_t collected_size) const {
  if (collected_size == 0) return std::nullopt;
  if (const auto* f = forced(step, FaultKind::kTxDelay)) {
    return std::make_pair(clamp_index(f->subject, collected_size),
                          std::max<std::uint64_t>(f->param, 1));
  }
  const auto index = roll_index(config_.seed, kStreamDelay, step,
                                config_.p_tx_delay, collected_size);
  if (!index) return std::nullopt;
  return std::make_pair(*index,
                        std::max<std::uint64_t>(config_.tx_delay_steps, 1));
}

std::uint64_t FaultPlan::l1_reorg_depth(std::uint64_t step) const {
  if (const auto* f = forced(step, FaultKind::kL1Reorg)) {
    return std::max<std::uint64_t>(f->param, 1);
  }
  if (config_.max_reorg_depth == 0) return 0;
  Rng rng = fault_rng(config_.seed, kStreamReorg, 0, step);
  if (config_.p_l1_reorg <= 0.0) return 0;
  if (!(config_.p_l1_reorg >= 1.0) && rng.uniform() >= config_.p_l1_reorg) {
    return 0;
  }
  return 1 + static_cast<std::uint64_t>(rng.uniform_int(
                 0, static_cast<std::int64_t>(config_.max_reorg_depth) - 1));
}

bool FaultPlan::leader_crashes(std::uint64_t step) const {
  if (forced(step, FaultKind::kLeaderCrashMidBatch) != nullptr) return true;
  return fault_roll(config_.seed, kStreamLeaderCrash, 0, step,
                    config_.p_leader_crash);
}

bool FaultPlan::election_msg_drop(std::uint64_t step) const {
  if (forced(step, FaultKind::kElectionMsgDrop) != nullptr) return true;
  return fault_roll(config_.seed, kStreamElectionDrop, 0, step,
                    config_.p_election_msg_drop);
}

bool FaultPlan::election_msg_delay(std::uint64_t step) const {
  if (forced(step, FaultKind::kElectionMsgDelay) != nullptr) return true;
  return fault_roll(config_.seed, kStreamElectionDelay, 0, step,
                    config_.p_election_msg_delay);
}

bool FaultPlan::stale_view_double_propose(std::uint64_t step) const {
  if (forced(step, FaultKind::kStaleViewDoublePropose) != nullptr) return true;
  return fault_roll(config_.seed, kStreamStalePropose, 0, step,
                    config_.p_stale_view_double_propose);
}

std::string_view to_string(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kValueConservation:
      return "value_conservation";
    case InvariantKind::kSupplyCap:
      return "supply_cap";
    case InvariantKind::kMonotoneFinalization:
      return "monotone_finalization";
    case InvariantKind::kTraceConsistency:
      return "trace_consistency";
    case InvariantKind::kL1Integrity:
      return "l1_integrity";
    case InvariantKind::kBondSolvency:
      return "bond_solvency";
    case InvariantKind::kSlotUniqueFinalization:
      return "slot_unique_finalization";
    case InvariantKind::kSeatBondSolvency:
      return "seat_bond_solvency";
    case InvariantKind::kNoFinalizedEquivocation:
      return "no_finalized_equivocation";
    case InvariantKind::kFlowConservation:
      return "flow_conservation";
  }
  return "unknown";
}

namespace {

// Forward-only status lattice. kPending may finalize, enter dispute, or be
// reverted (directly by a fraud proof, or as a descendant of one); kDisputed
// resolves to kFinalized or kReverted; terminal states never move again.
bool legal_transition(chain::BatchStatus from, chain::BatchStatus to) {
  using chain::BatchStatus;
  if (from == to) return true;
  switch (from) {
    case BatchStatus::kPending:
      return to == BatchStatus::kDisputed || to == BatchStatus::kFinalized ||
             to == BatchStatus::kReverted;
    case BatchStatus::kDisputed:
      return to == BatchStatus::kFinalized || to == BatchStatus::kReverted;
    case BatchStatus::kFinalized:
    case BatchStatus::kReverted:
      return false;
  }
  return false;
}

}  // namespace

std::size_t InvariantChecker::check(const RollupNode& node,
                                    std::uint64_t step) {
  const std::size_t before = violations_.size();
  const auto violate = [&](InvariantKind kind, std::string detail) {
    violations_.push_back({step, kind, std::move(detail)});
  };

  // --- value conservation ---------------------------------------------------
  // Every wei on L2 came over the bridge: ledger supply + collected fees +
  // mint burns must track bridge.locked() up to a constant baseline (campaign
  // runs seed the genesis ledger directly, so the baseline is taken on the
  // first check rather than assumed zero).
  const vm::L2State& state = node.state();
  const std::int64_t tracked = state.ledger().total_supply() +
                               state.fee_pool() + state.value_burned();
  const std::int64_t drift = tracked - node.bridge().locked();
  if (!baselined_) {
    baselined_ = true;
    conservation_base_ = drift;
  } else if (drift != conservation_base_) {
    violate(InvariantKind::kValueConservation,
            "supply+fees+burned - locked = " + std::to_string(drift) +
                ", baseline " + std::to_string(conservation_base_));
  }

  // --- flow conservation ------------------------------------------------------
  // The value-flow tracker shadows the same four quantities the conservation
  // check above watches. Its running deltas must reconcile bit-exactly with
  // the actual component values (up to the arm-time baseline), and every
  // sealed batch ledger must sum to zero — double-entry has no remainder.
  // Skipped when the engine hook is compiled out (-DPAROLE_OBS=OFF): the
  // tracker would miss every tx flow and false-violate.
  if (obs::ValueFlowTracker::tx_hooks_compiled()) {
    const obs::ValueFlowTracker& flow = node.flow();
    if (!flow_baselined_) {
      flow_baselined_ = true;
      flow_base_supply_ = state.ledger().total_supply() - flow.supply_delta();
      flow_base_fees_ = state.fee_pool() - flow.fee_delta();
      flow_base_burned_ = state.value_burned() - flow.burned_delta();
      flow_base_locked_ = node.bridge().locked() - flow.locked_delta();
    } else {
      const auto reconcile = [&](const char* what, std::int64_t actual,
                                 std::int64_t base, std::int64_t delta) {
        if (actual != base + delta) {
          violate(InvariantKind::kFlowConservation,
                  std::string(what) + " " + std::to_string(actual) +
                      " != flow baseline " + std::to_string(base) +
                      " + tracked delta " + std::to_string(delta));
        }
      };
      reconcile("supply", state.ledger().total_supply(), flow_base_supply_,
                flow.supply_delta());
      reconcile("fees", state.fee_pool(), flow_base_fees_, flow.fee_delta());
      reconcile("burned", state.value_burned(), flow_base_burned_,
                flow.burned_delta());
      reconcile("locked", node.bridge().locked(), flow_base_locked_,
                flow.locked_delta());
    }
    std::uint64_t bad_batch = 0;
    if (const Amount imbalance = flow.worst_batch_imbalance(bad_batch);
        imbalance != 0) {
      violate(InvariantKind::kFlowConservation,
              "batch " + std::to_string(bad_batch) + " flows sum to " +
                  std::to_string(imbalance) + ", expected 0");
    }
  }

  // --- supply cap -------------------------------------------------------------
  const std::uint64_t live = state.nft().live_count();
  const std::uint64_t remaining = state.nft().remaining_supply();
  const std::uint64_t cap = node.config().max_supply;
  if (live > cap || live + remaining != cap) {
    violate(InvariantKind::kSupplyCap,
            "live " + std::to_string(live) + " + remaining " +
                std::to_string(remaining) + " != max_supply " +
                std::to_string(cap));
  }

  // --- monotone finalization --------------------------------------------------
  // Statuses only move forward along the lattice. A shallow L1 reorg may pop
  // still-pending tail records (count shrinks within a step before the
  // recommit lands), so a shorter tail is tolerated, never a status regress.
  const chain::OrscContract& orsc = node.orsc();
  const std::size_t batch_count = orsc.batch_count();
  if (batch_count < last_statuses_.size()) {
    last_statuses_.resize(batch_count);
  }
  for (std::uint64_t id = 0; id < batch_count; ++id) {
    const chain::BatchRecord* record = orsc.batch(id);
    const auto status = static_cast<std::uint8_t>(record->status);
    if (id < last_statuses_.size() &&
        !legal_transition(static_cast<chain::BatchStatus>(last_statuses_[id]),
                          record->status)) {
      violate(InvariantKind::kMonotoneFinalization,
              "batch " + std::to_string(id) + " moved " +
                  std::to_string(last_statuses_[id]) + " -> " +
                  std::to_string(status));
    }
    if (id < last_statuses_.size()) {
      last_statuses_[id] = status;
    } else {
      last_statuses_.push_back(status);
    }
  }

  // --- committed-root / trace consistency -------------------------------------
  // Every batch body the node retains must agree with itself (each root the
  // header commits to is the one its trace ends in) and with the ORSC record
  // it was committed under.
  for (const Batch& batch : node.batches()) {
    if (!batch.trace_consistent() ||
        batch.header.tx_root != Batch::tx_root_of(batch.txs) ||
        batch.header.tx_count != batch.txs.size()) {
      violate(InvariantKind::kTraceConsistency,
              "batch " + std::to_string(batch.header.batch_id) +
                  " header/trace mismatch");
      continue;
    }
    const chain::BatchRecord* record = orsc.batch(batch.header.batch_id);
    if (record == nullptr ||
        record->header.post_state_root != batch.header.post_state_root) {
      violate(InvariantKind::kTraceConsistency,
              "batch " + std::to_string(batch.header.batch_id) +
                  " diverges from its ORSC record");
    }
  }

  // --- L1 link integrity ------------------------------------------------------
  if (!node.l1().verify_links()) {
    violate(InvariantKind::kL1Integrity, "parent-hash links broken");
  }

  // --- bond solvency ----------------------------------------------------------
  for (const AggregatorId id : node.aggregator_ids()) {
    if (orsc.aggregator_bond(id) < 0) {
      violate(InvariantKind::kBondSolvency,
              "aggregator " + std::to_string(id.value()) + " bond negative");
    }
  }
  for (const Verifier& verifier : node.verifiers()) {
    if (orsc.verifier_bond(verifier.id()) < 0) {
      violate(InvariantKind::kBondSolvency,
              "verifier " + std::to_string(verifier.id().value()) +
                  " bond negative");
    }
  }

  // --- consensus invariants (armed nodes only) --------------------------------
  // Every finalized batch must be the accepted proposal of exactly one slot:
  // a finalized batch with no proposal is an equivocation that escaped the
  // engine, and two finalized batches on one slot is a fork.
  if (const ConsensusEngine* consensus = node.consensus()) {
    for (std::size_t i = 0; i < consensus->seat_count(); ++i) {
      if (consensus->seat(i).bond < 0) {
        violate(InvariantKind::kSeatBondSolvency,
                "seat " + std::to_string(i) + " bond negative");
      }
    }
    std::vector<std::uint64_t> finalized_slots;
    for (std::uint64_t id = 0; id < batch_count; ++id) {
      if (orsc.batch(id)->status != chain::BatchStatus::kFinalized) continue;
      const SlotProposal* owner = nullptr;
      for (const SlotProposal& p : consensus->proposals()) {
        if (p.batch_id == id) owner = &p;
      }
      if (owner == nullptr) {
        violate(InvariantKind::kNoFinalizedEquivocation,
                "finalized batch " + std::to_string(id) +
                    " was never an accepted proposal");
        continue;
      }
      if (std::find(finalized_slots.begin(), finalized_slots.end(),
                    owner->slot) != finalized_slots.end()) {
        violate(InvariantKind::kSlotUniqueFinalization,
                "slot " + std::to_string(owner->slot) +
                    " finalized more than one batch");
      }
      finalized_slots.push_back(owner->slot);
    }
  }

  return violations_.size() - before;
}

void InvariantChecker::save(io::ByteWriter& w) const {
  w.u64(violations_.size());
  for (const InvariantViolation& v : violations_) {
    w.u64(v.step);
    w.u8(static_cast<std::uint8_t>(v.kind));
    w.str(v.detail);
  }
  w.boolean(baselined_);
  w.i64(conservation_base_);
  w.blob(last_statuses_);
  w.boolean(flow_baselined_);
  w.i64(flow_base_supply_);
  w.i64(flow_base_fees_);
  w.i64(flow_base_burned_);
  w.i64(flow_base_locked_);
}

Status InvariantChecker::load(io::ByteReader& r) {
  InvariantChecker loaded;
  std::uint64_t violation_count = 0;
  PAROLE_IO_READ(r.length(violation_count, 17), "checker violation count");
  loaded.violations_.resize(static_cast<std::size_t>(violation_count));
  for (InvariantViolation& v : loaded.violations_) {
    std::uint8_t kind = 0;
    PAROLE_IO_READ(r.u64(v.step), "violation step");
    PAROLE_IO_READ(r.u8(kind), "violation kind");
    if (kind > static_cast<std::uint8_t>(InvariantKind::kFlowConservation)) {
      return Error{"corrupt_checkpoint", "unknown invariant kind"};
    }
    v.kind = static_cast<InvariantKind>(kind);
    PAROLE_IO_READ(r.str(v.detail), "violation detail");
  }
  PAROLE_IO_READ(r.boolean(loaded.baselined_), "checker baselined flag");
  PAROLE_IO_READ(r.i64(loaded.conservation_base_), "checker baseline");
  PAROLE_IO_READ(r.blob(loaded.last_statuses_), "checker batch statuses");
  PAROLE_IO_READ(r.boolean(loaded.flow_baselined_), "checker flow flag");
  PAROLE_IO_READ(r.i64(loaded.flow_base_supply_), "checker flow supply base");
  PAROLE_IO_READ(r.i64(loaded.flow_base_fees_), "checker flow fee base");
  PAROLE_IO_READ(r.i64(loaded.flow_base_burned_), "checker flow burned base");
  PAROLE_IO_READ(r.i64(loaded.flow_base_locked_), "checker flow locked base");
  *this = std::move(loaded);
  return ok_status();
}

void ChaosRuntime::save(io::ByteWriter& w) const {
  w.u64(plan.config().seed);
  w.u64(log.size());
  for (const FaultEvent& event : log.events()) {
    w.u64(event.step);
    w.u8(static_cast<std::uint8_t>(event.kind));
    w.u64(event.subject);
    w.str(event.detail);
  }
  checker.save(w);
  w.u64(delayed.size());
  for (const DelayedTx& d : delayed) {
    d.tx.save(w);
    w.u64(d.release_step);
  }
  w.u64(crash.size());
  for (const CrashState& c : crash) {
    w.u64(c.backoff_until);
    w.u32(c.consecutive_crashes);
  }
}

Status ChaosRuntime::load(io::ByteReader& r) {
  std::uint64_t seed = 0;
  PAROLE_IO_READ(r.u64(seed), "chaos seed");
  if (seed != plan.config().seed) {
    return Error{"config_mismatch",
                 "checkpoint chaos seed differs from the armed config; "
                 "resuming under a different fault schedule is not resuming"};
  }

  FaultLog loaded_log;
  std::uint64_t event_count = 0;
  PAROLE_IO_READ(r.length(event_count, 25), "fault event count");
  for (std::uint64_t i = 0; i < event_count; ++i) {
    FaultEvent event;
    std::uint8_t kind = 0;
    PAROLE_IO_READ(r.u64(event.step), "fault step");
    PAROLE_IO_READ(r.u8(kind), "fault kind");
    if (kind >
        static_cast<std::uint8_t>(FaultKind::kStaleViewDoublePropose)) {
      return Error{"corrupt_checkpoint", "unknown fault kind"};
    }
    event.kind = static_cast<FaultKind>(kind);
    PAROLE_IO_READ(r.u64(event.subject), "fault subject");
    PAROLE_IO_READ(r.str(event.detail), "fault detail");
    loaded_log.record(std::move(event));
  }

  InvariantChecker loaded_checker;
  if (Status s = loaded_checker.load(r); !s.ok()) return s;

  std::uint64_t delayed_count = 0;
  PAROLE_IO_READ(r.length(delayed_count, 42), "delayed tx count");
  std::vector<DelayedTx> loaded_delayed(
      static_cast<std::size_t>(delayed_count));
  for (DelayedTx& d : loaded_delayed) {
    if (Status s = d.tx.load(r); !s.ok()) return s;
    PAROLE_IO_READ(r.u64(d.release_step), "delayed release step");
  }

  std::uint64_t crash_count = 0;
  PAROLE_IO_READ(r.length(crash_count, 12), "crash state count");
  std::vector<CrashState> loaded_crash(static_cast<std::size_t>(crash_count));
  for (CrashState& c : loaded_crash) {
    PAROLE_IO_READ(r.u64(c.backoff_until), "crash backoff");
    PAROLE_IO_READ(r.u32(c.consecutive_crashes), "crash count");
  }

  log = std::move(loaded_log);
  checker = std::move(loaded_checker);
  delayed = std::move(loaded_delayed);
  crash = std::move(loaded_crash);
  return ok_status();
}

}  // namespace parole::rollup
