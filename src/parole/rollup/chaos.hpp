// Chaos harness for the rollup pipeline (DESIGN.md §9).
//
// The paper's threat model assumes a live pipeline: aggregators always show
// up, verifiers always re-execute inside the challenge window, the reorderer
// always returns. Real optimistic rollups degrade exactly there, and
// fraud-proof safety under absent challengers is itself an attack surface.
// This module makes those degradations first-class and *deterministic*:
//
//   FaultPlan         seed-driven schedule the RollupNode consults per step.
//                     Every decision is a pure function of
//                     (seed, fault family, subject, step) — see common/fault —
//                     so a chaos run is bit-reproducible from its seed.
//   ChaosRuntime      per-run mutable state: the fault log, delayed txs,
//                     per-aggregator crash/backoff accounting, the armed
//                     invariant checker.
//   InvariantChecker  safety conditions that must hold under ANY fault
//                     schedule (value conservation, supply cap, monotone
//                     finalization, trace consistency, L1 link integrity,
//                     bond non-negativity). A corrupt batch *finalizing*
//                     while every verifier sleeps is NOT an invariant
//                     violation — it is the (reportable) outcome the harness
//                     exists to expose.
//
// Fault semantics implemented by RollupNode::step():
//   kAggregatorCrash   the scheduled aggregator crashes mid-slot: its
//                      collected txs return to the pool, the next live
//                      aggregator takes the slot (round-robin failover), and
//                      the crashed one sits out an exponentially growing
//                      backoff before re-entering rotation.
//   kReordererFailure  adversarial reorderer times out; the batch ships in
//                      honest collection order (graceful degradation).
//   kVerifierDown      the verifier misses this step's verification pass;
//                      a pending batch is only challenged if some verifier
//                      wakes before its challenge window closes — so
//                      corrupt_at_step fraud can finalize.
//   kTxDrop/:Duplicate/:Delay
//                      mempool faults applied to the collected set.
//   kL1Reorg           shallow reorg: drop head blocks, roll back still-
//                      pending batch commitments in the ORSC and recommit
//                      them (challenge clocks restart).
//
// Leader faults (consensus-armed nodes only, DESIGN.md §15):
//   kLeaderCrashMidBatch     the slot leader dies after collecting but before
//                            sealing; the partial batch is discarded or
//                            inherited per PartialBatchPolicy and a view
//                            change elects a successor.
//   kElectionMsgDrop         the leader's proposal never arrives; the slot
//                            re-elects under the next view.
//   kElectionMsgDelay        the proposal arrives late — after the deadline
//                            view change — and resurfaces as a stale-view
//                            duplicate once the slot is decided.
//   kStaleViewDoublePropose  a seat proposes a second batch for a decided
//                            slot; equivocation is recorded and slashed,
//                            never submitted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "parole/common/fault.hpp"
#include "parole/io/bytes.hpp"
#include "parole/vm/tx.hpp"

namespace parole::rollup {

class RollupNode;  // chaos.cpp sees the full definition

// Probabilities are per step (per verifier-window for p_verifier_down); 0
// disables a family. `forced` entries fire unconditionally at their step and
// compose with the probabilistic draws — tests and demos use them to script
// exact scenarios against the same machinery.
struct ChaosConfig {
  std::uint64_t seed = 0xc4a05c4a05ULL;

  double p_aggregator_crash = 0.0;
  // Base sit-out after a crash, in steps; doubles per consecutive crash of
  // the same aggregator (capped) and resets on a served slot.
  std::uint64_t crash_backoff_steps = 2;

  double p_reorderer_failure = 0.0;

  // Verifier downtime is drawn per (verifier, window): with probability
  // p_verifier_down the verifier sleeps for that whole window of
  // `verifier_window_steps` steps — contiguous downtime, not per-step noise.
  double p_verifier_down = 0.0;
  std::uint64_t verifier_window_steps = 4;

  double p_tx_drop = 0.0;
  double p_tx_duplicate = 0.0;
  double p_tx_delay = 0.0;
  std::uint64_t tx_delay_steps = 3;

  double p_l1_reorg = 0.0;
  std::uint64_t max_reorg_depth = 2;

  // Leader faults: consulted only when the node has a ConsensusEngine armed.
  double p_leader_crash = 0.0;
  double p_election_msg_drop = 0.0;
  double p_election_msg_delay = 0.0;
  double p_stale_view_double_propose = 0.0;

  // Scripted faults. `subject`/`param` per kind:
  //   kAggregatorCrash   subject/param unused (hits the scheduled aggregator)
  //   kReordererFailure  subject/param unused
  //   kVerifierDown      subject = verifier index, down for [step, step+param)
  //   kTxDrop/kTxDuplicate  subject = index into the collected set (clamped)
  //   kTxDelay           subject = collected index, param = delay in steps
  //   kL1Reorg           param = reorg depth
  //   kLeaderCrashMidBatch / kElectionMsgDrop / kElectionMsgDelay /
  //   kStaleViewDoublePropose
  //                      subject/param unused (hits the slot's elected leader)
  struct ForcedFault {
    std::uint64_t step{0};
    FaultKind kind{FaultKind::kAggregatorCrash};
    std::uint64_t subject{0};
    std::uint64_t param{0};
  };
  std::vector<ForcedFault> forced;
};

// Deterministic schedule. Stateless beyond its config: any query may be
// asked in any order, any number of times, with identical answers.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(ChaosConfig config) : config_(std::move(config)) {}

  [[nodiscard]] bool aggregator_crashes(std::uint64_t step) const;
  [[nodiscard]] bool reorderer_fails(std::uint64_t step) const;
  [[nodiscard]] bool verifier_down(std::uint64_t step,
                                   std::size_t verifier) const;

  // Mempool faults for this step's collected set (empty optional = none).
  // The index is resolved against `collected_size` deterministically.
  [[nodiscard]] std::optional<std::size_t> tx_drop(
      std::uint64_t step, std::size_t collected_size) const;
  [[nodiscard]] std::optional<std::size_t> tx_duplicate(
      std::uint64_t step, std::size_t collected_size) const;
  // Returns (index, release delay in steps).
  [[nodiscard]] std::optional<std::pair<std::size_t, std::uint64_t>> tx_delay(
      std::uint64_t step, std::size_t collected_size) const;

  // 0 = no reorg this step.
  [[nodiscard]] std::uint64_t l1_reorg_depth(std::uint64_t step) const;

  // Leader faults (consensus-armed nodes only). Each hits the seat elected
  // for this step's slot — the plan answers "does the fault fire", the
  // consensus path resolves who it hits.
  [[nodiscard]] bool leader_crashes(std::uint64_t step) const;
  [[nodiscard]] bool election_msg_drop(std::uint64_t step) const;
  [[nodiscard]] bool election_msg_delay(std::uint64_t step) const;
  [[nodiscard]] bool stale_view_double_propose(std::uint64_t step) const;

  [[nodiscard]] const ChaosConfig& config() const { return config_; }

 private:
  [[nodiscard]] const ChaosConfig::ForcedFault* forced(std::uint64_t step,
                                                       FaultKind kind) const;

  ChaosConfig config_;
};

enum class InvariantKind : std::uint8_t {
  kValueConservation,     // bridge.locked == L2 supply + fees + burned + base
  kSupplyCap,             // live NFTs + remaining supply == max_supply
  kMonotoneFinalization,  // batch statuses only move forward
  kTraceConsistency,      // stored batches: trace ends in committed post-root
  kL1Integrity,           // parent-hash links verify
  kBondSolvency,          // no negative bonds
  // Consensus invariants (checked only when a ConsensusEngine is armed):
  kSlotUniqueFinalization,     // at most one finalized batch per slot
  kSeatBondSolvency,           // no negative seat bonds
  kNoFinalizedEquivocation,    // every finalized batch is an accepted proposal
  // Value-flow attribution (DESIGN.md §16): the tracker's running component
  // deltas reconcile bit-exactly with the conservation baseline quantities,
  // and every sealed batch ledger sums to zero.
  kFlowConservation,
};

[[nodiscard]] std::string_view to_string(InvariantKind kind);

struct InvariantViolation {
  std::uint64_t step{0};
  InvariantKind kind{InvariantKind::kValueConservation};
  std::string detail;

  friend bool operator==(const InvariantViolation&,
                         const InvariantViolation&) = default;
};

// Runs after every step under chaos. Stateful: it baselines conservation on
// the first check (tolerating externally seeded ledgers, e.g. campaign
// genesis states) and tracks per-batch statuses across calls to verify
// monotone finalization.
class InvariantChecker {
 public:
  // Checks every invariant against `node` and appends violations found at
  // `step` to the running list. Returns the number of NEW violations.
  std::size_t check(const RollupNode& node, std::uint64_t step);

  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool clean() const { return violations_.empty(); }

  // Checkpointing (DESIGN.md §10): the conservation baseline and per-batch
  // status memory must survive a resume, or the restored checker would
  // re-baseline against mid-run totals and miss (or invent) violations.
  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);

 private:
  std::vector<InvariantViolation> violations_;
  bool baselined_{false};
  // Conservation baseline: (supply + fees + burned) − locked at arm time.
  std::int64_t conservation_base_{0};
  std::vector<std::uint8_t> last_statuses_;  // chain::BatchStatus values
  // Flow-reconciliation baselines: actual component minus the tracker's
  // running delta at arm time. Four separate bases so a drift pinpoints the
  // component that diverged, not just that something did.
  bool flow_baselined_{false};
  std::int64_t flow_base_supply_{0};
  std::int64_t flow_base_fees_{0};
  std::int64_t flow_base_burned_{0};
  std::int64_t flow_base_locked_{0};
};

// Everything a chaos-armed RollupNode keeps between steps.
struct ChaosRuntime {
  explicit ChaosRuntime(ChaosConfig config) : plan(std::move(config)) {}

  FaultPlan plan;
  FaultLog log;
  InvariantChecker checker;

  struct DelayedTx {
    vm::Tx tx;
    std::uint64_t release_step{0};
  };
  std::vector<DelayedTx> delayed;

  struct CrashState {
    std::uint64_t backoff_until{0};  // first step it may serve again
    std::uint32_t consecutive_crashes{0};
  };
  std::vector<CrashState> crash;  // indexed like RollupNode's aggregators

  // Checkpointing (DESIGN.md §10): everything mutable — log, checker,
  // delayed txs, crash accounting. The plan is a pure function of its config
  // and is NOT serialized; restore_snapshot validates the armed config
  // matches the checkpoint's seed instead.
  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);
};

}  // namespace parole::rollup
