#include "parole/rollup/codec.hpp"

namespace parole::rollup {
namespace {
constexpr std::uint8_t kCodecVersion = 1;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

bool get_varint(std::span<const std::uint8_t> in, std::size_t& pos,
                std::uint64_t& value) {
  value = 0;
  int shift = 0;
  while (pos < in.size() && shift < 64) {
    const std::uint8_t byte = in[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

std::vector<std::uint8_t> encode_batch(std::span<const vm::Tx> txs) {
  std::vector<std::uint8_t> out;
  out.push_back(kCodecVersion);
  put_varint(out, txs.size());

  std::uint64_t prev_id = 0;
  std::uint64_t prev_arrival = 0;
  for (const vm::Tx& tx : txs) {
    // Kind (2 bits) + has-token flag packed into one byte.
    const std::uint8_t flags = static_cast<std::uint8_t>(tx.kind) |
                               (tx.token.has_value() ? 0x04 : 0x00);
    out.push_back(flags);
    put_varint(out, zigzag_encode(static_cast<std::int64_t>(tx.id.value()) -
                                  static_cast<std::int64_t>(prev_id)));
    prev_id = tx.id.value();
    put_varint(out, tx.sender.value());
    if (tx.kind == vm::TxKind::kTransfer) {
      put_varint(out, tx.recipient.value());
    }
    if (tx.token.has_value()) put_varint(out, tx.token->value());
    put_varint(out, static_cast<std::uint64_t>(tx.base_fee));
    put_varint(out, static_cast<std::uint64_t>(tx.priority_fee));
    put_varint(out,
               zigzag_encode(static_cast<std::int64_t>(tx.arrival) -
                             static_cast<std::int64_t>(prev_arrival)));
    prev_arrival = tx.arrival;
  }
  return out;
}

Result<std::vector<vm::Tx>> decode_batch(
    std::span<const std::uint8_t> bytes) {
  std::size_t pos = 0;
  if (bytes.empty() || bytes[pos++] != kCodecVersion) {
    return Error{"bad_version", "unknown batch codec version"};
  }
  std::uint64_t count = 0;
  if (!get_varint(bytes, pos, count)) {
    return Error{"truncated", "missing tx count"};
  }

  std::vector<vm::Tx> txs;
  txs.reserve(count);
  std::uint64_t prev_id = 0;
  std::uint64_t prev_arrival = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (pos >= bytes.size()) return Error{"truncated", "missing tx flags"};
    const std::uint8_t flags = bytes[pos++];
    const auto kind = static_cast<vm::TxKind>(flags & 0x03);
    if ((flags & 0x03) > 2) return Error{"corrupt", "invalid tx kind"};
    const bool has_token = (flags & 0x04) != 0;

    std::uint64_t id_delta = 0, sender = 0, recipient = 0, token = 0;
    std::uint64_t base_fee = 0, priority_fee = 0, arrival_delta = 0;
    if (!get_varint(bytes, pos, id_delta) ||
        !get_varint(bytes, pos, sender)) {
      return Error{"truncated", "missing tx header"};
    }
    if (kind == vm::TxKind::kTransfer &&
        !get_varint(bytes, pos, recipient)) {
      return Error{"truncated", "missing recipient"};
    }
    if (has_token && !get_varint(bytes, pos, token)) {
      return Error{"truncated", "missing token"};
    }
    if (!get_varint(bytes, pos, base_fee) ||
        !get_varint(bytes, pos, priority_fee) ||
        !get_varint(bytes, pos, arrival_delta)) {
      return Error{"truncated", "missing fees"};
    }

    vm::Tx tx;
    tx.kind = kind;
    prev_id = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(prev_id) + zigzag_decode(id_delta));
    tx.id = TxId{prev_id};
    tx.sender = UserId{static_cast<std::uint32_t>(sender)};
    if (kind == vm::TxKind::kTransfer) {
      tx.recipient = UserId{static_cast<std::uint32_t>(recipient)};
    }
    if (has_token) tx.token = TokenId{static_cast<std::uint32_t>(token)};
    tx.base_fee = static_cast<Amount>(base_fee);
    tx.priority_fee = static_cast<Amount>(priority_fee);
    prev_arrival = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(prev_arrival) +
        zigzag_decode(arrival_delta));
    tx.arrival = prev_arrival;
    txs.push_back(std::move(tx));
  }
  if (pos != bytes.size()) {
    return Error{"trailing_bytes", "unexpected bytes after batch"};
  }
  return txs;
}

std::size_t naive_encoded_size(std::span<const vm::Tx> txs) {
  // The Tx::encode() canonical fixed-layout record.
  std::size_t total = 8;  // count header
  for (const vm::Tx& tx : txs) total += tx.encode().size();
  return total;
}

}  // namespace parole::rollup
