// Batch calldata codec.
//
// Rollups are cost-effective because batches are posted to L1 as compressed
// calldata (Sec. I-II: "batching transactions, reducing on-chain operations,
// and minimizing transaction fees"). This codec is the simulator's version
// of that pipeline: a compact varint wire format for NFT transactions with
// field-wise delta encoding (tx ids and arrivals are near-sequential, so
// their deltas are tiny), plus exact decode — aggregators post
// encode_batch() bytes, and anyone can reconstruct the batch body to
// re-execute against a commitment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "parole/common/result.hpp"
#include "parole/vm/tx.hpp"

namespace parole::rollup {

// LEB128-style unsigned varint.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);
// Reads a varint at `pos` (advances it); false on truncation.
bool get_varint(std::span<const std::uint8_t> in, std::size_t& pos,
                std::uint64_t& value);
// ZigZag for signed deltas.
std::uint64_t zigzag_encode(std::int64_t value);
std::int64_t zigzag_decode(std::uint64_t value);

// Encode a batch body. Layout: version, count, then per-tx records with
// delta-encoded ids/arrivals and varint fields.
[[nodiscard]] std::vector<std::uint8_t> encode_batch(
    std::span<const vm::Tx> txs);

// Exact inverse of encode_batch().
[[nodiscard]] Result<std::vector<vm::Tx>> decode_batch(
    std::span<const std::uint8_t> bytes);

// Size of the naive fixed-width encoding (what posting raw structs would
// cost) — the compression baseline.
[[nodiscard]] std::size_t naive_encoded_size(std::span<const vm::Tx> txs);

}  // namespace parole::rollup
