#include "parole/rollup/consensus.hpp"

#include <algorithm>
#include <cassert>

#include "parole/obs/flow.hpp"
#include "parole/rollup/economics.hpp"

namespace parole::rollup {

std::string_view to_string(ViewChangeReason reason) {
  switch (reason) {
    case ViewChangeReason::kLeaderCrash:
      return "leader_crash";
    case ViewChangeReason::kMsgDrop:
      return "msg_drop";
    case ViewChangeReason::kMsgDelay:
      return "msg_delay";
    case ViewChangeReason::kDeadSeat:
      return "dead_seat";
  }
  return "unknown";
}

ConsensusEngine::ConsensusEngine(ConsensusConfig config, std::size_t seat_count)
    : config_(std::move(config)) {
  ensure_seats(seat_count);
}

void ConsensusEngine::ensure_seats(std::size_t seat_count) {
  while (seats_.size() < seat_count) {
    SeatState seat;
    const std::size_t index = seats_.size();
    seat.stake = index < config_.stakes.size() ? config_.stakes[index] : 1;
    seat.bond = config_.seat_bond;
    seats_.push_back(seat);
  }
}

void ConsensusEngine::set_seat_adversarial(std::size_t seat, bool adversarial) {
  ensure_seats(seat + 1);
  seats_[seat].adversarial = adversarial;
}

std::vector<SeatProfile> ConsensusEngine::profiles() const {
  std::vector<SeatProfile> out;
  out.reserve(seats_.size());
  for (const SeatState& seat : seats_) {
    // An insolvent seat keeps its roster slot but carries zero stake, so the
    // weighted draw can never hand it a slot it cannot bond.
    out.push_back(SeatProfile{seat.bond > 0 ? seat.stake : 0,
                              seat.adversarial});
  }
  return out;
}

std::size_t ConsensusEngine::leader(std::uint64_t slot) {
  assert(!seats_.empty());
  switch (config_.model) {
    case ElectionModel::kRoundRobin:
      return elect_round_robin(slot, view_, seats_.size());
    case ElectionModel::kStakeWeighted: {
      const std::vector<SeatProfile> seats = profiles();
      return elect_stake_weighted(config_.seed, slot, view_, seats);
    }
    case ElectionModel::kAuction:
      break;
  }
  // Sealed-bid round: recompute the book for (slot, view) and cache it so
  // record_proposal charges exactly this price — and so a checkpoint cut
  // between election and proposal resumes with the same bids on file.
  const std::vector<SeatProfile> seats = profiles();
  pending_bids_.clear();
  pending_bids_.reserve(seats_.size());
  for (std::size_t i = 0; i < seats_.size(); ++i) {
    pending_bids_.push_back(AuctionBid{
        static_cast<std::uint64_t>(i),
        auction_bid(config_.seed, slot, view_, i, seats[i], config_.honest_bid,
                    config_.adversary_bid, seats_[i].bond)});
  }
  return auction_winner(pending_bids_);
}

void ConsensusEngine::view_change(std::uint64_t slot, std::size_t seat,
                                  ViewChangeReason reason) {
  view_changes_.push_back(ViewChangeRecord{slot, view_,
                                           static_cast<std::uint64_t>(seat),
                                           reason});
  if (seat < seats_.size()) ++seats_[seat].slots_missed;
  ++view_;
}

bool ConsensusEngine::record_proposal(std::uint64_t slot, std::uint64_t view,
                                      std::size_t seat,
                                      std::uint64_t batch_id) {
  if (accepted(slot) != nullptr) return false;  // slot already decided
  if (config_.model == ElectionModel::kAuction && seat < seats_.size()) {
    // First price, winner pays bid — out of the seat bond, clamped to what
    // the bond can still cover.
    Amount price = 0;
    for (const AuctionBid& bid : pending_bids_) {
      if (bid.seat == seat) price = bid.bid;
    }
    price = std::min(price, seats_[seat].bond);
    seats_[seat].bond -= price;
    seats_[seat].auction_spend += price;
    if (flow_ != nullptr) {
      flow_->record_auction_spend(static_cast<std::uint32_t>(seat), price);
    }
  }
  proposals_.push_back(
      SlotProposal{slot, view, static_cast<std::uint64_t>(seat), batch_id});
  if (seat < seats_.size()) ++seats_[seat].slots_led;
  return true;
}

EquivocationRecord ConsensusEngine::record_equivocation(std::uint64_t slot,
                                                        std::uint64_t view,
                                                        std::size_t seat) {
  EquivocationRecord record{slot, view, static_cast<std::uint64_t>(seat), 0};
  if (seat < seats_.size()) {
    const SlashOutcome slash =
        slash_seat_bond(seats_[seat].bond, config_.equivocation_slash_percent,
                        config_.slash_reward_percent);
    seats_[seat].bond -= slash.slashed;
    seats_[seat].slashed += slash.slashed;
    ++seats_[seat].equivocations;
    record.slashed = slash.slashed;
    if (flow_ != nullptr) {
      // No challenger in an equivocation slash: the prover's cut stays in
      // the bond pool, the remainder burns.
      flow_->record_slash(obs::FlowActor::seat(static_cast<std::uint32_t>(seat)),
                          obs::FlowActor::bond_pool(), slash.slashed,
                          slash.reward);
    }
  }
  equivocations_.push_back(record);
  return record;
}

const SlotProposal* ConsensusEngine::accepted(std::uint64_t slot) const {
  for (const SlotProposal& p : proposals_) {
    if (p.slot == slot) return &p;
  }
  return nullptr;
}

bool ConsensusEngine::batch_accepted(std::uint64_t batch_id) const {
  for (const SlotProposal& p : proposals_) {
    if (p.batch_id == batch_id) return true;
  }
  return false;
}

Amount ConsensusEngine::total_auction_spend(bool adversarial_only) const {
  Amount total = 0;
  for (const SeatState& seat : seats_) {
    if (adversarial_only && !seat.adversarial) continue;
    total += seat.auction_spend;
  }
  return total;
}

Amount ConsensusEngine::total_slashed(bool adversarial_only) const {
  Amount total = 0;
  for (const SeatState& seat : seats_) {
    if (adversarial_only && !seat.adversarial) continue;
    total += seat.slashed;
  }
  return total;
}

void ConsensusEngine::save(io::ByteWriter& w) const {
  // Fingerprint first: a checkpoint is only resumable under the exact
  // election it was cut under.
  w.u8(static_cast<std::uint8_t>(config_.model));
  w.u64(config_.seed);
  w.u64(seats_.size());
  for (const SeatState& seat : seats_) {
    w.u64(seat.stake);
    w.boolean(seat.adversarial);
    w.i64(seat.bond);
    w.i64(seat.auction_spend);
    w.i64(seat.slashed);
    w.u64(seat.slots_led);
    w.u64(seat.slots_missed);
    w.u32(seat.equivocations);
  }
  w.u64(view_);
  w.u64(proposals_.size());
  for (const SlotProposal& p : proposals_) {
    w.u64(p.slot);
    w.u64(p.view);
    w.u64(p.seat);
    w.u64(p.batch_id);
  }
  w.u64(equivocations_.size());
  for (const EquivocationRecord& e : equivocations_) {
    w.u64(e.slot);
    w.u64(e.view);
    w.u64(e.seat);
    w.i64(e.slashed);
  }
  w.u64(view_changes_.size());
  for (const ViewChangeRecord& v : view_changes_) {
    w.u64(v.slot);
    w.u64(v.from_view);
    w.u64(v.seat);
    w.u8(static_cast<std::uint8_t>(v.reason));
  }
  w.u64(pending_bids_.size());
  for (const AuctionBid& bid : pending_bids_) {
    w.u64(bid.seat);
    w.i64(bid.bid);
  }
}

Status ConsensusEngine::load(io::ByteReader& r) {
  std::uint8_t model = 0;
  std::uint64_t seed = 0;
  std::uint64_t seat_count = 0;
  PAROLE_IO_READ(r.u8(model), "consensus model");
  PAROLE_IO_READ(r.u64(seed), "consensus seed");
  if (model != static_cast<std::uint8_t>(config_.model) ||
      seed != config_.seed) {
    return Error{"config_mismatch",
                 "checkpoint consensus model/seed differs from the armed "
                 "config; resuming under a different election is not resuming"};
  }
  PAROLE_IO_READ(r.length(seat_count, 44), "consensus seat count");
  if (seat_count != seats_.size()) {
    return Error{"config_mismatch",
                 "checkpoint seat count differs from the armed topology"};
  }

  std::vector<SeatState> seats(static_cast<std::size_t>(seat_count));
  for (SeatState& seat : seats) {
    PAROLE_IO_READ(r.u64(seat.stake), "seat stake");
    PAROLE_IO_READ(r.boolean(seat.adversarial), "seat adversarial flag");
    PAROLE_IO_READ(r.i64(seat.bond), "seat bond");
    PAROLE_IO_READ(r.i64(seat.auction_spend), "seat auction spend");
    PAROLE_IO_READ(r.i64(seat.slashed), "seat slashed total");
    PAROLE_IO_READ(r.u64(seat.slots_led), "seat slots led");
    PAROLE_IO_READ(r.u64(seat.slots_missed), "seat slots missed");
    PAROLE_IO_READ(r.u32(seat.equivocations), "seat equivocations");
  }

  std::uint64_t view = 0;
  PAROLE_IO_READ(r.u64(view), "consensus view");

  std::uint64_t proposal_count = 0;
  PAROLE_IO_READ(r.length(proposal_count, 32), "proposal count");
  std::vector<SlotProposal> proposals(
      static_cast<std::size_t>(proposal_count));
  for (SlotProposal& p : proposals) {
    PAROLE_IO_READ(r.u64(p.slot), "proposal slot");
    PAROLE_IO_READ(r.u64(p.view), "proposal view");
    PAROLE_IO_READ(r.u64(p.seat), "proposal seat");
    PAROLE_IO_READ(r.u64(p.batch_id), "proposal batch id");
  }

  std::uint64_t equivocation_count = 0;
  PAROLE_IO_READ(r.length(equivocation_count, 32), "equivocation count");
  std::vector<EquivocationRecord> equivocations(
      static_cast<std::size_t>(equivocation_count));
  for (EquivocationRecord& e : equivocations) {
    PAROLE_IO_READ(r.u64(e.slot), "equivocation slot");
    PAROLE_IO_READ(r.u64(e.view), "equivocation view");
    PAROLE_IO_READ(r.u64(e.seat), "equivocation seat");
    PAROLE_IO_READ(r.i64(e.slashed), "equivocation slash");
  }

  std::uint64_t view_change_count = 0;
  PAROLE_IO_READ(r.length(view_change_count, 25), "view change count");
  std::vector<ViewChangeRecord> view_changes(
      static_cast<std::size_t>(view_change_count));
  for (ViewChangeRecord& v : view_changes) {
    std::uint8_t reason = 0;
    PAROLE_IO_READ(r.u64(v.slot), "view change slot");
    PAROLE_IO_READ(r.u64(v.from_view), "view change origin view");
    PAROLE_IO_READ(r.u64(v.seat), "view change seat");
    PAROLE_IO_READ(r.u8(reason), "view change reason");
    if (reason > static_cast<std::uint8_t>(ViewChangeReason::kDeadSeat)) {
      return Error{"corrupt_checkpoint", "unknown view change reason"};
    }
    v.reason = static_cast<ViewChangeReason>(reason);
  }

  std::uint64_t bid_count = 0;
  PAROLE_IO_READ(r.length(bid_count, 16), "pending bid count");
  std::vector<AuctionBid> bids(static_cast<std::size_t>(bid_count));
  for (AuctionBid& bid : bids) {
    PAROLE_IO_READ(r.u64(bid.seat), "pending bid seat");
    PAROLE_IO_READ(r.i64(bid.bid), "pending bid amount");
  }

  seats_ = std::move(seats);
  view_ = view;
  proposals_ = std::move(proposals);
  equivocations_ = std::move(equivocations);
  view_changes_ = std::move(view_changes);
  pending_bids_ = std::move(bids);
  return ok_status();
}

}  // namespace parole::rollup
