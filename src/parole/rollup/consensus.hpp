// Decentralized sequencing layer (DESIGN.md §15, ROADMAP item 5).
//
// The paper's attack assumes one aggregator owns every slot. This module
// replaces that assumption: the node's aggregators become N bonded sequencer
// *seats* that take turns producing batches under a pluggable leadership
// model (rollup/election.hpp), with a deterministic view-change protocol for
// leader failure:
//
//   slot      = one aggregation round (the node's step index).
//   view      = a global monotone counter; the leader of a slot is
//               elect(slot, view). A leader that misses its deadline, loses
//               its proposal message, or crashes mid-batch triggers
//               view_change(): view increments and the *same slot* re-elects
//               — every replica derives the same successor from (slot,
//               view+1), no communication needed. The deterministic analogue
//               of a PBFT/Tendermint view change.
//   proposal  = the sealed batch a leader lands for its slot. The engine
//               accepts exactly one per slot; a second proposal for a decided
//               slot (a recovered leader re-proposing under a stale view) is
//               *equivocation*: detected, recorded, slashed via
//               economics::slash_seat_bond, and never submitted to L1 — the
//               no-finalized-equivocation invariant checks that end to end.
//
// Per-seat bonded economics: each seat posts `seat_bond` at arm time.
// Equivocation slashes it; under kAuction the winner also pays its bid out
// of the bond (winner-pays-bid, first price). A seat whose bond hits zero is
// skipped by the election loop (dead-seat view change) — misbehavior prices
// a seat out of sequencing entirely.
//
// Everything here is deterministic and checkpointable: the CSNS snapshot
// section carries view number, seat states (stake/bond/spend), accepted
// proposals, equivocation records and pending auction bids, so a SIGKILLed
// run resumes bit-identically (same contract as rollup/chaos.*).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "parole/common/amount.hpp"
#include "parole/common/result.hpp"
#include "parole/io/bytes.hpp"
#include "parole/rollup/election.hpp"

namespace parole::obs {
class ValueFlowTracker;
}  // namespace parole::obs

namespace parole::rollup {

// What happens to the txs a leader had already collected when it crashes
// mid-batch (FaultKind::kLeaderCrashMidBatch).
enum class PartialBatchPolicy : std::uint8_t {
  kDiscard,  // txs return to the mempool (arrival stamps intact); the
             // successor re-collects under the normal priority order
  kInherit,  // the successor takes over the crashed leader's collected set
             // verbatim — including any adversarially useful ordering the
             // dead leader's mempool view baked in ("poisoned handoff")
};

enum class ViewChangeReason : std::uint8_t {
  kLeaderCrash,   // crashed mid-batch (chaos kLeaderCrashMidBatch)
  kMsgDrop,       // proposal never arrived (chaos kElectionMsgDrop)
  kMsgDelay,      // proposal late past the slot deadline (kElectionMsgDelay)
  kDeadSeat,      // elected seat has no live bond; skipped deterministically
};

[[nodiscard]] std::string_view to_string(ViewChangeReason reason);

struct ConsensusConfig {
  ElectionModel model{ElectionModel::kRoundRobin};
  // Election seed — independent of the chaos seed so fault schedules and
  // leadership schedules decorrelate; mixed via common/fault streams.
  std::uint64_t seed{0x5ea7c0de5ULL};
  // Bond each seat posts at arm time (consensus-layer stake, separate from
  // the ORSC aggregator bond that backs fraud proofs).
  Amount seat_bond = eth(3);
  // Per-seat stakes for kStakeWeighted (and tie context for auctions).
  // Shorter than the seat count = missing entries default to 1.
  std::vector<std::uint64_t> stakes;
  // Auction bid schedule: honest seats bid around `honest_bid`; adversarial
  // seats bid `adversary_bid` flat (they need the ordering, not a bargain).
  Amount honest_bid = gwei(400'000);      // 0.0004 ETH
  Amount adversary_bid = gwei(3'200'000);  // 8x the honest book
  PartialBatchPolicy partial_batch{PartialBatchPolicy::kDiscard};
  // Equivocation slash: percent of the live bond taken, and the prover's cut
  // of the take (the rest burns) — economics::slash_seat_bond.
  int equivocation_slash_percent = 50;
  int slash_reward_percent = 50;
  // View-change budget per slot; exhausting it forfeits the slot (no batch).
  std::size_t max_view_changes_per_slot = 8;
};

struct SeatState {
  std::uint64_t stake{1};
  bool adversarial{false};
  Amount bond{0};
  Amount auction_spend{0};  // cumulative bids paid (kAuction)
  Amount slashed{0};        // cumulative equivocation slashes
  std::uint64_t slots_led{0};
  std::uint64_t slots_missed{0};  // view changes charged to this seat
  std::uint32_t equivocations{0};

  friend bool operator==(const SeatState&, const SeatState&) = default;
};

// One accepted proposal: the batch that owns `slot`.
struct SlotProposal {
  std::uint64_t slot{0};
  std::uint64_t view{0};
  std::uint64_t seat{0};
  std::uint64_t batch_id{0};

  friend bool operator==(const SlotProposal&, const SlotProposal&) = default;
};

struct EquivocationRecord {
  std::uint64_t slot{0};
  std::uint64_t view{0};  // the stale view the duplicate arrived under
  std::uint64_t seat{0};
  Amount slashed{0};

  friend bool operator==(const EquivocationRecord&,
                         const EquivocationRecord&) = default;
};

struct ViewChangeRecord {
  std::uint64_t slot{0};
  std::uint64_t from_view{0};
  std::uint64_t seat{0};  // the leader that failed
  ViewChangeReason reason{ViewChangeReason::kLeaderCrash};

  friend bool operator==(const ViewChangeRecord&,
                         const ViewChangeRecord&) = default;
};

class ConsensusEngine {
 public:
  explicit ConsensusEngine(ConsensusConfig config, std::size_t seat_count = 0);

  // Topology wiring (RollupNode::add_aggregator keeps seats 1:1 with
  // aggregators; arm order does not matter). New seats post the configured
  // bond and default to stake 1 / honest.
  void ensure_seats(std::size_t seat_count);
  void set_seat_adversarial(std::size_t seat, bool adversarial);

  [[nodiscard]] std::size_t seat_count() const { return seats_.size(); }
  [[nodiscard]] const SeatState& seat(std::size_t index) const {
    return seats_[index];
  }
  [[nodiscard]] const ConsensusConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t view() const { return view_; }

  // Leader of `slot` under the current view. Pure given the engine state;
  // under kAuction this also (re)computes the slot's sealed bids into
  // pending_bids() — the winner is charged only when its proposal lands.
  [[nodiscard]] std::size_t leader(std::uint64_t slot);
  [[nodiscard]] const std::vector<AuctionBid>& pending_bids() const {
    return pending_bids_;
  }

  // The elected leader failed its slot: view increments, the failure is
  // charged to `seat`, and the next leader() call re-elects.
  void view_change(std::uint64_t slot, std::size_t seat,
                   ViewChangeReason reason);

  // The leader sealed a batch for `slot`. Exactly one proposal per slot is
  // accepted; under kAuction the winner pays its pending bid here. Returns
  // false when the slot is already decided — the caller must treat that as
  // equivocation (record_equivocation) and never submit the batch.
  [[nodiscard]] bool record_proposal(std::uint64_t slot, std::uint64_t view,
                                     std::size_t seat, std::uint64_t batch_id);

  // A second proposal arrived for a decided slot (stale-view double
  // propose): slash the offending seat per economics::slash_seat_bond and
  // keep the record for the invariant checker and the fault log.
  EquivocationRecord record_equivocation(std::uint64_t slot,
                                         std::uint64_t view,
                                         std::size_t seat);

  [[nodiscard]] const std::vector<SlotProposal>& proposals() const {
    return proposals_;
  }
  [[nodiscard]] const std::vector<EquivocationRecord>& equivocations() const {
    return equivocations_;
  }
  [[nodiscard]] const std::vector<ViewChangeRecord>& view_changes() const {
    return view_changes_;
  }
  [[nodiscard]] const SlotProposal* accepted(std::uint64_t slot) const;
  // True when `batch_id` belongs to an accepted proposal — the only batches
  // allowed to exist on L1 when consensus is armed.
  [[nodiscard]] bool batch_accepted(std::uint64_t batch_id) const;
  // Total auction spend, optionally restricted to adversarial seats (the
  // profit-vs-decentralization benches net this off the raw reorder profit).
  [[nodiscard]] Amount total_auction_spend(bool adversarial_only) const;
  // Total equivocation slashes taken from seat bonds, same restriction —
  // the third component of the bench's net-profit decomposition (net =
  // gross − auction spend − slash loss). Pure sum over SeatState::slashed,
  // which is already cumulative and checkpointed.
  [[nodiscard]] Amount total_slashed(bool adversarial_only) const;

  // Value-flow sink (DESIGN.md §16): auction charges and equivocation
  // slashes report here when set. Observability wiring, never checkpointed;
  // the owning node re-wires it after a restore.
  void set_flow_sink(obs::ValueFlowTracker* sink) { flow_ = sink; }

  // Checkpointing (DESIGN.md §10): the CSNS section payload — view, seats,
  // proposals, equivocations, view changes, pending bids. The config is
  // fingerprinted (model/seed/seat count) and load() rejects a checkpoint
  // armed differently with "config_mismatch", like the chaos runtime.
  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);

 private:
  [[nodiscard]] std::vector<SeatProfile> profiles() const;

  ConsensusConfig config_;
  std::vector<SeatState> seats_;
  std::uint64_t view_{0};
  std::vector<SlotProposal> proposals_;
  std::vector<EquivocationRecord> equivocations_;
  std::vector<ViewChangeRecord> view_changes_;
  // Sealed bids for the slot leader() last answered (kAuction only). Part of
  // the checkpoint: a resume mid-slot must re-charge the same price.
  std::vector<AuctionBid> pending_bids_;
  obs::ValueFlowTracker* flow_{nullptr};
};

}  // namespace parole::rollup
