#include "parole/rollup/dispute.hpp"

#include <cassert>

#include "parole/obs/journal.hpp"
#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"

namespace parole::rollup {
namespace {

// Publish the verdict's counters — and, when fraud is proven, the lifecycle
// verdict event — once, on every return path.
struct DisputeTelemetry {
  const DisputeVerdict& verdict;
  obs::TxJournal* journal;
  std::uint64_t batch_id;
  ~DisputeTelemetry() {
    PAROLE_OBS_COUNT("parole.rollup.disputes", 1);
    PAROLE_OBS_OBSERVE("parole.rollup.bisection_rounds", verdict.rounds);
    if (verdict.fraud_proven) {
      PAROLE_OBS_COUNT("parole.rollup.fraud_proven", 1);
      if (journal != nullptr) {
        journal->record({0, obs::TxEventKind::kFraudProven, 0, 0, batch_id,
                         verdict.disputed_step, 0});
      }
    }
  }
};

}  // namespace

DisputeVerdict DisputeGame::run(
    const Batch& batch, const vm::L2State& pre_state,
    const std::vector<crypto::Hash256>& honest_roots,
    const vm::ExecutionEngine& engine) {
  PAROLE_OBS_SPAN("rollup.dispute");
  DisputeVerdict verdict;
  const DisputeTelemetry telemetry{verdict, obs::TxJournal::current(),
                                   batch.header.batch_id};
  // Bisection replays are probes, not lifecycle events — suppress journaling
  // for the game's own engine calls (the verdict still lands via telemetry).
  const obs::TxJournal::Scope suppress(nullptr);
  const std::size_t n = batch.txs.size();
  assert(honest_roots.size() == n);

  if (n == 0) {
    verdict.fraud_proven =
        batch.header.post_state_root != batch.header.pre_state_root;
    return verdict;
  }

  // Header must match its own committed trace; if not, fraud is structural
  // and needs no bisection.
  if (!batch.trace_consistent()) {
    verdict.fraud_proven = true;
    verdict.disputed_step = n - 1;
    verdict.proof = {batch.header.batch_id, n - 1,
                     n >= 2 ? batch.intermediate_roots[n - 2]
                            : batch.header.pre_state_root,
                     batch.header.post_state_root, batch.txs[n - 1]};
    return verdict;
  }

  // The challenger must actually disagree somewhere; otherwise the challenge
  // is frivolous and fails.
  std::size_t divergent = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (batch.intermediate_roots[i] != honest_roots[i]) {
      divergent = i;
      break;
    }
  }
  if (divergent == n) {
    verdict.fraud_proven = false;
    return verdict;
  }

  // Bisection: invariant — parties agree on the root after step `lo`
  // (lo == -1 means the pre-state root) and disagree after step `hi`.
  std::ptrdiff_t lo = -1;
  std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(divergent);
  while (hi - lo > 1) {
    const std::ptrdiff_t mid = lo + (hi - lo) / 2;
    const bool agree = batch.intermediate_roots[static_cast<std::size_t>(mid)] ==
                       honest_roots[static_cast<std::size_t>(mid)];
    verdict.transcript.push_back({static_cast<std::size_t>(lo + 1),
                                  static_cast<std::size_t>(hi),
                                  static_cast<std::size_t>(mid),
                                  /*challenger_says_left=*/!agree});
    if (agree) {
      lo = mid;
    } else {
      hi = mid;
    }
    ++verdict.rounds;
  }

  const auto step = static_cast<std::size_t>(hi);
  verdict.disputed_step = step;

  // Single-step adjudication: materialize the agreed state (replay up to and
  // including `lo`), execute the one disputed transaction, compare.
  vm::L2State replay = pre_state;
  for (std::size_t i = 0; i < step; ++i) {
    (void)engine.execute_tx(replay, batch.txs[i]);
  }
  const crypto::Hash256 agreed_pre =
      step == 0 ? batch.header.pre_state_root
                : batch.intermediate_roots[step - 1];
  assert(replay.state_root() == agreed_pre);

  (void)engine.execute_tx(replay, batch.txs[step]);
  const crypto::Hash256 truth = replay.state_root();

  verdict.fraud_proven = truth != batch.intermediate_roots[step];
  verdict.proof = {batch.header.batch_id, step, agreed_pre,
                   batch.intermediate_roots[step], batch.txs[step]};
  return verdict;
}

}  // namespace parole::rollup
