// Interactive dispute game (bisection over the batch's state-root trace).
//
// When a verifier challenges a batch, the referee (the ORSC, i.e. L1) cannot
// re-execute the whole batch on chain. Instead, challenger and defender play
// a bisection game over the intermediate state roots: at every round the
// challenger points at the half of the trace containing the first
// disagreement, until a single step remains. L1 then re-executes *only that
// one transaction* from the agreed pre-root and rules for whichever party the
// result supports.
//
// Our simulated L1 can afford single-tx re-execution (it owns a copy of the
// pre-state and replays up to the disputed step to materialize it — standing
// in for the state witnesses a production system would supply).
#pragma once

#include <cstdint>
#include <vector>

#include "parole/rollup/fraud_proof.hpp"
#include "parole/vm/engine.hpp"

namespace parole::rollup {

struct DisputeRound {
  std::size_t lo{0};
  std::size_t hi{0};
  std::size_t mid{0};
  bool challenger_says_left{false};
};

struct DisputeVerdict {
  bool fraud_proven{false};
  std::size_t disputed_step{0};
  std::size_t rounds{0};
  StepFraudProof proof;
  std::vector<DisputeRound> transcript;
};

class DisputeGame {
 public:
  // `pre_state` is the canonical state before the batch; `honest_roots` the
  // challenger's own re-executed trace (one root per tx). Runs the bisection
  // against the batch's committed trace and adjudicates the final step by
  // re-execution.
  static DisputeVerdict run(const Batch& batch, const vm::L2State& pre_state,
                            const std::vector<crypto::Hash256>& honest_roots,
                            const vm::ExecutionEngine& engine);
};

}  // namespace parole::rollup
