#include "parole/rollup/economics.hpp"

#include <algorithm>
#include <limits>

namespace parole::rollup {

Amount EconomicsModel::gas_to_gwei(std::uint64_t gas) const {
  const __int128 wei = static_cast<__int128>(gas) *
                       static_cast<__int128>(config_.l1_gas_price_wei);
  return static_cast<Amount>(wei / 1'000'000'000);
}

BatchEconomics EconomicsModel::analyze(std::span<const vm::Tx> txs) const {
  BatchEconomics out;
  out.tx_count = txs.size();
  out.encoded_bytes = encode_batch(txs).size();
  out.naive_bytes = naive_encoded_size(txs);
  out.compression_ratio =
      out.encoded_bytes == 0
          ? 0.0
          : static_cast<double>(out.naive_bytes) /
                static_cast<double>(out.encoded_bytes);

  const std::uint64_t gas =
      config_.submission_overhead_gas +
      config_.gas_per_byte * static_cast<std::uint64_t>(out.encoded_bytes);
  out.l1_cost = gas_to_gwei(gas);

  for (const vm::Tx& tx : txs) out.fee_revenue += tx.total_fee();
  out.aggregator_net = out.fee_revenue - out.l1_cost;
  return out;
}

std::size_t EconomicsModel::break_even_size(Amount avg_fee_per_tx,
                                            std::size_t bytes_per_tx) const {
  const Amount per_tx_cost =
      gas_to_gwei(config_.gas_per_byte *
                  static_cast<std::uint64_t>(bytes_per_tx));
  if (avg_fee_per_tx <= per_tx_cost) {
    return std::numeric_limits<std::size_t>::max();  // never profitable
  }
  const Amount overhead = gas_to_gwei(config_.submission_overhead_gas);
  const Amount margin = avg_fee_per_tx - per_tx_cost;
  // Smallest n with n * margin > overhead.
  const auto n = static_cast<std::size_t>(overhead / margin) + 1;
  return n;
}

SlashOutcome slash_seat_bond(Amount bond, int slash_percent,
                             int reward_percent) {
  SlashOutcome out;
  if (bond <= 0) return out;  // nothing left to take
  const int slash = std::clamp(slash_percent, 0, 100);
  const int reward = std::clamp(reward_percent, 0, 100);
  out.slashed = bond * slash / 100;
  out.reward = out.slashed * reward / 100;
  out.burnt = out.slashed - out.reward;
  return out;
}

}  // namespace parole::rollup
