// Rollup economics: what a batch costs to post on L1 and what the
// aggregator nets (Sec. I: rollups "optimize efficiency by batching
// transactions ... minimizing transaction fees").
//
// Cost model follows Ethereum calldata pricing: a fixed per-submission
// overhead (the L1 transaction to the inbox plus the commitment storage)
// plus per-byte calldata gas on the encoded batch body. Revenue is the sum
// of the batch's user fees. The break-even batch size — where amortized
// overhead drops below fee income — is why aggregators batch at all.
#pragma once

#include <cstdint>
#include <span>

#include "parole/common/amount.hpp"
#include "parole/rollup/codec.hpp"

namespace parole::rollup {

struct EconomicsConfig {
  // L1 gas for the submission transaction itself (21k base + inbox logic).
  std::uint64_t submission_overhead_gas = 60'000;
  // Gas per calldata byte (Ethereum charges 16 for nonzero bytes; our
  // varint encoding is dense, so a flat 16 is the conservative model).
  std::uint64_t gas_per_byte = 16;
  // L1 gas price in wei per gas.
  std::uint64_t l1_gas_price_wei = 20'000'000'000;  // 20 gwei
};

struct BatchEconomics {
  std::size_t tx_count{0};
  std::size_t encoded_bytes{0};
  std::size_t naive_bytes{0};
  double compression_ratio{0.0};  // naive / encoded
  Amount l1_cost{0};              // gwei
  Amount fee_revenue{0};          // gwei (sum of user fees)
  Amount aggregator_net{0};       // revenue - cost

  [[nodiscard]] bool profitable() const { return aggregator_net > 0; }
};

// Seat-bond slashing for consensus misbehavior (DESIGN.md §15). Mirrors the
// ORSC's fraud-slash split: `slash_percent` of the seat's live bond is
// confiscated, and of that, `reward_percent` pays the party that proved the
// equivocation while the remainder burns. Clamps to the live bond so a slash
// can never drive a seat negative (the seat-bond-solvency invariant).
struct SlashOutcome {
  Amount slashed{0};  // total taken from the bond
  Amount reward{0};   // portion paid to the prover
  Amount burnt{0};    // portion destroyed
};

[[nodiscard]] SlashOutcome slash_seat_bond(Amount bond, int slash_percent,
                                           int reward_percent);

class EconomicsModel {
 public:
  explicit EconomicsModel(EconomicsConfig config = {}) : config_(config) {}

  [[nodiscard]] BatchEconomics analyze(std::span<const vm::Tx> txs) const;

  // Smallest batch size at which the given average per-tx fee covers the
  // amortized L1 cost, assuming `bytes_per_tx` encoded bytes per tx.
  // Returns 0 when even one tx is profitable, SIZE_MAX when none is.
  [[nodiscard]] std::size_t break_even_size(Amount avg_fee_per_tx,
                                            std::size_t bytes_per_tx) const;

  [[nodiscard]] const EconomicsConfig& config() const { return config_; }

 private:
  [[nodiscard]] Amount gas_to_gwei(std::uint64_t gas) const;

  EconomicsConfig config_;
};

}  // namespace parole::rollup
