#include "parole/rollup/election.hpp"

#include <algorithm>
#include <cassert>

#include "parole/common/fault.hpp"

namespace parole::rollup {
namespace {

// Election draw streams, disjoint from rollup/chaos.cpp's fault streams by
// construction (elections mix the *consensus* seed, not the chaos seed) but
// kept in a distinct value range anyway so a shared seed in tests still
// yields independent schedules. Stable values — changing one reshuffles
// every seeded election.
enum Stream : std::uint64_t {
  kStreamStakeDraw = 21,
  kStreamBidJitter = 22,
};

}  // namespace

std::string_view to_string(ElectionModel model) {
  switch (model) {
    case ElectionModel::kRoundRobin:
      return "rr";
    case ElectionModel::kStakeWeighted:
      return "stake";
    case ElectionModel::kAuction:
      return "auction";
  }
  return "unknown";
}

std::optional<ElectionModel> parse_election_model(std::string_view text) {
  if (text == "rr" || text == "round-robin" || text == "roundrobin") {
    return ElectionModel::kRoundRobin;
  }
  if (text == "stake" || text == "stake-weighted") {
    return ElectionModel::kStakeWeighted;
  }
  if (text == "auction") return ElectionModel::kAuction;
  return std::nullopt;
}

std::size_t elect_round_robin(std::uint64_t slot, std::uint64_t view,
                              std::size_t seat_count) {
  assert(seat_count > 0);
  return static_cast<std::size_t>((slot + view) % seat_count);
}

std::size_t elect_stake_weighted(std::uint64_t seed, std::uint64_t slot,
                                 std::uint64_t view,
                                 std::span<const SeatProfile> seats) {
  assert(!seats.empty());
  std::uint64_t total = 0;
  for (const SeatProfile& seat : seats) total += seat.stake;
  if (total == 0) return elect_round_robin(slot, view, seats.size());
  // One draw per (slot, view): the failover re-roll is a fresh, independent
  // sample, so a crashed heavy seat can (with its own probability) win the
  // very next view — stake weighting, not exclusion, is the policy.
  std::uint64_t ticket = fault_mix(seed, kStreamStakeDraw, slot, view) % total;
  for (std::size_t i = 0; i < seats.size(); ++i) {
    if (ticket < seats[i].stake) return i;
    ticket -= seats[i].stake;
  }
  return seats.size() - 1;  // unreachable; total covered the ticket range
}

Amount auction_bid(std::uint64_t seed, std::uint64_t slot, std::uint64_t view,
                   std::size_t seat, const SeatProfile& profile,
                   Amount honest_bid, Amount adversary_bid, Amount bond_cap) {
  if (bond_cap <= 0) return 0;  // an insolvent seat sits the auction out
  Amount bid;
  if (profile.adversarial) {
    bid = adversary_bid;
  } else {
    // Seeded jitter in [0, honest_bid/8]: deterministic, small enough never
    // to rival the adversary's premium, large enough to break honest ties.
    const Amount spread = honest_bid / 8 + 1;
    bid = honest_bid +
          static_cast<Amount>(fault_mix(seed, kStreamBidJitter, slot,
                                        (view << 16) ^ seat) %
                              static_cast<std::uint64_t>(spread));
  }
  return std::min(bid, bond_cap);
}

std::size_t auction_winner(std::span<const AuctionBid> bids) {
  assert(!bids.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < bids.size(); ++i) {
    // Strict > keeps ties on the lowest seat index, matching the sorted-seat
    // layout every caller uses.
    if (bids[i].bid > bids[best].bid) best = i;
  }
  return best;
}

}  // namespace parole::rollup
