// Leader election for decentralized sequencing (DESIGN.md §15, ROADMAP
// item 5).
//
// "SoK: Decentralized Sequencers for Rollups" (PAPERS.md) taxonomizes how a
// rollup hands out ordering power once the single sequencer goes away. Three
// of those models are implemented here as *pure functions* — every election
// answer depends only on (seed, slot, view, seat profiles), never on call
// order or thread count — so the consensus layer built on top inherits the
// same bit-reproducibility contract as the chaos harness:
//
//   kRoundRobin      seats take slots in fixed rotation; a view change shifts
//                    the rotation by one, which is exactly the deterministic
//                    failover rule (leader of (slot, view+1) succeeds the
//                    leader of (slot, view)).
//   kStakeWeighted   a seeded stake-proportional draw per (slot, view) —
//                    heavier seats lead more slots in expectation, and the
//                    draw re-rolls deterministically on view change.
//   kAuction         a sealed-bid ordering auction per (slot, view): every
//                    seat submits a deterministic bid, highest bid buys the
//                    slot (first-price — the winner pays its own bid out of
//                    its seat bond). The PAROLE adversary values ordering
//                    power above fee income, so it outbids honest seats —
//                    and the price it pays is exactly what bends the
//                    profit-vs-decentralization curve down.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "parole/common/amount.hpp"

namespace parole::rollup {

enum class ElectionModel : std::uint8_t {
  kRoundRobin,
  kStakeWeighted,
  kAuction,
};

[[nodiscard]] std::string_view to_string(ElectionModel model);

// CLI spelling: "rr", "stake", "auction" (full names accepted too).
[[nodiscard]] std::optional<ElectionModel> parse_election_model(
    std::string_view text);

// Per-seat inputs to an election. Stake weights the kStakeWeighted draw;
// `adversarial` selects the bid schedule under kAuction.
struct SeatProfile {
  std::uint64_t stake{1};
  bool adversarial{false};
};

struct AuctionBid {
  std::uint64_t seat{0};
  Amount bid{0};
};

// Rotation: seat (slot + view) mod n. The +view term IS the failover rule.
[[nodiscard]] std::size_t elect_round_robin(std::uint64_t slot,
                                            std::uint64_t view,
                                            std::size_t seat_count);

// Stake-proportional draw over fault_mix(seed, election stream, slot, view).
// Zero-stake seats never win; an all-zero roster falls back to rotation.
[[nodiscard]] std::size_t elect_stake_weighted(
    std::uint64_t seed, std::uint64_t slot, std::uint64_t view,
    std::span<const SeatProfile> seats);

// One seat's sealed bid for (slot, view). Honest seats bid `honest_bid` plus
// a small seeded jitter (breaks ties without coordination); adversarial
// seats bid `adversary_bid` flat — the attack needs the slot, not a bargain.
// Bids are clamped to `bond_cap` (a seat cannot bid bond it no longer has).
[[nodiscard]] Amount auction_bid(std::uint64_t seed, std::uint64_t slot,
                                 std::uint64_t view, std::size_t seat,
                                 const SeatProfile& profile, Amount honest_bid,
                                 Amount adversary_bid, Amount bond_cap);

// Winner of a sealed-bid round: highest bid, ties to the lowest seat index.
// Returns the index into `bids` (not the seat id); empty input is invalid.
[[nodiscard]] std::size_t auction_winner(std::span<const AuctionBid> bids);

}  // namespace parole::rollup
