#include "parole/rollup/fraud_proof.hpp"

#include "parole/io/codec.hpp"

namespace parole::rollup {

crypto::Hash256 Batch::tx_root_of(const std::vector<vm::Tx>& txs) {
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(txs.size());
  for (const vm::Tx& tx : txs) leaves.push_back(tx.hash());
  return crypto::MerkleTree(std::move(leaves)).root();
}

bool Batch::trace_consistent() const {
  if (intermediate_roots.size() != txs.size()) return false;
  if (txs.empty()) {
    return header.pre_state_root == header.post_state_root;
  }
  return intermediate_roots.back() == header.post_state_root;
}

void Batch::save(io::ByteWriter& w) const {
  header.save(w);
  w.u64(txs.size());
  for (const vm::Tx& tx : txs) tx.save(w);
  w.u64(intermediate_roots.size());
  for (const crypto::Hash256& root : intermediate_roots) {
    io::save_hash(w, root);
  }
}

Status Batch::load(io::ByteReader& r) {
  Batch loaded;
  if (Status s = loaded.header.load(r); !s.ok()) return s;
  std::uint64_t tx_count = 0;
  PAROLE_IO_READ(r.length(tx_count, 34), "batch tx count");
  loaded.txs.resize(static_cast<std::size_t>(tx_count));
  for (vm::Tx& tx : loaded.txs) {
    if (Status s = tx.load(r); !s.ok()) return s;
  }
  std::uint64_t root_count = 0;
  PAROLE_IO_READ(r.length(root_count, 32), "batch root count");
  loaded.intermediate_roots.resize(static_cast<std::size_t>(root_count));
  for (crypto::Hash256& root : loaded.intermediate_roots) {
    PAROLE_IO_READ(io::load_hash(r, root), "batch intermediate root");
  }
  if (loaded.intermediate_roots.size() != loaded.txs.size()) {
    return Error{"corrupt_checkpoint", "batch trace length != tx count"};
  }
  // The tx root is recomputable — do so, and reject a body that no longer
  // matches its committed header.
  if (Batch::tx_root_of(loaded.txs) != loaded.header.tx_root ||
      loaded.header.tx_count != loaded.txs.size()) {
    return Error{"corrupt_checkpoint", "batch body does not match header"};
  }
  *this = std::move(loaded);
  return ok_status();
}

}  // namespace parole::rollup
