#include "parole/rollup/fraud_proof.hpp"

namespace parole::rollup {

crypto::Hash256 Batch::tx_root_of(const std::vector<vm::Tx>& txs) {
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(txs.size());
  for (const vm::Tx& tx : txs) leaves.push_back(tx.hash());
  return crypto::MerkleTree(std::move(leaves)).root();
}

bool Batch::trace_consistent() const {
  if (intermediate_roots.size() != txs.size()) return false;
  if (txs.empty()) {
    return header.pre_state_root == header.post_state_root;
  }
  return intermediate_roots.back() == header.post_state_root;
}

}  // namespace parole::rollup
