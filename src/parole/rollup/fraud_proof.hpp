// Batches and fraud proofs.
//
// A batch is the unit an aggregator commits on L1: the ordered transactions,
// a Merkle root over their hashes, and the claimed pre/post L2 state roots
// ("the cryptographic aggregate of these transactions along with the Merkle
// state root of the L2 chain", Sec. II-A). The aggregator also keeps the
// intermediate state root after each transaction — that trace is what the
// interactive dispute game bisects over to localize fraud to a single step.
#pragma once

#include <cstdint>
#include <vector>

#include "parole/chain/block.hpp"
#include "parole/crypto/merkle.hpp"
#include "parole/io/bytes.hpp"
#include "parole/vm/engine.hpp"
#include "parole/vm/tx.hpp"

namespace parole::rollup {

struct Batch {
  chain::BatchHeader header;
  std::vector<vm::Tx> txs;
  // intermediate_roots[i] = state root after executing txs[0..i]. Size equals
  // txs.size(); the last entry must equal header.post_state_root for an
  // honest batch.
  std::vector<crypto::Hash256> intermediate_roots;

  // Merkle root over the transaction hashes, in batch order.
  [[nodiscard]] static crypto::Hash256 tx_root_of(
      const std::vector<vm::Tx>& txs);

  // Does the carried trace terminate in the claimed post-state root?
  [[nodiscard]] bool trace_consistent() const;

  // Checkpointing (DESIGN.md §10). load() re-derives the tx root and rejects
  // a batch whose transactions no longer hash to the committed header.
  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);
};

// A single-step fraud proof: "executing txs[step] from the state committed at
// step-1 does not yield the root committed at step". Produced by the dispute
// game; checked by re-execution.
struct StepFraudProof {
  std::uint64_t batch_id{0};
  std::size_t step{0};
  crypto::Hash256 agreed_pre_root;   // root both parties accept before `step`
  crypto::Hash256 claimed_post_root; // root the aggregator committed at `step`
  vm::Tx tx;                         // the transaction executed at `step`
};

}  // namespace parole::rollup
