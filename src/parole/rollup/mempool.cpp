#include "parole/rollup/mempool.hpp"

#include "parole/obs/journal.hpp"
#include "parole/obs/metrics.hpp"
#include "parole/obs/watchdog.hpp"

namespace parole::rollup {

void BedrockMempool::submit(vm::Tx tx) {
  PAROLE_OBS_COUNT("parole.rollup.txs_ingested", 1);
  PAROLE_OBS_HEARTBEAT("rollup.mempool");
  // An admission opens the transaction's lifecycle chain (a chaos re-gossip
  // resubmits the same id and opens a second chain — see TxJournal::audit).
  obs::TxJournal::emit(
      {tx.id.value(), obs::TxEventKind::kSubmitted, 0, 0, obs::kNoBatch, 0, 0});
  tx.arrival = arrival_seq_++;
  queue_.push(Entry{std::move(tx), /*defer_round=*/0});
}

bool BedrockMempool::submit_bounded(vm::Tx tx, std::size_t max_depth) {
  if (queue_.size() >= max_depth) {
    PAROLE_OBS_COUNT("parole.rollup.shed_txs", 1);
    obs::TxJournal::emit(
        {tx.id.value(), obs::TxEventKind::kShed, 0, 0, obs::kNoBatch, 0, 0});
    return false;
  }
  submit(std::move(tx));
  return true;
}

std::vector<vm::Tx> BedrockMempool::collect(std::size_t n) {
  PAROLE_OBS_HEARTBEAT("rollup.mempool");
  std::vector<vm::Tx> out;
  out.reserve(std::min(n, queue_.size()));
  while (out.size() < n && !queue_.empty()) {
    obs::TxJournal::emit({queue_.top().tx.id.value(), obs::TxEventKind::kCollected,
                          0, 0, obs::kNoBatch, 0, 0});
    out.push_back(queue_.top().tx);
    queue_.pop();
  }
  ++defer_round_;  // close the current defer round, even on empty collects
  return out;
}

void BedrockMempool::defer(vm::Tx tx) {
  PAROLE_OBS_COUNT("parole.rollup.txs_deferred", 1);
  obs::TxJournal::emit(
      {tx.id.value(), obs::TxEventKind::kDeferred, 0, 0, obs::kNoBatch, 0, 0});
  tx.arrival = arrival_seq_++;
  queue_.push(Entry{std::move(tx), defer_round_ + 1});
}

void BedrockMempool::restore(vm::Tx tx) {
  PAROLE_OBS_COUNT("parole.rollup.txs_restored", 1);
  obs::TxJournal::emit(
      {tx.id.value(), obs::TxEventKind::kRestored, 0, 0, obs::kNoBatch, 0, 0});
  queue_.push(Entry{std::move(tx), /*defer_round=*/0});
}

void BedrockMempool::save(io::ByteWriter& w) const {
  auto copy = queue_;  // priority_queue has no iteration; drain a copy
  w.u64(copy.size());
  while (!copy.empty()) {
    copy.top().tx.save(w);
    w.u32(copy.top().defer_round);
    copy.pop();
  }
  w.u64(arrival_seq_);
  w.u32(defer_round_);
}

Status BedrockMempool::load(io::ByteReader& r) {
  std::uint64_t count = 0;
  // Each entry is a 34-byte tx image plus a 4-byte defer round.
  PAROLE_IO_READ(r.length(count, 38), "mempool entry count");
  std::vector<Entry> entries(static_cast<std::size_t>(count));
  for (Entry& entry : entries) {
    if (Status s = entry.tx.load(r); !s.ok()) return s;
    PAROLE_IO_READ(r.u32(entry.defer_round), "mempool defer round");
  }
  std::uint64_t arrival_seq = 0;
  std::uint32_t defer_round = 0;
  PAROLE_IO_READ(r.u64(arrival_seq), "mempool arrival seq");
  PAROLE_IO_READ(r.u32(defer_round), "mempool defer round counter");
  decltype(queue_) queue;
  for (Entry& entry : entries) queue.push(std::move(entry));
  queue_ = std::move(queue);
  arrival_seq_ = arrival_seq;
  defer_round_ = defer_round;
  return ok_status();
}

}  // namespace parole::rollup
