#include "parole/rollup/mempool.hpp"

#include "parole/obs/metrics.hpp"

namespace parole::rollup {

void BedrockMempool::submit(vm::Tx tx) {
  PAROLE_OBS_COUNT("parole.rollup.txs_ingested", 1);
  tx.arrival = arrival_seq_++;
  queue_.push(Entry{std::move(tx), /*defer_round=*/0});
}

std::vector<vm::Tx> BedrockMempool::collect(std::size_t n) {
  std::vector<vm::Tx> out;
  out.reserve(std::min(n, queue_.size()));
  while (out.size() < n && !queue_.empty()) {
    out.push_back(queue_.top().tx);
    queue_.pop();
  }
  ++defer_round_;  // close the current defer round, even on empty collects
  return out;
}

void BedrockMempool::defer(vm::Tx tx) {
  PAROLE_OBS_COUNT("parole.rollup.txs_deferred", 1);
  tx.arrival = arrival_seq_++;
  queue_.push(Entry{std::move(tx), defer_round_ + 1});
}

void BedrockMempool::restore(vm::Tx tx) {
  PAROLE_OBS_COUNT("parole.rollup.txs_restored", 1);
  queue_.push(Entry{std::move(tx), /*defer_round=*/0});
}

}  // namespace parole::rollup
