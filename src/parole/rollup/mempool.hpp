// Bedrock-style private mempool (Sec. IV-A).
//
// Bedrock creates L2 blocks at fixed intervals, so pending transactions wait
// in a mempool that is *private*: aggregators cannot browse it or cherry-pick
// an arbitrary subset. They must collect transactions "according to priority
// sequence" — ordered by total (base + priority) fee, FIFO on ties. That is
// exactly the interface exposed here: submit() and collect(n); there is no
// peek/inspect API, which is the privacy property the paper leans on (the
// adversarial aggregator re-orders *after* collection, it cannot choose what
// it collects).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "parole/io/bytes.hpp"
#include "parole/vm/tx.hpp"

namespace parole::rollup {

class BedrockMempool {
 public:
  BedrockMempool() = default;

  // Submit a pending transaction; stamps its arrival sequence number.
  void submit(vm::Tx tx);

  // Admission-controlled submit (the serve ingest edge): refuse the
  // transaction when the pool already holds `max_depth` entries. A shed is
  // counted (parole.rollup.shed_txs) and journaled (terminal kShed) but
  // consumes NO arrival stamp and touches NO defer round — the overload path
  // must leave the priority bookkeeping of surviving transactions exactly as
  // if the shed tx had never arrived. Returns true when admitted.
  bool submit_bounded(vm::Tx tx, std::size_t max_depth);

  // Collect up to `n` transactions in priority order (highest total fee
  // first, earliest arrival on ties; deferred txs always last). The returned
  // transactions leave the pool. This models one aggregator's collection —
  // its "Mempool size" N in the paper's evaluation. Every collect() call —
  // including collect(0) and collects from an empty pool — also closes the
  // current defer round (see defer()).
  std::vector<vm::Tx> collect(std::size_t n);

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

  // Push a transaction back with *lowest* effective priority ("send the
  // transactions with the lowest fees to the block behind", Sec. VIII): the
  // tx keeps its fees but sorts behind every non-deferred transaction.
  //
  // Round semantics, explicitly: all transactions deferred between two
  // collect() calls belong to one round and keep their fee/arrival order
  // relative to each other; a later round sorts strictly behind an earlier
  // one (a twice-deferred tx keeps falling back). Rounds are closed by
  // collect(), not by defer(), so one batch screen's rejects re-enter as a
  // block, not as a chain of individually-demoted stragglers.
  void defer(vm::Tx tx);

  // Re-insert a transaction that was collected but never made it on chain
  // (aggregator crashed mid-slot, chaos delay released). Keeps the original
  // arrival stamp so the tx re-enters at its old priority; a previously
  // deferred tx has served its deferral and re-enters undemoted.
  void restore(vm::Tx tx);

  [[nodiscard]] std::uint64_t submitted_total() const { return arrival_seq_; }
  // Defer rounds closed so far (diagnostics/tests).
  [[nodiscard]] std::uint32_t defer_rounds_closed() const {
    return defer_round_;
  }

  // Checkpointing (DESIGN.md §10): entries are emitted in pop order (a
  // deterministic total order) and re-pushed on load, so a restored pool
  // collects the exact same sequence. Validate-then-mutate.
  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);

 private:
  struct Entry {
    vm::Tx tx;
    std::uint32_t defer_round{0};
  };

  struct PriorityOrder {
    // std::priority_queue pops the *greatest*; return true when a is lower
    // priority than b.
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.defer_round != b.defer_round) {
        return a.defer_round > b.defer_round;
      }
      if (a.tx.total_fee() != b.tx.total_fee()) {
        return a.tx.total_fee() < b.tx.total_fee();
      }
      return a.tx.arrival > b.tx.arrival;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, PriorityOrder> queue_;
  std::uint64_t arrival_seq_{0};
  std::uint32_t defer_round_{0};
};

}  // namespace parole::rollup
