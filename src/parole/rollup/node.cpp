#include "parole/rollup/node.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"
#include "parole/obs/watchdog.hpp"

namespace parole::rollup {

#if !defined(PAROLE_OBS_DISABLED)
namespace {

// Admission→finalization latency on the span clock, log-spaced like the
// journal's derived histograms so quantiles stay comparable across both.
obs::Histogram& tx_latency_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::instance().histogram(
      "parole.rollup.tx_latency_ns", obs::Histogram::log_bounds(1e3, 1e10, 2));
  return hist;
}

}  // namespace
#endif  // !PAROLE_OBS_DISABLED

RollupNode::RollupNode(NodeConfig config)
    : config_(config),
      state_(config.max_supply, config.initial_price),
      engine_(config.exec),
      l1_(config.l1_block_time),
      orsc_(config.orsc),
      bridge_(orsc_, state_.ledger()) {
  wire_flow_sinks();
}

void RollupNode::wire_flow_sinks() {
  orsc_.set_flow_sink(&flow_);
  if (consensus_) consensus_->set_flow_sink(&flow_);
}

void RollupNode::add_aggregator(AggregatorConfig config) {
  const Status registered = orsc_.register_aggregator(config.id);
  assert(registered.ok());
  (void)registered;
  aggregators_.emplace_back(std::move(config));
  if (chaos_) chaos_->crash.resize(aggregators_.size());
  if (consensus_) {
    consensus_->ensure_seats(aggregators_.size());
    consensus_->set_seat_adversarial(aggregators_.size() - 1,
                                     aggregators_.back().adversarial());
  }
}

void RollupNode::add_verifier(VerifierId id) {
  const Status registered = orsc_.register_verifier(id);
  assert(registered.ok());
  (void)registered;
  verifiers_.emplace_back(id);
}

void RollupNode::arm_chaos(ChaosConfig config) {
  chaos_ = std::make_unique<ChaosRuntime>(std::move(config));
  chaos_->crash.resize(aggregators_.size());
}

void RollupNode::arm_consensus(ConsensusConfig config) {
  consensus_ =
      std::make_unique<ConsensusEngine>(std::move(config), aggregators_.size());
  for (std::size_t i = 0; i < aggregators_.size(); ++i) {
    consensus_->set_seat_adversarial(i, aggregators_[i].adversarial());
  }
  wire_flow_sinks();
}

void RollupNode::fund_l1(UserId user, Amount amount) {
  orsc_.fund_l1(user, amount);
}

Status RollupNode::deposit(UserId user, Amount amount) {
  return orsc_.deposit(user, amount);
}

void RollupNode::submit_tx(vm::Tx tx) {
  tx.id = TxId{next_tx_id_++};
#if !defined(PAROLE_OBS_DISABLED)
  if (obs::MetricsRegistry::instance().enabled()) {
    submit_t_ns_[tx.id.value()] = obs::TraceRecorder::instance().now_ns();
  }
#endif
  // Route the mempool's kSubmitted emission into this node's journal — user
  // submissions arrive outside step(), where no scope is installed.
  const obs::TxJournal::Scope scope(&journal_);
  mempool_.submit(std::move(tx));
}

bool RollupNode::try_submit_tx(vm::Tx tx, std::size_t max_mempool_depth) {
  tx.id = TxId{next_tx_id_++};
  const std::uint64_t tx_id = tx.id.value();
  // Fee value the admission edge would turn away — captured before the move.
  const Amount shed_value = tx.total_fee();
  const obs::TxJournal::Scope scope(&journal_);
  if (!mempool_.submit_bounded(std::move(tx), max_mempool_depth)) {
    flow_.note_shed(shed_value);
    return false;
  }
#if !defined(PAROLE_OBS_DISABLED)
  if (obs::MetricsRegistry::instance().enabled()) {
    submit_t_ns_[tx_id] = obs::TraceRecorder::instance().now_ns();
  }
#endif
  return true;
}

std::vector<AggregatorId> RollupNode::aggregator_ids() const {
  std::vector<AggregatorId> ids;
  ids.reserve(aggregators_.size());
  for (const Aggregator& aggregator : aggregators_) {
    ids.push_back(aggregator.id());
  }
  return ids;
}

void RollupNode::record_fault(std::uint64_t step, FaultKind kind,
                              std::uint64_t subject, std::string detail) {
  PAROLE_OBS_COUNT("parole.chaos.faults", 1);
  chaos_->log.record({step, kind, subject, std::move(detail)});
}

ChaosRuntime::CrashState& RollupNode::crash_state(std::size_t index) {
  if (chaos_->crash.size() <= index) {
    chaos_->crash.resize(aggregators_.size());
  }
  return chaos_->crash[index];
}

std::size_t RollupNode::pending_work() const {
  return mempool_.size() + (chaos_ ? chaos_->delayed.size() : 0);
}

StepOutcome RollupNode::step() {
  PAROLE_OBS_SPAN("rollup.batch");
  PAROLE_OBS_COUNT("parole.rollup.steps", 1);
  PAROLE_OBS_HEARTBEAT("rollup.node");
  StepOutcome outcome;
  const std::uint64_t step = step_index_++;

  // Every pipeline stage below runs with this node's journal as the
  // thread-local current, so stages without a node pointer (mempool, VM,
  // reorderer, dispute) land their lifecycle events here. Unstamped events
  // recorded during the scope pick up this step index.
  const obs::TxJournal::Scope journal_scope(&journal_);
  journal_.set_step(step);
  flow_.set_step(step);

  // A reorg "arrives" between slots: the head blocks vanish before this
  // round's work begins.
  if (chaos_) apply_l1_reorg(step, outcome);

  for (const chain::Deposit& deposit : bridge_.process_deposits()) {
    deposit_log_.emplace_back(step, deposit);
    flow_.record_deposit(deposit.user, deposit.amount);
    if (obs::TxJournal::enabled()) {
      // Deposits have no tx id; a/b carry the (user, amount) pair instead.
      journal_.record({0, obs::TxEventKind::kDeposited, 0, 0, obs::kNoBatch,
                       deposit.user.value(),
                       static_cast<std::uint64_t>(deposit.amount)});
    }
  }

  if (chaos_) {
    release_delayed(step, outcome);
    // Account verifier downtime once per step; the verification pass
    // re-derives the same answers from the (stateless) plan.
    for (std::size_t v = 0; v < verifiers_.size(); ++v) {
      if (chaos_->plan.verifier_down(step, v)) {
        ++outcome.verifiers_down;
        PAROLE_OBS_COUNT("parole.chaos.verifier_down_steps", 1);
        record_fault(step, FaultKind::kVerifierDown, v, "");
      }
    }
  }

  produce_batch(step, outcome);
  run_verification_pass(step, outcome);

  l1_.seal_block();
  outcome.finalized_batches = orsc_.finalize_due(l1_.now());
  for (const std::uint64_t finalized_id : outcome.finalized_batches) {
    flow_.finalize_batch(finalized_id);
  }
#if defined(PAROLE_OBS_DISABLED)
  const bool track_finalized = obs::TxJournal::enabled();
#else
  // The latency histogram works with the journal unarmed: a /metrics scrape
  // must show rolling p99 admission→finalization without lifecycle logging.
  const bool track_finalized = true;
#endif
  if (track_finalized) {
    for (const std::uint64_t finalized_id : outcome.finalized_batches) {
      for (const Batch& batch : batches_) {
        if (batch.header.batch_id != finalized_id) continue;
        for (const vm::Tx& tx : batch.txs) {
          if (obs::TxJournal::enabled()) {
            // kFinalized is the happy-path terminal event: it closes the
            // lifecycle chain the tx's admission opened.
            journal_.record({tx.id.value(), obs::TxEventKind::kFinalized, 0, 0,
                             finalized_id, 0, 0});
          }
#if !defined(PAROLE_OBS_DISABLED)
          if (const auto it = submit_t_ns_.find(tx.id.value());
              it != submit_t_ns_.end()) {
            const std::uint64_t now = obs::TraceRecorder::instance().now_ns();
            if (obs::MetricsRegistry::instance().enabled()) {
              tx_latency_histogram().observe(static_cast<double>(
                  now >= it->second ? now - it->second : 0));
            }
            submit_t_ns_.erase(it);
          }
#endif
        }
        break;
      }
    }
  }
  prune_pending();
  flow_.publish_metrics();
  PAROLE_OBS_GAUGE("parole.rollup.mempool_depth",
                   static_cast<double>(mempool_.size()));
  PAROLE_OBS_GAUGE("parole.rollup.pending_batches",
                   static_cast<double>(pending_checks_.size()));

  if (chaos_) {
    PAROLE_OBS_SPAN("chaos.invariants");
    const std::size_t fresh = chaos_->checker.check(*this, step);
    if (fresh > 0) {
      PAROLE_OBS_COUNT("parole.chaos.invariant_violations",
                       static_cast<std::int64_t>(fresh));
    }
  }
  return outcome;
}

void RollupNode::apply_l1_reorg(std::uint64_t step, StepOutcome& outcome) {
  std::uint64_t depth = chaos_->plan.l1_reorg_depth(step);
  depth = std::min<std::uint64_t>(depth, l1_.height());
  if (depth == 0) return;

  const std::vector<chain::L1Block> dropped = l1_.rollback(depth);
  std::size_t dropped_batches = 0;
  for (const chain::L1Block& block : dropped) {
    dropped_batches += block.batches.size();
  }
  // Only the still-pending commitment tail moves with the reorg; the ORSC's
  // resolved records are treated as finality-protected (a shallow reorg never
  // reaches a real finalized batch — pop_pending_tail enforces the analogue).
  std::vector<chain::BatchHeader> popped =
      orsc_.pop_pending_tail(dropped_batches);

  std::size_t recommitted = 0;
  for (std::size_t i = 0; i < popped.size(); ++i) {
    auto resubmitted = orsc_.submit_batch(popped[i], l1_.now());
    if (!resubmitted.ok()) {
      // The committing aggregator was slashed since (fraud proven on a later
      // batch of theirs): the orphaned commitment cannot re-enter L1. Treat
      // it like a reverted ancestor — roll state back to its pre-state and
      // return its and its descendants' txs to the pool. The descendant
      // records were popped above and are simply not recommitted.
      for (std::size_t p = 0; p < pending_checks_.size(); ++p) {
        if (pending_checks_[p].batch.header.batch_id == popped[i].batch_id) {
          rollback_from(p, /*revert_records=*/false, outcome);
          break;
        }
      }
      break;
    }
    // Positional id assignment: recommitting the same headers in the same
    // order reassigns the same batch ids, so every id-keyed structure in the
    // node stays valid; only the challenge clock restarts.
    assert(resubmitted.value() == popped[i].batch_id);
    l1_.stage_batch(popped[i]);
    ++recommitted;
  }

  outcome.l1_reorg_depth = depth;
  PAROLE_OBS_COUNT("parole.chaos.l1_reorgs", 1);
  PAROLE_OBS_COUNT("parole.chaos.reorged_batches",
                   static_cast<std::int64_t>(popped.size()));
  record_fault(step, FaultKind::kL1Reorg, depth,
               "depth " + std::to_string(depth) + ", recommitted " +
                   std::to_string(recommitted) + "/" +
                   std::to_string(popped.size()) + " batches");
}

void RollupNode::release_delayed(std::uint64_t step, StepOutcome& outcome) {
  (void)outcome;
  auto& delayed = chaos_->delayed;
  for (auto it = delayed.begin(); it != delayed.end();) {
    if (it->release_step <= step) {
      PAROLE_OBS_COUNT("parole.chaos.txs_released", 1);
      mempool_.restore(std::move(it->tx));
      it = delayed.erase(it);
    } else {
      ++it;
    }
  }
}

void RollupNode::produce_batch(std::uint64_t step, StepOutcome& outcome) {
  if (aggregators_.empty() || mempool_.empty()) return;
  if (consensus_) {
    produce_batch_consensus(step, outcome);
    return;
  }

  // Round-robin over aggregators that still hold a live bond (a slashed
  // aggregator's submissions would be rejected by the ORSC) and are not
  // sitting out a post-crash backoff. A scheduled crash burns the slot of the
  // aggregator it hits, returns its collected txs to the pool, and fails the
  // round over to the next live operator — still within this step.
  const std::size_t count = aggregators_.size();
  bool crash_pending = chaos_ && chaos_->plan.aggregator_crashes(step);
  std::size_t chosen = count;
  for (std::size_t probes = 0; probes < count; ++probes) {
    const std::size_t index = next_aggregator_;
    next_aggregator_ = (next_aggregator_ + 1) % count;
    Aggregator& candidate = aggregators_[index];
    if (orsc_.aggregator_bond(candidate.id()) <= 0) continue;
    if (chaos_ && crash_state(index).backoff_until > step) continue;
    if (crash_pending) {
      crash_pending = false;  // the fault hits the scheduled operator once
      std::vector<vm::Tx> lost = mempool_.collect(candidate.mempool_size());
      const std::size_t lost_count = lost.size();
      for (vm::Tx& tx : lost) mempool_.restore(std::move(tx));
      ChaosRuntime::CrashState& crash = crash_state(index);
      ++crash.consecutive_crashes;
      const std::uint64_t backoff =
          chaos_->plan.config().crash_backoff_steps
          << std::min<std::uint32_t>(crash.consecutive_crashes - 1, 6);
      crash.backoff_until = step + 1 + backoff;
      outcome.aggregator_crashed = true;
      PAROLE_OBS_COUNT("parole.chaos.aggregator_crashes", 1);
      record_fault(step, FaultKind::kAggregatorCrash, index,
                   "dropped slot holding " + std::to_string(lost_count) +
                       " txs; backoff until step " +
                       std::to_string(crash.backoff_until));
      continue;
    }
    chosen = index;
    break;
  }
  if (chosen == count) return;  // no live operator this slot

  if (chaos_) crash_state(chosen).consecutive_crashes = 0;  // served a slot
  commit_batch(step, chosen,
               mempool_.collect(aggregators_[chosen].mempool_size()), outcome);
}

void RollupNode::produce_batch_consensus(std::uint64_t step,
                                         StepOutcome& outcome) {
  consensus_->ensure_seats(aggregators_.size());
  // One slot per step: the step index is the slot number, so the election is
  // replayable from (seed, slot, view) alone — checkpoints restore the view.
  const std::uint64_t slot = step;
  const FaultPlan* plan = chaos_ ? &chaos_->plan : nullptr;

  bool crash_pending = plan != nullptr && plan->leader_crashes(step);
  bool drop_pending = plan != nullptr && plan->election_msg_drop(step);
  bool delay_pending = plan != nullptr && plan->election_msg_delay(step);
  const bool stale_forced =
      plan != nullptr && plan->stale_view_double_propose(step);

  const auto change_view = [&](std::size_t seat, ViewChangeReason reason) {
    consensus_->view_change(slot, seat, reason);
    ++outcome.view_changes;
    PAROLE_OBS_COUNT("parole.consensus.view_changes", 1);
  };

  // The late proposal from a kMsgDelay leader: it resurfaces after the slot
  // is decided as a stale-view duplicate from this (seat, view).
  std::optional<std::pair<std::size_t, std::uint64_t>> stale;
  // Partial batch carried across a kInherit failover — the successor takes
  // over the crashed leader's collected set verbatim, poisoned order and all.
  std::vector<vm::Tx> inherited;
  std::size_t chosen = aggregators_.size();
  std::uint64_t chosen_view = 0;

  const std::size_t budget = consensus_->config().max_view_changes_per_slot;
  for (std::size_t attempt = 0; attempt <= budget; ++attempt) {
    const std::size_t seat = consensus_->leader(slot);
    Aggregator& candidate = aggregators_[seat];
    // Dead seat: no ORSC bond (slashed aggregator) or no seat bond (slashed
    // or auctioned away) — skipped by a deterministic view change, so every
    // replica agrees on the successor without seeing the failure itself.
    if (orsc_.aggregator_bond(candidate.id()) <= 0 ||
        consensus_->seat(seat).bond <= 0) {
      change_view(seat, ViewChangeReason::kDeadSeat);
      continue;
    }
    if (drop_pending) {
      drop_pending = false;  // the fault hits the first live leader once
      record_fault(step, FaultKind::kElectionMsgDrop, seat, "proposal lost");
      change_view(seat, ViewChangeReason::kMsgDrop);
      continue;
    }
    if (delay_pending) {
      delay_pending = false;
      stale = {{seat, consensus_->view()}};
      record_fault(step, FaultKind::kElectionMsgDelay, seat,
                   "proposal past the slot deadline");
      change_view(seat, ViewChangeReason::kMsgDelay);
      continue;
    }
    if (crash_pending) {
      crash_pending = false;
      std::vector<vm::Tx> lost = mempool_.collect(candidate.mempool_size());
      const std::size_t lost_count = lost.size();
      if (consensus_->config().partial_batch == PartialBatchPolicy::kInherit) {
        inherited = std::move(lost);
      } else {
        // restore() keeps arrival stamps: the successor re-collects the same
        // txs in the same priority order the dead leader saw.
        for (vm::Tx& tx : lost) mempool_.restore(std::move(tx));
      }
      outcome.aggregator_crashed = true;
      PAROLE_OBS_COUNT("parole.chaos.aggregator_crashes", 1);
      record_fault(step, FaultKind::kLeaderCrashMidBatch, seat,
                   "died holding " + std::to_string(lost_count) + " txs (" +
                       (inherited.empty() ? "discarded" : "inherited") + ")");
      change_view(seat, ViewChangeReason::kLeaderCrash);
      continue;
    }
    chosen = seat;
    chosen_view = consensus_->view();
    break;
  }

  if (chosen == aggregators_.size()) {
    // View-change budget exhausted: the slot is forfeited, but nothing may
    // be lost with it — an inherited partial batch returns to the pool.
    for (vm::Tx& tx : inherited) mempool_.restore(std::move(tx));
    PAROLE_OBS_COUNT("parole.consensus.slots_forfeited", 1);
    return;
  }

  outcome.leader_seat = chosen;
  std::vector<vm::Tx> collected =
      inherited.empty() ? mempool_.collect(aggregators_[chosen].mempool_size())
                        : std::move(inherited);
  commit_batch(step, chosen, std::move(collected), outcome);
  if (outcome.produced_batch) {
    const bool accepted = consensus_->record_proposal(slot, chosen_view, chosen,
                                                      outcome.batch_id);
    assert(accepted);  // first proposal for this slot by construction
    (void)accepted;
  }

  // Equivocation needs a decided slot to equivocate against: a delayed
  // proposal resurfacing, or a scripted stale-view double-propose by the
  // winner itself. The duplicate is slashed and recorded — never submitted,
  // which is exactly what kNoFinalizedEquivocation checks downstream.
  if ((stale.has_value() || stale_forced) &&
      consensus_->accepted(slot) != nullptr) {
    const std::size_t offender = stale ? stale->first : chosen;
    const std::uint64_t stale_view = stale ? stale->second : chosen_view;
    const EquivocationRecord rec =
        consensus_->record_equivocation(slot, stale_view, offender);
    ++outcome.equivocations;
    PAROLE_OBS_COUNT("parole.consensus.equivocations", 1);
    record_fault(step, FaultKind::kStaleViewDoublePropose, offender,
                 "slashed " + std::to_string(rec.slashed) + " gwei");
  }
}

void RollupNode::commit_batch(std::uint64_t step, std::size_t chosen,
                              std::vector<vm::Tx> collected,
                              StepOutcome& outcome) {
  Aggregator& aggregator = aggregators_[chosen];
  if (chaos_) apply_mempool_faults(step, collected, outcome);
  if (collected.empty()) return;

  // Mempool-side screening (Sec. VIII defense) runs before the aggregator —
  // and therefore before any adversarial reordering — and pushes high-
  // arbitrage transactions to the block behind.
  if (batch_screen_) {
    ScreenResult screened = batch_screen_(state_, std::move(collected));
    collected = std::move(screened.admitted);
    outcome.screened_out = screened.deferred.size();
    for (vm::Tx& tx : screened.deferred) mempool_.defer(std::move(tx));
    if (collected.empty()) return;
  }

  // Keep the pre-batch state so verifiers can re-execute (possibly steps
  // later) and, if fraud is proven, the canonical state can roll back.
  vm::L2State pre_state = state_;

  bool suppress_reorderer = false;
  if (reorder_passthrough_ && aggregator.adversarial()) {
    // Supervision degrade: the reorder stage blew its crash-loop budget, so
    // the attack stands down and batches ship in honest collection order.
    suppress_reorderer = true;
    outcome.reorderer_degraded = true;
    flow_.note_degraded();
    PAROLE_OBS_COUNT("parole.serve.passthrough_batches", 1);
  }
  if (chaos_ && aggregator.adversarial() &&
      chaos_->plan.reorderer_fails(step)) {
    // The attack module timed out: the batch ships in honest collection
    // order. The chain keeps draining — degradation, not an outage.
    suppress_reorderer = true;
    outcome.reorderer_degraded = true;
    flow_.note_degraded();
    PAROLE_OBS_COUNT("parole.chaos.reorderer_failures", 1);
    record_fault(step, FaultKind::kReordererFailure, chosen,
                 "identity order shipped");
  }

  // Canonical execution runs inside this scope: the engine's PAROLE_FLOW
  // hook records per-tx value deltas into flow_, while the solver's probe
  // re-executions (no Scope on their threads) stay invisible.
  flow_.open_batch();
  Batch batch = [&] {
    const obs::ValueFlowTracker::Scope flow_scope(&flow_);
    return aggregator.build_batch(state_, std::move(collected), engine_,
                                  suppress_reorderer);
  }();
  auto submitted = orsc_.submit_batch(batch.header, l1_.now());
  assert(submitted.ok());
  batch.header.batch_id = submitted.value();
  flow_.seal_batch(batch.header.batch_id);
  if (obs::TxJournal::enabled()) {
    for (const vm::Tx& tx : batch.txs) {
      journal_.record({tx.id.value(), obs::TxEventKind::kRootCommitted, 0, 0,
                       batch.header.batch_id, 0, 0});
    }
  }

  outcome.produced_batch = true;
  outcome.batch_id = batch.header.batch_id;
  outcome.aggregator = aggregator.id();
  outcome.tx_count = batch.txs.size();

  l1_.stage_batch(batch.header);
  pending_checks_.push_back(
      PendingVerification{batch, std::move(pre_state), step,
                          std::vector<std::uint8_t>(verifiers_.size(), 0)});
  batches_.push_back(std::move(batch));
}

void RollupNode::apply_mempool_faults(std::uint64_t step,
                                      std::vector<vm::Tx>& collected,
                                      StepOutcome& outcome) {
  const FaultPlan& plan = chaos_->plan;
  if (const auto index = plan.tx_drop(step, collected.size())) {
    record_fault(step, FaultKind::kTxDrop, collected[*index].id.value(),
                 "dropped from collected set");
    // kDropped is terminal: the tx vanishes from the pipeline for good.
    obs::TxJournal::emit({collected[*index].id.value(),
                          obs::TxEventKind::kDropped, 0, 0, obs::kNoBatch, 0,
                          0});
    // kDropped is terminal for the latency map too — the stamp would
    // otherwise leak for the rest of the run.
    submit_t_ns_.erase(collected[*index].id.value());
    collected.erase(collected.begin() + static_cast<std::ptrdiff_t>(*index));
    ++outcome.txs_dropped;
    PAROLE_OBS_COUNT("parole.chaos.txs_dropped", 1);
  }
  if (const auto index = plan.tx_duplicate(step, collected.size())) {
    // Re-gossip: a copy (same tx id) re-enters the pool and will ride a later
    // batch — the replayed execution usually reverts, but value conservation
    // and the supply cap must hold either way.
    record_fault(step, FaultKind::kTxDuplicate, collected[*index].id.value(),
                 "re-gossiped into the pool");
    // kReplayed marks the duplication; the mempool's kSubmitted right after
    // it opens the copy's own lifecycle chain (same tx id, second chain).
    obs::TxJournal::emit({collected[*index].id.value(),
                          obs::TxEventKind::kReplayed, 0, 0, obs::kNoBatch, 0,
                          0});
    mempool_.submit(collected[*index]);
    ++outcome.txs_duplicated;
    PAROLE_OBS_COUNT("parole.chaos.txs_duplicated", 1);
  }
  if (const auto delay = plan.tx_delay(step, collected.size())) {
    const auto [index, steps] = *delay;
    record_fault(step, FaultKind::kTxDelay, collected[index].id.value(),
                 "withheld for " + std::to_string(steps) + " steps");
    // a = the step the withheld tx re-enters the pool (as kRestored).
    obs::TxJournal::emit({collected[index].id.value(),
                          obs::TxEventKind::kDelayed, 0, 0, obs::kNoBatch,
                          step + steps, 0});
    chaos_->delayed.push_back({std::move(collected[index]), step + steps});
    collected.erase(collected.begin() + static_cast<std::ptrdiff_t>(index));
    ++outcome.txs_delayed;
    PAROLE_OBS_COUNT("parole.chaos.txs_delayed", 1);
  }
}

void RollupNode::run_verification_pass(std::uint64_t step,
                                       StepOutcome& outcome) {
  if (verifiers_.empty() || pending_checks_.empty()) return;
  PAROLE_OBS_SPAN("rollup.verify");
  const std::uint64_t now = l1_.now();

  for (std::size_t p = 0; p < pending_checks_.size(); ++p) {
    PendingVerification& pending = pending_checks_[p];
    const std::uint64_t batch_id = pending.batch.header.batch_id;
    const chain::BatchRecord* record = orsc_.batch(batch_id);
    if (record == nullptr || record->status != chain::BatchStatus::kPending) {
      continue;  // resolved already; pruned after finalize
    }
    if (now > record->challenge_deadline) {
      continue;  // window closed — nothing a waking verifier can do
    }
    pending.checked.resize(verifiers_.size(), 0);

    for (std::size_t v = 0; v < verifiers_.size(); ++v) {
      if (pending.checked[v]) continue;
      if (chaos_ && chaos_->plan.verifier_down(step, v)) continue;
      pending.checked[v] = 1;

      const VerificationOutcome check = [&] {
        // The verifier's re-execution is a probe, not a lifecycle event;
        // only its verdict is.
        const obs::TxJournal::Scope suppress(nullptr);
        return verifiers_[v].check(pending.batch, pending.pre_state, engine_);
      }();
      if (check.valid) {
        if (obs::TxJournal::enabled()) {
          for (const vm::Tx& tx : pending.batch.txs) {
            journal_.record({tx.id.value(), obs::TxEventKind::kVerified, 0, 0,
                             batch_id, verifiers_[v].id().value(), 0});
          }
        }
        continue;
      }
      PAROLE_OBS_COUNT("parole.rollup.fraud_detected", 1);

      const Status opened =
          orsc_.open_challenge(batch_id, verifiers_[v].id(), now);
      if (!opened.ok()) continue;  // someone else already disputed
      outcome.challenged = true;
      outcome.challenged_batch_id = batch_id;

      // The challenger's honest trace for the bisection game — replays, not
      // lifecycle events, so they run journal-suppressed.
      std::vector<crypto::Hash256> honest_roots;
      honest_roots.reserve(pending.batch.txs.size());
      {
        const obs::TxJournal::Scope suppress(nullptr);
        vm::L2State replay = pending.pre_state;
        for (const vm::Tx& tx : pending.batch.txs) {
          (void)engine_.execute_tx(replay, tx);
          honest_roots.push_back(replay.state_root());
        }
      }

      const DisputeVerdict verdict = DisputeGame::run(
          pending.batch, pending.pre_state, honest_roots, engine_);
      const Status resolved =
          orsc_.resolve_challenge(batch_id, verdict.fraud_proven);
      assert(resolved.ok());
      (void)resolved;

      if (verdict.fraud_proven) {
        outcome.fraud_proven = true;
        // The fraudulent batch — and every batch built on top of it — is
        // reverted; the canonical state rolls back and the transactions
        // return to the mempool for an honest aggregator.
        rollback_from(p, /*revert_records=*/true, outcome);
        return;  // one resolved dispute per step; `pending` is gone
      }
      break;  // challenge failed; the batch finalized, stop checking it
    }
  }
}

void RollupNode::rollback_from(std::size_t index, bool revert_records,
                               StepOutcome& outcome) {
  PendingVerification& pending = pending_checks_[index];
  const std::uint64_t first_reverted = pending.batch.header.batch_id;

  // The rollback below restores the pre-state; the flow ledger follows by
  // negating the reverted batches' double entries (deposit replays need no
  // flow adjustment — deposits were recorded once and remain in effect).
  flow_.revert_batch(first_reverted);

  state_ = pending.pre_state;
  // Deposits bridged after the snapshot are L1 facts — replay them into the
  // restored state so no locked value vanishes from the L2 ledger.
  for (const auto& [deposit_step, deposit] : deposit_log_) {
    if (deposit_step > pending.snapshot_step) {
      state_.ledger().credit(deposit.user, deposit.amount);
    }
  }

  std::size_t reverted_txs = 0;
  for (vm::Tx& tx : pending.batch.txs) {
    ++reverted_txs;
    // kReverted closes the current chain; the defer below re-queues the tx
    // and a later collect/execute opens no new chain (the audit treats a
    // trailing kReverted as terminal only when nothing follows it).
    obs::TxJournal::emit({tx.id.value(), obs::TxEventKind::kReverted, 0, 0,
                          first_reverted, 0, 0});
    mempool_.defer(std::move(tx));
  }
  for (std::size_t q = index + 1; q < pending_checks_.size(); ++q) {
    PendingVerification& descendant = pending_checks_[q];
    const std::uint64_t descendant_id = descendant.batch.header.batch_id;
    flow_.revert_batch(descendant_id);
    if (revert_records) {
      const Status reverted = orsc_.revert_pending(descendant_id);
      assert(reverted.ok());
      (void)reverted;
    }
    for (vm::Tx& tx : descendant.batch.txs) {
      ++reverted_txs;
      obs::TxJournal::emit({tx.id.value(), obs::TxEventKind::kReverted, 0, 0,
                            descendant_id, 0, 0});
      mempool_.defer(std::move(tx));
    }
    ++outcome.reverted_batches;
  }
  PAROLE_OBS_COUNT("parole.rollup.batches_reverted",
                   static_cast<std::int64_t>(pending_checks_.size() - index));
  PAROLE_OBS_COUNT("parole.rollup.txs_reverted",
                   static_cast<std::int64_t>(reverted_txs));

  batches_.erase(std::remove_if(batches_.begin(), batches_.end(),
                                [&](const Batch& batch) {
                                  return batch.header.batch_id >=
                                         first_reverted;
                                }),
                 batches_.end());
  pending_checks_.erase(
      pending_checks_.begin() + static_cast<std::ptrdiff_t>(index),
      pending_checks_.end());
}

void RollupNode::prune_pending() {
  pending_checks_.erase(
      std::remove_if(pending_checks_.begin(), pending_checks_.end(),
                     [&](const PendingVerification& pending) {
                       const chain::BatchRecord* record =
                           orsc_.batch(pending.batch.header.batch_id);
                       return record == nullptr ||
                              record->status != chain::BatchStatus::kPending;
                     }),
      pending_checks_.end());

  // The deposit log only needs to cover the oldest surviving snapshot.
  if (pending_checks_.empty()) {
    deposit_log_.clear();
    return;
  }
  std::uint64_t oldest = pending_checks_.front().snapshot_step;
  for (const PendingVerification& pending : pending_checks_) {
    oldest = std::min(oldest, pending.snapshot_step);
  }
  deposit_log_.erase(
      std::remove_if(deposit_log_.begin(), deposit_log_.end(),
                     [oldest](const auto& entry) {
                       return entry.first <= oldest;
                     }),
      deposit_log_.end());
}

DrainResult RollupNode::run_until_drained(std::size_t max_steps) {
  DrainResult result;
  for (std::size_t i = 0; i < max_steps && pending_work() > 0; ++i) {
    result.outcomes.push_back(step());
  }
  result.drained = pending_work() == 0;
  result.remaining_txs = pending_work();
  if (!result.drained) {
    // Surfaced instead of silently truncating: the caller sees the flag, the
    // telemetry stream sees the counter.
    PAROLE_OBS_COUNT("parole.rollup.drain_truncated", 1);
  }
  return result;
}

DrainResult RollupNode::run_to_quiescence(std::size_t max_steps) {
  DrainResult result;
  for (std::size_t i = 0;
       i < max_steps && (pending_work() > 0 || !pending_checks_.empty());
       ++i) {
    result.outcomes.push_back(step());
  }
  result.drained = pending_work() == 0 && pending_checks_.empty();
  result.remaining_txs = pending_work();
  if (!result.drained) {
    PAROLE_OBS_COUNT("parole.rollup.drain_truncated", 1);
  }
  return result;
}

namespace {

// Section tags for RollupNode snapshots.
constexpr std::uint32_t kNodeTag = io::section_tag("NODE");
constexpr std::uint32_t kStateTag = io::section_tag("L2ST");
constexpr std::uint32_t kMempoolTag = io::section_tag("MEMP");
constexpr std::uint32_t kL1Tag = io::section_tag("L1CH");
constexpr std::uint32_t kOrscTag = io::section_tag("ORSC");
constexpr std::uint32_t kBridgeTag = io::section_tag("BRDG");
constexpr std::uint32_t kBatchesTag = io::section_tag("BTCH");
constexpr std::uint32_t kPendingTag = io::section_tag("PEND");
constexpr std::uint32_t kChaosTag = io::section_tag("CHAO");
constexpr std::uint32_t kConsensusTag = io::section_tag("CSNS");
constexpr std::uint32_t kJournalTag = io::section_tag("JRNL");
constexpr std::uint32_t kFlowTag = io::section_tag("FLOW");

Error config_mismatch(const std::string& what) {
  return Error{"config_mismatch",
               "checkpoint topology differs from this node: " + what};
}

}  // namespace

void RollupNode::save_snapshot(io::CheckpointBuilder& builder) const {
  io::ByteWriter& node = builder.section(kNodeTag);
  node.u32(config_.max_supply);
  node.i64(config_.initial_price);
  node.u64(config_.l1_block_time);
  node.u8(static_cast<std::uint8_t>(config_.exec.policy));
  node.boolean(config_.exec.charge_fees);
  node.u64(aggregators_.size());
  for (const Aggregator& agg : aggregators_) {
    const AggregatorConfig& cfg = agg.config();
    node.u32(cfg.id.value());
    node.u64(cfg.mempool_size);
    node.boolean(cfg.reorderer.has_value());
    node.boolean(cfg.corrupt_at_step.has_value());
    node.u64(cfg.corrupt_at_step.value_or(0));
  }
  node.u64(verifiers_.size());
  for (const Verifier& v : verifiers_) node.u32(v.id().value());
  node.u64(next_aggregator_);
  node.u64(next_tx_id_);
  node.u64(step_index_);
  node.boolean(chaos_ != nullptr);
  node.boolean(consensus_ != nullptr);

  state_.save(builder.section(kStateTag));
  mempool_.save(builder.section(kMempoolTag));
  l1_.save(builder.section(kL1Tag));
  orsc_.save(builder.section(kOrscTag));
  bridge_.save(builder.section(kBridgeTag));

  io::ByteWriter& batches = builder.section(kBatchesTag);
  batches.u64(batches_.size());
  for (const Batch& b : batches_) b.save(batches);

  io::ByteWriter& pending = builder.section(kPendingTag);
  pending.u64(pending_checks_.size());
  for (const PendingVerification& pv : pending_checks_) {
    pv.batch.save(pending);
    pv.pre_state.save(pending);
    pending.u64(pv.snapshot_step);
    pending.blob(pv.checked);
  }
  pending.u64(deposit_log_.size());
  for (const auto& [step, deposit] : deposit_log_) {
    pending.u64(step);
    deposit.save(pending);
  }

  if (chaos_) chaos_->save(builder.section(kChaosTag));
  if (consensus_) consensus_->save(builder.section(kConsensusTag));
  journal_.save(builder.section(kJournalTag));
  flow_.save(builder.section(kFlowTag));
}

Status RollupNode::restore_snapshot(const io::Checkpoint& checkpoint) {
  // --- NODE section: topology validation, no mutation ------------------------
  auto node_r = checkpoint.reader(kNodeTag);
  if (!node_r.ok()) return node_r.error();
  io::ByteReader& node = node_r.value();
  std::uint32_t max_supply = 0;
  Amount initial_price = 0;
  std::uint64_t l1_block_time = 0;
  std::uint8_t exec_policy = 0;
  bool charge_fees = false;
  PAROLE_IO_READ(node.u32(max_supply), "node max supply");
  PAROLE_IO_READ(node.i64(initial_price), "node initial price");
  PAROLE_IO_READ(node.u64(l1_block_time), "node l1 block time");
  PAROLE_IO_READ(node.u8(exec_policy), "node exec policy");
  PAROLE_IO_READ(node.boolean(charge_fees), "node charge fees");
  if (max_supply != config_.max_supply ||
      initial_price != config_.initial_price ||
      l1_block_time != config_.l1_block_time ||
      exec_policy != static_cast<std::uint8_t>(config_.exec.policy) ||
      charge_fees != config_.exec.charge_fees) {
    return config_mismatch("node config");
  }
  std::uint64_t aggregator_count = 0;
  PAROLE_IO_READ(node.length(aggregator_count, 23), "aggregator count");
  if (aggregator_count != aggregators_.size()) {
    return config_mismatch("aggregator count");
  }
  for (const Aggregator& agg : aggregators_) {
    const AggregatorConfig& cfg = agg.config();
    std::uint32_t id = 0;
    std::uint64_t mempool_size = 0, corrupt_step = 0;
    bool adversarial = false, has_corrupt = false;
    PAROLE_IO_READ(node.u32(id), "aggregator id");
    PAROLE_IO_READ(node.u64(mempool_size), "aggregator mempool size");
    PAROLE_IO_READ(node.boolean(adversarial), "aggregator adversarial flag");
    PAROLE_IO_READ(node.boolean(has_corrupt), "aggregator corrupt flag");
    PAROLE_IO_READ(node.u64(corrupt_step), "aggregator corrupt step");
    if (id != cfg.id.value() || mempool_size != cfg.mempool_size ||
        adversarial != cfg.reorderer.has_value() ||
        has_corrupt != cfg.corrupt_at_step.has_value() ||
        (has_corrupt && corrupt_step != cfg.corrupt_at_step.value_or(0))) {
      return config_mismatch("aggregator " + std::to_string(id));
    }
  }
  std::uint64_t verifier_count = 0;
  PAROLE_IO_READ(node.length(verifier_count, 4), "verifier count");
  if (verifier_count != verifiers_.size()) {
    return config_mismatch("verifier count");
  }
  for (const Verifier& v : verifiers_) {
    std::uint32_t id = 0;
    PAROLE_IO_READ(node.u32(id), "verifier id");
    if (id != v.id().value()) return config_mismatch("verifier ids");
  }
  std::uint64_t next_aggregator = 0, next_tx_id = 0, step_index = 0;
  bool chaos_armed = false;
  bool consensus_armed = false;
  PAROLE_IO_READ(node.u64(next_aggregator), "node next aggregator");
  PAROLE_IO_READ(node.u64(next_tx_id), "node next tx id");
  PAROLE_IO_READ(node.u64(step_index), "node step index");
  PAROLE_IO_READ(node.boolean(chaos_armed), "node chaos flag");
  if (chaos_armed != (chaos_ != nullptr)) {
    return config_mismatch("chaos armed state");
  }
  PAROLE_IO_READ(node.boolean(consensus_armed), "node consensus flag");
  if (consensus_armed != (consensus_ != nullptr)) {
    return config_mismatch("consensus armed state");
  }
  if (!aggregators_.empty() && next_aggregator >= aggregators_.size()) {
    return Error{"corrupt_checkpoint", "next aggregator out of range"};
  }
  if (Status s = node.finish("NODE section"); !s.ok()) return s;

  // --- remaining sections: load everything into temporaries ------------------
  vm::L2State state(config_.max_supply, config_.initial_price);
  auto state_r = checkpoint.reader(kStateTag);
  if (!state_r.ok()) return state_r.error();
  if (Status s = state.load(state_r.value()); !s.ok()) return s;
  if (Status s = state_r.value().finish("L2ST section"); !s.ok()) return s;

  BedrockMempool mempool;
  auto mempool_r = checkpoint.reader(kMempoolTag);
  if (!mempool_r.ok()) return mempool_r.error();
  if (Status s = mempool.load(mempool_r.value()); !s.ok()) return s;
  if (Status s = mempool_r.value().finish("MEMP section"); !s.ok()) return s;

  chain::L1Chain l1(config_.l1_block_time);
  auto l1_r = checkpoint.reader(kL1Tag);
  if (!l1_r.ok()) return l1_r.error();
  if (Status s = l1.load(l1_r.value()); !s.ok()) return s;
  if (Status s = l1_r.value().finish("L1CH section"); !s.ok()) return s;

  chain::OrscContract orsc(config_.orsc);
  auto orsc_r = checkpoint.reader(kOrscTag);
  if (!orsc_r.ok()) return orsc_r.error();
  if (Status s = orsc.load(orsc_r.value()); !s.ok()) return s;
  if (Status s = orsc_r.value().finish("ORSC section"); !s.ok()) return s;

  // The bridge temp only carries withdrawals_/locked_; its orsc/ledger wiring
  // is irrelevant here and bridge_'s own pointers (into this node's members)
  // survive the assignment below.
  chain::Bridge bridge(orsc_, state_.ledger());
  auto bridge_r = checkpoint.reader(kBridgeTag);
  if (!bridge_r.ok()) return bridge_r.error();
  if (Status s = bridge.load(bridge_r.value()); !s.ok()) return s;
  if (Status s = bridge_r.value().finish("BRDG section"); !s.ok()) return s;

  auto batches_r = checkpoint.reader(kBatchesTag);
  if (!batches_r.ok()) return batches_r.error();
  io::ByteReader& br = batches_r.value();
  std::uint64_t batch_count = 0;
  PAROLE_IO_READ(br.length(batch_count, 138), "sealed batch count");
  std::vector<Batch> batches(static_cast<std::size_t>(batch_count));
  for (Batch& b : batches) {
    if (Status s = b.load(br); !s.ok()) return s;
  }
  if (Status s = br.finish("BTCH section"); !s.ok()) return s;

  auto pending_r = checkpoint.reader(kPendingTag);
  if (!pending_r.ok()) return pending_r.error();
  io::ByteReader& pr = pending_r.value();
  std::uint64_t pending_count = 0;
  PAROLE_IO_READ(pr.length(pending_count, 138), "pending check count");
  std::vector<PendingVerification> pending;
  pending.reserve(static_cast<std::size_t>(pending_count));
  for (std::uint64_t i = 0; i < pending_count; ++i) {
    PendingVerification pv{Batch{},
                           vm::L2State(config_.max_supply,
                                       config_.initial_price),
                           0,
                           {}};
    if (Status s = pv.batch.load(pr); !s.ok()) return s;
    if (Status s = pv.pre_state.load(pr); !s.ok()) return s;
    PAROLE_IO_READ(pr.u64(pv.snapshot_step), "pending snapshot step");
    PAROLE_IO_READ(pr.blob(pv.checked), "pending checked flags");
    if (pv.checked.size() != verifiers_.size()) {
      return config_mismatch("pending checked-flag width");
    }
    pending.push_back(std::move(pv));
  }
  std::uint64_t deposit_count = 0;
  PAROLE_IO_READ(pr.length(deposit_count, 20), "deposit log count");
  std::vector<std::pair<std::uint64_t, chain::Deposit>> deposit_log(
      static_cast<std::size_t>(deposit_count));
  for (auto& [step, deposit] : deposit_log) {
    PAROLE_IO_READ(pr.u64(step), "deposit log step");
    if (Status s = deposit.load(pr); !s.ok()) return s;
  }
  if (Status s = pr.finish("PEND section"); !s.ok()) return s;

  std::unique_ptr<ChaosRuntime> chaos;
  if (chaos_) {
    chaos = std::make_unique<ChaosRuntime>(chaos_->plan.config());
    auto chaos_r = checkpoint.reader(kChaosTag);
    if (!chaos_r.ok()) return chaos_r.error();
    if (Status s = chaos->load(chaos_r.value()); !s.ok()) return s;
    if (Status s = chaos_r.value().finish("CHAO section"); !s.ok()) return s;
    if (chaos->crash.size() != aggregators_.size()) {
      return config_mismatch("chaos crash-state width");
    }
  }

  std::unique_ptr<ConsensusEngine> consensus;
  if (consensus_) {
    consensus = std::make_unique<ConsensusEngine>(consensus_->config(),
                                                  consensus_->seat_count());
    auto consensus_r = checkpoint.reader(kConsensusTag);
    if (!consensus_r.ok()) return consensus_r.error();
    if (Status s = consensus->load(consensus_r.value()); !s.ok()) return s;
    if (Status s = consensus_r.value().finish("CSNS section"); !s.ok()) {
      return s;
    }
  }

  // The journal validates and commits internally (its deque is built from the
  // section before any member is touched), so a corrupt JRNL section rejects
  // the whole restore with the journal unchanged — same contract as the rest.
  auto journal_r = checkpoint.reader(kJournalTag);
  if (!journal_r.ok()) return journal_r.error();
  if (Status s = journal_.load(journal_r.value()); !s.ok()) return s;
  if (Status s = journal_r.value().finish("JRNL section"); !s.ok()) return s;

  // FLOW section (DESIGN.md §16). Validated into a temporary like the rest;
  // absent in pre-flow checkpoints, which restore with an empty ledger.
  obs::ValueFlowTracker flow;
  if (checkpoint.find(kFlowTag) != nullptr) {
    auto flow_r = checkpoint.reader(kFlowTag);
    if (!flow_r.ok()) return flow_r.error();
    if (Status s = flow.load(flow_r.value()); !s.ok()) return s;
  }

  // --- commit: everything validated, overwrite the dynamic state -------------
  state_ = std::move(state);
  mempool_ = std::move(mempool);
  l1_ = std::move(l1);
  orsc_ = std::move(orsc);
  bridge_ = std::move(bridge);
  batches_ = std::move(batches);
  pending_checks_ = std::move(pending);
  deposit_log_ = std::move(deposit_log);
  if (chaos_) chaos_ = std::move(chaos);
  if (consensus_) consensus_ = std::move(consensus);
  next_aggregator_ = static_cast<std::size_t>(next_aggregator);
  next_tx_id_ = next_tx_id;
  step_index_ = step_index;
  flow_ = std::move(flow);
  // The commit above move-assigned orsc_ and replaced consensus_, wiping
  // their (non-checkpointed) flow-sink pointers — re-point them at flow_.
  wire_flow_sinks();
  // Submit stamps predate the restored process and would produce garbage
  // latencies; measurement restarts with the next submission.
  submit_t_ns_.clear();
  return ok_status();
}

}  // namespace parole::rollup
