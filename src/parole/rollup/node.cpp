#include "parole/rollup/node.hpp"

#include <cassert>

#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"

namespace parole::rollup {

RollupNode::RollupNode(NodeConfig config)
    : config_(config),
      state_(config.max_supply, config.initial_price),
      engine_(config.exec),
      l1_(config.l1_block_time),
      orsc_(config.orsc),
      bridge_(orsc_, state_.ledger()) {}

void RollupNode::add_aggregator(AggregatorConfig config) {
  const Status registered = orsc_.register_aggregator(config.id);
  assert(registered.ok());
  (void)registered;
  aggregators_.emplace_back(std::move(config));
}

void RollupNode::add_verifier(VerifierId id) {
  const Status registered = orsc_.register_verifier(id);
  assert(registered.ok());
  (void)registered;
  verifiers_.emplace_back(id);
}

void RollupNode::fund_l1(UserId user, Amount amount) {
  orsc_.fund_l1(user, amount);
}

Status RollupNode::deposit(UserId user, Amount amount) {
  return orsc_.deposit(user, amount);
}

void RollupNode::submit_tx(vm::Tx tx) {
  tx.id = TxId{next_tx_id_++};
  mempool_.submit(std::move(tx));
}

StepOutcome RollupNode::step() {
  PAROLE_OBS_SPAN("rollup.batch");
  PAROLE_OBS_COUNT("parole.rollup.steps", 1);
  StepOutcome outcome;

  bridge_.process_deposits();

  if (aggregators_.empty() || mempool_.empty()) {
    l1_.seal_block();
    outcome.finalized_batches = orsc_.finalize_due(l1_.now());
    return outcome;
  }

  // Round-robin over aggregators that still hold a live bond — a slashed
  // aggregator's submissions would be rejected by the ORSC.
  std::size_t probes = 0;
  while (probes < aggregators_.size() &&
         orsc_.aggregator_bond(aggregators_[next_aggregator_].id()) <= 0) {
    next_aggregator_ = (next_aggregator_ + 1) % aggregators_.size();
    ++probes;
  }
  if (probes == aggregators_.size()) {
    // Everyone slashed: the rollup has no operators left.
    l1_.seal_block();
    outcome.finalized_batches = orsc_.finalize_due(l1_.now());
    return outcome;
  }
  Aggregator& aggregator = aggregators_[next_aggregator_];
  next_aggregator_ = (next_aggregator_ + 1) % aggregators_.size();

  std::vector<vm::Tx> collected = mempool_.collect(aggregator.mempool_size());
  if (collected.empty()) {
    l1_.seal_block();
    outcome.finalized_batches = orsc_.finalize_due(l1_.now());
    return outcome;
  }

  // Mempool-side screening (Sec. VIII defense) runs before the aggregator —
  // and therefore before any adversarial reordering — and pushes high-
  // arbitrage transactions to the block behind.
  if (batch_screen_) {
    ScreenResult screened = batch_screen_(state_, std::move(collected));
    collected = std::move(screened.admitted);
    outcome.screened_out = screened.deferred.size();
    for (vm::Tx& tx : screened.deferred) mempool_.defer(std::move(tx));
    if (collected.empty()) {
      l1_.seal_block();
      outcome.finalized_batches = orsc_.finalize_due(l1_.now());
      return outcome;
    }
  }

  // Keep the pre-batch state so verifiers can re-execute and, if fraud is
  // proven, the canonical state can roll back.
  const vm::L2State pre_state = state_;

  Batch batch = aggregator.build_batch(state_, std::move(collected), engine_);
  auto submitted = orsc_.submit_batch(batch.header, l1_.now());
  assert(submitted.ok());
  batch.header.batch_id = submitted.value();

  outcome.produced_batch = true;
  outcome.batch_id = batch.header.batch_id;
  outcome.aggregator = aggregator.id();
  outcome.tx_count = batch.txs.size();

  // Every verifier independently checks the batch; the first one that finds
  // fraud opens the (single) challenge.
  for (const Verifier& verifier : verifiers_) {
    const VerificationOutcome check =
        verifier.check(batch, pre_state, engine_);
    if (check.valid) continue;
    PAROLE_OBS_COUNT("parole.rollup.fraud_detected", 1);

    const Status opened =
        orsc_.open_challenge(batch.header.batch_id, verifier.id(), l1_.now());
    if (!opened.ok()) continue;  // someone else already disputed
    outcome.challenged = true;

    // The challenger's honest trace for the bisection game.
    std::vector<crypto::Hash256> honest_roots;
    honest_roots.reserve(batch.txs.size());
    vm::L2State replay = pre_state;
    for (const vm::Tx& tx : batch.txs) {
      (void)engine_.execute_tx(replay, tx);
      honest_roots.push_back(replay.state_root());
    }

    const DisputeVerdict verdict =
        DisputeGame::run(batch, pre_state, honest_roots, engine_);
    const Status resolved =
        orsc_.resolve_challenge(batch.header.batch_id, verdict.fraud_proven);
    assert(resolved.ok());
    (void)resolved;

    if (verdict.fraud_proven) {
      outcome.fraud_proven = true;
      // The fraudulent batch is reverted: canonical state rolls back and the
      // transactions return to the mempool for an honest aggregator.
      state_ = pre_state;
      for (vm::Tx& tx : batch.txs) mempool_.defer(std::move(tx));
    }
    break;
  }

  // The commitment hit L1 regardless of how the dispute ended.
  l1_.stage_batch(batch.header);
  if (!outcome.fraud_proven) {
    batches_.push_back(std::move(batch));
  }
  l1_.seal_block();
  outcome.finalized_batches = orsc_.finalize_due(l1_.now());
  return outcome;
}

std::vector<StepOutcome> RollupNode::run_until_drained(std::size_t max_steps) {
  std::vector<StepOutcome> outcomes;
  for (std::size_t i = 0; i < max_steps && !mempool_.empty(); ++i) {
    outcomes.push_back(step());
  }
  return outcomes;
}

}  // namespace parole::rollup
