// RollupNode: the full optimistic-rollup pipeline of Fig. 1 wired together.
//
//   users --deposit--> ORSC --bridge--> L2 ledger
//   users --submit---> Bedrock mempool --collect--> aggregator (A_P reorders)
//   aggregator --batch+roots--> ORSC --challenge period--> finalized on L1
//   verifiers --re-execute--> challenge --bisection--> slash / finalize
//
// One step() = one aggregation round: the next live aggregator (round-robin)
// collects its N transactions, builds and commits a batch, awake verifiers
// work through the still-pending commitments, disputes resolve, an L1 block
// seals, and due batches finalize.
//
// Verification is *delayed-capable*: each committed batch stays on a pending
// list (with its pre-state snapshot) until it leaves kPending, and every
// (batch, verifier) pair is checked at most once. With all verifiers awake
// that reduces exactly to the old check-immediately behaviour; under chaos
// verifier downtime it yields the two outcomes the harness exists to expose —
// a verifier waking late inside the challenge window still lands its
// challenge (cascading a rollback over descendant batches), and fraud
// finalizes iff every verifier sleeps through the entire window.
//
// Arm chaos with arm_chaos(); the node then consults the FaultPlan each step
// and checks the invariant suite after each step (see rollup/chaos.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "parole/chain/bridge.hpp"
#include "parole/chain/l1_chain.hpp"
#include "parole/chain/orsc.hpp"
#include "parole/io/checkpoint.hpp"
#include "parole/obs/flow.hpp"
#include "parole/obs/journal.hpp"
#include "parole/rollup/aggregator.hpp"
#include "parole/rollup/chaos.hpp"
#include "parole/rollup/consensus.hpp"
#include "parole/rollup/dispute.hpp"
#include "parole/rollup/mempool.hpp"
#include "parole/rollup/verifier.hpp"
#include "parole/vm/engine.hpp"

namespace parole::rollup {

struct NodeConfig {
  std::uint32_t max_supply = 10;
  Amount initial_price = eth(0, 200);  // 0.2 ETH, the Sec. VI default
  chain::OrscConfig orsc;
  vm::ExecConfig exec;
  std::uint64_t l1_block_time = 12;
};

struct StepOutcome {
  bool produced_batch{false};
  std::uint64_t batch_id{0};
  AggregatorId aggregator{};
  std::size_t tx_count{0};
  bool challenged{false};
  // The batch the challenge targeted — under delayed verification it is not
  // necessarily the batch produced this step.
  std::uint64_t challenged_batch_id{0};
  bool fraud_proven{false};
  std::size_t screened_out{0};  // txs deferred by the batch screen
  // Descendant batches reverted because they were built on proven fraud.
  std::size_t reverted_batches{0};
  std::vector<std::uint64_t> finalized_batches;

  // Chaos observability — all zero on fault-free steps.
  bool aggregator_crashed{false};
  bool reorderer_degraded{false};
  std::uint32_t verifiers_down{0};
  std::uint32_t txs_dropped{0};
  std::uint32_t txs_duplicated{0};
  std::uint32_t txs_delayed{0};
  std::uint64_t l1_reorg_depth{0};

  // Consensus observability (DESIGN.md §15) — all zero unless armed.
  std::uint64_t leader_seat{0};
  std::uint32_t view_changes{0};
  std::uint32_t equivocations{0};

  // Exact equality — the chaos acceptance test diffs whole outcome sequences
  // across same-seed runs.
  friend bool operator==(const StepOutcome&, const StepOutcome&) = default;
};

// What run_until_drained() actually achieved. The old vector-only return
// silently truncated at max_steps; callers now see whether the pool drained
// and how much work was left behind.
struct DrainResult {
  std::vector<StepOutcome> outcomes;
  bool drained{false};          // no pending work left when the loop exited
  std::size_t remaining_txs{0};  // mempool + chaos-delayed txs still queued
  [[nodiscard]] std::size_t steps() const { return outcomes.size(); }
};

// Mempool-side batch screening hook (the Sec. VIII defense plugs in here):
// given the pre-batch state and the collected transactions, return the
// admitted set and the set to defer to the block behind. Runs *before* the
// aggregator (and therefore before any adversarial reordering).
struct ScreenResult {
  std::vector<vm::Tx> admitted;
  std::vector<vm::Tx> deferred;
};
using BatchScreen =
    std::function<ScreenResult(const vm::L2State&, std::vector<vm::Tx>)>;

class RollupNode {
 public:
  explicit RollupNode(NodeConfig config = {});

  // --- topology --------------------------------------------------------------
  void add_aggregator(AggregatorConfig config);
  void add_verifier(VerifierId id);
  // Install (or clear, with nullptr) the mempool-side batch screen.
  void set_batch_screen(BatchScreen screen) {
    batch_screen_ = std::move(screen);
  }

  // Arm the chaos harness: step() consults the plan for faults and runs the
  // invariant checker after every step. Arm before the first step().
  void arm_chaos(ChaosConfig config);
  [[nodiscard]] const ChaosRuntime* chaos() const { return chaos_.get(); }

  // Arm decentralized sequencing (DESIGN.md §15): aggregators become bonded
  // sequencer seats and produce_batch runs the elected-leader slot protocol
  // instead of round-robin. Seats are kept 1:1 with aggregators (adversarial
  // iff the aggregator carries a reorderer); arm before or after topology —
  // add_aggregator grows the roster either way. Composes with arm_chaos: the
  // leader-fault families in the plan only fire on consensus-armed nodes.
  void arm_consensus(ConsensusConfig config);
  [[nodiscard]] const ConsensusEngine* consensus() const {
    return consensus_.get();
  }

  // --- user actions ----------------------------------------------------------
  void fund_l1(UserId user, Amount amount);
  Status deposit(UserId user, Amount amount);
  void submit_tx(vm::Tx tx);

  // Admission-controlled submit (the serve ingest edge): assigns the node tx
  // id first — a shed transaction is attributable in the journal — then asks
  // the mempool's bounded path. Returns true when admitted; a refusal emits
  // the terminal kShed event and leaves no latency stamp behind. The shed
  // decision depends only on mempool depth, so a batch-stepped replay sheds
  // the exact same ids as the concurrent pipeline.
  bool try_submit_tx(vm::Tx tx, std::size_t max_mempool_depth);

  // Supervision degrade hook: while set, every adversarial aggregator ships
  // honest collection order (the serve supervisor flips this when the
  // reorder stage exhausts its crash-loop budget). Not part of the node
  // snapshot — the serve checkpoint carries supervision state and re-applies
  // it on resume.
  void set_reorder_passthrough(bool on) { reorder_passthrough_ = on; }
  [[nodiscard]] bool reorder_passthrough() const {
    return reorder_passthrough_;
  }

  // --- simulation ------------------------------------------------------------
  StepOutcome step();
  // Run steps until the pending work (mempool + chaos-delayed txs) drains or
  // `max_steps` elapse; DrainResult says which of the two happened.
  DrainResult run_until_drained(std::size_t max_steps = 10'000);
  // Like run_until_drained, but also waits for every committed batch to
  // resolve (finalize or revert): at quiescence no transaction has an open
  // lifecycle chain, so TxJournal::audit() must come back clean. Drained
  // batches still inside their challenge window keep the loop stepping.
  DrainResult run_to_quiescence(std::size_t max_steps = 10'000);

  // --- inspection ------------------------------------------------------------
  [[nodiscard]] const vm::L2State& state() const { return state_; }
  [[nodiscard]] vm::L2State& state() { return state_; }
  [[nodiscard]] BedrockMempool& mempool() { return mempool_; }
  [[nodiscard]] const chain::L1Chain& l1() const { return l1_; }
  [[nodiscard]] chain::OrscContract& orsc() { return orsc_; }
  [[nodiscard]] const chain::OrscContract& orsc() const { return orsc_; }
  [[nodiscard]] chain::Bridge& bridge() { return bridge_; }
  [[nodiscard]] const chain::Bridge& bridge() const { return bridge_; }
  [[nodiscard]] const vm::ExecutionEngine& engine() const { return engine_; }
  [[nodiscard]] const std::vector<Batch>& batches() const { return batches_; }
  [[nodiscard]] const NodeConfig& config() const { return config_; }
  [[nodiscard]] std::size_t aggregator_count() const {
    return aggregators_.size();
  }
  [[nodiscard]] std::vector<AggregatorId> aggregator_ids() const;
  [[nodiscard]] const std::vector<Verifier>& verifiers() const {
    return verifiers_;
  }
  // Batches committed but not yet finalized/reverted (awaiting verification
  // or challenge-window expiry).
  [[nodiscard]] std::size_t pending_verification_count() const {
    return pending_checks_.size();
  }
  [[nodiscard]] std::uint64_t step_index() const { return step_index_; }
  // This node's lifecycle journal (DESIGN.md §11). Arm process-wide with
  // obs::TxJournal::set_enabled(true); step() installs the journal as the
  // thread-local current for its duration, so pipeline stages without a node
  // pointer (mempool, VM, reorderer, dispute) emit into it.
  [[nodiscard]] obs::TxJournal& journal() { return journal_; }
  [[nodiscard]] const obs::TxJournal& journal() const { return journal_; }
  // Value-flow attribution ledger (DESIGN.md §16). Always on: recording only
  // happens on canonical execution paths (one batch build per step plus rare
  // economic events), so there is no hot-path cost to gate. The per-tx engine
  // hook itself compiles out under -DPAROLE_OBS=OFF.
  [[nodiscard]] obs::ValueFlowTracker& flow() { return flow_; }
  [[nodiscard]] const obs::ValueFlowTracker& flow() const { return flow_; }

  // --- checkpointing (DESIGN.md §10) ----------------------------------------
  // Serialize all dynamic state into typed sections of `builder`: L2 state,
  // mempool, L1 chain, ORSC, bridge, sealed batch bodies, the pending-
  // verification list and, when armed, the chaos runtime. NOT captured:
  // topology (aggregator reorderer callbacks, the batch screen) — those are
  // std::function values the caller must re-install by reconstructing the
  // node the same way before calling restore_snapshot().
  void save_snapshot(io::CheckpointBuilder& builder) const;

  // Overwrite this node's dynamic state from a parsed checkpoint. The node
  // must already carry the same topology (aggregator/verifier sets, node
  // config, chaos armed with the same seed) — mismatches are rejected with
  // "config_mismatch" before anything is mutated. A chaos soak restored this
  // way continues bit-identically: step() consumes step_index_ and the
  // stateless FaultPlan yields the same schedule.
  Status restore_snapshot(const io::Checkpoint& checkpoint);

 private:
  // A committed batch awaiting resolution: the body and pre-state snapshot a
  // late-waking verifier needs to re-execute it, plus per-verifier "already
  // checked" flags so no (batch, verifier) pair is examined twice.
  struct PendingVerification {
    Batch batch;
    vm::L2State pre_state;
    std::uint64_t snapshot_step{0};
    std::vector<std::uint8_t> checked;
  };

  void apply_l1_reorg(std::uint64_t step, StepOutcome& outcome);
  void release_delayed(std::uint64_t step, StepOutcome& outcome);
  void produce_batch(std::uint64_t step, StepOutcome& outcome);
  // Consensus-armed slot protocol: elect a leader, run the view-change loop
  // over leader faults and dead seats, build/commit the accepted proposal,
  // then resolve any stale-view duplicate as slashed equivocation.
  void produce_batch_consensus(std::uint64_t step, StepOutcome& outcome);
  // Shared tail of both produce paths: screen, reorder (or suppress), build,
  // submit, journal, stage on L1 and queue for verification.
  void commit_batch(std::uint64_t step, std::size_t aggregator_index,
                    std::vector<vm::Tx> collected, StepOutcome& outcome);
  void apply_mempool_faults(std::uint64_t step, std::vector<vm::Tx>& collected,
                            StepOutcome& outcome);
  void run_verification_pass(std::uint64_t step, StepOutcome& outcome);
  // Cascade rollback from pending_checks_[index]: restore that batch's
  // pre-state (replaying deposits credited after the snapshot), return its
  // and every descendant's txs to the mempool, revert descendant records
  // (when `revert_records`; an L1 reorg has already popped them) and drop the
  // bodies. Invalidates pending_checks_ references at >= index.
  void rollback_from(std::size_t index, bool revert_records,
                     StepOutcome& outcome);
  void prune_pending();
  void record_fault(std::uint64_t step, FaultKind kind, std::uint64_t subject,
                    std::string detail);
  ChaosRuntime::CrashState& crash_state(std::size_t aggregator_index);
  [[nodiscard]] std::size_t pending_work() const;
  // (Re-)point the ORSC's and consensus engine's flow sinks at flow_. Needed
  // after construction, after arm_consensus, and after restore_snapshot's
  // commit block (which move-assigns orsc_ and replaces consensus_, wiping
  // the non-checkpointed sink pointers).
  void wire_flow_sinks();

  NodeConfig config_;
  vm::L2State state_;
  vm::ExecutionEngine engine_;
  BedrockMempool mempool_;
  chain::L1Chain l1_;
  chain::OrscContract orsc_;
  chain::Bridge bridge_;
  std::vector<Aggregator> aggregators_;
  std::vector<Verifier> verifiers_;
  BatchScreen batch_screen_;
  std::vector<Batch> batches_;
  std::vector<PendingVerification> pending_checks_;
  // Deposits credited per step, kept while any pending snapshot predates
  // them: a cascade rollback restores an old state copy and must not lose
  // bridged value that arrived after the snapshot.
  std::vector<std::pair<std::uint64_t, chain::Deposit>> deposit_log_;
  obs::TxJournal journal_;
  obs::ValueFlowTracker flow_;
  // Live admission→finalization latency (DESIGN.md §13): submit-time stamps
  // on the span clock keyed by tx id, observed into the
  // parole.rollup.tx_latency_ns histogram when the tx's batch finalizes (or
  // erased when a chaos drop ends the tx). Works with the journal unarmed —
  // the sampler's rolling p99 must not require lifecycle journaling. Not
  // checkpointed: latency measurement restarts across a resume.
  std::unordered_map<std::uint64_t, std::uint64_t> submit_t_ns_;
  std::unique_ptr<ChaosRuntime> chaos_;
  std::unique_ptr<ConsensusEngine> consensus_;
  bool reorder_passthrough_{false};
  std::size_t next_aggregator_{0};
  // Starts at 1: tx id 0 is the journal's pipeline-event sentinel (deposits,
  // dispute verdicts), so a real transaction must never carry it.
  std::uint64_t next_tx_id_{1};
  std::uint64_t step_index_{0};
};

}  // namespace parole::rollup
