// RollupNode: the full optimistic-rollup pipeline of Fig. 1 wired together.
//
//   users --deposit--> ORSC --bridge--> L2 ledger
//   users --submit---> Bedrock mempool --collect--> aggregator (A_P reorders)
//   aggregator --batch+roots--> ORSC --challenge period--> finalized on L1
//   verifiers --re-execute--> challenge --bisection--> slash / finalize
//
// One step() = one aggregation round: the next aggregator (round-robin)
// collects its N transactions, builds and commits a batch, every verifier
// checks it, disputes resolve, an L1 block seals, and due batches finalize.
#pragma once

#include <cstdint>
#include <vector>

#include "parole/chain/bridge.hpp"
#include "parole/chain/l1_chain.hpp"
#include "parole/chain/orsc.hpp"
#include "parole/rollup/aggregator.hpp"
#include "parole/rollup/dispute.hpp"
#include "parole/rollup/mempool.hpp"
#include "parole/rollup/verifier.hpp"
#include "parole/vm/engine.hpp"

namespace parole::rollup {

struct NodeConfig {
  std::uint32_t max_supply = 10;
  Amount initial_price = eth(0, 200);  // 0.2 ETH, the Sec. VI default
  chain::OrscConfig orsc;
  vm::ExecConfig exec;
  std::uint64_t l1_block_time = 12;
};

struct StepOutcome {
  bool produced_batch{false};
  std::uint64_t batch_id{0};
  AggregatorId aggregator{};
  std::size_t tx_count{0};
  bool challenged{false};
  bool fraud_proven{false};
  std::size_t screened_out{0};  // txs deferred by the batch screen
  std::vector<std::uint64_t> finalized_batches;
};

// Mempool-side batch screening hook (the Sec. VIII defense plugs in here):
// given the pre-batch state and the collected transactions, return the
// admitted set and the set to defer to the block behind. Runs *before* the
// aggregator (and therefore before any adversarial reordering).
struct ScreenResult {
  std::vector<vm::Tx> admitted;
  std::vector<vm::Tx> deferred;
};
using BatchScreen =
    std::function<ScreenResult(const vm::L2State&, std::vector<vm::Tx>)>;

class RollupNode {
 public:
  explicit RollupNode(NodeConfig config = {});

  // --- topology --------------------------------------------------------------
  void add_aggregator(AggregatorConfig config);
  void add_verifier(VerifierId id);
  // Install (or clear, with nullptr) the mempool-side batch screen.
  void set_batch_screen(BatchScreen screen) {
    batch_screen_ = std::move(screen);
  }

  // --- user actions ----------------------------------------------------------
  void fund_l1(UserId user, Amount amount);
  Status deposit(UserId user, Amount amount);
  void submit_tx(vm::Tx tx);

  // --- simulation ------------------------------------------------------------
  StepOutcome step();
  // Run steps until the mempool is drained (or `max_steps`).
  std::vector<StepOutcome> run_until_drained(std::size_t max_steps = 10'000);

  // --- inspection ------------------------------------------------------------
  [[nodiscard]] const vm::L2State& state() const { return state_; }
  [[nodiscard]] vm::L2State& state() { return state_; }
  [[nodiscard]] BedrockMempool& mempool() { return mempool_; }
  [[nodiscard]] const chain::L1Chain& l1() const { return l1_; }
  [[nodiscard]] chain::OrscContract& orsc() { return orsc_; }
  [[nodiscard]] chain::Bridge& bridge() { return bridge_; }
  [[nodiscard]] const vm::ExecutionEngine& engine() const { return engine_; }
  [[nodiscard]] const std::vector<Batch>& batches() const { return batches_; }
  [[nodiscard]] std::size_t aggregator_count() const {
    return aggregators_.size();
  }

 private:
  NodeConfig config_;
  vm::L2State state_;
  vm::ExecutionEngine engine_;
  BedrockMempool mempool_;
  chain::L1Chain l1_;
  chain::OrscContract orsc_;
  chain::Bridge bridge_;
  std::vector<Aggregator> aggregators_;
  std::vector<Verifier> verifiers_;
  BatchScreen batch_screen_;
  std::vector<Batch> batches_;
  std::size_t next_aggregator_{0};
  std::uint64_t next_tx_id_{0};
};

}  // namespace parole::rollup
