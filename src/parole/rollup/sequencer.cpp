#include "parole/rollup/sequencer.hpp"

#include <utility>

#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"
#include "parole/obs/watchdog.hpp"

namespace parole::rollup {

CentralSequencer::CentralSequencer(SequencerConfig config)
    : config_(std::move(config)) {}

void CentralSequencer::submit(vm::Tx tx) {
  if (config_.censor && config_.censor(tx)) {
    ++stats_.txs_censored;
    PAROLE_OBS_COUNT("parole.rollup.txs_censored", 1);
    PAROLE_OBS_COUNT("parole.sequencer.txs_censored", 1);
    return;
  }
  pending_.push_back(std::move(tx));
}

std::optional<Batch> CentralSequencer::produce_block(
    vm::L2State& state, const vm::ExecutionEngine& engine) {
  // The heartbeat fires on every tick, including halted ones: a halted
  // sequencer is alive and refusing, which the watchdog must tell apart from
  // a sequencer that stopped calling in.
  PAROLE_OBS_HEARTBEAT("rollup.sequencer");
  if (halted_) {
    ++stats_.halted_ticks;
    PAROLE_OBS_COUNT("parole.sequencer.halted_ticks", 1);
    return std::nullopt;
  }
  if (pending_.empty()) return std::nullopt;
  PAROLE_OBS_SPAN("rollup.sequence");

  std::vector<vm::Tx> txs;
  while (txs.size() < config_.max_block_txs && !pending_.empty()) {
    txs.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }

  if (config_.reorderer) {
    txs = (*config_.reorderer)(state, std::move(txs));
    ++stats_.mev_reorders;
    PAROLE_OBS_COUNT("parole.sequencer.mev_reorders", 1);
  }

  Batch batch;
  batch.header.pre_state_root = state.state_root();
  batch.header.tx_count = txs.size();
  batch.intermediate_roots.reserve(txs.size());
  for (const vm::Tx& tx : txs) {
    (void)engine.execute_tx(state, tx);
    batch.intermediate_roots.push_back(state.state_root());
  }
  batch.txs = std::move(txs);
  batch.header.tx_root = Batch::tx_root_of(batch.txs);
  batch.header.post_state_root = batch.txs.empty()
                                     ? batch.header.pre_state_root
                                     : batch.intermediate_roots.back();

  ++stats_.blocks_produced;
  stats_.txs_sequenced += batch.txs.size();
  PAROLE_OBS_COUNT("parole.rollup.blocks_produced", 1);
  PAROLE_OBS_COUNT("parole.rollup.txs_sequenced", batch.txs.size());
  PAROLE_OBS_COUNT("parole.sequencer.blocks_produced", 1);
  PAROLE_OBS_COUNT("parole.sequencer.txs_sequenced", batch.txs.size());
  return batch;
}

}  // namespace parole::rollup
