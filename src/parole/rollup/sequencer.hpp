// Centralized sequencer model (Sec. I).
//
// Before aggregator decentralization, a rollup's ordering power sits with a
// single sequencer, which the paper flags for three risks:
//   * MEV extraction — it can order however it likes (same Reorderer hook
//     the adversarial aggregator uses, but with *no* fee-priority pretense);
//   * censorship — it can silently drop transactions;
//   * liveness — "if it fails, the entire L2 rollup system can collapse":
//     a halted sequencer produces no blocks and the backlog grows without
//     bound.
//
// The sequencer composes with the same execution engine and batch format as
// the aggregator path, so the attack comparison (aggregator-PAROLE vs
// sequencer-PAROLE) is apples to apples.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <deque>
#include <vector>

#include "parole/rollup/aggregator.hpp"
#include "parole/rollup/fraud_proof.hpp"
#include "parole/vm/engine.hpp"

namespace parole::rollup {

struct SequencerConfig {
  // Transactions per produced L2 block.
  std::size_t max_block_txs = 20;
  // MEV extraction hook (the PAROLE module, for a sequencer-side attack).
  std::optional<Reorderer> reorderer;
  // Censorship predicate: submitted txs matching it are silently dropped.
  std::function<bool(const vm::Tx&)> censor;
};

struct SequencerStats {
  std::uint64_t blocks_produced{0};
  std::uint64_t txs_sequenced{0};
  std::uint64_t txs_censored{0};
  std::uint64_t halted_ticks{0};
  // Blocks that went through the MEV reorderer hook before sealing.
  std::uint64_t mev_reorders{0};
};

class CentralSequencer {
 public:
  explicit CentralSequencer(SequencerConfig config);

  // Users submit directly to the sequencer (no public mempool at all —
  // stronger privacy than Bedrock's, and stronger ordering power).
  void submit(vm::Tx tx);

  // Produce one L2 block against `state`: take up to max_block_txs pending
  // txs in FIFO order, apply the reorderer if configured, execute, and
  // return the committed batch. Returns nullopt while halted (the backlog
  // keeps growing) or when nothing is pending.
  std::optional<Batch> produce_block(vm::L2State& state,
                                     const vm::ExecutionEngine& engine);

  // Liveness failure and recovery.
  void halt() { halted_ = true; }
  void recover() { halted_ = false; }
  [[nodiscard]] bool halted() const { return halted_; }

  [[nodiscard]] std::size_t backlog() const { return pending_.size(); }
  [[nodiscard]] const SequencerStats& stats() const { return stats_; }

 private:
  SequencerConfig config_;
  std::deque<vm::Tx> pending_;
  bool halted_{false};
  SequencerStats stats_;
};

}  // namespace parole::rollup
