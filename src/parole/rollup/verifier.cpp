#include "parole/rollup/verifier.hpp"

#include "parole/obs/metrics.hpp"
#include "parole/obs/trace.hpp"
#include "parole/obs/watchdog.hpp"

namespace parole::rollup {

VerificationOutcome Verifier::check(const Batch& batch,
                                    const vm::L2State& pre_state,
                                    const vm::ExecutionEngine& engine) const {
  PAROLE_OBS_SPAN("rollup.verify");
  PAROLE_OBS_COUNT("parole.rollup.batches_verified", 1);
  PAROLE_OBS_HEARTBEAT("rollup.verifier");
  VerificationOutcome outcome;

  vm::L2State replay = pre_state;
  if (replay.state_root() != batch.header.pre_state_root) {
    // The aggregator built on a state the verifier does not recognise.
    outcome.valid = false;
    outcome.first_bad_step = 0;
    outcome.honest_post_root = replay.state_root();
    return outcome;
  }

  for (std::size_t i = 0; i < batch.txs.size(); ++i) {
    (void)engine.execute_tx(replay, batch.txs[i]);
    const crypto::Hash256 honest_root = replay.state_root();
    if (i >= batch.intermediate_roots.size() ||
        batch.intermediate_roots[i] != honest_root) {
      outcome.valid = false;
      if (!outcome.first_bad_step) outcome.first_bad_step = i;
    }
  }

  outcome.honest_post_root = replay.state_root();
  if (outcome.valid &&
      batch.header.post_state_root != outcome.honest_post_root) {
    outcome.valid = false;
    outcome.first_bad_step = batch.txs.empty() ? 0 : batch.txs.size() - 1;
  }
  return outcome;
}

}  // namespace parole::rollup
