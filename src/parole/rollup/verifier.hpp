// Rollup verifier V_k.
//
// Monitors batch commitments and re-executes each batch from the pre-state
// to check the claimed post-root (the optimistic-rollup fraud-proof check,
// Sec. II-A / V-A). When the re-derived root disagrees, the verifier opens a
// challenge; the interactive dispute game (dispute.*) then pins the fraud to
// one step. Challenging carries risk: a wrong challenge costs the verifier
// its own bond, so check() is exact, not heuristic.
#pragma once

#include <optional>

#include "parole/rollup/fraud_proof.hpp"
#include "parole/vm/engine.hpp"

namespace parole::rollup {

struct VerificationOutcome {
  bool valid{true};
  // First step whose committed root disagrees with honest re-execution
  // (what the verifier would assert in the dispute game).
  std::optional<std::size_t> first_bad_step;
  crypto::Hash256 honest_post_root;
};

class Verifier {
 public:
  explicit Verifier(VerifierId id) : id_(id) {}

  // Re-execute `batch` from a copy of `pre_state` and compare the committed
  // trace. `pre_state` must be the canonical L2 state before the batch.
  [[nodiscard]] VerificationOutcome check(const Batch& batch,
                                          const vm::L2State& pre_state,
                                          const vm::ExecutionEngine& engine)
      const;

  [[nodiscard]] VerifierId id() const { return id_; }

 private:
  VerifierId id_;
};

}  // namespace parole::rollup
