#include "parole/rollup/witnessed_dispute.hpp"

#include <cassert>

namespace parole::rollup {

SmtTrace build_smt_trace(const vm::L2State& pre_state,
                         std::span<const vm::Tx> txs,
                         const vm::ExecutionEngine& engine) {
  SmtTrace trace;
  trace.pre_root = vm::smt_state_root(pre_state);
  trace.roots.reserve(txs.size());
  vm::L2State state = pre_state;
  for (const vm::Tx& tx : txs) {
    (void)engine.execute_tx(state, tx);
    trace.roots.push_back(vm::smt_state_root(state));
  }
  return trace;
}

WitnessedVerdict WitnessedDisputeGame::run(
    std::span<const vm::Tx> txs, const SmtTrace& committed,
    const SmtTrace& honest, const WitnessProvider& witness_provider,
    const vm::StatelessConfig& config) {
  WitnessedVerdict verdict;
  const std::size_t n = txs.size();
  assert(committed.roots.size() == n);
  assert(honest.roots.size() == n);
  assert(committed.pre_root == honest.pre_root);

  // The challenge must name a disagreement; otherwise it is frivolous.
  std::size_t divergent = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (committed.roots[i] != honest.roots[i]) {
      divergent = i;
      break;
    }
  }
  if (divergent == n) return verdict;

  // Bisection: agree after `lo` (-1 = the shared pre-root), disagree after
  // `hi`. Each round the challenger reveals whether its root at the midpoint
  // matches the asserter's commitment.
  std::ptrdiff_t lo = -1;
  std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(divergent);
  while (hi - lo > 1) {
    const std::ptrdiff_t mid = lo + (hi - lo) / 2;
    const bool agree =
        committed.roots[static_cast<std::size_t>(mid)] ==
        honest.roots[static_cast<std::size_t>(mid)];
    if (agree) {
      lo = mid;
    } else {
      hi = mid;
    }
    ++verdict.rounds;
  }

  const auto step = static_cast<std::size_t>(hi);
  verdict.disputed_step = step;
  const crypto::Hash256& agreed_pre = committed.root_before(step);

  // Single-step adjudication, stateless: the witness must prove against the
  // agreed pre-root; then one transaction is executed from it.
  const vm::TxWitness witness = witness_provider(step);
  if (witness.pre_root != agreed_pre) {
    verdict.witness_rejected = true;  // unusable witness: challenge fails
    return verdict;
  }
  const auto outcome = vm::stateless_execute(witness, txs[step], config);
  if (!outcome.ok()) {
    verdict.witness_rejected = true;
    return verdict;
  }

  verdict.adjudicated_root = outcome.value().post_root;
  verdict.fraud_proven =
      outcome.value().post_root != committed.roots[step];
  return verdict;
}

}  // namespace parole::rollup
