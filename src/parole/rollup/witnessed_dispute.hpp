// Witnessed dispute game: the full interactive fraud proof the way a
// production optimistic rollup runs it.
//
// DisputeGame (dispute.*) localizes fraud by bisection but adjudicates the
// final step by replaying the pre-state — something a real L1 cannot do.
// This variant removes that crutch: batches commit SMT state roots
// (vm::smt_state_root), the bisection narrows the disagreement to one
// transaction exactly as before, and the final step is adjudicated by
// vm::stateless_execute over a witness proven against the *agreed* pre-root.
// The referee therefore only ever touches:
//
//   * the two parties' root claims (O(log N) of them, via bisection),
//   * one transaction,
//   * one witness (a handful of SMT proofs).
//
// A dishonest witness cannot help either party: every proof must verify
// against the root both parties already agreed on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "parole/vm/engine.hpp"
#include "parole/vm/witness.hpp"

namespace parole::rollup {

// SMT state-root trace over a batch: root after every transaction.
struct SmtTrace {
  crypto::Hash256 pre_root;
  std::vector<crypto::Hash256> roots;

  [[nodiscard]] const crypto::Hash256& root_before(std::size_t step) const {
    return step == 0 ? pre_root : roots[step - 1];
  }
};

// Execute `txs` from `pre_state` (copy) and record the SMT root after each
// transaction — what an aggregator would commit alongside the batch.
[[nodiscard]] SmtTrace build_smt_trace(const vm::L2State& pre_state,
                                       std::span<const vm::Tx> txs,
                                       const vm::ExecutionEngine& engine);

// Supplies the witness for the disputed step once bisection has pinned it.
// In practice the challenger (who has the honest state) provides it; the
// game verifies it against the agreed pre-root regardless of provenance.
using WitnessProvider = std::function<vm::TxWitness(std::size_t step)>;

struct WitnessedVerdict {
  bool fraud_proven{false};
  std::size_t disputed_step{0};
  std::size_t rounds{0};
  // Set when the provided witness itself failed verification (the challenge
  // collapses without an adjudicable witness — challenger loses).
  bool witness_rejected{false};
  crypto::Hash256 adjudicated_root;  // the truth for the disputed step
};

class WitnessedDisputeGame {
 public:
  // `committed` is the asserter's (possibly fraudulent) trace, `honest` the
  // challenger's. Both must share pre_root (the previously finalized state).
  static WitnessedVerdict run(std::span<const vm::Tx> txs,
                              const SmtTrace& committed,
                              const SmtTrace& honest,
                              const WitnessProvider& witness_provider,
                              const vm::StatelessConfig& config);
};

}  // namespace parole::rollup
