#include "parole/serve/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <utility>

#include "parole/common/fault.hpp"
#include "parole/obs/metrics.hpp"
#include "parole/obs/watchdog.hpp"

namespace parole::serve {
namespace {

// Serve-local fault stream for the arrival process. Chaos owns 1..7 and the
// stage supervisors own 101..103 (supervisor.hpp); arrivals live at 100.
constexpr std::uint64_t kArrivalStream = 100;

// SRVE section: serve-loop progress the node snapshot cannot carry.
constexpr std::uint32_t kServeTag = io::section_tag("SRVE");

void sleep_ms(std::uint64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

ServePipeline::ServePipeline(ServeConfig config)
    : config_([&config] {
        // Genesis arrives through the bridge (deposits), which cannot carry
        // pre-owned tokens — and the generator's shadow state must equal the
        // node's L2 state at step 0.
        config.workload.premint = 0;
        if (config.supervisor.seed == 0) config.supervisor.seed = config.seed;
        return std::move(config);
      }()),
      ingest_sup_(config_.supervisor, "serve.ingest", ServeStage::kIngest),
      reorder_sup_(config_.supervisor, "serve.reorder", ServeStage::kReorder),
      checkpoint_sup_(config_.supervisor, "serve.checkpoint",
                      ServeStage::kCheckpoint) {}

ServePipeline::~ServePipeline() {
  if (reorder_requests_) reorder_requests_->close();
  if (reorder_responses_) reorder_responses_->close();
  if (checkpoint_jobs_) checkpoint_jobs_->close();
  if (reorder_thread_.joinable()) reorder_thread_.join();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
}

rollup::ChaosConfig ServePipeline::default_chaos(std::uint64_t seed) {
  rollup::ChaosConfig chaos;
  chaos.seed = seed;
  chaos.p_aggregator_crash = 0.08;
  chaos.crash_backoff_steps = 2;
  chaos.p_reorderer_failure = 0.10;
  chaos.p_verifier_down = 0.20;
  chaos.verifier_window_steps = 4;
  chaos.p_tx_drop = 0.05;
  chaos.p_tx_duplicate = 0.05;
  chaos.p_tx_delay = 0.08;
  chaos.tx_delay_steps = 3;
  chaos.p_l1_reorg = 0.04;
  chaos.max_reorg_depth = 2;
  return chaos;
}

std::size_t ServePipeline::arrivals_for_step(std::uint64_t step) const {
  Rng rng = fault_rng(config_.seed, kArrivalStream, /*subject=*/0, step);
  const double u = std::max(rng.uniform(), 1e-12);
  const double alpha = std::max(config_.arrival_shape, 1.05);
  // Pareto multiplier with unit mean: scale (alpha-1)/alpha, tail u^(-1/a) —
  // most steps run just below `arrival_rate`, the tail bursts far above it.
  const double multiplier = ((alpha - 1.0) / alpha) * std::pow(u, -1.0 / alpha);
  const auto count = static_cast<std::size_t>(config_.arrival_rate * multiplier);
  return std::min(count, config_.max_arrivals_per_step);
}

std::vector<vm::Tx> ServePipeline::permute(std::vector<vm::Tx> txs) {
  // The stand-in adversarial reorder used across the repo's pipelines:
  // artless (reverse of collection order) but order-sensitive, so reordering
  // visibly changes execution without dragging the solver into the daemon.
  std::reverse(txs.begin(), txs.end());
  return txs;
}

void ServePipeline::build_node(bool threaded) {
  rollup::NodeConfig node_config;
  node_config.max_supply = config_.workload.max_supply;
  node_config.initial_price = config_.workload.initial_price;
  node_ = std::make_unique<rollup::RollupNode>(node_config);
  node_->journal().set_capacity(config_.journal_capacity);

  rollup::Reorderer reorderer =
      threaded ? rollup::Reorderer([this](const vm::L2State&,
                                          std::vector<vm::Tx> txs) {
        return supervised_reorder_threaded(std::move(txs));
      })
               : rollup::Reorderer([this](const vm::L2State&,
                                          std::vector<vm::Tx> txs) {
                   return supervised_reorder_inline(std::move(txs));
                 });
  node_->add_aggregator({AggregatorId{0}, config_.batch_size,
                         std::move(reorderer), std::nullopt});
  node_->add_aggregator(
      {AggregatorId{1}, config_.batch_size, std::nullopt, std::nullopt});
  if (config_.chaos && config_.corrupt_aggregator) {
    node_->add_aggregator({AggregatorId{2}, config_.batch_size,
                           std::nullopt, std::size_t{1}});
  }
  node_->add_verifier(VerifierId{0});
  node_->add_verifier(VerifierId{1});

  if (config_.seats > 0) {
    // Fill the roster with honest seats, then arm: every aggregator becomes
    // a bonded seat, adversarial iff it carries the reorderer.
    for (std::size_t s = node_->aggregator_count(); s < config_.seats; ++s) {
      node_->add_aggregator({AggregatorId{static_cast<std::uint32_t>(s)},
                             config_.batch_size, std::nullopt, std::nullopt});
    }
    rollup::ConsensusConfig consensus = config_.consensus;
    consensus.seed ^= config_.seed;
    node_->arm_consensus(std::move(consensus));
  }

  generator_ =
      std::make_unique<data::WorkloadGenerator>(config_.workload, config_.seed);
  for (const UserId user : generator_->users()) {
    const Amount balance = generator_->initial_state().ledger().balance(user);
    node_->fund_l1(user, balance);
    (void)node_->deposit(user, balance);
  }

  if (config_.chaos) {
    rollup::ChaosConfig chaos = default_chaos(config_.seed);
    if (config_.seats > 0) {
      // With consensus armed, turn on the leader-fault families so a soak
      // exercises view changes, failover inheritance and equivocation.
      chaos.p_leader_crash = 0.04;
      chaos.p_election_msg_drop = 0.03;
      chaos.p_election_msg_delay = 0.03;
      chaos.p_stale_view_double_propose = 0.02;
    }
    node_->arm_chaos(chaos);
  }
}

std::size_t ServePipeline::planned_arrivals(std::uint64_t step) {
  if (!ingest_sup_.degraded() && ingest_sup_.plan_faults(step)) {
    (void)ingest_sup_.on_fault(step);
  } else {
    ingest_sup_.on_success();
  }
  std::size_t count = arrivals_for_step(step);
  // Reduced mode for a crash-looping ingest stage: serve at half rate instead
  // of dying — still a pure function of (seed, step), so replays agree.
  if (ingest_sup_.degraded()) count /= 2;
  return count;
}

ServePipeline::StepInput ServePipeline::ingest_step(std::uint64_t step,
                                                    bool threaded) {
  PAROLE_OBS_HEARTBEAT("serve.ingest");
  const std::uint64_t faults_before = ingest_sup_.report().faults;
  const std::size_t count = planned_arrivals(step);
  if (threaded && ingest_sup_.report().faults > faults_before) {
    sleep_ms(ingest_sup_.backoff_ms());
  }
  StepInput input;
  input.step = step;
  input.txs = generator_->generate(count);
  txs_generated_ += input.txs.size();
  return input;
}

ServePipeline::StepRecord ServePipeline::execute_step(StepInput input) {
  PAROLE_OBS_HEARTBEAT("serve.execute");
  StepRecord record;
  record.step = input.step;
  for (vm::Tx& tx : input.txs) {
    if (node_->try_submit_tx(std::move(tx), config_.max_mempool_depth)) {
      ++record.admitted;
    } else {
      ++record.shed;
    }
  }
  txs_admitted_ += record.admitted;
  txs_shed_ += record.shed;
  record.outcome = node_->step();
  next_ingest_step_ = input.step + 1;
  return record;
}

std::vector<vm::Tx> ServePipeline::supervised_reorder_inline(
    std::vector<vm::Tx> txs) {
  const std::uint64_t step = node_->step_index();
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (reorder_sup_.degraded()) return txs;
    const bool faulted = attempt == 0 && reorder_sup_.plan_faults(step);
    if (!faulted) {
      reorder_sup_.on_success();
      return permute(std::move(txs));
    }
    if (reorder_sup_.on_fault(step) == StageSupervisor::Action::kDegrade) {
      node_->set_reorder_passthrough(true);
      return txs;  // this batch ships honest; passthrough covers the rest
    }
  }
}

std::vector<vm::Tx> ServePipeline::supervised_reorder_threaded(
    std::vector<vm::Tx> txs) {
  const std::uint64_t step = node_->step_index();
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (reorder_sup_.degraded()) return txs;
    ReorderRequest request;
    request.step = step;
    request.attempt = attempt;
    request.txs = txs;  // keep the original for retry / honest fallback
    if (!reorder_requests_->push(std::move(request))) return txs;
    bool faulted = false;
    for (;;) {
      auto response = reorder_responses_->pop_for(config_.reorder_deadline_ms);
      if (!response) {
        faulted = true;  // stage deadline blown (or worker gone)
        break;
      }
      // A deadline-abandoned attempt's late response may still arrive; only
      // the (step, attempt) pair we are waiting on counts.
      if (response->step != step || response->attempt != attempt) continue;
      faulted = response->faulted;
      if (!faulted) {
        reorder_sup_.on_success();
        return std::move(response->txs);
      }
      break;
    }
    if (reorder_sup_.on_fault(step) == StageSupervisor::Action::kDegrade) {
      node_->set_reorder_passthrough(true);
      return txs;
    }
    sleep_ms(reorder_sup_.backoff_ms());
  }
}

void ServePipeline::reorder_worker() {
  while (auto request = reorder_requests_->pop()) {
    PAROLE_OBS_HEARTBEAT("serve.reorder");
    ReorderResponse response;
    response.step = request->step;
    response.attempt = request->attempt;
    // The worker faults on the first attempt of a planned-fault step and
    // serves the retry — the same transient the inline oracle models.
    if (request->attempt == 0 && reorder_sup_.plan_faults(request->step)) {
      response.faulted = true;
    } else {
      response.txs = permute(std::move(request->txs));
    }
    if (!reorder_responses_->push(std::move(response))) return;
  }
}

void ServePipeline::checkpoint_worker() {
  while (auto job = checkpoint_jobs_->pop()) {
    PAROLE_OBS_HEARTBEAT("serve.checkpoint");
    if (!manager_->save(*job->builder).ok()) {
      checkpoint_write_failed_.store(true, std::memory_order_relaxed);
    }
  }
}

void ServePipeline::fill_checkpoint(io::CheckpointBuilder& builder,
                                    std::uint64_t next_step) const {
  obs::JsonObject meta;
  meta["kind"] = "serve";
  meta["seed"] = config_.seed;
  meta["steps"] = config_.steps;
  meta["next_step"] = next_step;
  // Launch parameters `resume` needs to rebuild the exact workload; the SRVE
  // section hard-checks seed/steps, these reconstruct the rest.
  meta["users"] = static_cast<std::uint64_t>(config_.workload.num_users);
  meta["batch"] = static_cast<std::uint64_t>(config_.batch_size);
  meta["depth"] = static_cast<std::uint64_t>(config_.max_mempool_depth);
  meta["rate"] = config_.arrival_rate;
  meta["shape"] = config_.arrival_shape;
  meta["queue"] = static_cast<std::uint64_t>(config_.queue_capacity);
  meta["chaos"] = static_cast<std::uint64_t>(config_.chaos ? 1 : 0);
  meta["p_stage_fault"] = config_.supervisor.p_stage_fault;
  meta["seats"] = static_cast<std::uint64_t>(config_.seats);
  meta["election"] = std::string(rollup::to_string(config_.consensus.model));
  builder.set_meta(meta);
  node_->save_snapshot(builder);
  io::ByteWriter& w = builder.section(kServeTag);
  w.u64(config_.seed);
  w.u64(config_.steps);
  w.u64(next_step);
  w.u64(txs_admitted_);
  w.u64(txs_shed_);
  reorder_sup_.save(w);
  checkpoint_sup_.save(w);
}

Status ServePipeline::save_checkpoint_now(std::uint64_t next_step) {
  io::CheckpointBuilder builder;
  fill_checkpoint(builder, next_step);
  if (auto written = manager_->save(builder); !written.ok()) {
    return written.error();
  }
  return ok_status();
}

Status ServePipeline::maybe_checkpoint(std::uint64_t step, bool threaded) {
  if (!manager_) return ok_status();
  const std::uint64_t next = step + 1;
  const bool kill_here = config_.kill_after > 0 && next == config_.kill_after;
  const bool cadence =
      config_.checkpoint_every > 0 && next % config_.checkpoint_every == 0;
  if (!kill_here && !cadence) return ok_status();

  if (!checkpoint_sup_.degraded() && checkpoint_sup_.plan_faults(step)) {
    if (checkpoint_sup_.on_fault(step) == StageSupervisor::Action::kRetry &&
        threaded) {
      sleep_ms(checkpoint_sup_.backoff_ms());
    }
  } else {
    checkpoint_sup_.on_success();
  }
  // A degraded checkpoint stage stops writing — counted in its StageReport
  // and surfaced in the final stats, never a silent data loss: the run keeps
  // its last good generation.
  if (checkpoint_sup_.degraded()) return ok_status();

  if (threaded) {
    CheckpointJob job;
    job.builder = std::make_shared<io::CheckpointBuilder>();
    job.next_step = next;
    fill_checkpoint(*job.builder, next);
    (void)checkpoint_jobs_->push(std::move(job));
    if (kill_here) {
      // The crash drill must not outrun the writer: make the generation
      // durable, then die without any cleanup — that is the point.
      checkpoint_jobs_->close();
      if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
      std::fflush(nullptr);
      (void)std::raise(SIGKILL);
    }
  } else {
    if (Status s = save_checkpoint_now(next); !s.ok()) return s;
    if (kill_here) {
      std::fflush(nullptr);
      (void)std::raise(SIGKILL);
    }
  }
  return ok_status();
}

Status ServePipeline::try_resume(std::uint64_t& start_step) {
  if (!manager_->has_checkpoint()) return ok_status();
  auto loaded = manager_->load_latest();
  if (!loaded.ok()) return loaded.error();
  const io::Checkpoint& checkpoint = loaded.value().checkpoint;

  auto meta = checkpoint.meta();
  if (!meta.ok()) return meta.error();
  const auto kind = meta.value().find("kind");
  if (kind == meta.value().end() || !kind->second.is_string() ||
      kind->second.as_string() != "serve") {
    return Error{"config_mismatch",
                 "checkpoint in --checkpoint-dir is not a serve checkpoint"};
  }

  auto section = checkpoint.reader(kServeTag);
  if (!section.ok()) return section.error();
  io::ByteReader& r = section.value();
  std::uint64_t seed = 0;
  std::uint64_t steps = 0;
  std::uint64_t next_step = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  PAROLE_IO_READ(r.u64(seed), "serve seed");
  PAROLE_IO_READ(r.u64(steps), "serve steps");
  PAROLE_IO_READ(r.u64(next_step), "serve next step");
  PAROLE_IO_READ(r.u64(admitted), "serve admitted");
  PAROLE_IO_READ(r.u64(shed), "serve shed");
  if (Status s = reorder_sup_.load(r); !s.ok()) return s;
  if (Status s = checkpoint_sup_.load(r); !s.ok()) return s;
  if (Status s = r.finish("SRVE section"); !s.ok()) return s;

  if (seed != config_.seed || steps != config_.steps) {
    return Error{"config_mismatch",
                 "serve checkpoint was cut with a different seed/steps config"};
  }

  if (Status s = node_->restore_snapshot(checkpoint); !s.ok()) return s;

  // Fast-forward the workload generator and the ingest supervisor by
  // replaying the served prefix's (pure) arrival schedule — the shadow state
  // re-derives exactly; nothing of either is serialized.
  for (std::uint64_t step = 0; step < next_step; ++step) {
    const std::vector<vm::Tx> replayed =
        generator_->generate(planned_arrivals(step));
    txs_generated_ += replayed.size();
  }

  node_->set_reorder_passthrough(reorder_sup_.degraded());
  txs_admitted_ = admitted;
  txs_shed_ = shed;
  next_ingest_step_ = next_step;
  start_step = next_step;
  return ok_status();
}

void ServePipeline::absorb_record(const StepRecord& record, ServeStats& stats) {
  ++stats.steps_run;
  const rollup::StepOutcome& outcome = record.outcome;
  if (outcome.produced_batch) ++stats.batches;
  if (outcome.challenged) ++stats.challenges;
  if (outcome.fraud_proven) ++stats.frauds;
  if (outcome.reorderer_degraded) ++stats.degraded_batches;
  absorb_consensus(outcome, stats);
}

void ServePipeline::absorb_consensus(const rollup::StepOutcome& outcome,
                                     ServeStats& stats) {
  if (node_->consensus() == nullptr) return;
  if (outcome.view_changes > 0) {
    stats.leader_handoffs += outcome.view_changes;
    PAROLE_OBS_COUNT("parole.serve.leader_handoffs",
                     static_cast<std::int64_t>(outcome.view_changes));
    // A leader handoff is a supervised-stage event: the successor stamps a
    // fresh beat and clears the sticky stall latch, exactly like a stage
    // relaunch — a failed leader must not read as a wedged pipeline.
    obs::StallWatchdog::instance().stage_relaunched("consensus.leader");
  }
  if (outcome.equivocations > 0) {
    stats.equivocations += outcome.equivocations;
    PAROLE_OBS_COUNT("parole.serve.equivocations",
                     static_cast<std::int64_t>(outcome.equivocations));
  }
  if (outcome.produced_batch) {
    // Per-seat heartbeat: seat names are dynamic, so this uses the direct
    // watchdog API — the PAROLE_OBS_HEARTBEAT macro binds one static name
    // per call site.
    obs::StallWatchdog::Stage& stage = obs::StallWatchdog::instance().stage(
        "consensus.seat." + std::to_string(outcome.leader_seat));
    obs::StallWatchdog::beat(stage);
  }
}

ServeStats ServePipeline::finish(ServeStats stats, bool drained, bool stopped,
                                 double wall_seconds) {
  stats.txs_generated = txs_generated_;
  stats.txs_admitted = txs_admitted_;
  stats.txs_shed = txs_shed_;
  stats.ingest = ingest_sup_.report();
  stats.reorder = reorder_sup_.report();
  stats.checkpoint = checkpoint_sup_.report();
  stats.stopped = stopped;
  stats.drained = drained;
  if (in_queue_) {
    stats.queue_full_waits =
        in_queue_->full_waits() + out_queue_->full_waits() +
        reorder_requests_->full_waits() + reorder_responses_->full_waits() +
        (checkpoint_jobs_ ? checkpoint_jobs_->full_waits() : 0);
  }
  if (const rollup::ChaosRuntime* chaos = node_->chaos()) {
    stats.invariant_violations = chaos->checker.violations().size();
    stats.invariants_clean = chaos->checker.clean();
  }
  const obs::TxJournal::Audit audit = node_->journal().audit();
  stats.journal_audit_ok = audit.ok;
  stats.journal_shed = audit.txs_shed;
  const obs::TxJournal::LatencySummary latencies = node_->journal().latencies();
  stats.finalized_txs = latencies.tx_latency_ns.size();
  stats.p99_latency_ms =
      obs::sample_quantile(latencies.tx_latency_ns, 0.99) / 1e6;
  stats.p999_latency_ms =
      obs::sample_quantile(latencies.tx_latency_ns, 0.999) / 1e6;
  stats.wall_seconds = wall_seconds;
  const double throughput_base = static_cast<double>(
      stats.finalized_txs > 0 ? stats.finalized_txs : stats.txs_admitted);
  stats.sustained_tps =
      wall_seconds > 0.0 ? throughput_base / wall_seconds : 0.0;
  stats.fingerprint = node_->state().state_root().hex();
  return stats;
}

Result<ServeStats> ServePipeline::run(const std::atomic<bool>* stop) {
  return run_impl(stop, /*threaded=*/true);
}

Result<ServeStats> ServePipeline::run_inline(const std::atomic<bool>* stop) {
  return run_impl(stop, /*threaded=*/false);
}

Result<ServeStats> ServePipeline::run_impl(const std::atomic<bool>* stop,
                                           bool threaded) {
  if (ran_) {
    return Error{"serve_reused",
                 "a ServePipeline runs once; construct a fresh one"};
  }
  ran_ = true;
  threaded_ = threaded;

  build_node(threaded);

  std::uint64_t start_step = 0;
  if (!config_.checkpoint_dir.empty()) {
    manager_ = std::make_unique<io::CheckpointManager>(config_.checkpoint_dir,
                                                       "serve", 3);
    if (Status s = try_resume(start_step); !s.ok()) return s.error();
  }
  if (config_.node_observer) config_.node_observer(*node_);

  // Register every serve stage's heartbeat slot *before* its first beat: a
  // stage that wedges before ever beating must show up in /healthz as silent
  // (age 0, beats 0), not be invisible to the monitor.
  auto& watchdog = obs::StallWatchdog::instance();
  (void)watchdog.stage("serve.ingest");
  (void)watchdog.stage("serve.execute");
  (void)watchdog.stage("serve.reorder");
  (void)watchdog.stage("serve.checkpoint");
  (void)watchdog.stage("serve.outcome");

  ServeStats stats;
  stats.start_step = start_step;
  bool stopped = false;
  const auto wall_start = std::chrono::steady_clock::now();

  auto stop_requested = [stop] {
    return stop != nullptr && stop->load(std::memory_order_relaxed);
  };
  auto want_step = [&](std::uint64_t step) {
    if (stop_requested()) return false;
    return config_.steps == 0 || step < config_.steps;
  };

  if (!threaded) {
    for (std::uint64_t step = start_step; want_step(step); ++step) {
      StepInput input = ingest_step(step, /*threaded=*/false);
      const StepRecord record = execute_step(std::move(input));
      absorb_record(record, stats);
      if (Status s = maybe_checkpoint(step, /*threaded=*/false); !s.ok()) {
        return s.error();
      }
    }
    stopped = stop_requested();
  } else {
    in_queue_ = std::make_unique<BoundedQueue<StepInput>>(config_.queue_capacity);
    out_queue_ =
        std::make_unique<BoundedQueue<StepRecord>>(config_.queue_capacity);
    reorder_requests_ = std::make_unique<BoundedQueue<ReorderRequest>>(1);
    reorder_responses_ = std::make_unique<BoundedQueue<ReorderResponse>>(1);
    reorder_thread_ = std::thread(&ServePipeline::reorder_worker, this);
    if (manager_) {
      checkpoint_jobs_ = std::make_unique<BoundedQueue<CheckpointJob>>(2);
      checkpoint_thread_ = std::thread(&ServePipeline::checkpoint_worker, this);
    }

    std::thread ingest([&] {
      for (std::uint64_t step = start_step; want_step(step); ++step) {
        StepInput input = ingest_step(step, /*threaded=*/true);
        if (!in_queue_->push(std::move(input))) break;
        sleep_ms(config_.pace_ms);
      }
      // Graceful drain handshake: close the inlet; execute flushes what is
      // already queued, then closes its own outlet.
      in_queue_->close();
    });

    std::thread execute([&] {
      while (auto input = in_queue_->pop()) {
        StepRecord record = execute_step(std::move(*input));
        const std::uint64_t step = record.step;
        if (!out_queue_->push(std::move(record))) break;
        (void)maybe_checkpoint(step, /*threaded=*/true);
      }
      out_queue_->close();
    });

    // The caller's thread is the outcome-export stage.
    while (auto record = out_queue_->pop()) {
      PAROLE_OBS_HEARTBEAT("serve.outcome");
      absorb_record(*record, stats);
    }
    ingest.join();
    execute.join();
    stopped = stop_requested();
  }

  // Roll the final checkpoint at the serve-step boundary *before* the drain:
  // checkpoints always describe pre-drain state, so a resumed run re-enters
  // the ingest schedule exactly where the interrupted one left it and
  // converges to the uninterrupted run's fingerprint. (The drain itself is a
  // pure function of the restored state — chaos and supervision key off the
  // node's step index — so it simply re-runs on resume.)
  Status final_save = ok_status();
  if (manager_ && !checkpoint_sup_.degraded()) {
    if (threaded) {
      CheckpointJob job;
      job.builder = std::make_shared<io::CheckpointBuilder>();
      job.next_step = next_ingest_step_;
      fill_checkpoint(*job.builder, next_ingest_step_);
      (void)checkpoint_jobs_->push(std::move(job));
    } else {
      final_save = save_checkpoint_now(next_ingest_step_);
    }
  }

  // Drain: every admitted transaction resolves and every committed batch
  // leaves its challenge window before we take the final fingerprint. The
  // reorder worker stays alive through this — quiescence steps still hit the
  // adversarial aggregator.
  const rollup::DrainResult drain =
      node_->run_to_quiescence(config_.quiescence_steps);
  for (const rollup::StepOutcome& outcome : drain.outcomes) {
    if (outcome.produced_batch) ++stats.batches;
    if (outcome.challenged) ++stats.challenges;
    if (outcome.fraud_proven) ++stats.frauds;
    if (outcome.reorderer_degraded) ++stats.degraded_batches;
    absorb_consensus(outcome, stats);
  }

  if (threaded) {
    reorder_requests_->close();
    reorder_responses_->close();
    if (reorder_thread_.joinable()) reorder_thread_.join();
    if (checkpoint_jobs_) checkpoint_jobs_->close();
    if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  }
  if (!final_save.ok()) return final_save.error();
  if (checkpoint_write_failed_.load(std::memory_order_relaxed)) {
    return Error{"io_error", "a rolling checkpoint write failed mid-run"};
  }

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return finish(std::move(stats), drain.drained, stopped, wall_seconds);
}

}  // namespace parole::serve
