// The serve daemon: RollupNode as a long-lived streaming service
// (DESIGN.md §14, ROADMAP item 4).
//
// A continuous synthetic tx stream (heavy-tailed arrivals over src/data's
// workload generator) flows through concurrent pipeline stages joined by
// bounded queues:
//
//   [ingest] --Q(in)--> [execute] --Q(out)--> [outcome export]
//                         |    |
//                         |    +--Q(req)/Q(resp)--> [reorder worker]
//                         +--Q(ckpt)--> [checkpoint writer]
//
// The execute stage owns the RollupNode and runs collect -> reorder ->
// execute/commit -> verify exactly as a batch-stepped run would — the
// concurrency lives *around* the state owner (generation, the adversarial
// reorder search, checkpoint serialization, outcome export), never inside
// it. Combined with deterministic admission (shed on mempool depth, not on
// wall-clock queue pressure) and deterministic stage faults (serve/
// supervisor.hpp), that yields the property the acceptance test checks:
// same seed + same fault script => bit-identical finalized state whether the
// schedule runs through run() (threaded) or run_inline() (no threads).
//
// Robustness features, per the supervision layer:
//   - bounded queues apply blocking backpressure (counted, never dropping);
//   - admission control sheds at the ingest edge when the mempool saturates
//     (parole.rollup.shed_txs + terminal kShed journal events);
//   - per-stage deadlines with retry/backoff on transient faults; the
//     reorder stage degrades to honest-order passthrough when it crash-loops;
//   - graceful drain on request (SIGTERM/SIGINT in the CLI): in-flight
//     batches flush, the node runs to quiescence, a final checkpoint rolls;
//   - rolling checkpoints (PR 4 CheckpointManager) cut off the hot path by a
//     dedicated writer thread; a SIGKILLed serve resumes bit-identically.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "parole/data/workload.hpp"
#include "parole/io/manifest.hpp"
#include "parole/rollup/node.hpp"
#include "parole/serve/queue.hpp"
#include "parole/serve/supervisor.hpp"

namespace parole::serve {

struct ServeConfig {
  std::uint64_t seed{0x5e12e5e12eULL};
  // Aggregation rounds to serve; 0 = run until a stop is requested (daemon
  // mode — pair with the CLI's SIGTERM handler).
  std::uint64_t steps{240};

  // Workload population + tx mix. premint is forced to 0: the node's genesis
  // arrives through the bridge (deposits), which cannot carry pre-owned
  // tokens, and generator/node state must agree at step 0.
  data::WorkloadConfig workload;

  // Aggregator collection size N and the admission cap: a submission is shed
  // when the mempool already holds `max_mempool_depth` transactions.
  std::size_t batch_size{6};
  std::size_t max_mempool_depth{48};

  // Heavy-tailed arrival process: per-step counts are rate * a Pareto(shape)
  // multiplier with unit mean — bursty enough to exercise shedding, pure in
  // (seed, step) so replays see identical traffic.
  double arrival_rate{5.0};
  double arrival_shape{1.6};
  std::size_t max_arrivals_per_step{64};

  // Chaos (PR 3) armed for the whole run; the corrupt aggregator gives the
  // dispute game real fraud to catch.
  bool chaos{true};
  bool corrupt_aggregator{true};

  // Decentralized sequencing (DESIGN.md §15): seats > 0 arms the consensus
  // layer with that many bonded sequencer seats — the base topology grows
  // with honest aggregators until the roster is full — electing leaders per
  // `consensus.model`. The consensus seed is mixed from the serve seed, so a
  // resume re-derives the same leadership schedule.
  std::size_t seats{0};
  rollup::ConsensusConfig consensus;

  // Supervision (serve/supervisor.hpp). seed 0 = inherit the serve seed.
  SupervisorConfig supervisor;

  // Inter-stage queue capacity (backpressure depth).
  std::size_t queue_capacity{8};

  // Rolling checkpoints; empty dir = checkpointing off. kill_after N > 0 is
  // the crash drill: SIGKILL after the Nth served step's checkpoint lands.
  std::string checkpoint_dir;
  std::uint64_t checkpoint_every{32};
  std::uint64_t kill_after{0};

  // Wall-clock knobs (threaded mode only; inline replay ignores them).
  std::uint64_t pace_ms{0};              // per-step sleep for live scrapes
  std::uint64_t reorder_deadline_ms{5000};  // stage deadline on the worker

  // Journal ring size for the node (a soak outlives the default ring).
  std::size_t journal_capacity{1u << 20};

  // Step budget for the post-drain quiescence loop.
  std::size_t quiescence_steps{20'000};

  // Invoked once the node exists (after a possible resume, before the first
  // step). The CLI attaches live telemetry (/journal/tail, flight recorder)
  // here; not part of the determinism surface.
  std::function<void(rollup::RollupNode&)> node_observer;
};

struct ServeStats {
  std::uint64_t start_step{0};  // > 0 when resumed from a checkpoint
  std::uint64_t steps_run{0};   // steps served this process (excl. drain)
  std::uint64_t txs_generated{0};
  std::uint64_t txs_admitted{0};
  std::uint64_t txs_shed{0};
  std::uint64_t batches{0};
  std::uint64_t challenges{0};
  std::uint64_t frauds{0};
  std::uint64_t degraded_batches{0};  // shipped with the reorderer suppressed
  std::uint64_t leader_handoffs{0};   // consensus view changes across the run
  std::uint64_t equivocations{0};     // stale-view duplicates slashed
  std::uint64_t queue_full_waits{0};  // backpressure events across all queues
  StageReport ingest;
  StageReport reorder;
  StageReport checkpoint;
  bool stopped{false};   // a stop request triggered the drain
  bool drained{false};   // quiescence reached inside the step budget
  bool invariants_clean{true};
  std::size_t invariant_violations{0};
  // Journal-derived (empty/zero when the journal is unarmed):
  std::uint64_t finalized_txs{0};
  double p99_latency_ms{0.0};
  double p999_latency_ms{0.0};
  bool journal_audit_ok{true};
  std::uint64_t journal_shed{0};  // kShed chains seen by the audit
  // Throughput over the serve phase (admission -> quiescence).
  double wall_seconds{0.0};
  double sustained_tps{0.0};  // finalized tx/s (admitted tx/s if no journal)
  // state_root() hex at quiescence — the bit-identity witness.
  std::string fingerprint;
};

class ServePipeline {
 public:
  explicit ServePipeline(ServeConfig config);
  ~ServePipeline();

  ServePipeline(const ServePipeline&) = delete;
  ServePipeline& operator=(const ServePipeline&) = delete;

  // Threaded daemon run. `stop` (nullable) is polled once per ingest step;
  // setting it requests the graceful drain. One run per pipeline object.
  Result<ServeStats> run(const std::atomic<bool>* stop = nullptr);

  // The same schedule with no threads, queues, or sleeps — the determinism
  // oracle the equivalence test diffs run() against.
  Result<ServeStats> run_inline(const std::atomic<bool>* stop = nullptr);

  // Deterministic heavy-tailed arrival count for `step` (pure in seed/step).
  [[nodiscard]] std::size_t arrivals_for_step(std::uint64_t step) const;

  // The chaos mix a serve soak arms by default (all families, same shape as
  // the `chaos` command's).
  [[nodiscard]] static rollup::ChaosConfig default_chaos(std::uint64_t seed);

  [[nodiscard]] rollup::RollupNode& node() { return *node_; }
  [[nodiscard]] const ServeConfig& config() const { return config_; }

 private:
  struct StepInput {
    std::uint64_t step{0};
    std::vector<vm::Tx> txs;
  };
  struct StepRecord {
    std::uint64_t step{0};
    std::uint64_t admitted{0};
    std::uint64_t shed{0};
    rollup::StepOutcome outcome;
  };
  struct ReorderRequest {
    std::uint64_t step{0};
    std::uint32_t attempt{0};
    std::vector<vm::Tx> txs;
  };
  struct ReorderResponse {
    std::uint64_t step{0};
    std::uint32_t attempt{0};
    bool faulted{false};
    std::vector<vm::Tx> txs;
  };
  struct CheckpointJob {
    std::shared_ptr<io::CheckpointBuilder> builder;
    std::uint64_t next_step{0};
  };

  Result<ServeStats> run_impl(const std::atomic<bool>* stop, bool threaded);
  void build_node(bool threaded);
  // Loads the newest checkpoint generation when the dir holds one; fast-
  // forwards the workload generator and supervision state. Sets start_step.
  Status try_resume(std::uint64_t& start_step);
  Status maybe_checkpoint(std::uint64_t step, bool threaded);
  Status save_checkpoint_now(std::uint64_t next_step);
  void fill_checkpoint(io::CheckpointBuilder& builder,
                       std::uint64_t next_step) const;
  // Supervised arrival count for `step`: advances the ingest supervisor and
  // applies its degraded half-rate. Resume replays this over the served
  // prefix, so the supervisor's state is recomputed, never serialized.
  std::size_t planned_arrivals(std::uint64_t step);
  // Ingest one step's arrivals (supervised).
  StepInput ingest_step(std::uint64_t step, bool threaded);
  // Admit + step the node for one StepInput (supervised reorder via the
  // callback); updates counters and returns the record.
  StepRecord execute_step(StepInput input);
  // The reorder permutation both modes apply (the "attack": reverse order).
  static std::vector<vm::Tx> permute(std::vector<vm::Tx> txs);
  std::vector<vm::Tx> supervised_reorder_inline(std::vector<vm::Tx> txs);
  std::vector<vm::Tx> supervised_reorder_threaded(std::vector<vm::Tx> txs);
  void reorder_worker();
  void checkpoint_worker();
  void absorb_record(const StepRecord& record, ServeStats& stats);
  // Consensus bookkeeping shared by the serve and drain loops: handoff
  // counters, the watchdog relaunch event, the per-seat heartbeat.
  void absorb_consensus(const rollup::StepOutcome& outcome, ServeStats& stats);
  ServeStats finish(ServeStats stats, bool drained, bool stopped,
                    double wall_seconds);

  ServeConfig config_;
  std::unique_ptr<data::WorkloadGenerator> generator_;
  std::unique_ptr<rollup::RollupNode> node_;
  std::unique_ptr<io::CheckpointManager> manager_;
  StageSupervisor ingest_sup_;
  StageSupervisor reorder_sup_;
  StageSupervisor checkpoint_sup_;

  // Threaded-mode plumbing. The reorder callback runs on the execute thread
  // and reads the current step straight from the node.
  std::unique_ptr<BoundedQueue<StepInput>> in_queue_;
  std::unique_ptr<BoundedQueue<StepRecord>> out_queue_;
  std::unique_ptr<BoundedQueue<ReorderRequest>> reorder_requests_;
  std::unique_ptr<BoundedQueue<ReorderResponse>> reorder_responses_;
  std::unique_ptr<BoundedQueue<CheckpointJob>> checkpoint_jobs_;
  std::thread reorder_thread_;
  std::thread checkpoint_thread_;
  bool threaded_{false};
  std::atomic<bool> checkpoint_write_failed_{false};

  // Running totals (serve phase; admitted/shed ride the SRVE section, the
  // rest is recomputed on resume by replaying the ingest schedule).
  std::uint64_t txs_generated_{0};
  std::uint64_t txs_admitted_{0};
  std::uint64_t txs_shed_{0};
  std::uint64_t next_ingest_step_{0};
  bool ran_{false};
};

}  // namespace parole::serve
