// Bounded blocking queues connecting serve pipeline stages (DESIGN.md §14).
//
// The serve daemon's stages are joined by single-producer/single-consumer
// channels with *blocking* backpressure: a push against a full queue waits
// (counted into parole.serve.queue_full, never silent) instead of dropping —
// load is only ever refused at the admission edge, where the shed is a
// deterministic, journaled decision. That split is what keeps the concurrent
// pipeline bit-identical to a batch-stepped replay: wall-clock pressure can
// slow a run down but can never change which transactions it processes.
//
// close() wakes every waiter; producers see push() == false, consumers drain
// the remaining entries and then get nullopt — the graceful-drain handshake
// SIGTERM rides (flush in-flight work, then let each stage run dry).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "parole/obs/metrics.hpp"

namespace parole::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full (backpressure). Returns false — and drops
  // `value` — only when the queue was closed; a false return during drain
  // means the consumer has already gone away.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    if (items_.size() >= capacity_ && !closed_) {
      // One count per blocked push, not per wakeup: the counter measures how
      // often the downstream stage applied backpressure, not lock churn.
      ++full_waits_;
      PAROLE_OBS_COUNT("parole.serve.queue_full", 1);
      not_full_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty; nullopt once closed AND drained, so a
  // consumer loop `while (auto item = q.pop())` exits exactly when no more
  // work can ever arrive.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  // Blocking pop with a deadline — the per-stage deadline primitive. nullopt
  // means timeout OR closed-and-drained; the caller treats either as a stage
  // fault and goes through its supervisor.
  std::optional<T> pop_for(std::uint64_t timeout_ms) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  // Non-blocking pop for drain loops that must keep heartbeating.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  // Pushes that had to wait on a full queue (backpressure events).
  [[nodiscard]] std::uint64_t full_waits() const {
    std::lock_guard lock(mutex_);
    return full_waits_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::uint64_t full_waits_{0};
  bool closed_{false};
};

}  // namespace parole::serve
