#include "parole/serve/supervisor.hpp"

#include <algorithm>

#include "parole/common/fault.hpp"
#include "parole/obs/metrics.hpp"
#include "parole/obs/watchdog.hpp"

namespace parole::serve {
namespace {

const std::vector<std::uint64_t>& forced_for(const SupervisorConfig& config,
                                             ServeStage stage) {
  switch (stage) {
    case ServeStage::kIngest: return config.forced_ingest_faults;
    case ServeStage::kReorder: return config.forced_reorder_faults;
    case ServeStage::kCheckpoint: return config.forced_checkpoint_faults;
  }
  return config.forced_ingest_faults;
}

}  // namespace

StageSupervisor::StageSupervisor(const SupervisorConfig& config,
                                 std::string name, ServeStage stage)
    : config_(config), stage_(stage) {
  report_.name = std::move(name);
}

bool StageSupervisor::plan_faults(std::uint64_t step) const {
  const auto& forced = forced_for(config_, stage_);
  if (std::find(forced.begin(), forced.end(), step) != forced.end()) {
    return true;
  }
  if (config_.p_stage_fault <= 0.0) return false;
  return fault_roll(config_.seed, static_cast<std::uint64_t>(stage_),
                    /*subject=*/0, step, config_.p_stage_fault);
}

StageSupervisor::Action StageSupervisor::on_fault(std::uint64_t step) {
  if (report_.degraded) return Action::kDegrade;
  ++report_.faults;
  ++consecutive_;
  PAROLE_OBS_COUNT("parole.serve.stage_faults", 1);

  window_.push_back(step);
  while (!window_.empty() &&
         step - window_.front() >= config_.crash_loop_window) {
    window_.pop_front();
  }
  if (window_.size() > config_.crash_loop_budget) {
    report_.degraded = true;
    report_.degraded_at_step = step;
    PAROLE_OBS_COUNT("parole.serve.stage_degrades", 1);
    // Degrading IS the relaunch — the stage re-enters service in its reduced
    // mode, so the sticky stall latch must clear here too.
    obs::StallWatchdog::instance().stage_relaunched(report_.name);
    return Action::kDegrade;
  }

  ++report_.retries;
  PAROLE_OBS_COUNT("parole.serve.stage_retries", 1);
  obs::StallWatchdog::instance().stage_relaunched(report_.name);
  return Action::kRetry;
}

void StageSupervisor::on_success() { consecutive_ = 0; }

void StageSupervisor::save(io::ByteWriter& w) const {
  w.u64(report_.faults);
  w.u64(report_.retries);
  w.boolean(report_.degraded);
  w.u64(report_.degraded_at_step);
  w.u64(consecutive_);
  w.u64(window_.size());
  for (const std::uint64_t step : window_) w.u64(step);
}

Status StageSupervisor::load(io::ByteReader& r) {
  StageReport loaded;
  loaded.name = report_.name;
  std::uint64_t consecutive = 0;
  std::uint64_t count = 0;
  PAROLE_IO_READ(r.u64(loaded.faults), "supervisor faults");
  PAROLE_IO_READ(r.u64(loaded.retries), "supervisor retries");
  PAROLE_IO_READ(r.boolean(loaded.degraded), "supervisor degraded");
  PAROLE_IO_READ(r.u64(loaded.degraded_at_step), "supervisor degrade step");
  PAROLE_IO_READ(r.u64(consecutive), "supervisor consecutive");
  PAROLE_IO_READ(r.length(count, sizeof(std::uint64_t)), "supervisor window");
  std::deque<std::uint64_t> window;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t step = 0;
    PAROLE_IO_READ(r.u64(step), "supervisor window entry");
    window.push_back(step);
  }
  report_ = std::move(loaded);
  consecutive_ = static_cast<std::uint32_t>(consecutive);
  window_ = std::move(window);
  return ok_status();
}

std::uint64_t StageSupervisor::backoff_ms() const {
  if (consecutive_ == 0) return 0;
  std::uint64_t backoff = config_.backoff_base_ms;
  for (std::uint32_t i = 1; i < consecutive_ && backoff < config_.backoff_max_ms;
       ++i) {
    backoff *= 2;
  }
  return std::min(backoff, config_.backoff_max_ms);
}

}  // namespace parole::serve
