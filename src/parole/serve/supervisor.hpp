// Stage supervision for the serve pipeline (DESIGN.md §14).
//
// Every pipeline stage runs under a StageSupervisor implementing a small
// state machine:
//
//     RUNNING --fault--> BACKOFF --retry--> RUNNING
//        |                                     |
//        +--- budget blown inside window ------+--> DEGRADED (sticky)
//
// Transient stage faults are *deterministic*: whether the stage faults at a
// given (stage, step) is a pure draw from the common/fault streams (plus an
// optional forced script), exactly like the chaos FaultPlan — so a threaded
// serve run and its batch-stepped inline replay fault, retry, and degrade at
// identical steps, and the finalized state stays bit-identical. Only the
// *waiting* is wall-clock: retry backoff sleeps happen in threaded mode and
// are skipped inline, which cannot change state.
//
// A fault fires on the first attempt of its step and clears on retry — the
// "transient" in transient fault. What escalates is *frequency*: when more
// than `crash_loop_budget` faulted steps land inside a sliding window of
// `crash_loop_window` steps, the stage is crash-looping and the supervisor
// degrades it instead of stalling the pipeline. For the reorder stage that
// means honest-order passthrough (RollupNode::set_reorder_passthrough) — the
// attack loses its slots, the chain keeps draining. Every relaunch clears
// the watchdog's sticky stall latch via StallWatchdog::stage_relaunched.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "parole/io/bytes.hpp"

namespace parole::serve {

struct SupervisorConfig {
  std::uint64_t seed{0};
  // Per (stage, step) transient-fault probability; 0 disables random faults.
  double p_stage_fault{0.0};
  // Exponential retry backoff: base * 2^(consecutive-1), capped. Milliseconds
  // of real sleep in threaded mode; pure bookkeeping inline.
  std::uint64_t backoff_base_ms{1};
  std::uint64_t backoff_max_ms{32};
  // More than `crash_loop_budget` faulted steps inside any window of
  // `crash_loop_window` steps = crash loop -> degrade.
  std::uint32_t crash_loop_budget{3};
  std::uint64_t crash_loop_window{32};
  // Scripted faults per stage stream (step numbers); tests use these to
  // drive the degrade transition deterministically regardless of p.
  std::vector<std::uint64_t> forced_ingest_faults;
  std::vector<std::uint64_t> forced_reorder_faults;
  std::vector<std::uint64_t> forced_checkpoint_faults;
};

// Stable fault-stream identifiers for the serve stages. The chaos FaultPlan
// owns streams 1..7 (rollup/chaos.cpp); serve stages live far away so the
// two schedules can share one seed without correlating.
enum class ServeStage : std::uint64_t {
  kIngest = 101,
  kReorder = 102,
  kCheckpoint = 103,
};

struct StageReport {
  std::string name;
  std::uint64_t faults{0};      // faulted steps
  std::uint64_t retries{0};     // relaunches after a fault
  bool degraded{false};
  std::uint64_t degraded_at_step{0};  // meaningful when degraded

  friend bool operator==(const StageReport&, const StageReport&) = default;
};

class StageSupervisor {
 public:
  StageSupervisor(const SupervisorConfig& config, std::string name,
                  ServeStage stage);

  // Pure: does the deterministic plan fault this stage at `step`? Identical
  // answers in any order, any number of times — the property the inline /
  // threaded equivalence test leans on.
  [[nodiscard]] bool plan_faults(std::uint64_t step) const;

  enum class Action { kRetry, kDegrade };

  // Record a fault at `step`: updates the sliding crash-loop window, clears
  // the watchdog's sticky stall latch for this stage (the relaunch is
  // liveness), and decides retry vs degrade. Degrade is sticky; further
  // faults on a degraded stage keep returning kDegrade without re-counting.
  Action on_fault(std::uint64_t step);

  // The stage completed a step cleanly; resets the consecutive-fault counter
  // that drives backoff (NOT the crash-loop window, which is step-based).
  void on_success();

  // Backoff before the next retry, from the consecutive-fault counter.
  [[nodiscard]] std::uint64_t backoff_ms() const;

  [[nodiscard]] bool degraded() const { return report_.degraded; }
  [[nodiscard]] const StageReport& report() const { return report_; }
  [[nodiscard]] const std::string& name() const { return report_.name; }

  // Checkpointing (DESIGN.md §10): counters, the degrade latch and the
  // crash-loop window — a resumed serve must keep degrading at the same step
  // it would have without the SIGKILL. The config is not serialized; the
  // caller reconstructs the supervisor the same way before load().
  void save(io::ByteWriter& w) const;
  Status load(io::ByteReader& r);

 private:
  SupervisorConfig config_;
  ServeStage stage_;
  StageReport report_;
  std::uint32_t consecutive_{0};
  std::deque<std::uint64_t> window_;  // faulted steps inside the window
};

}  // namespace parole::serve
