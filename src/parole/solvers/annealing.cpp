#include "parole/solvers/annealing.hpp"

#include <cmath>
#include <numeric>

#include "parole/solvers/instrument.hpp"

namespace parole::solvers {

SolveResult AnnealingSolver::solve(const ReorderingProblem& problem,
                                   Rng& rng) {
  return solve(problem, rng, SolveControl{});
}

SolveResult AnnealingSolver::solve(const ReorderingProblem& problem, Rng& rng,
                                   const SolveControl& control) {
  Timer timer;
  PAROLE_OBS_SPAN("solvers.solve");
  MemoryMeter meter;
  const EvalStats stats_before = problem.eval_stats();
  const std::size_t n = problem.size();

  SolveResult result;
  result.solver = name();
  result.baseline = problem.baseline();
  result.best_value = result.baseline;
  result.best_order.resize(n);
  std::iota(result.best_order.begin(), result.best_order.end(), 0);

  if (n < 2) {
    result.wall_millis = timer.elapsed_millis();
    return result;
  }

  std::vector<std::size_t> current = result.best_order;
  Amount current_value = result.baseline;
  problem.commit_order(current);  // probes track the accepted state

  // The retained in-core history: every accepted state's order + value.
  std::vector<std::pair<std::vector<std::size_t>, Amount>> history;

  const auto iterations = static_cast<std::size_t>(
      config_.iteration_factor * static_cast<double>(n) *
      static_cast<double>(n));
  double temperature =
      config_.initial_temperature * static_cast<double>(kGweiPerEth);

  for (std::size_t iter = 0; iter < iterations; ++iter) {
    if (control.interrupted(result.best_value)) break;
    const std::size_t i = rng.index(n);
    std::size_t j = rng.index(n);
    if (i == j) j = (j + 1) % n;

    const auto value = problem.evaluate_swap(i, j);

    bool accept = false;
    if (value) {
      const double delta = static_cast<double>(*value - current_value);
      accept = delta >= 0.0 ||
               rng.uniform() < std::exp(delta / std::max(temperature, 1.0));
    }

    if (accept) {
      std::swap(current[i], current[j]);
      problem.commit();  // apply the probed swap to the incumbent
      current_value = *value;
      if (history.size() < config_.history_cap) {
        history.emplace_back(current, current_value);
        meter.add(current.size() * sizeof(std::size_t) +
                  sizeof(std::pair<std::vector<std::size_t>, Amount>));
      }
      if (current_value > result.best_value) {
        result.best_value = current_value;
        result.best_order = current;
      }
    } else {
      problem.revert();  // drop the probe; the incumbent never moved
    }

    temperature *= config_.cooling;

    // Reheat from the best retained state when the search has gone cold.
    if (temperature < 1.0 && !history.empty() &&
        iter + n * n / 4 < iterations) {
      temperature = config_.initial_temperature *
                    static_cast<double>(kGweiPerEth) * 0.25;
      current = result.best_order;
      current_value = result.best_value;
      problem.commit_order(current);
    }
  }

  result.improved = result.best_value > result.baseline;
  const EvalStats delta = problem.eval_stats() - stats_before;
  publish_eval_stats(delta);
  result.evaluations = delta.evaluations;
  result.cache_hits = delta.cache_hits;
  result.txs_reexecuted = delta.txs_executed;
  result.wall_millis = timer.elapsed_millis();
  result.peak_bytes = meter.peak();
  return result;
}

}  // namespace parole::solvers
