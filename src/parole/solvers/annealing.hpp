// Simulated annealing over swap moves — the stand-in for MINOS in Fig. 11
// (see DESIGN.md substitutions).
//
// MINOS ("Modular In-core Nonlinear Optimization System") is characterized by
// holding its full working set in core while iterating projected-Lagrangian
// steps. The combinatorial analogue here anneals over the swap neighbourhood
// with a geometric temperature schedule, retaining the visited-state history
// in memory (the "in-core" working set) for reheating and best-so-far
// restoration. Iteration count scales with N^2, which yields the
// super-linear Fig. 11(a) time growth; the retained history yields the
// Fig. 11(b) memory growth.
#pragma once

#include "parole/solvers/problem.hpp"

namespace parole::solvers {

struct AnnealingConfig {
  double initial_temperature = 0.05;  // in ETH units of objective delta
  double cooling = 0.995;
  // Iterations = iteration_factor * N^2 (N = problem size).
  double iteration_factor = 4.0;
  // Cap on the retained visited-state history (entries).
  std::size_t history_cap = 200'000;
};

class AnnealingSolver final : public Solver {
 public:
  explicit AnnealingSolver(AnnealingConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "Annealing-MINOS"; }
  SolveResult solve(const ReorderingProblem& problem, Rng& rng) override;
  SolveResult solve(const ReorderingProblem& problem, Rng& rng,
                    const SolveControl& control) override;

 private:
  AnnealingConfig config_;
};

}  // namespace parole::solvers
