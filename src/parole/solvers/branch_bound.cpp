#include "parole/solvers/branch_bound.hpp"

#include <cassert>
#include <numeric>

#include "parole/solvers/instrument.hpp"

namespace parole::solvers {
namespace {

// Rough per-node working-set estimate for the memory meter: the L2State copy
// each frame of the DFS holds.
std::size_t state_bytes(const vm::L2State& state) {
  return state.ledger().account_count() * (sizeof(UserId) + sizeof(Amount)) +
         state.nft().live_count() * (sizeof(TokenId) + sizeof(UserId)) +
         sizeof(vm::L2State);
}

struct SuffixStats {
  std::uint32_t mints{0};
  std::uint32_t ifu_sells{0};
  std::uint32_t ifu_acquisitions{0};
};

class BnbSearch {
 public:
  BnbSearch(const ReorderingProblem& problem, std::size_t node_budget,
            MemoryMeter& meter, const SolveControl& control)
      : problem_(problem),
        node_budget_(node_budget),
        meter_(meter),
        control_(control),
        engine_(vm::ExecConfig{vm::InvalidTxPolicy::kStrict, false, {}}) {}

  void run(std::vector<std::size_t>& best_order, Amount& best_value,
           bool& complete) {
    const std::size_t n = problem_.size();
    chosen_.reserve(n);
    used_.assign(n, false);
    best_value_ = best_value;
    best_order_ = best_order;

    vm::L2State state = problem_.initial_state();
    descend(state, 0);

    best_order = best_order_;
    best_value = best_value_;
    complete = nodes_ < node_budget_;
  }

  [[nodiscard]] std::uint64_t nodes() const { return nodes_; }
  [[nodiscard]] std::uint64_t prunes() const { return prunes_; }
  [[nodiscard]] std::uint64_t txs_executed() const { return txs_executed_; }

 private:
  [[nodiscard]] bool is_ifu(UserId user) const {
    for (UserId ifu : problem_.ifus()) {
      if (ifu == user) return true;
    }
    return false;
  }

  [[nodiscard]] SuffixStats suffix_stats() const {
    SuffixStats stats;
    const auto& txs = problem_.original_order();
    for (std::size_t i = 0; i < txs.size(); ++i) {
      if (used_[i]) continue;
      const vm::Tx& tx = txs[i];
      switch (tx.kind) {
        case vm::TxKind::kMint:
          ++stats.mints;
          if (is_ifu(tx.sender)) ++stats.ifu_acquisitions;
          break;
        case vm::TxKind::kTransfer:
          if (is_ifu(tx.sender)) ++stats.ifu_sells;
          if (is_ifu(tx.recipient)) ++stats.ifu_acquisitions;
          break;
        case vm::TxKind::kBurn:
          break;
      }
    }
    return stats;
  }

  // Admissible upper bound on the IFUs' summed final total balance from this
  // partial state: every future sale earns P_max, every acquisition is free
  // and is later valued at P_max, and current holdings are valued at P_max.
  [[nodiscard]] Amount bound(const vm::L2State& state) const {
    const SuffixStats stats = suffix_stats();
    const auto& curve = state.nft().curve();
    const std::uint32_t remaining = state.nft().remaining_supply();
    const std::uint32_t min_remaining =
        stats.mints >= remaining ? 0 : remaining - stats.mints;
    const Amount p_max = curve.price(min_remaining);

    Amount total = 0;
    for (UserId ifu : problem_.ifus()) {
      total += state.ledger().balance(ifu);
      total += static_cast<Amount>(state.nft().balance_of(ifu)) * p_max;
    }
    total += static_cast<Amount>(stats.ifu_sells) * p_max;
    total += static_cast<Amount>(stats.ifu_acquisitions) * p_max;
    return total;
  }

  void descend(const vm::L2State& state, std::size_t depth) {
    if (nodes_ >= node_budget_) return;
    // Cooperative early-stop, polled once per few hundred nodes so the
    // atomic loads stay off the per-node hot path. A stop drains the budget,
    // which also marks the run incomplete.
    if ((nodes_ & 0xFF) == 0 && control_.interrupted(best_value_)) {
      nodes_ = node_budget_;
      return;
    }
    const std::size_t n = problem_.size();

    if (depth == n) {
      Amount total = 0;
      for (UserId ifu : problem_.ifus()) total += state.total_balance(ifu);
      if (total > best_value_) {
        best_value_ = total;
        best_order_ = chosen_;
      }
      return;
    }

    if (bound(state) <= best_value_) {  // prune
      ++prunes_;
      return;
    }

    for (std::size_t i = 0; i < n; ++i) {
      if (used_[i]) continue;
      ++nodes_;
      if (nodes_ >= node_budget_) return;

      // Constraint-check against the parent first: only viable transactions
      // pay for an L2State copy (most candidates at a node are not viable,
      // so this skips the dominant per-node cost).
      if (engine_.check_tx(state, problem_.original_order()[i]) != nullptr) {
        continue;
      }

      vm::L2State child = state;
      meter_.add(state_bytes(child));
      const bool executed =
          engine_.apply_tx(child, problem_.original_order()[i]);
      assert(executed);
      (void)executed;
      ++txs_executed_;
      used_[i] = true;
      chosen_.push_back(i);
      descend(child, depth + 1);
      chosen_.pop_back();
      used_[i] = false;
      meter_.release(state_bytes(child));
    }
  }

  const ReorderingProblem& problem_;
  std::size_t node_budget_;
  MemoryMeter& meter_;
  const SolveControl& control_;
  vm::ExecutionEngine engine_;
  std::vector<std::size_t> chosen_;
  std::vector<bool> used_;
  std::vector<std::size_t> best_order_;
  Amount best_value_{0};
  std::uint64_t nodes_{0};
  std::uint64_t prunes_{0};
  std::uint64_t txs_executed_{0};
};

}  // namespace

SolveResult BranchBoundSolver::solve(const ReorderingProblem& problem,
                                     Rng& rng) {
  return solve(problem, rng, SolveControl{});
}

SolveResult BranchBoundSolver::solve(const ReorderingProblem& problem,
                                     Rng& rng, const SolveControl& control) {
  (void)rng;  // deterministic

  Timer timer;
  PAROLE_OBS_SPAN("solvers.solve");
  MemoryMeter meter;
  const EvalStats stats_before = problem.eval_stats();

  SolveResult result;
  result.solver = name();
  result.baseline = problem.baseline();
  result.best_value = result.baseline;
  result.best_order.resize(problem.size());
  std::iota(result.best_order.begin(), result.best_order.end(), 0);

  // The DFS only visits leaves where *every* tx executed, and its bound is
  // admissible for the summed-balance objective only; bail out to the
  // identity order otherwise (heuristic solvers handle those cases).
  if (!problem.fully_valid_baseline() ||
      problem.objective() != Objective::kSumBalance) {
    last_run_complete_ = false;
    result.wall_millis = timer.elapsed_millis();
    return result;
  }

  BnbSearch search(problem, config_.node_budget, meter, control);
  bool complete = false;
  search.run(result.best_order, result.best_value, complete);
  last_run_complete_ = complete;

  result.improved = result.best_value > result.baseline;
  publish_eval_stats(problem.eval_stats() - stats_before);
  // Node expansions are the work unit here (each checks one tx, vs the
  // full-sequence executions problem.evaluate() counts). Subtree prunes are
  // this solver's analogue of cache hits: work the bound avoided.
  result.evaluations = search.nodes();
  result.cache_hits = search.prunes();
  result.txs_reexecuted = search.txs_executed();
  result.wall_millis = timer.elapsed_millis();
  result.peak_bytes = meter.peak();
  return result;
}

}  // namespace parole::solvers
