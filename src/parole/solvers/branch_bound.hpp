// Depth-first branch-and-bound over sequence prefixes — the stand-in for
// APOPT in Fig. 11 (see DESIGN.md substitutions).
//
// APOPT is an active-set/branching NLP-MINLP solver; its combinatorial
// analogue here branches on "which transaction executes next", bounding each
// subtree with an optimistic estimate of the IFUs' achievable final balance:
//
//   bound = L2(ifu) + sells_remaining * P_max + (holdings + acquisitions) * P_max
//
// where P_max is the price at the minimum supply reachable in the suffix.
// The bound is admissible (never underestimates), so pruning is exact; the
// frontier stack still grows combinatorially on adversarial instances, which
// is the honest source of its Fig. 11 time/memory growth. A node budget keeps
// worst cases finite; within budget on small N it returns the true optimum.
#pragma once

#include "parole/solvers/problem.hpp"

namespace parole::solvers {

struct BranchBoundConfig {
  std::size_t node_budget = 2'000'000;
};

class BranchBoundSolver final : public Solver {
 public:
  explicit BranchBoundSolver(BranchBoundConfig config = {})
      : config_(config) {}

  [[nodiscard]] std::string name() const override { return "BnB-APOPT"; }
  SolveResult solve(const ReorderingProblem& problem, Rng& rng) override;
  SolveResult solve(const ReorderingProblem& problem, Rng& rng,
                    const SolveControl& control) override;

  // Exposed for tests: was the last solve exhaustive (budget not exhausted)?
  [[nodiscard]] bool last_run_complete() const { return last_run_complete_; }

 private:
  BranchBoundConfig config_;
  bool last_run_complete_{false};
};

}  // namespace parole::solvers
